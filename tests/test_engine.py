"""Event engine tests: ordering, determinism, limits."""

import pytest

from repro.sim.engine import Engine, StopReason


class TestScheduling:
    def test_time_order(self):
        engine = Engine()
        log = []
        engine.at(5, lambda: log.append("b"))
        engine.at(2, lambda: log.append("a"))
        engine.run()
        assert log == ["a", "b"]

    def test_fifo_within_timestamp(self):
        engine = Engine()
        log = []
        for tag in "abc":
            engine.at(1, lambda t=tag: log.append(t))
        engine.run()
        assert log == ["a", "b", "c"]

    def test_after_is_relative(self):
        engine = Engine()
        times = []
        engine.at(3, lambda: engine.after(4, lambda: times.append(engine.now)))
        engine.run()
        assert times == [7]

    def test_now_advances(self):
        engine = Engine()
        engine.at(9, lambda: None)
        engine.run()
        assert engine.now == 9

    def test_past_scheduling_rejected(self):
        engine = Engine()
        engine.at(5, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.at(3, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Engine().after(-1, lambda: None)


class TestRunLimits:
    def test_quiescent(self):
        engine = Engine()
        engine.at(0, lambda: None)
        assert engine.run() is StopReason.QUIESCENT

    def test_max_events(self):
        engine = Engine()

        def reschedule():
            engine.after(1, reschedule)

        engine.at(0, reschedule)
        assert engine.run(max_events=10) is StopReason.MAX_EVENTS
        assert engine.events_processed == 10

    def test_max_time(self):
        engine = Engine()

        def reschedule():
            engine.after(1, reschedule)

        engine.at(0, reschedule)
        assert engine.run(max_time=50) is StopReason.MAX_TIME
        assert engine.now <= 50

    def test_pending_count(self):
        engine = Engine()
        engine.at(1, lambda: None)
        engine.at(2, lambda: None)
        assert engine.pending == 2


class TestDeterminism:
    def test_identical_runs(self):
        def run_once() -> list[int]:
            engine = Engine()
            log: list[int] = []

            def spawn(depth: int):
                log.append(engine.now)
                if depth:
                    engine.after(depth, lambda: spawn(depth - 1))
                    engine.after(1, lambda: spawn(0))

            engine.at(0, lambda: spawn(3))
            engine.run()
            return log

        assert run_once() == run_once()
