"""Event engine tests: ordering, determinism, limits."""

import pytest

from repro.sim.engine import Engine, StopReason


class TestScheduling:
    def test_time_order(self):
        engine = Engine()
        log = []
        engine.at(5, lambda: log.append("b"))
        engine.at(2, lambda: log.append("a"))
        engine.run()
        assert log == ["a", "b"]

    def test_fifo_within_timestamp(self):
        engine = Engine()
        log = []
        for tag in "abc":
            engine.at(1, lambda t=tag: log.append(t))
        engine.run()
        assert log == ["a", "b", "c"]

    def test_after_is_relative(self):
        engine = Engine()
        times = []
        engine.at(3, lambda: engine.after(4, lambda: times.append(engine.now)))
        engine.run()
        assert times == [7]

    def test_now_advances(self):
        engine = Engine()
        engine.at(9, lambda: None)
        engine.run()
        assert engine.now == 9

    def test_past_scheduling_rejected(self):
        engine = Engine()
        engine.at(5, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.at(3, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Engine().after(-1, lambda: None)


class TestRunLimits:
    def test_quiescent(self):
        engine = Engine()
        engine.at(0, lambda: None)
        assert engine.run() is StopReason.QUIESCENT

    def test_max_events(self):
        engine = Engine()

        def reschedule():
            engine.after(1, reschedule)

        engine.at(0, reschedule)
        assert engine.run(max_events=10) is StopReason.MAX_EVENTS
        assert engine.events_processed == 10

    def test_max_time(self):
        engine = Engine()

        def reschedule():
            engine.after(1, reschedule)

        engine.at(0, reschedule)
        assert engine.run(max_time=50) is StopReason.MAX_TIME
        assert engine.now <= 50

    def test_pending_count(self):
        engine = Engine()
        engine.at(1, lambda: None)
        engine.at(2, lambda: None)
        assert engine.pending == 2


class TestDeterminism:
    def test_identical_runs(self):
        def run_once() -> list[int]:
            engine = Engine()
            log: list[int] = []

            def spawn(depth: int):
                log.append(engine.now)
                if depth:
                    engine.after(depth, lambda: spawn(depth - 1))
                    engine.after(1, lambda: spawn(0))

            engine.at(0, lambda: spawn(3))
            engine.run()
            return log

        assert run_once() == run_once()


class TestAdaptiveHorizon:
    """Engine(horizon=...) mechanics and the Simulator sizing helper."""

    def test_horizon_must_be_positive(self):
        with pytest.raises(ValueError):
            Engine(horizon=0)

    def test_ring_is_power_of_two_at_least_twice_horizon(self):
        for horizon in (1, 3, 8, 9, 17, 100):
            engine = Engine(horizon=horizon)
            slots = engine._slots
            assert slots >= 2 * engine.wheel_horizon
            assert slots & (slots - 1) == 0
            assert engine._mask == slots - 1

    def test_oversized_horizon_is_clamped(self):
        from repro.sim.engine import MAX_WHEEL_HORIZON

        engine = Engine(horizon=10 * MAX_WHEEL_HORIZON)
        assert engine.wheel_horizon == MAX_WHEEL_HORIZON

    def test_delays_within_custom_horizon_avoid_heap(self):
        engine = Engine(horizon=64)
        for delay in (1, 8, 33, 64):
            engine.after(delay, lambda: None)
        assert not engine._heap
        engine.after(65, lambda: None)
        assert len(engine._heap) == 1

    def test_custom_horizon_ordering_matches_default(self):
        def run(engine: Engine) -> list[tuple[int, str]]:
            log: list[tuple[int, str]] = []
            for tag, delay in (
                ("a", 5), ("b", 30), ("c", 5), ("d", 12), ("e", 2), ("f", 0),
            ):
                engine.after(delay, lambda t=tag: log.append((engine.now, t)))
            engine.run()
            return log

        assert run(Engine(horizon=32)) == run(Engine()) == run(
            Engine(fast_lane=False)
        )

    def test_wheel_horizon_for_covers_latencies(self):
        from repro.arch.config import ArrayConfig
        from repro.core.ops import COMPUTE
        from repro.core.message import Message
        from repro.core.ops import R, W
        from repro.core.program import ArrayProgram
        from repro.sim.engine import WHEEL_HORIZON
        from repro.sim.runtime import wheel_horizon_for

        program = ArrayProgram(
            ("C1", "C2"),
            [Message("A", "C1", "C2", 1)],
            {
                "C1": [COMPUTE("r", lambda: 1.0, (), cycles=20), W("A")],
                "C2": [R("A")],
            },
        )
        assert wheel_horizon_for(program, ArrayConfig()) == 21  # op_latency + 20
        # Fast ops fall back to the default horizon.
        fast = ArrayProgram(
            ("C1", "C2"),
            [Message("A", "C1", "C2", 1)],
            {"C1": [W("A")], "C2": [R("A")]},
        )
        assert wheel_horizon_for(fast, ArrayConfig()) == WHEEL_HORIZON
        # Queue extension adds its spill penalty to the bound.
        extended = ArrayConfig(
            queue_capacity=1, allow_extension=True, extension_penalty=30
        )
        assert wheel_horizon_for(fast, extended) == 31  # op_latency + penalty
