"""Disk-tier analysis cache: round trips, corruption, versioning,
size-bounded LRU eviction, batch."""

import os
import pickle

import pytest

from repro import ArrayConfig, simulate
from repro.algorithms.fir import fir_program, fir_registers
from repro.perf import (
    GLOBAL_ANALYSIS_CACHE,
    DiskAnalysisCache,
    active_disk_cache,
    clear_analysis_cache,
    configure_disk_cache,
)
from repro.perf.disk_cache import (
    ENV_VAR,
    FORMAT_VERSION,
    MAX_BYTES_ENV_VAR,
    reset_disk_cache_state,
)


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_analysis_cache()
    reset_disk_cache_state()
    yield
    clear_analysis_cache()
    configure_disk_cache(None)
    reset_disk_cache_state()


def _run(program, registers, capacity=2):
    return simulate(
        program,
        config=ArrayConfig(queue_capacity=capacity),
        registers=registers,
    )


class TestRoundTrip:
    def test_restart_skips_reanalysis(self, tmp_path):
        disk = configure_disk_cache(tmp_path)
        program = fir_program(4, 8)
        registers = fir_registers((1.0,) * 4)
        first = _run(program, registers)
        assert disk.stats()["stores"] == 1
        # Simulate a fresh process: the in-memory cache is gone, the
        # disk tier is not.
        clear_analysis_cache()
        from repro.arch.routing import default_router
        from repro.arch.topology import ExplicitLinear

        topology = ExplicitLinear(tuple(program.cells))
        entry = GLOBAL_ANALYSIS_CACHE.lookup(
            program,
            topology,
            default_router(topology),
            ArrayConfig(queue_capacity=2),
        )
        # The labeling arrived preloaded from disk before any simulation
        # ran in this "process" — nothing recomputed it.
        assert disk.stats()["hits"] == 1
        assert entry._labeling is not None
        second = _run(program, registers)
        assert first.received == second.received
        assert first.assignment_trace == second.assignment_trace
        assert first.time == second.time

    def test_unchanged_entry_not_rewritten(self, tmp_path):
        disk = configure_disk_cache(tmp_path)
        program = fir_program(4, 8)
        registers = fir_registers((1.0,) * 4)
        _run(program, registers)
        stores = disk.stats()["stores"]
        _run(program, registers)  # in-memory hit, nothing new computed
        assert disk.stats()["stores"] == stores

    def test_results_identical_to_fresh_analysis(self, tmp_path):
        configure_disk_cache(tmp_path)
        program = fir_program(4, 8)
        registers = fir_registers((1.0,) * 4)
        _run(program, registers)
        clear_analysis_cache()
        from_disk = _run(program, registers)
        configure_disk_cache(None)
        clear_analysis_cache()
        fresh = _run(program, registers)
        assert from_disk.received == fresh.received
        assert from_disk.registers == fresh.registers
        assert from_disk.assignment_trace == fresh.assignment_trace
        assert from_disk.time == fresh.time
        assert from_disk.events == fresh.events

    def test_distinct_configs_distinct_entries(self, tmp_path):
        disk = configure_disk_cache(tmp_path)
        program = fir_program(4, 8)
        registers = fir_registers((1.0,) * 4)
        _run(program, registers, capacity=0)
        _run(program, registers, capacity=2)
        assert len(disk) == 2


class TestRobustness:
    def test_corrupt_entry_is_a_miss(self, tmp_path):
        disk = configure_disk_cache(tmp_path)
        program = fir_program(4, 8)
        registers = fir_registers((1.0,) * 4)
        expected = _run(program, registers)
        for entry in tmp_path.glob("*.analysis.pkl"):
            entry.write_bytes(b"\x80garbage")
        clear_analysis_cache()
        result = _run(program, registers)
        assert result.received == expected.received
        assert disk.stats()["misses"] >= 1

    def test_version_mismatch_is_a_miss(self, tmp_path):
        disk = configure_disk_cache(tmp_path)
        program = fir_program(4, 8)
        registers = fir_registers((1.0,) * 4)
        _run(program, registers)
        (path,) = tmp_path.glob("*.analysis.pkl")
        payload = pickle.loads(path.read_bytes())
        payload["version"] = FORMAT_VERSION + 1
        path.write_bytes(pickle.dumps(payload))
        clear_analysis_cache()
        hits_before = disk.stats()["hits"]
        _run(program, registers)
        assert disk.stats()["hits"] == hits_before  # stale format ignored

    def test_truncated_entry_rejected_and_recomputed(self, tmp_path):
        disk = configure_disk_cache(tmp_path)
        program = fir_program(4, 8)
        registers = fir_registers((1.0,) * 4)
        expected = _run(program, registers)
        (path,) = tmp_path.glob("*.analysis.pkl")
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        clear_analysis_cache()
        hits_before = disk.stats()["hits"]
        result = _run(program, registers)  # recomputed, never deserialized
        assert result.received == expected.received
        assert result.time == expected.time
        assert disk.stats()["hits"] == hits_before
        # The fresh analysis was re-published over the truncated entry,
        # and a later restart reads it back cleanly.
        clear_analysis_cache()
        _run(program, registers)
        assert disk.stats()["hits"] == hits_before + 1

    def test_bit_flipped_artifacts_fail_checksum(self, tmp_path):
        disk = configure_disk_cache(tmp_path)
        program = fir_program(4, 8)
        registers = fir_registers((1.0,) * 4)
        expected = _run(program, registers)
        (path,) = tmp_path.glob("*.analysis.pkl")
        payload = pickle.loads(path.read_bytes())
        blob = bytearray(payload["artifacts"])
        # Flip one bit deep inside the artifact payload: the outer
        # envelope still unpickles, so only the checksum stands between
        # the flip and deserializing garbage.
        blob[len(blob) // 2] ^= 0x40
        payload["artifacts"] = bytes(blob)
        path.write_bytes(pickle.dumps(payload))
        clear_analysis_cache()
        rejected_before = disk.stats()["rejected"]
        result = _run(program, registers)
        assert disk.stats()["rejected"] == rejected_before + 1
        assert result.received == expected.received
        assert result.assignment_trace == expected.assignment_trace

    def test_checksum_optional_but_verified_when_present(self, tmp_path):
        from repro.perf import AnalysisKey

        key = AnalysisKey("p", "t", "r", 0, False)
        unchecked = DiskAnalysisCache(tmp_path, checksum=False)
        assert unchecked.store(key, {"x": 1})
        (path,) = tmp_path.glob("*.analysis.pkl")
        assert pickle.loads(path.read_bytes())["checksum"] is None
        # Entries written without a digest still load (by either reader).
        assert unchecked.load(key) == {"x": 1}
        checked = DiskAnalysisCache(tmp_path)  # checksum=True default
        assert checked.load(key) == {"x": 1}
        # And a checksummed entry read by a checksum=False instance is
        # still verified: the flag gates writing, never verification.
        assert checked.store(key, {"x": 2})
        payload = pickle.loads(path.read_bytes())
        assert payload["checksum"] is not None
        payload["artifacts"] = payload["artifacts"][:-1] + b"\x00"
        path.write_bytes(pickle.dumps(payload))
        assert unchecked.load(key) is None
        assert unchecked.stats()["rejected"] == 1

    def test_no_tmp_files_left_behind(self, tmp_path):
        configure_disk_cache(tmp_path)
        _run(fir_program(4, 8), fir_registers((1.0,) * 4))
        assert not list(tmp_path.glob("*.tmp"))

    def test_unpicklable_artifacts_degrade_gracefully(self, tmp_path):
        disk = DiskAnalysisCache(tmp_path)
        from repro.perf import AnalysisKey

        key = AnalysisKey("p", "t", "r", 0, False)
        assert disk.store(key, {"labeling": lambda: None}) is False
        assert disk.load(key) is None

    def test_clear_removes_entries(self, tmp_path):
        disk = configure_disk_cache(tmp_path)
        _run(fir_program(4, 8), fir_registers((1.0,) * 4))
        assert len(disk) == 1
        assert disk.clear() == 1
        assert len(disk) == 0


class TestErrorAccounting:
    """Corruption is a counted miss; genuine bugs propagate."""

    def _stored_key(self, disk):
        from repro.perf import AnalysisKey

        key = AnalysisKey("p", "t", "r", 0, False)
        assert disk.store(key, {"x": 1})
        return key

    def test_cold_miss_is_not_a_load_error(self, tmp_path):
        from repro.perf import AnalysisKey

        disk = DiskAnalysisCache(tmp_path)
        assert disk.load(AnalysisKey("absent", "t", "r", 0, False)) is None
        stats = disk.stats()
        assert stats["misses"] == 1
        assert stats["load_errors"] == 0

    def test_corrupt_entry_counted_as_load_error(self, tmp_path):
        disk = DiskAnalysisCache(tmp_path)
        key = self._stored_key(disk)
        (path,) = tmp_path.glob("*.analysis.pkl")
        path.write_bytes(b"\x80garbage")
        assert disk.load(key) is None
        stats = disk.stats()
        assert stats["load_errors"] == 1
        assert stats["misses"] == 1

    def test_unreadable_entry_counted_as_load_error(self, tmp_path):
        disk = DiskAnalysisCache(tmp_path)
        key = self._stored_key(disk)
        path = tmp_path / f"{_entry_path(disk, key).name}"
        path.unlink()
        path.mkdir()  # read_bytes now raises IsADirectoryError (OSError)
        assert disk.load(key) is None
        assert disk.stats()["load_errors"] == 1

    def test_failed_store_counted(self, tmp_path):
        disk = DiskAnalysisCache(tmp_path)
        from repro.perf import AnalysisKey

        key = AnalysisKey("p", "t", "r", 0, False)
        assert disk.store(key, {"labeling": lambda: None}) is False
        assert disk.stats()["store_errors"] == 1

    def test_bug_class_exception_propagates_from_load(
        self, tmp_path, monkeypatch
    ):
        """A MemoryError (or any programming error) inside
        deserialization must not be swallowed as a cache miss."""
        import pickle as pickle_mod

        disk = DiskAnalysisCache(tmp_path)
        key = self._stored_key(disk)

        def bomb(raw):
            raise MemoryError("boom")

        monkeypatch.setattr(pickle_mod, "loads", bomb)
        with pytest.raises(MemoryError):
            disk.load(key)

    def test_bug_class_exception_propagates_from_artifacts(
        self, tmp_path, monkeypatch
    ):
        import pickle as pickle_mod

        disk = DiskAnalysisCache(tmp_path)
        key = self._stored_key(disk)
        real_loads = pickle_mod.loads
        calls = {"n": 0}

        def bomb_second(raw):
            calls["n"] += 1
            if calls["n"] == 1:
                return real_loads(raw)  # outer envelope parses fine
            raise ZeroDivisionError("bug in __setstate__")

        monkeypatch.setattr(pickle_mod, "loads", bomb_second)
        with pytest.raises(ZeroDivisionError):
            disk.load(key)
        # The propagated bug was not miscounted as a miss.
        assert disk.stats()["load_errors"] == 0


def _entry_path(cache, key):
    return cache._path(key)


def _age(path, seconds):
    """Push ``path``'s mtime ``seconds`` into the past (deterministic
    LRU ordering without sleeping)."""
    stat = path.stat()
    os.utime(path, (stat.st_atime, stat.st_mtime - seconds))


class TestEviction:
    """Size-bounded LRU-by-mtime eviction."""

    def _keys(self, n):
        from repro.perf import AnalysisKey

        return [AnalysisKey(f"p{i}", "t", "r", 0, False) for i in range(n)]

    def _entry_bytes(self, tmp_path):
        """Size of one stored entry for these keys (they are uniform)."""
        probe = DiskAnalysisCache(tmp_path / "probe")
        (key,) = self._keys(1)
        assert probe.store(key, {"x": 0})
        return _entry_path(probe, key).stat().st_size

    def test_unbounded_by_default(self, tmp_path):
        disk = DiskAnalysisCache(tmp_path)
        for i, key in enumerate(self._keys(8)):
            assert disk.store(key, {"x": i})
        assert len(disk) == 8
        assert disk.stats()["evictions"] == 0

    def test_store_evicts_oldest_beyond_budget(self, tmp_path):
        size = self._entry_bytes(tmp_path)
        disk = DiskAnalysisCache(tmp_path, max_bytes=2 * size)
        k0, k1, k2 = self._keys(3)
        disk.store(k0, {"x": 0})
        _age(_entry_path(disk, k0), 30)
        disk.store(k1, {"x": 1})
        _age(_entry_path(disk, k1), 20)
        disk.store(k2, {"x": 2})
        assert len(disk) == 2
        assert disk.load(k0) is None  # oldest evicted
        assert disk.load(k1) == {"x": 1}
        assert disk.load(k2) == {"x": 2}
        assert disk.stats()["evictions"] == 1

    def test_load_refreshes_recency(self, tmp_path):
        size = self._entry_bytes(tmp_path)
        disk = DiskAnalysisCache(tmp_path, max_bytes=2 * size)
        k0, k1, k2 = self._keys(3)
        disk.store(k0, {"x": 0})
        _age(_entry_path(disk, k0), 30)
        disk.store(k1, {"x": 1})
        _age(_entry_path(disk, k1), 20)
        # Touch k0: it becomes the most recently *used* entry, so the
        # next over-budget store evicts k1 instead.
        assert disk.load(k0) == {"x": 0}
        disk.store(k2, {"x": 2})
        assert disk.load(k0) == {"x": 0}
        assert disk.load(k1) is None
        assert disk.load(k2) == {"x": 2}

    def test_newest_entry_never_evicted(self, tmp_path):
        """A single artifact larger than the whole budget degrades to a
        one-entry cache rather than evicting what was just written."""
        disk = DiskAnalysisCache(tmp_path, max_bytes=1)
        (key,) = self._keys(1)
        assert disk.store(key, {"x": list(range(1000))})
        assert disk.load(key) == {"x": list(range(1000))}
        assert disk.stats()["evictions"] == 0

    def test_just_stored_entry_spared_by_identity_not_mtime(self, tmp_path):
        """Coarse filesystem timestamps can make the just-written file
        sort *older* than an existing entry; eviction must spare it by
        path identity, not by mtime position."""
        size = self._entry_bytes(tmp_path)
        disk = DiskAnalysisCache(tmp_path, max_bytes=size)
        k0, k1 = self._keys(2)
        disk.store(k0, {"x": 0})
        # Simulate a coarse/ahead clock: the existing entry claims a
        # mtime far in the future, i.e. "newer" than anything stored now.
        path0 = _entry_path(disk, k0)
        stat = path0.stat()
        os.utime(path0, (stat.st_atime, stat.st_mtime + 3600))
        disk.store(k1, {"x": 1})
        assert disk.load(k1) == {"x": 1}  # just stored: must survive
        assert disk.load(k0) is None  # the stale-but-"newer" entry went
        assert disk.stats()["evictions"] == 1

    def test_eviction_keeps_round_trips_working(self, tmp_path):
        """End-to-end: a tiny budget under real simulation traffic keeps
        the newest analysis loadable and the directory bounded."""
        size = self._entry_bytes(tmp_path / "probe2")
        configure_disk_cache(tmp_path, max_bytes=size)
        program = fir_program(4, 8)
        registers = fir_registers((1.0,) * 4)
        _run(program, registers, capacity=0)
        for entry in tmp_path.glob("*.analysis.pkl"):
            _age(entry, 30)
        _run(program, registers, capacity=2)
        disk = active_disk_cache()
        assert len(disk) <= 2  # entry sizes differ; budget ~1 probe entry
        clear_analysis_cache()
        second = _run(program, registers, capacity=2)
        assert second.completed

    def test_under_budget_stores_skip_directory_scan(self, tmp_path):
        """Once the running size estimate is synced, stores that stay
        under the budget must not walk the directory at all."""
        size = self._entry_bytes(tmp_path)
        disk = DiskAnalysisCache(tmp_path, max_bytes=100 * size)
        keys = self._keys(5)
        disk.store(keys[0], {"x": 0})  # first bounded store: resync scan
        scans = []
        original = disk._evict_to_budget
        disk._evict_to_budget = lambda **kw: scans.append(1) or original(**kw)
        for i, key in enumerate(keys[1:], start=1):
            assert disk.store(key, {"x": i})
        assert scans == []  # estimate stayed under budget: no walks
        assert len(disk) == 5

    def test_max_bytes_env_var(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_VAR, str(tmp_path))
        monkeypatch.setenv(MAX_BYTES_ENV_VAR, "4096")
        reset_disk_cache_state()
        disk = active_disk_cache()
        assert disk is not None
        assert disk.max_bytes == 4096

    def test_invalid_env_budget_means_unbounded(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_VAR, str(tmp_path))
        monkeypatch.setenv(MAX_BYTES_ENV_VAR, "a-lot")
        reset_disk_cache_state()
        disk = active_disk_cache()
        assert disk is not None
        assert disk.max_bytes is None

    def test_configure_budget_overrides_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(MAX_BYTES_ENV_VAR, "4096")
        disk = configure_disk_cache(tmp_path, max_bytes=123456)
        assert disk.max_bytes == 123456
        # Reconfiguring the same directory with a different budget must
        # rebuild rather than silently keep the old bound.
        disk2 = configure_disk_cache(tmp_path, max_bytes=654321)
        assert disk2.max_bytes == 654321

    def test_configure_without_budget_reads_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(MAX_BYTES_ENV_VAR, "2048")
        disk = configure_disk_cache(tmp_path)
        assert disk.max_bytes == 2048


class TestActivation:
    def test_disabled_by_default(self):
        assert active_disk_cache() is None

    def test_env_var_activates(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_VAR, str(tmp_path / "cache"))
        reset_disk_cache_state()
        disk = active_disk_cache()
        assert disk is not None
        assert disk.directory == tmp_path / "cache"
        assert disk.directory.is_dir()

    def test_configure_overrides_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_VAR, str(tmp_path / "env"))
        configured = configure_disk_cache(tmp_path / "explicit")
        assert active_disk_cache() is configured
        assert configured.directory == tmp_path / "explicit"

    def test_configure_none_disables(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_VAR, str(tmp_path))
        configure_disk_cache(None)
        assert active_disk_cache() is None


class TestBatchIntegration:
    def test_simulate_many_warms_the_disk_tier(self, tmp_path):
        from repro.sim.batch import SimJob, simulate_many

        program = fir_program(4, 8)
        registers = fir_registers((1.0,) * 4)
        jobs = [
            SimJob(
                program,
                config=ArrayConfig(queue_capacity=2),
                registers=registers,
            )
            for _ in range(3)
        ]
        results = simulate_many(jobs, disk_cache=str(tmp_path))
        assert all(r.completed for r in results)
        disk = active_disk_cache()
        assert disk is not None and len(disk) == 1
        # A restarted batch (fresh in-memory cache) reuses the entry.
        clear_analysis_cache()
        results2 = simulate_many(jobs, disk_cache=str(tmp_path))
        assert [r.time for r in results2] == [r.time for r in results]
        assert disk.stats()["hits"] >= 1

    def test_worker_processes_share_the_tier(self, tmp_path):
        from repro.sim.batch import SimJob, simulate_many

        program = fir_program(4, 8)
        registers = fir_registers((1.0,) * 4)
        jobs = [
            SimJob(
                program,
                config=ArrayConfig(queue_capacity=2),
                registers=registers,
            )
            for _ in range(4)
        ]
        results = simulate_many(jobs, workers=2, disk_cache=str(tmp_path))
        assert all(r.completed for r in results)
        disk = active_disk_cache()
        assert disk is not None and len(disk) == 1
