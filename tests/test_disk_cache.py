"""Disk-tier analysis cache: round trips, corruption, versioning, batch."""

import pickle

import pytest

from repro import ArrayConfig, simulate
from repro.algorithms.fir import fir_program, fir_registers
from repro.perf import (
    GLOBAL_ANALYSIS_CACHE,
    DiskAnalysisCache,
    active_disk_cache,
    clear_analysis_cache,
    configure_disk_cache,
)
from repro.perf.disk_cache import ENV_VAR, FORMAT_VERSION, reset_disk_cache_state


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_analysis_cache()
    reset_disk_cache_state()
    yield
    clear_analysis_cache()
    configure_disk_cache(None)
    reset_disk_cache_state()


def _run(program, registers, capacity=2):
    return simulate(
        program,
        config=ArrayConfig(queue_capacity=capacity),
        registers=registers,
    )


class TestRoundTrip:
    def test_restart_skips_reanalysis(self, tmp_path):
        disk = configure_disk_cache(tmp_path)
        program = fir_program(4, 8)
        registers = fir_registers((1.0,) * 4)
        first = _run(program, registers)
        assert disk.stats()["stores"] == 1
        # Simulate a fresh process: the in-memory cache is gone, the
        # disk tier is not.
        clear_analysis_cache()
        from repro.arch.routing import default_router
        from repro.arch.topology import ExplicitLinear

        topology = ExplicitLinear(tuple(program.cells))
        entry = GLOBAL_ANALYSIS_CACHE.lookup(
            program,
            topology,
            default_router(topology),
            ArrayConfig(queue_capacity=2),
        )
        # The labeling arrived preloaded from disk before any simulation
        # ran in this "process" — nothing recomputed it.
        assert disk.stats()["hits"] == 1
        assert entry._labeling is not None
        second = _run(program, registers)
        assert first.received == second.received
        assert first.assignment_trace == second.assignment_trace
        assert first.time == second.time

    def test_unchanged_entry_not_rewritten(self, tmp_path):
        disk = configure_disk_cache(tmp_path)
        program = fir_program(4, 8)
        registers = fir_registers((1.0,) * 4)
        _run(program, registers)
        stores = disk.stats()["stores"]
        _run(program, registers)  # in-memory hit, nothing new computed
        assert disk.stats()["stores"] == stores

    def test_results_identical_to_fresh_analysis(self, tmp_path):
        configure_disk_cache(tmp_path)
        program = fir_program(4, 8)
        registers = fir_registers((1.0,) * 4)
        _run(program, registers)
        clear_analysis_cache()
        from_disk = _run(program, registers)
        configure_disk_cache(None)
        clear_analysis_cache()
        fresh = _run(program, registers)
        assert from_disk.received == fresh.received
        assert from_disk.registers == fresh.registers
        assert from_disk.assignment_trace == fresh.assignment_trace
        assert from_disk.time == fresh.time
        assert from_disk.events == fresh.events

    def test_distinct_configs_distinct_entries(self, tmp_path):
        disk = configure_disk_cache(tmp_path)
        program = fir_program(4, 8)
        registers = fir_registers((1.0,) * 4)
        _run(program, registers, capacity=0)
        _run(program, registers, capacity=2)
        assert len(disk) == 2


class TestRobustness:
    def test_corrupt_entry_is_a_miss(self, tmp_path):
        disk = configure_disk_cache(tmp_path)
        program = fir_program(4, 8)
        registers = fir_registers((1.0,) * 4)
        expected = _run(program, registers)
        for entry in tmp_path.glob("*.analysis.pkl"):
            entry.write_bytes(b"\x80garbage")
        clear_analysis_cache()
        result = _run(program, registers)
        assert result.received == expected.received
        assert disk.stats()["misses"] >= 1

    def test_version_mismatch_is_a_miss(self, tmp_path):
        disk = configure_disk_cache(tmp_path)
        program = fir_program(4, 8)
        registers = fir_registers((1.0,) * 4)
        _run(program, registers)
        (path,) = tmp_path.glob("*.analysis.pkl")
        payload = pickle.loads(path.read_bytes())
        payload["version"] = FORMAT_VERSION + 1
        path.write_bytes(pickle.dumps(payload))
        clear_analysis_cache()
        hits_before = disk.stats()["hits"]
        _run(program, registers)
        assert disk.stats()["hits"] == hits_before  # stale format ignored

    def test_truncated_entry_rejected_and_recomputed(self, tmp_path):
        disk = configure_disk_cache(tmp_path)
        program = fir_program(4, 8)
        registers = fir_registers((1.0,) * 4)
        expected = _run(program, registers)
        (path,) = tmp_path.glob("*.analysis.pkl")
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        clear_analysis_cache()
        hits_before = disk.stats()["hits"]
        result = _run(program, registers)  # recomputed, never deserialized
        assert result.received == expected.received
        assert result.time == expected.time
        assert disk.stats()["hits"] == hits_before
        # The fresh analysis was re-published over the truncated entry,
        # and a later restart reads it back cleanly.
        clear_analysis_cache()
        _run(program, registers)
        assert disk.stats()["hits"] == hits_before + 1

    def test_bit_flipped_artifacts_fail_checksum(self, tmp_path):
        disk = configure_disk_cache(tmp_path)
        program = fir_program(4, 8)
        registers = fir_registers((1.0,) * 4)
        expected = _run(program, registers)
        (path,) = tmp_path.glob("*.analysis.pkl")
        payload = pickle.loads(path.read_bytes())
        blob = bytearray(payload["artifacts"])
        # Flip one bit deep inside the artifact payload: the outer
        # envelope still unpickles, so only the checksum stands between
        # the flip and deserializing garbage.
        blob[len(blob) // 2] ^= 0x40
        payload["artifacts"] = bytes(blob)
        path.write_bytes(pickle.dumps(payload))
        clear_analysis_cache()
        rejected_before = disk.stats()["rejected"]
        result = _run(program, registers)
        assert disk.stats()["rejected"] == rejected_before + 1
        assert result.received == expected.received
        assert result.assignment_trace == expected.assignment_trace

    def test_checksum_optional_but_verified_when_present(self, tmp_path):
        from repro.perf import AnalysisKey

        key = AnalysisKey("p", "t", "r", 0, False)
        unchecked = DiskAnalysisCache(tmp_path, checksum=False)
        assert unchecked.store(key, {"x": 1})
        (path,) = tmp_path.glob("*.analysis.pkl")
        assert pickle.loads(path.read_bytes())["checksum"] is None
        # Entries written without a digest still load (by either reader).
        assert unchecked.load(key) == {"x": 1}
        checked = DiskAnalysisCache(tmp_path)  # checksum=True default
        assert checked.load(key) == {"x": 1}
        # And a checksummed entry read by a checksum=False instance is
        # still verified: the flag gates writing, never verification.
        assert checked.store(key, {"x": 2})
        payload = pickle.loads(path.read_bytes())
        assert payload["checksum"] is not None
        payload["artifacts"] = payload["artifacts"][:-1] + b"\x00"
        path.write_bytes(pickle.dumps(payload))
        assert unchecked.load(key) is None
        assert unchecked.stats()["rejected"] == 1

    def test_no_tmp_files_left_behind(self, tmp_path):
        configure_disk_cache(tmp_path)
        _run(fir_program(4, 8), fir_registers((1.0,) * 4))
        assert not list(tmp_path.glob("*.tmp"))

    def test_unpicklable_artifacts_degrade_gracefully(self, tmp_path):
        disk = DiskAnalysisCache(tmp_path)
        from repro.perf import AnalysisKey

        key = AnalysisKey("p", "t", "r", 0, False)
        assert disk.store(key, {"labeling": lambda: None}) is False
        assert disk.load(key) is None

    def test_clear_removes_entries(self, tmp_path):
        disk = configure_disk_cache(tmp_path)
        _run(fir_program(4, 8), fir_registers((1.0,) * 4))
        assert len(disk) == 1
        assert disk.clear() == 1
        assert len(disk) == 0


class TestActivation:
    def test_disabled_by_default(self):
        assert active_disk_cache() is None

    def test_env_var_activates(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_VAR, str(tmp_path / "cache"))
        reset_disk_cache_state()
        disk = active_disk_cache()
        assert disk is not None
        assert disk.directory == tmp_path / "cache"
        assert disk.directory.is_dir()

    def test_configure_overrides_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_VAR, str(tmp_path / "env"))
        configured = configure_disk_cache(tmp_path / "explicit")
        assert active_disk_cache() is configured
        assert configured.directory == tmp_path / "explicit"

    def test_configure_none_disables(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_VAR, str(tmp_path))
        configure_disk_cache(None)
        assert active_disk_cache() is None


class TestBatchIntegration:
    def test_simulate_many_warms_the_disk_tier(self, tmp_path):
        from repro.sim.batch import SimJob, simulate_many

        program = fir_program(4, 8)
        registers = fir_registers((1.0,) * 4)
        jobs = [
            SimJob(
                program,
                config=ArrayConfig(queue_capacity=2),
                registers=registers,
            )
            for _ in range(3)
        ]
        results = simulate_many(jobs, disk_cache=str(tmp_path))
        assert all(r.completed for r in results)
        disk = active_disk_cache()
        assert disk is not None and len(disk) == 1
        # A restarted batch (fresh in-memory cache) reuses the entry.
        clear_analysis_cache()
        results2 = simulate_many(jobs, disk_cache=str(tmp_path))
        assert [r.time for r in results2] == [r.time for r in results]
        assert disk.stats()["hits"] >= 1

    def test_worker_processes_share_the_tier(self, tmp_path):
        from repro.sim.batch import SimJob, simulate_many

        program = fir_program(4, 8)
        registers = fir_registers((1.0,) * 4)
        jobs = [
            SimJob(
                program,
                config=ArrayConfig(queue_capacity=2),
                registers=registers,
            )
            for _ in range(4)
        ]
        results = simulate_many(jobs, workers=2, disk_cache=str(tmp_path))
        assert all(r.completed for r in results)
        disk = active_disk_cache()
        assert disk is not None and len(disk) == 1
