"""Random workload generator tests."""

import pytest

from repro import is_deadlock_free, uniform_lookahead
from repro.core.crossing import cross_off
from repro.errors import ProgramError
from repro.workloads import (
    WorkloadSpec,
    hoist_writes,
    inject_read_cycle,
    random_program,
    spec_family,
)


class TestRandomProgram:
    def test_deterministic_given_seed(self):
        spec = WorkloadSpec(seed=7)
        a, b = random_program(spec), random_program(spec)
        assert a.messages == b.messages
        for cell in a.cells:
            assert [str(o) for o in a.transfers(cell)] == [
                str(o) for o in b.transfers(cell)
            ]

    def test_different_seeds_differ(self):
        a = random_program(WorkloadSpec(seed=0))
        b = random_program(WorkloadSpec(seed=1))
        assert a.messages != b.messages or any(
            [str(o) for o in a.transfers(c)] != [str(o) for o in b.transfers(c)]
            for c in a.cells
        )

    def test_always_deadlock_free(self):
        for seed in range(50):
            prog = random_program(WorkloadSpec(seed=seed))
            assert is_deadlock_free(prog), seed

    def test_respects_message_count(self):
        prog = random_program(WorkloadSpec(messages=12, seed=3))
        assert len(prog.messages) == 12

    def test_respects_max_length(self):
        prog = random_program(WorkloadSpec(max_length=2, seed=4))
        assert all(m.length <= 2 for m in prog.messages.values())

    def test_respects_max_span(self):
        prog = random_program(WorkloadSpec(max_span=1, seed=5, cells=8))
        index = {c: i for i, c in enumerate(prog.cells)}
        for msg in prog.messages.values():
            assert abs(index[msg.sender] - index[msg.receiver]) == 1

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(cells=1)
        with pytest.raises(ValueError):
            WorkloadSpec(messages=0)
        with pytest.raises(ValueError):
            WorkloadSpec(burst=0)


class TestHoistWrites:
    def test_lookahead_rescues_hoisted(self):
        for seed in range(10):
            base = random_program(WorkloadSpec(seed=seed))
            hoisted = hoist_writes(base, swaps=4, seed=seed)
            assert is_deadlock_free(hoisted, uniform_lookahead(hoisted, 8)), seed

    def test_some_hoists_break_strict_classification(self):
        broke = 0
        for seed in range(20):
            base = random_program(WorkloadSpec(seed=seed, burst=1))
            hoisted = hoist_writes(base, swaps=6, seed=seed + 100)
            if not is_deadlock_free(hoisted):
                broke += 1
        assert broke > 0  # the mutation does real damage sometimes

    def test_original_untouched(self):
        base = random_program(WorkloadSpec(seed=2))
        before = [str(o) for o in base.transfers(base.cells[0])]
        hoist_writes(base, swaps=5, seed=0)
        assert [str(o) for o in base.transfers(base.cells[0])] == before


class TestInjectReadCycle:
    def test_always_deadlocked(self):
        for seed in range(10):
            base = random_program(WorkloadSpec(seed=seed))
            bad = inject_read_cycle(base, seed=seed)
            assert not is_deadlock_free(bad)
            assert not is_deadlock_free(bad, uniform_lookahead(bad, 10_000))

    def test_uncrossed_ops_include_injection(self):
        bad = inject_read_cycle(random_program(WorkloadSpec(seed=1)), seed=0)
        result = cross_off(bad)
        remaining = {
            op.message for ops in result.uncrossed.values() for op in ops
        }
        assert {"DLK_F", "DLK_B"} <= remaining

    def test_double_injection_rejected(self):
        bad = inject_read_cycle(random_program(WorkloadSpec(seed=1)))
        with pytest.raises(ProgramError):
            inject_read_cycle(bad)


class TestSpecFamily:
    def test_seeds_increment(self):
        family = spec_family(5, base_seed=10)
        assert [s.seed for s in family] == [10, 11, 12, 13, 14]
        assert all(s.cells == family[0].cells for s in family)
