"""Unit tests for the hardware queue: handoff, buffering, extension."""

import pytest

from repro.arch.links import Link
from repro.arch.queue import HardwareQueue
from repro.errors import SimulationError


def make_queue(capacity: int, extension: bool = False) -> HardwareQueue:
    q = HardwareQueue(
        Link("C1", "C2"), 0, capacity, extension_allowed=extension,
        extension_penalty=3,
    )
    q.assign("A", expected_words=10)
    return q


class TestCapacityZero:
    def test_push_parks_without_reader(self):
        q = make_queue(0)
        fired = []
        assert q.try_push("w0", blocked=lambda: fired.append(1)) is False
        assert not fired
        assert q.has_word  # parked word is pop-visible

    def test_pop_takes_parked_word_and_resumes_writer(self):
        q = make_queue(0)
        fired = []
        q.try_push("w0", blocked=lambda: fired.append(1))
        word, penalty = q.pop()
        assert word == "w0"
        assert penalty == 0
        assert fired == [1]
        assert not q.has_word

    def test_parked_word_notifies_word_waiters(self):
        q = make_queue(0)
        pokes = []
        q.when_word(lambda: pokes.append(1))
        q.try_push("w0", blocked=lambda: None)
        assert pokes == [1]

    def test_double_park_is_a_bug_guard(self):
        q = make_queue(0)
        q.try_push("w0", blocked=lambda: None)
        with pytest.raises(SimulationError):
            q.try_push("w1", blocked=lambda: None)


class TestBuffered:
    def test_push_within_capacity(self):
        q = make_queue(2)
        assert q.try_push("w0", blocked=lambda: None) is True
        assert q.try_push("w1", blocked=lambda: None) is True
        assert q.occupancy == 2

    def test_push_beyond_capacity_parks(self):
        q = make_queue(1)
        q.try_push("w0", blocked=lambda: None)
        fired = []
        assert q.try_push("w1", blocked=lambda: fired.append(1)) is False
        word, _ = q.pop()
        assert word == "w0"
        assert fired == [1]  # parked word moved into the freed slot
        assert q.peek() == "w1"

    def test_fifo_order(self):
        q = make_queue(3)
        for i in range(3):
            q.try_push(f"w{i}", blocked=lambda: None)
        assert [q.pop()[0] for _ in range(3)] == ["w0", "w1", "w2"]

    def test_space_waiters_notified_on_pop(self):
        q = make_queue(1)
        q.try_push("w0", blocked=lambda: None)
        pokes = []
        q.when_space(lambda: pokes.append(1))
        q.pop()
        assert pokes == [1]

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            make_queue(1).pop()


class TestAssignmentLifecycle:
    def test_assign_twice_rejected(self):
        q = make_queue(1)
        with pytest.raises(SimulationError):
            q.assign("B", 1)

    def test_push_unassigned_rejected(self):
        q = HardwareQueue(Link("C1", "C2"), 0, 1)
        with pytest.raises(SimulationError):
            q.try_push("w", blocked=lambda: None)

    def test_complete_after_all_words_passed(self):
        q = HardwareQueue(Link("C1", "C2"), 0, 1)
        q.assign("A", expected_words=2)
        for i in range(2):
            q.try_push(f"w{i}", blocked=lambda: None)
            q.pop()
        assert q.complete
        q.release()
        assert q.assigned is None

    def test_early_release_rejected(self):
        q = make_queue(1)
        with pytest.raises(SimulationError):
            q.release()

    def test_reassignment_after_release(self):
        q = HardwareQueue(Link("C1", "C2"), 0, 1)
        q.assign("A", 1)
        q.try_push("w", blocked=lambda: None)
        q.pop()
        q.release()
        q.assign("B", 1)
        assert q.assigned == "B"
        assert q.stats.assignments == 2


class TestExtension:
    def test_spill_beyond_capacity(self):
        q = make_queue(1, extension=True)
        q.try_push("w0", blocked=lambda: None)
        assert q.try_push("w1", blocked=lambda: None) is True  # spilled
        assert q.extended
        assert q.stats.extension_invocations == 1
        assert q.stats.spilled_words == 1

    def test_spilled_pop_pays_penalty(self):
        q = make_queue(1, extension=True)
        q.try_push("w0", blocked=lambda: None)
        q.try_push("w1", blocked=lambda: None)
        word, penalty = q.pop()
        assert word == "w0"
        assert penalty == 3

    def test_extension_clears_when_drained(self):
        q = make_queue(1, extension=True)
        q.try_push("w0", blocked=lambda: None)
        q.try_push("w1", blocked=lambda: None)
        q.pop()
        assert not q.extended  # back within physical capacity
        word, penalty = q.pop()
        assert penalty == 0

    def test_peak_tracking(self):
        q = make_queue(1, extension=True)
        for i in range(4):
            q.try_push(f"w{i}", blocked=lambda: None)
        assert q.stats.extension_peak_words == 3


class TestStats:
    def test_counters(self):
        q = make_queue(2)
        q.try_push("a", blocked=lambda: None)
        q.try_push("b", blocked=lambda: None)
        q.pop()
        assert q.stats.words_pushed == 2
        assert q.stats.words_popped == 1
        assert q.stats.peak_occupancy == 2

    def test_capacity_validation(self):
        with pytest.raises(SimulationError):
            HardwareQueue(Link("C1", "C2"), 0, -1)
