"""Witness certificates and the store: mining, bands, subsumption,
persistence.

The soundness surface lives here: a certificate may only be minted for
runs the capacity arguments cover (deadlocked, explained by a cycle,
monotone static policy, uniform capacity), its band must cover exactly
the capacities that replay the witnessed trace, and a corrupt store must
read as empty — never prune anything — while staying observable.
"""

import dataclasses
import json

import pytest

from repro.arch.config import ArrayConfig
from repro.core.message import Message
from repro.core.ops import R, W
from repro.core.program import ArrayProgram
from repro.sweep import SimJob, summarize_result, witness_row
from repro.witness import (
    DeadlockWitness,
    WitnessStore,
    mine_witness,
    witness_scope,
)


def cross_read():
    """Two cells each reading before writing: the canonical Fig. 7-style
    circular wait — deadlocks at every capacity under every policy."""
    msgs = [Message("M0", "A", "B", 1), Message("M1", "B", "A", 1)]
    progs = {
        "A": [R("M1", into="x"), W("M0", constant=1.0)],
        "B": [R("M0", into="y"), W("M1", constant=2.0)],
    }
    return ArrayProgram(["A", "B"], msgs, progs)


def one_way():
    """A completes-everywhere program: a single forwarded message."""
    msgs = [Message("M", "A", "B", 1)]
    progs = {"A": [W("M", constant=1.0)], "B": [R("M", into="x")]}
    return ArrayProgram(["A", "B"], msgs, progs)


def deadlock_job(policy="static", capacity=1, queues=1, **config_kwargs):
    config = ArrayConfig(
        queues_per_link=queues, queue_capacity=capacity, **config_kwargs
    )
    return SimJob(cross_read(), config=config, policy=policy)


def mined(policy="static", capacity=1, **config_kwargs):
    job = deadlock_job(policy=policy, capacity=capacity, **config_kwargs)
    return mine_witness(job, job.run())


def make_witness(scope="s", capacity=1, peak=0, **overrides):
    fields = dict(
        scope=scope,
        program_fp="fp",
        policy="static",
        queues=1,
        capacity=capacity,
        peak_occupancy=peak,
        cycle=("cell:A", "cell:B"),
        cells=("A", "B"),
        messages=("M0", "M1"),
        time=0,
        events=2,
        words=0,
    )
    fields.update(overrides)
    return DeadlockWitness(**fields)


class TestMining:
    def test_certificate_fields(self):
        job = deadlock_job(capacity=1)
        result = job.run()
        assert result.deadlocked
        witness = mine_witness(job, result)
        assert witness is not None
        assert witness.scope == witness_scope(job)
        assert witness.policy == "static"
        assert witness.queues == 1
        assert witness.capacity == 1
        assert witness.peak_occupancy == 0  # both cells read first
        assert witness.cycle == ("cell:A", "cell:B")
        assert witness.cells == ("A", "B")
        assert witness.messages == ("M0", "M1")
        assert witness.time == result.time
        assert witness.events == result.events
        assert witness.words == result.words_transferred

    def test_fcfs_never_mined(self):
        job = deadlock_job(policy="fcfs")
        result = job.run()
        assert result.deadlocked  # the deadlock is real, just not minable
        assert mine_witness(job, result) is None

    def test_completed_run_not_mined(self):
        job = SimJob(
            one_way(),
            config=ArrayConfig(queues_per_link=1, queue_capacity=1),
            policy="static",
        )
        result = job.run()
        assert result.completed
        assert mine_witness(job, result) is None

    def test_queue_extension_not_mined(self):
        job = deadlock_job(allow_extension=True)
        result = job.run()
        assert result.deadlocked
        assert mine_witness(job, result) is None

    def test_link_override_not_mined(self):
        # The guard reads only the config: a per-link override breaks
        # the uniform-capacity band argument whatever the run did.
        job = deadlock_job()
        result = job.run()
        overridden = dataclasses.replace(
            job, config=job.config.with_(link_queue_overrides={("A", "B"): 2})
        )
        assert mine_witness(overridden, result) is None

    def test_no_cycle_not_mined(self):
        job = deadlock_job()
        result = job.run()
        chained = dataclasses.replace(result, wait_cycle=None)
        assert mine_witness(job, chained) is None

    def test_scope_masks_only_capacity(self):
        base = deadlock_job(capacity=0)
        assert witness_scope(base) == witness_scope(deadlock_job(capacity=7))
        assert witness_scope(base) != witness_scope(
            deadlock_job(capacity=0, policy="fcfs")
        )
        assert witness_scope(base) != witness_scope(
            deadlock_job(capacity=0, queues=2)
        )

    def test_cycle_members_decode_forwarder_names(self):
        # Multi-hop cycles include forwarder agents: the message rides
        # in the agent name (fwd:<message>:<hop>), not the blocked line.
        from repro.witness.certificate import _cycle_members

        cells, messages = _cycle_members(
            ("cell:A", "fwd:M5:2", "cell:B"),
            [
                "cell:A W(M0): awaiting queue on ('A', 'B')",
                "cell:C R(M9): not on the cycle",
            ],
        )
        assert cells == ("A", "B")
        assert messages == ("M0", "M5")

    def test_cycle_canonicalization_is_rotation_invariant(self):
        job = deadlock_job()
        result = job.run()
        rotated = dataclasses.replace(
            result, wait_cycle=["cell:B", "cell:A", "cell:B"]
        )
        assert mine_witness(job, rotated).cycle == ("cell:A", "cell:B")


class TestCapacityBand:
    def test_closed_witness_covers_only_itself(self):
        # peak == capacity: a push might have blocked, the trace is
        # capacity-constrained, nothing generalizes.
        witness = make_witness(capacity=2, peak=2)
        assert not witness.open_ray
        assert witness.covers_capacity(2)
        assert not witness.covers_capacity(1)
        assert not witness.covers_capacity(3)

    def test_open_ray_covers_everything_above_peak(self):
        witness = make_witness(capacity=4, peak=2)
        assert witness.open_ray
        for cap in (2, 3, 4, 5, 1000):
            assert witness.covers_capacity(cap)
        assert not witness.covers_capacity(1)

    def test_subsumption(self):
        wide = make_witness(capacity=4, peak=0)
        narrow = make_witness(capacity=3, peak=2)
        closed = make_witness(capacity=2, peak=2)
        assert wide.subsumes(narrow)
        assert not narrow.subsumes(wide)  # weaker bound, higher peak
        assert wide.subsumes(closed)
        assert not closed.subsumes(wide)  # a point cannot cover a ray
        assert not wide.subsumes(make_witness(scope="other", capacity=2))

    def test_open_witness_below_does_not_subsume_higher_capacity(self):
        # Covers the jobs, but its dominance bound (planner seeding) is
        # weaker — the higher-capacity witness must survive an add.
        low = make_witness(capacity=1, peak=0)
        high = make_witness(capacity=2, peak=0)
        assert not low.subsumes(high)
        assert high.subsumes(low)

    def test_witness_id_stable_and_content_sensitive(self):
        assert make_witness().witness_id == make_witness().witness_id
        assert (
            make_witness(capacity=3).witness_id
            != make_witness(capacity=4).witness_id
        )

    def test_dict_roundtrip(self):
        witness = mined(capacity=2)
        payload = witness.as_dict()
        assert payload["id"] == witness.witness_id
        assert DeadlockWitness.from_dict(payload) == witness
        json.dumps(payload)  # JSON-ready, no tuples or exotic types


class TestStore:
    def test_add_keeps_the_strongest_certificate(self):
        store = WitnessStore()
        w0, w1, w2 = mined(capacity=0), mined(capacity=1), mined(capacity=2)
        assert store.add(w0)
        # cap=1 (open ray from peak 0) covers cap=0 and dominates it.
        assert store.add(w1)
        assert store.pruned == 1 and len(store) == 1
        # cap=2 strengthens the dominance bound further; cap=1 goes.
        assert store.add(w2)
        assert len(store) == 1
        assert next(store.witnesses()) == w2
        # Re-adding anything weaker is a no-op.
        assert not store.add(w1)
        assert store.add_subsumed == 1

    def test_find_respects_band_and_policy(self):
        store = WitnessStore()
        store.add(mined(capacity=1))
        covered = deadlock_job(capacity=5)
        assert store.find(covered) is not None
        assert store.hits == 1
        # FCFS is exempt before any certificate is consulted.
        assert store.find(deadlock_job(policy="fcfs", capacity=5)) is None
        # So are configs outside the band argument.
        assert store.find(deadlock_job(capacity=5, allow_extension=True)) is None
        # Different scope (queue count) never matches.
        assert store.find(deadlock_job(capacity=5, queues=2)) is None

    def test_find_closed_witness_is_a_point(self):
        job = deadlock_job(capacity=5)
        store = WitnessStore()
        store.add(make_witness(scope=witness_scope(job), capacity=5, peak=5))
        assert store.find(job) is not None
        assert store.find(deadlock_job(capacity=4)) is None
        assert store.find(deadlock_job(capacity=6)) is None

    def test_monotone_bound(self):
        store = WitnessStore()
        witness = mined(capacity=3)
        store.add(witness)
        assert store.monotone_bound(witness.scope) == 3
        assert store.monotone_bound("ws1|unknown") is None

    def test_persistence_roundtrip(self, tmp_path):
        path = tmp_path / "w.json"
        store = WitnessStore(path)
        witness = mined(capacity=2)
        store.add(witness)
        store.save()
        reloaded = WitnessStore(path)
        assert list(reloaded.witnesses()) == [witness]
        assert reloaded.loads_rejected == 0
        # No temp files left behind by the atomic publish.
        assert [p.name for p in tmp_path.iterdir()] == ["w.json"]

    def test_missing_file_is_a_clean_cold_start(self, tmp_path):
        store = WitnessStore(tmp_path / "absent.json")
        assert len(store) == 0
        assert store.loads_rejected == 0

    @pytest.mark.parametrize(
        "blob",
        [
            b"\x00\x01garbage",
            b"not json at all",
            b"[1, 2, 3]",
            json.dumps({"version": 99, "witnesses": []}).encode(),
            json.dumps({"version": 1, "witnesses": [{"scope": "s"}]}).encode(),
        ],
    )
    def test_corrupt_file_reads_empty_but_counted(self, tmp_path, blob):
        path = tmp_path / "w.json"
        path.write_bytes(blob)
        store = WitnessStore(path)
        assert len(store) == 0
        assert store.loads_rejected == 1
        assert store.stats()["loads_rejected"] == 1

    def test_pathless_save_is_noop(self):
        WitnessStore().save()  # must not raise

    def test_prune_compacts_hand_merged_stores(self, tmp_path):
        # add() keeps a store minimal; a file assembled by hand (or by
        # merging two stores) may hold subsumed entries.
        weak, strong = mined(capacity=0), mined(capacity=2)
        path = tmp_path / "merged.json"
        path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "witnesses": [weak.as_dict(), strong.as_dict()],
                }
            )
        )
        store = WitnessStore(path)
        assert len(store) == 2
        assert store.prune() == 1
        assert list(store.witnesses()) == [strong]
        store.save()
        assert len(WitnessStore(path)) == 1

    def test_get_by_unique_prefix(self):
        store = WitnessStore()
        witness = mined(capacity=1)
        store.add(witness)
        assert store.get(witness.witness_id) == witness
        assert store.get(witness.witness_id[:4]) == witness
        assert store.get("zzzz") is None
        # An ambiguous prefix refuses to guess.
        other = make_witness(scope="other")
        store.add(other)
        assert store.get("") is None

    def test_stats_counters(self):
        store = WitnessStore()
        store.add(mined(capacity=1))
        store.add(mined(capacity=0))  # subsumed
        store.find(deadlock_job(capacity=9))
        stats = store.stats()
        assert stats["witnesses"] == 1
        assert stats["scopes"] == 1
        assert stats["added"] == 1
        assert stats["add_subsumed"] == 1
        assert stats["hits"] == 1


class TestWitnessRow:
    def test_row_matches_simulated_row_exactly(self):
        # The acceptance property at its smallest: inside the band the
        # synthesized row equals the simulated one, field for field.
        witness = mined(capacity=1)
        for capacity in (1, 3, 7):
            job = deadlock_job(capacity=capacity)
            assert witness.covers_capacity(capacity)
            simulated = summarize_result(5, job, job.run())
            assert witness_row(5, job, witness) == simulated

    def test_row_carries_this_jobs_config(self):
        witness = mined(capacity=1)
        row = witness_row(0, deadlock_job(capacity=6, queues=1), witness)
        assert row.capacity == 6
        assert row.deadlocked and not row.completed and not row.timed_out
        assert row.error_kind is None and row.error is None
