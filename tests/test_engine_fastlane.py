"""Engine fast-lane tests: ordering, limits, and heap-vs-FIFO determinism."""

import pytest

from repro import ArrayConfig, Simulator
from repro.algorithms.fir import fir_program, fir_registers
from repro.sim.engine import Engine, StopReason
from repro.workloads import WorkloadSpec, random_program


class TestFastLaneOrdering:
    def test_after_zero_fires_in_scheduling_order(self):
        engine = Engine()
        log = []
        for tag in "abcde":
            engine.after(0, lambda t=tag: log.append(t))
        engine.run()
        assert log == list("abcde")

    def test_at_now_and_after_zero_interleave_in_order(self):
        engine = Engine()
        log = []
        engine.at(0, lambda: log.append("a"))
        engine.after(0, lambda: log.append("b"))
        engine.at(0, lambda: log.append("c"))
        engine.run()
        assert log == ["a", "b", "c"]

    def test_heap_entries_due_now_precede_fifo_entries(self):
        # Events scheduled for time 5 from time 0 (heap lane) must fire
        # before events scheduled *at* time 5 via after(0) (fast lane),
        # because the heap entries were scheduled first.
        engine = Engine()
        log = []

        def at_five():
            log.append("heap1")
            engine.after(0, lambda: log.append("fifo"))

        engine.at(5, at_five)
        engine.at(5, lambda: log.append("heap2"))
        engine.run()
        assert log == ["heap1", "heap2", "fifo"]

    def test_fifo_spawned_during_fifo_processing_runs_same_time(self):
        engine = Engine()
        seen = []

        def spawn(depth):
            seen.append((engine.now, depth))
            if depth:
                engine.after(0, lambda: spawn(depth - 1))

        engine.at(3, lambda: spawn(3))
        engine.run()
        assert seen == [(3, 3), (3, 2), (3, 1), (3, 0)]
        assert engine.now == 3

    def test_mixed_times_keep_global_time_order(self):
        engine = Engine()
        log = []
        engine.at(2, lambda: log.append(("t2", engine.now)))
        engine.after(0, lambda: log.append(("t0", engine.now)))
        engine.at(1, lambda: engine.after(0, lambda: log.append(("t1", engine.now))))
        engine.run()
        assert log == [("t0", 0), ("t1", 1), ("t2", 2)]


class TestSemanticsUnchanged:
    def test_past_scheduling_still_raises(self):
        engine = Engine()
        engine.at(5, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.at(3, lambda: None)

    def test_negative_delay_still_raises(self):
        with pytest.raises(ValueError):
            Engine().after(-1, lambda: None)

    def test_quiescent_with_fast_lane_only(self):
        engine = Engine()
        engine.after(0, lambda: None)
        assert engine.run() is StopReason.QUIESCENT

    def test_max_events_counts_fast_lane_events(self):
        engine = Engine()

        def reschedule():
            engine.after(0, reschedule)

        engine.after(0, reschedule)
        assert engine.run(max_events=7) is StopReason.MAX_EVENTS
        assert engine.events_processed == 7

    def test_max_time_leaves_future_event_pending(self):
        engine = Engine()

        def reschedule():
            engine.after(10, reschedule)

        engine.at(0, reschedule)
        assert engine.run(max_time=25) is StopReason.MAX_TIME
        assert engine.now <= 25
        assert engine.pending == 1  # the over-limit event was not consumed

    def test_rerun_with_tighter_max_time_returns_immediately(self):
        engine = Engine()
        engine.at(30, lambda: None)
        assert engine.run(max_time=10) is StopReason.MAX_TIME
        assert engine.run(max_time=10) is StopReason.MAX_TIME
        assert engine.run() is StopReason.QUIESCENT

    def test_pending_counts_both_lanes(self):
        engine = Engine()
        engine.after(0, lambda: None)
        engine.at(4, lambda: None)
        assert engine.pending == 2


def _trace_of(program, *, fast, policy="ordered", config=None, registers=None):
    sim = Simulator(program, config=config, policy=policy, registers=registers)
    sim.engine = Engine(fast_lane=fast)
    result = sim.run()
    return result


class TestHeapOnlyEquivalence:
    """fast_lane=False forces every event through the heap (the seed
    engine's behaviour); both paths must be event-for-event identical."""

    def test_fir_identical_results(self):
        program = fir_program(8, 16)
        registers = fir_registers(tuple(1.0 for _ in range(8)))
        fast = _trace_of(program, fast=True, registers=registers)
        slow = _trace_of(program, fast=False, registers=registers)
        assert fast.assignment_trace == slow.assignment_trace
        assert fast.received == slow.received
        assert fast.registers == slow.registers
        assert fast.time == slow.time
        assert fast.events == slow.events

    def test_fcfs_deadlock_identical_diagnosis(self, fig7):
        fast = _trace_of(fig7, fast=True, policy="fcfs")
        slow = _trace_of(fig7, fast=False, policy="fcfs")
        assert fast.deadlocked and slow.deadlocked
        assert fast.assignment_trace == slow.assignment_trace
        assert fast.blocked == slow.blocked
        assert fast.wait_cycle == slow.wait_cycle

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_programs_identical_traces(self, seed):
        spec = WorkloadSpec(cells=6, messages=12, max_length=3, seed=seed)
        program = random_program(spec)
        config = ArrayConfig(queues_per_link=8)
        fast = _trace_of(program, fast=True, config=config)
        slow = _trace_of(program, fast=False, config=config)
        assert fast.assignment_trace == slow.assignment_trace
        assert fast.received == slow.received
        assert fast.time == slow.time
        assert fast.events == slow.events

    def test_buffered_queues_identical_traces(self, fig7):
        config = ArrayConfig(queue_capacity=2)
        fast = _trace_of(fig7, fast=True, config=config)
        slow = _trace_of(fig7, fast=False, config=config)
        assert fast.assignment_trace == slow.assignment_trace
        assert fast.completed and slow.completed
        assert fast.time == slow.time
