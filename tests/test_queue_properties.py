"""Stateful property tests for the hardware queue (hypothesis)."""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.arch.links import Link
from repro.arch.queue import HardwareQueue


class QueueMachine(RuleBasedStateMachine):
    """FIFO order, conservation, and park/resume discipline under any
    interleaving of pushes and pops."""

    def __init__(self) -> None:
        super().__init__()
        self.capacity = 2
        self.queue = HardwareQueue(Link("C1", "C2"), 0, self.capacity)
        self.queue.assign("A", expected_words=10_000)
        self.model: list[int] = []  # words accepted (buffered) so far
        self.parked: int | None = None
        self.next_word = 0
        self.resumed: list[int] = []

    @rule()
    def push(self) -> None:
        if self.parked is not None:
            return  # single sequential writer: cannot push while parked
        word = self.next_word
        self.next_word += 1
        accepted = self.queue.try_push(
            word, blocked=lambda w=word: self.resumed.append(w)
        )
        if accepted:
            self.model.append(word)
        else:
            self.parked = word

    @precondition(lambda self: self.model or self.parked is not None)
    @rule()
    def pop(self) -> None:
        expected = self.model[0] if self.model else self.parked
        word, penalty = self.queue.pop()
        assert word == expected
        assert penalty == 0  # no extension in this machine
        if self.model:
            self.model.pop(0)
            if self.parked is not None:
                # The parked word slides into the freed slot and resumes.
                assert self.resumed and self.resumed[-1] == self.parked
                self.model.append(self.parked)
                self.parked = None
        else:
            # Direct handoff of the parked word.
            assert self.resumed and self.resumed[-1] == self.parked
            self.parked = None

    @invariant()
    def occupancy_within_capacity(self) -> None:
        assert self.queue.occupancy <= self.capacity
        assert self.queue.occupancy == len(self.model)

    @invariant()
    def has_word_agrees_with_model(self) -> None:
        assert self.queue.has_word == (bool(self.model) or self.parked is not None)


TestQueueMachine = QueueMachine.TestCase
TestQueueMachine.settings = settings(max_examples=50, stateful_step_count=60)
