"""Reference oracle: the original op-by-op crossing-off implementation.

This is the seed implementation of :mod:`repro.core.crossing` preserved
verbatim (modulo class names). The production engine is incremental —
per-(cell, message, kind) position indexes, a dirty-message worklist and
prefix write-counts for the R2 checks — and must produce bit-identical
``steps``/``crossings``/``max_skipped`` output to this oracle in both
stepping modes. The property tests in ``test_crossing_equivalence.py``
run the two side by side over random programs.

Do not optimize this module: its value is being the obviously-correct
transliteration of Sections 3 and 8.1.
"""

from __future__ import annotations

from typing import Callable

from repro.core.crossing import (
    CrossingResult,
    LookaheadConfig,
    PairCrossing,
    PairObserver,
)
from repro.core.ops import Op, OpKind
from repro.core.program import ArrayProgram


class _Located:
    """A candidate operation found by scanning (possibly with lookahead)."""

    __slots__ = ("pos", "skipped")

    def __init__(self, pos: int, skipped: dict[str, int]) -> None:
        self.pos = pos
        self.skipped = skipped


class ReferenceCrossingState:
    """Mutable state of the procedure, implemented by direct scanning."""

    def __init__(
        self,
        program: ArrayProgram,
        lookahead: LookaheadConfig | None = None,
    ) -> None:
        self.program = program
        self.lookahead = lookahead
        self.seqs: dict[str, list[Op]] = {
            cell: program.transfers(cell) for cell in program.cells
        }
        self.crossed: dict[str, list[bool]] = {
            cell: [False] * len(seq) for cell, seq in self.seqs.items()
        }
        self.fronts: dict[str, int] = {cell: 0 for cell in program.cells}
        self.remaining_per_message: dict[str, int] = {
            name: 2 * msg.length for name, msg in program.messages.items()
        }
        self.last_crossed_message: dict[str, str | None] = {
            cell: None for cell in program.cells
        }
        self.max_skipped: dict[str, int] = {name: 0 for name in program.messages}
        self.total_remaining = sum(self.remaining_per_message.values())

    @property
    def done(self) -> bool:
        return self.total_remaining == 0

    def uncrossed_ops(self, cell: str) -> list[Op]:
        seq, crossed = self.seqs[cell], self.crossed[cell]
        return [op for op, done in zip(seq, crossed) if not done]

    def future_messages(self, cell: str, exclude: str | None = None) -> set[str]:
        out = {op.message for op in self.uncrossed_ops(cell)}
        out.discard(exclude or "")
        return out

    def _advance_front(self, cell: str) -> None:
        seq, crossed = self.seqs[cell], self.crossed[cell]
        front = self.fronts[cell]
        while front < len(seq) and crossed[front]:
            front += 1
        self.fronts[cell] = front

    def _locate(self, cell: str, kind: OpKind, message: str) -> _Located | None:
        seq, crossed = self.seqs[cell], self.crossed[cell]
        skipped: dict[str, int] = {}
        for pos in range(self.fronts[cell], len(seq)):
            if crossed[pos]:
                continue
            op = seq[pos]
            if op.kind is kind and op.message == message:
                return _Located(pos, skipped)
            if self.lookahead is None:
                return None
            if op.kind is OpKind.READ:
                return None  # R1: reads cannot be skipped
            count = skipped.get(op.message, 0) + 1
            if count > self.lookahead.capacity(op.message):
                return None  # R2: buffering along the route exhausted
            skipped[op.message] = count
        return None

    def executable_pair(self, message: str) -> PairCrossing | None:
        if self.remaining_per_message[message] == 0:
            return None
        msg = self.program.messages[message]
        write = self._locate(msg.sender, OpKind.WRITE, message)
        if write is None:
            return None
        read = self._locate(msg.receiver, OpKind.READ, message)
        if read is None:
            return None
        return PairCrossing(
            step=0,
            message=message,
            sender=msg.sender,
            sender_pos=write.pos,
            receiver=msg.receiver,
            receiver_pos=read.pos,
            skipped_sender=tuple(sorted(write.skipped.items())),
            skipped_receiver=tuple(sorted(read.skipped.items())),
        )

    def executable_pairs(self) -> list[PairCrossing]:
        pairs = []
        for name in sorted(self.program.messages):
            pair = self.executable_pair(name)
            if pair is not None:
                pairs.append(pair)
        return pairs

    def cross(self, pair: PairCrossing, step: int) -> PairCrossing:
        self.crossed[pair.sender][pair.sender_pos] = True
        self.crossed[pair.receiver][pair.receiver_pos] = True
        self._advance_front(pair.sender)
        self._advance_front(pair.receiver)
        self.remaining_per_message[pair.message] -= 2
        self.total_remaining -= 2
        self.last_crossed_message[pair.sender] = pair.message
        self.last_crossed_message[pair.receiver] = pair.message
        for msg_name, count in pair.skipped_sender + pair.skipped_receiver:
            self.max_skipped[msg_name] = max(self.max_skipped[msg_name], count)
        return PairCrossing(
            step=step,
            message=pair.message,
            sender=pair.sender,
            sender_pos=pair.sender_pos,
            receiver=pair.receiver,
            receiver_pos=pair.receiver_pos,
            skipped_sender=pair.skipped_sender,
            skipped_receiver=pair.skipped_receiver,
        )


def reference_cross_off(
    program: ArrayProgram,
    lookahead: LookaheadConfig | None = None,
    mode: str = "parallel",
    observer: PairObserver | None = None,
    pick: Callable[[list[PairCrossing]], PairCrossing] | None = None,
) -> CrossingResult:
    """The seed ``cross_off``: full re-scan of every message every step."""
    if mode not in ("parallel", "sequential"):
        raise ValueError(f"unknown mode {mode!r}")
    state = ReferenceCrossingState(program, lookahead)
    steps: list[list[PairCrossing]] = []
    crossings: list[PairCrossing] = []
    while not state.done:
        pairs = state.executable_pairs()
        if not pairs:
            break
        step_no = len(steps) + 1
        if mode == "sequential":
            chosen = pick(pairs) if pick is not None else pairs[0]
            pairs = [chosen]
        this_step: list[PairCrossing] = []
        for pair in pairs:
            if observer is not None:
                observer(state, pair)
            stamped = state.cross(pair, step_no)
            this_step.append(stamped)
            crossings.append(stamped)
        steps.append(this_step)
    return CrossingResult(
        deadlock_free=state.done,
        steps=steps,
        crossings=crossings,
        uncrossed={
            cell: state.uncrossed_ops(cell)
            for cell in program.cells
            if state.uncrossed_ops(cell)
        },
        max_skipped=dict(state.max_skipped),
        lookahead_used=lookahead is not None,
    )
