"""Simulation on non-linear topologies: rings, meshes, tori."""

import pytest

from repro import ArrayConfig, Simulator
from repro.arch.topology import Mesh2D, RingArray, Torus2D
from repro.core.message import Message
from repro.core.ops import R, W
from repro.core.program import ArrayProgram


def ring_relay(n: int) -> ArrayProgram:
    """Each cell sends one word to the cell two hops clockwise."""
    cells = tuple(f"C{i + 1}" for i in range(n))
    messages = []
    programs: dict[str, list] = {c: [] for c in cells}
    for i in range(n):
        src = cells[i]
        dst = cells[(i + 2) % n]
        name = f"M{i}"
        messages.append(Message(name, src, dst, 1))
    for i in range(n):
        programs[cells[i]].append(W(f"M{i}", constant=float(i)))
        programs[cells[i]].append(R(f"M{(i - 2) % n}", into="got"))
    return ArrayProgram(cells, messages, programs, name=f"ring-relay-{n}")


class TestRingRuntime:
    @pytest.mark.parametrize("n", [4, 5, 8])
    def test_relay_completes(self, n):
        topo = RingArray(n)
        prog = ring_relay(n)
        sim = Simulator(prog, topology=topo, config=ArrayConfig(queues_per_link=2))
        result = sim.run()
        assert result.completed
        for i in range(n):
            assert result.registers[f"C{i + 1}"]["got"] == float((i - 2) % n)

    def test_wraparound_route_used(self):
        # C1 -> C5 on a 5-ring goes backward over the wrap link.
        topo = RingArray(5)
        prog = ArrayProgram(
            tuple(topo.cells),
            [Message("M", "C1", "C5", 1)],
            {"C1": [W("M", constant=9.0)], "C5": [R("M", into="v")]},
        )
        sim = Simulator(prog, topology=topo)
        result = sim.run()
        assert result.completed
        assert result.registers["C5"]["v"] == 9.0
        assert result.time <= 4  # one hop, not four


class TestMeshRuntime:
    def test_corner_to_corner(self):
        mesh = Mesh2D(3, 3)
        prog = ArrayProgram(
            tuple(mesh.cells),
            [Message("M", "P0_0", "P2_2", 2)],
            {
                "P0_0": [W("M", constant=1.0), W("M", constant=2.0)],
                "P2_2": [R("M", into="a"), R("M", into="b")],
            },
        )
        result = Simulator(prog, topology=mesh).run()
        assert result.completed
        assert result.registers["P2_2"]["a"] == 1.0

    def test_crossing_flows_no_interference(self):
        # Two messages crossing the mesh in perpendicular directions use
        # disjoint XY routes, so single queues suffice.
        mesh = Mesh2D(3, 3)
        prog = ArrayProgram(
            tuple(mesh.cells),
            [
                Message("H", "P1_0", "P1_2", 1),
                Message("V", "P0_1", "P2_1", 1),
            ],
            {
                "P1_0": [W("H")],
                "P1_2": [R("H")],
                "P0_1": [W("V")],
                "P2_1": [R("V")],
            },
        )
        result = Simulator(prog, topology=mesh).run()
        assert result.completed


class TestTorusRuntime:
    def test_wrap_route_shorter(self):
        torus = Torus2D(4, 4)
        prog = ArrayProgram(
            tuple(torus.cells),
            [Message("M", "P0_0", "P0_3", 1)],
            {"P0_0": [W("M", constant=5.0)], "P0_3": [R("M", into="v")]},
        )
        result = Simulator(prog, topology=torus).run()
        assert result.completed
        assert result.time <= 4  # wraparound: 1 hop

    def test_dimension_order_multi_hop(self):
        torus = Torus2D(4, 4)
        prog = ArrayProgram(
            tuple(torus.cells),
            [Message("M", "P0_0", "P2_2", 3)],
            {
                "P0_0": [W("M", constant=float(i)) for i in range(3)],
                "P2_2": [R("M", into=f"v{i}") for i in range(3)],
            },
        )
        result = Simulator(prog, topology=torus).run()
        assert result.completed
        assert result.received["M"] == [0.0, 1.0, 2.0]
