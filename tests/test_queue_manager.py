"""Queue-assignment policy unit tests (Section 7)."""

from fractions import Fraction

import pytest

from repro.arch.links import Link
from repro.arch.queue import HardwareQueue
from repro.core.labeling import Labeling
from repro.core.message import Message
from repro.errors import ConfigError
from repro.sim.queue_manager import (
    FCFSPolicy,
    OrderedPolicy,
    QueueManager,
    Request,
    StaticPolicy,
    make_policy,
)


class FakeFlow:
    """Just enough of MessageFlow for the manager: one-hop route."""

    def __init__(self, name: str, length: int, link: Link) -> None:
        self.message = Message(name, link.src, link.dst, length)
        self.route = (link,)
        self.grants: list[HardwareQueue] = []

    def granted(self, hop: int, queue: HardwareQueue) -> None:
        self.grants.append(queue)


LINK = Link("C1", "C2")


def manager_with(policy, n_queues: int, competing, labeling=None, capacity=4):
    mgr = QueueManager(policy, clock=lambda: 0)
    queues = [HardwareQueue(LINK, i, capacity) for i in range(n_queues)]
    mgr.add_link(LINK, queues, competing, labeling)
    return mgr


def drain(mgr: QueueManager, flow: FakeFlow) -> None:
    """Pass all of the flow's words through its granted queue and release."""
    queue = flow.grants[-1]
    for i in range(flow.message.length):
        queue.try_push(f"w{i}", blocked=lambda: None)
        queue.pop()
    mgr.release(queue)


class TestFCFS:
    def test_grant_in_arrival_order(self):
        mgr = manager_with(FCFSPolicy(), 1, ["A", "B"])
        a = FakeFlow("A", 1, LINK)
        b = FakeFlow("B", 1, LINK)
        mgr.request(Request(b, 0))  # B arrives first
        mgr.request(Request(a, 0))
        assert b.grants and not a.grants
        drain(mgr, b)
        assert a.grants  # A granted on release

    def test_multiple_free_queues(self):
        mgr = manager_with(FCFSPolicy(), 2, ["A", "B"])
        a, b = FakeFlow("A", 1, LINK), FakeFlow("B", 1, LINK)
        mgr.request(Request(a, 0))
        mgr.request(Request(b, 0))
        assert a.grants and b.grants
        assert a.grants[0] is not b.grants[0]


class TestOrdered:
    def labeling(self, **labels: int) -> Labeling:
        return Labeling({k: Fraction(v) for k, v in labels.items()})

    def test_smaller_label_served_first(self):
        mgr = manager_with(
            OrderedPolicy(), 1, ["B", "C"], self.labeling(B=3, C=2)
        )
        b, c = FakeFlow("B", 1, LINK), FakeFlow("C", 1, LINK)
        mgr.request(Request(b, 0))  # B asks first but has the larger label
        assert not b.grants  # held: C not yet assigned
        mgr.request(Request(c, 0))
        assert c.grants and not b.grants
        drain(mgr, c)
        assert b.grants

    def test_same_label_group_gets_separate_queues(self):
        mgr = manager_with(
            OrderedPolicy(), 2, ["A", "B"], self.labeling(A=1, B=1)
        )
        a, b = FakeFlow("A", 1, LINK), FakeFlow("B", 1, LINK)
        mgr.request(Request(a, 0))
        mgr.request(Request(b, 0))
        assert a.grants[0] is not b.grants[0]

    def test_reservation_blocks_later_group(self):
        # Two queues, head group {A, B} same label, C label 2. Only A has
        # requested: one queue granted to A, the other reserved for B — C
        # must not steal it.
        mgr = manager_with(
            OrderedPolicy(), 2, ["A", "B", "C"], self.labeling(A=1, B=1, C=2)
        )
        a, b, c = (FakeFlow(n, 1, LINK) for n in "ABC")
        mgr.request(Request(a, 0))
        mgr.request(Request(c, 0))
        assert a.grants and not c.grants  # free queue reserved for B
        mgr.request(Request(b, 0))
        assert b.grants
        assert not c.grants  # both queues busy with the head group
        drain(mgr, a)
        assert c.grants  # head group complete and a queue freed

    def test_strict_rejects_oversized_group(self):
        with pytest.raises(ConfigError):
            manager_with(
                OrderedPolicy(strict=True),
                1,
                ["A", "B"],
                self.labeling(A=1, B=1),
            )

    def test_lenient_allows_oversized_group(self):
        mgr = manager_with(
            OrderedPolicy(strict=False), 1, ["A", "B"], self.labeling(A=1, B=1)
        )
        a = FakeFlow("A", 1, LINK)
        mgr.request(Request(a, 0))
        assert a.grants  # it will simply never finish the group

    def test_requires_labeling(self):
        with pytest.raises(ConfigError):
            manager_with(OrderedPolicy(), 1, ["A"], None)


class TestStatic:
    def test_prereserved_grant(self):
        mgr = manager_with(StaticPolicy(), 2, ["A", "B"])
        a, b = FakeFlow("A", 1, LINK), FakeFlow("B", 1, LINK)
        mgr.request(Request(b, 0))
        mgr.request(Request(a, 0))
        assert a.grants[0].index == 0  # deterministic by sorted name
        assert b.grants[0].index == 1

    def test_insufficient_queues_rejected(self):
        with pytest.raises(ConfigError):
            manager_with(StaticPolicy(), 1, ["A", "B"])


class TestManager:
    def test_trace_records_grant_and_release(self):
        mgr = manager_with(FCFSPolicy(), 1, ["A"])
        a = FakeFlow("A", 1, LINK)
        mgr.request(Request(a, 0))
        drain(mgr, a)
        kinds = [event.kind for event in mgr.trace]
        assert kinds == ["grant", "release"]
        assert mgr.trace[0].message == "A"

    def test_make_policy_names(self):
        assert make_policy("fcfs").name == "fcfs"
        assert make_policy("ordered").name == "ordered"
        assert make_policy("static").name == "static"
        with pytest.raises(ConfigError):
            make_policy("bogus")
