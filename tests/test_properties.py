"""Property-based tests (hypothesis) over the core invariants.

These are the paper's claims stated as universally quantified properties
and hammered over the random-program family:

* generated programs are always deadlock-free (crossing-off completes);
* the constraint labeling is always consistent;
* Theorem 1: deadlock-free + consistent labeling + compatible assignment
  + assumption (ii) => the simulated run completes;
* crossing-off classification agrees with unbuffered run-time behaviour
  (confluence: a deadlocked program deadlocks under every policy);
* lookahead monotonicity: more buffering never un-classifies a program;
* parser/printer round-trips preserve transfer sequences.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    ArrayConfig,
    constraint_labeling,
    cross_off,
    is_consistent,
    is_deadlock_free,
    simulate,
    uniform_lookahead,
    verify_theorem1,
)
from repro.arch.routing import default_router
from repro.arch.topology import ExplicitLinear
from repro.core.crossing import LookaheadConfig
from repro.core.requirements import dynamic_queue_demand, static_queue_demand
from repro.lang import parse_program, print_program
from repro.workloads import (
    WorkloadSpec,
    hoist_writes,
    inject_read_cycle,
    random_program,
)

specs = st.builds(
    WorkloadSpec,
    cells=st.integers(min_value=2, max_value=7),
    messages=st.integers(min_value=1, max_value=10),
    max_length=st.integers(min_value=1, max_value=4),
    max_span=st.integers(min_value=1, max_value=3),
    burst=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=10_000),
)

RELAXED = settings(
    max_examples=40, suppress_health_check=[HealthCheck.too_slow], deadline=None
)


@given(specs)
@RELAXED
def test_generated_programs_are_deadlock_free(spec):
    assert is_deadlock_free(random_program(spec))


@given(specs)
@RELAXED
def test_constraint_labeling_always_consistent(spec):
    prog = random_program(spec)
    assert is_consistent(prog, constraint_labeling(prog))


@given(specs)
@RELAXED
def test_theorem1_holds_with_adequate_queues(spec):
    prog = random_program(spec)
    labeling = constraint_labeling(prog)
    router = default_router(ExplicitLinear(tuple(prog.cells)))
    demand = dynamic_queue_demand(prog, router, labeling)
    queues = max(demand.values(), default=1)
    report = verify_theorem1(prog, config=ArrayConfig(queues_per_link=queues))
    assert report.verified, report.premise_failures


@given(specs)
@RELAXED
def test_static_assignment_completes_with_full_provisioning(spec):
    prog = random_program(spec)
    router = default_router(ExplicitLinear(tuple(prog.cells)))
    demand = static_queue_demand(prog, router)
    queues = max(demand.values(), default=1)
    result = simulate(
        prog, config=ArrayConfig(queues_per_link=queues), policy="static"
    )
    assert result.completed


@given(specs)
@RELAXED
def test_injected_cycle_deadlocks_everywhere(spec):
    bad = inject_read_cycle(random_program(spec), seed=spec.seed)
    assert not is_deadlock_free(bad)
    assert not is_deadlock_free(bad, uniform_lookahead(bad, math.inf))
    # Run-time agrees (generous static provisioning removes queue effects).
    router = default_router(ExplicitLinear(tuple(bad.cells)))
    demand = static_queue_demand(bad, router)
    queues = max(demand.values(), default=1)
    result = simulate(
        bad, config=ArrayConfig(queues_per_link=queues), policy="static"
    )
    assert result.deadlocked


@given(specs, st.integers(min_value=1, max_value=6))
@RELAXED
def test_lookahead_monotone_in_capacity(spec, cap):
    prog = hoist_writes(random_program(spec), swaps=3, seed=spec.seed + 1)
    small = is_deadlock_free(prog, uniform_lookahead(prog, cap))
    large = is_deadlock_free(prog, uniform_lookahead(prog, cap + 1))
    assert not small or large  # classification can only grow with buffering


@given(specs)
@RELAXED
def test_lookahead_never_misclassifies_strictly_free(spec):
    prog = random_program(spec)
    assert is_deadlock_free(prog, uniform_lookahead(prog, 4))


@given(specs)
@RELAXED
def test_crossing_mode_agreement(spec):
    prog = random_program(spec)
    par = cross_off(prog, mode="parallel").deadlock_free
    seq = cross_off(prog, mode="sequential").deadlock_free
    assert par == seq


@given(specs)
@RELAXED
def test_crossing_counts_words(spec):
    prog = random_program(spec)
    result = cross_off(prog)
    assert result.pairs_crossed == prog.total_words


@given(specs)
@RELAXED
def test_print_parse_round_trip(spec):
    prog = random_program(spec)
    parsed = parse_program(print_program(prog))
    assert parsed.messages == prog.messages
    for cell in prog.cells:
        assert [str(o) for o in parsed.transfers(cell)] == [
            str(o) for o in prog.transfers(cell)
        ]


@given(specs)
@RELAXED
def test_simulation_is_deterministic(spec):
    prog = random_program(spec)
    router = default_router(ExplicitLinear(tuple(prog.cells)))
    demand = static_queue_demand(prog, router)
    config = ArrayConfig(queues_per_link=max(demand.values(), default=1))
    a = simulate(prog, config=config, policy="static")
    b = simulate(prog, config=config, policy="static")
    assert a.time == b.time
    assert a.events == b.events


@given(specs, st.integers(min_value=0, max_value=3))
@RELAXED
def test_buffering_never_hurts_static_completion(spec, capacity):
    """With a static per-message assignment, buffering only relaxes
    blocking: a fully provisioned run completes at every capacity."""
    prog = random_program(spec)
    router = default_router(ExplicitLinear(tuple(prog.cells)))
    demand = static_queue_demand(prog, router)
    queues = max(demand.values(), default=1)
    for cap in (capacity, capacity + 2):
        result = simulate(
            prog,
            config=ArrayConfig(queues_per_link=queues, queue_capacity=cap),
            policy="static",
        )
        assert result.completed


def test_fcfs_buffering_can_hurt_completion():
    """Buffering is *not* monotone under naive FCFS assignment.

    Extra queue capacity reorders word arrivals, and FCFS grants queues
    in arrival order — so a program that completes on unbuffered
    rendezvous hardware can deadlock once queues buffer two words. This
    hypothesis-discovered counterexample (pinned here) is the paper's
    Section 7 argument for compile-time assignment in miniature: the
    ordered policy completes at both capacities on the same program.
    A long-standing sibling property ("FCFS completion is monotone in
    capacity") was false and is replaced by this regression test plus
    the static-policy monotonicity property above.
    """
    prog = random_program(
        WorkloadSpec(
            cells=6, messages=6, max_length=1, max_span=2, burst=1, seed=2
        )
    )
    base = simulate(
        prog,
        config=ArrayConfig(queues_per_link=2, queue_capacity=0),
        policy="fcfs",
    )
    more = simulate(
        prog,
        config=ArrayConfig(queues_per_link=2, queue_capacity=2),
        policy="fcfs",
    )
    assert base.completed
    assert more.deadlocked  # buffering introduced the deadlock
    for cap in (0, 2):
        ordered = simulate(
            prog,
            config=ArrayConfig(queues_per_link=1, queue_capacity=cap),
            policy="ordered",
        )
        assert ordered.completed
