"""Unit tests for topologies and routers."""

import pytest

from repro.arch.links import Link, route_cells
from repro.arch.routing import (
    LinearRouter,
    RingRouter,
    XYRouter,
    default_router,
)
from repro.arch.topology import (
    ExplicitLinear,
    LinearArray,
    Mesh2D,
    RingArray,
    Torus2D,
    topology_for_cells,
)
from repro.errors import TopologyError


class TestLink:
    def test_interval_and_reverse(self):
        link = Link("C1", "C2")
        assert link.interval == frozenset({"C1", "C2"})
        assert link.reverse == Link("C2", "C1")
        assert str(link) == "C1->C2"

    def test_route_cells(self):
        route = (Link("A", "B"), Link("B", "C"))
        assert route_cells(route) == ["A", "B", "C"]

    def test_route_cells_discontiguous(self):
        with pytest.raises(ValueError):
            route_cells((Link("A", "B"), Link("C", "D")))

    def test_route_cells_empty(self):
        assert route_cells(()) == []


class TestLinearArray:
    def test_names_with_host(self):
        topo = LinearArray(3, with_host=True)
        assert topo.cells == ("HOST", "C1", "C2", "C3")

    def test_names_without_host(self):
        assert LinearArray(2).cells == ("C1", "C2")

    def test_neighbors(self):
        topo = LinearArray(3)
        assert topo.neighbors("C1") == ("C2",)
        assert topo.neighbors("C2") == ("C1", "C3")

    def test_unknown_cell(self):
        with pytest.raises(TopologyError):
            LinearArray(2).neighbors("CX")

    def test_minimum_size(self):
        with pytest.raises(TopologyError):
            LinearArray(0)

    def test_intervals(self):
        assert len(LinearArray(4).intervals()) == 3

    def test_links_both_directions(self):
        links = LinearArray(2).links()
        assert Link("C1", "C2") in links
        assert Link("C2", "C1") in links


class TestRing:
    def test_wraparound_neighbors(self):
        topo = RingArray(4)
        assert set(topo.neighbors("C1")) == {"C4", "C2"}

    def test_minimum_size(self):
        with pytest.raises(TopologyError):
            RingArray(2)


class TestMesh:
    def test_coords(self):
        mesh = Mesh2D(2, 3)
        assert mesh.cell_at(1, 2) == "P1_2"
        assert mesh.coord_of("P0_1") == (0, 1)

    def test_corner_neighbors(self):
        mesh = Mesh2D(2, 2)
        assert set(mesh.neighbors("P0_0")) == {"P1_0", "P0_1"}

    def test_interior_neighbors(self):
        mesh = Mesh2D(3, 3)
        assert len(mesh.neighbors("P1_1")) == 4

    def test_out_of_range(self):
        with pytest.raises(TopologyError):
            Mesh2D(2, 2).cell_at(5, 0)

    def test_torus_wraparound(self):
        torus = Torus2D(3, 3)
        assert "P2_0" in torus.neighbors("P0_0")
        assert "P0_2" in torus.neighbors("P0_0")

    def test_torus_minimum(self):
        with pytest.raises(TopologyError):
            Torus2D(2, 3)


class TestExplicitLinear:
    def test_order_preserved(self):
        topo = topology_for_cells(["HOST", "A", "B"])
        assert topo.cells == ("HOST", "A", "B")
        assert topo.neighbors("A") == ("HOST", "B")

    def test_duplicates_rejected(self):
        with pytest.raises(TopologyError):
            ExplicitLinear(("A", "A"))


class TestLinearRouter:
    def test_forward_route(self):
        topo = LinearArray(4)
        router = LinearRouter(topo)
        route = router.route("C1", "C3")
        assert route == (Link("C1", "C2"), Link("C2", "C3"))

    def test_backward_route(self):
        router = LinearRouter(LinearArray(4))
        assert router.route("C3", "C1") == (Link("C3", "C2"), Link("C2", "C1"))

    def test_self_route_empty(self):
        assert LinearRouter(LinearArray(2)).route("C1", "C1") == ()

    def test_requires_linear(self):
        with pytest.raises(TopologyError):
            LinearRouter(Mesh2D(2, 2))


class TestRingRouter:
    def test_shortest_way(self):
        router = RingRouter(RingArray(5))
        assert len(router.route("C1", "C2")) == 1
        assert len(router.route("C1", "C5")) == 1  # wraps backward

    def test_tie_goes_clockwise(self):
        router = RingRouter(RingArray(4))
        route = router.route("C1", "C3")
        assert route[0] == Link("C1", "C2")

    def test_requires_ring(self):
        with pytest.raises(TopologyError):
            RingRouter(LinearArray(3))  # type: ignore[arg-type]


class TestXYRouter:
    def test_column_then_row(self):
        mesh = Mesh2D(3, 3)
        router = XYRouter(mesh)
        route = router.route("P0_0", "P2_2")
        cells = route_cells(route)
        assert cells == ["P0_0", "P0_1", "P0_2", "P1_2", "P2_2"]

    def test_same_row(self):
        router = XYRouter(Mesh2D(2, 3))
        assert len(router.route("P1_0", "P1_2")) == 2

    def test_torus_wraps(self):
        router = XYRouter(Torus2D(4, 4))
        route = router.route("P0_0", "P0_3")
        assert len(route) == 1  # wraparound is shorter

    def test_requires_mesh(self):
        with pytest.raises(TopologyError):
            XYRouter(LinearArray(3))  # type: ignore[arg-type]


class TestDefaultRouter:
    def test_picks_by_type(self):
        assert isinstance(default_router(LinearArray(2)), LinearRouter)
        assert isinstance(default_router(RingArray(3)), RingRouter)
        assert isinstance(default_router(Mesh2D(2, 2)), XYRouter)
        assert isinstance(default_router(Torus2D(3, 3)), XYRouter)
