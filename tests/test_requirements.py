"""Queue-requirement analysis tests (Sections 2.3, 7, 8)."""

import pytest

from repro.arch.config import ArrayConfig
from repro.arch.links import Link
from repro.arch.routing import default_router
from repro.arch.topology import ExplicitLinear
from repro.core.labeling import constraint_labeling, trivial_labeling
from repro.core.requirements import (
    check_assumption_ii,
    check_static_feasible,
    competing_messages,
    dynamic_queue_demand,
    extension_demand,
    message_routes,
    require_assumption_ii,
    static_queue_demand,
)
from repro.errors import ConfigError


def router_for(program):
    return default_router(ExplicitLinear(tuple(program.cells)))


class TestRoutesAndCompeting:
    def test_fig7_routes(self, fig7):
        routes = message_routes(fig7, router_for(fig7))
        assert len(routes["C"]) == 3  # C1 -> C4 crosses three intervals
        assert len(routes["A"]) == 1
        assert len(routes["B"]) == 1

    def test_fig7_competition(self, fig7):
        competing = competing_messages(fig7, router_for(fig7))
        assert competing[Link("C2", "C3")] == ["A", "C"]
        assert competing[Link("C3", "C4")] == ["B", "C"]
        assert competing[Link("C1", "C2")] == ["C"]

    def test_fig9_competition_on_first_interval(self, fig9):
        competing = competing_messages(fig9, router_for(fig9))
        assert competing[Link("C1", "C2")] == ["A", "B"]


class TestStaticDemand:
    def test_fig7_needs_two_on_shared_links(self, fig7):
        demand = static_queue_demand(fig7, router_for(fig7))
        assert demand[Link("C2", "C3")] == 2
        assert demand[Link("C1", "C2")] == 1

    def test_static_feasibility_check(self, fig8):
        router = router_for(fig8)
        shortfalls = check_static_feasible(fig8, router, ArrayConfig())
        assert len(shortfalls) == 1
        assert shortfalls[0].link == Link("C2", "C3")
        assert shortfalls[0].demand == 2
        assert "needs 2" in str(shortfalls[0])

    def test_static_feasible_with_enough_queues(self, fig8):
        router = router_for(fig8)
        config = ArrayConfig(queues_per_link=2)
        assert check_static_feasible(fig8, router, config) == []


class TestDynamicDemand:
    def test_fig7_distinct_labels_need_one_queue(self, fig7):
        router = router_for(fig7)
        labeling = constraint_labeling(fig7)
        demand = dynamic_queue_demand(fig7, router, labeling)
        assert max(demand.values()) == 1  # ordered sharing suffices

    def test_fig8_same_label_group_needs_two(self, fig8):
        router = router_for(fig8)
        labeling = constraint_labeling(fig8)
        demand = dynamic_queue_demand(fig8, router, labeling)
        assert demand[Link("C2", "C3")] == 2

    def test_trivial_labeling_maximizes_demand(self, fig7):
        router = router_for(fig7)
        demand = dynamic_queue_demand(fig7, router, trivial_labeling(fig7))
        assert demand[Link("C3", "C4")] == 2  # B and C now share one label


class TestAssumptionII:
    def test_fig8_violation_reported(self, fig8):
        router = router_for(fig8)
        labeling = constraint_labeling(fig8)
        shortfalls = check_assumption_ii(fig8, router, labeling, ArrayConfig())
        assert len(shortfalls) == 1
        assert shortfalls[0].messages == ("A", "B")

    def test_fig8_satisfied_with_two_queues(self, fig8):
        router = router_for(fig8)
        labeling = constraint_labeling(fig8)
        config = ArrayConfig(queues_per_link=2)
        assert check_assumption_ii(fig8, router, labeling, config) == []

    def test_require_raises(self, fig8):
        router = router_for(fig8)
        labeling = constraint_labeling(fig8)
        with pytest.raises(ConfigError):
            require_assumption_ii(fig8, router, labeling, ArrayConfig())

    def test_per_link_override_fixes_single_link(self, fig8):
        router = router_for(fig8)
        labeling = constraint_labeling(fig8)
        config = ArrayConfig(
            link_queue_overrides={Link("C2", "C3"): 2}
        )
        assert check_assumption_ii(fig8, router, labeling, config) == []


class TestExtensionDemand:
    def test_p1_demand_exceeds_latch(self, p1):
        router = router_for(p1)
        demand = extension_demand(p1, router, ArrayConfig(queue_capacity=0))
        assert demand["A"].skipped_writes == 2
        assert demand["A"].needs_extension
        assert demand["A"].excess_words == 2

    def test_p1_satisfied_by_capacity_two(self, p1):
        router = router_for(p1)
        demand = extension_demand(p1, router, ArrayConfig(queue_capacity=2))
        assert not demand["A"].needs_extension
        assert demand["A"].excess_words == 0

    def test_straightline_program_needs_nothing(self, fig6):
        router = router_for(fig6)
        demand = extension_demand(fig6, router, ArrayConfig(queue_capacity=0))
        assert all(not d.needs_extension for d in demand.values())

    def test_multi_hop_capacity_scales_with_route(self, fig7):
        # C crosses 3 links: physical capacity is 3 * queue_capacity.
        router = router_for(fig7)
        demand = extension_demand(fig7, router, ArrayConfig(queue_capacity=2))
        assert demand["C"].physical_capacity == 6
