"""The shared-memory analysis tier (`repro.perf.shm_cache`).

Covers the arena contract directly — publish/load roundtrip, the
per-process deserialization memo, newest-slot-wins superseding,
full-table/heap drops, torn-blob rejection, the single-writer pid
guard, attach failure modes — and the tier's integration with
``AnalysisCache.lookup``/``AnalysisEntry.persist``: a disk-served
entry is published into the arena on the next persist (how a warm
disk cache populates shared memory), while a shm-served entry never
writes *back* to disk (the worker steady state must be free of
filesystem I/O; regression for the per-revisit rewrite).
"""

import os
from multiprocessing import shared_memory

import pytest

from repro import ArrayConfig, ArrayProgram, Message, R, W
from repro.arch.routing import default_router
from repro.arch.topology import ExplicitLinear
from repro.perf.analysis_cache import (
    GLOBAL_ANALYSIS_CACHE,
    AnalysisKey,
    clear_analysis_cache,
)
from repro.perf.disk_cache import active_disk_cache, configure_disk_cache
from repro.perf.shm_cache import (
    ENV_VAR,
    ShmAnalysisCache,
    active_shm_cache,
    attach_shm_cache,
    ensure_shm_cache,
    shm_cache_stats,
)


def small_key(n: int) -> AnalysisKey:
    return AnalysisKey(
        program=f"prog{n}",
        topology="topo",
        router="router",
        queue_capacity=0,
        allow_extension=False,
    )


def tiny_program(tag: str = "t") -> ArrayProgram:
    return ArrayProgram(
        ["A", "B"],
        [Message("M", "A", "B", 1)],
        {"A": [W("M", constant=1.0)], "B": [R("M", into=tag)]},
    )


def lookup_tiny(program, config):
    topology = ExplicitLinear(tuple(program.cells))
    return GLOBAL_ANALYSIS_CACHE.lookup(
        program, topology, default_router(topology), config
    )


class TestArenaContract:
    def test_publish_load_roundtrip_and_memo(self):
        owner = ShmAnalysisCache.create(max_entries=8, heap_bytes=4096)
        reader = None
        try:
            key = small_key(1)
            artifacts = {"routes": {"M": ("A", "B")}, "has_capacities": False}
            assert owner.publish(key, artifacts)
            reader = ShmAnalysisCache.attach(owner.name)
            loaded = reader.load(key)
            assert loaded == artifacts
            # Second load is a memo hit: same object, no deserialization.
            assert reader.load(key) is loaded
            assert reader.memo_hits == 1
            assert reader.load(small_key(2)) is None
            assert reader.misses == 1
        finally:
            if reader is not None:
                reader.close()
            owner.close()
            owner.unlink()

    def test_supersede_newest_wins_and_identical_republish_noop(self):
        owner = ShmAnalysisCache.create(max_entries=8, heap_bytes=4096)
        reader = None
        try:
            key = small_key(1)
            assert owner.publish(key, {"v": 1})
            assert owner.publish(key, {"v": 1})  # byte-identical: no-op
            assert owner.publishes == 1
            assert owner.publish(key, {"v": 2})  # superseding slot
            assert owner.publishes == 2
            reader = ShmAnalysisCache.attach(owner.name)
            assert reader.load(key) == {"v": 2}
        finally:
            if reader is not None:
                reader.close()
            owner.close()
            owner.unlink()

    def test_full_table_and_full_heap_drop(self):
        owner = ShmAnalysisCache.create(max_entries=1, heap_bytes=4096)
        try:
            assert owner.publish(small_key(1), {"v": 1})
            assert not owner.publish(small_key(2), {"v": 2})
            assert owner.full_drops == 1
        finally:
            owner.close()
            owner.unlink()
        owner = ShmAnalysisCache.create(max_entries=8, heap_bytes=16)
        try:
            assert not owner.publish(small_key(1), {"v": "x" * 64})
            assert owner.full_drops == 1
        finally:
            owner.close()
            owner.unlink()

    def test_torn_blob_rejected_as_miss(self):
        owner = ShmAnalysisCache.create(max_entries=8, heap_bytes=4096)
        reader = None
        try:
            key = small_key(1)
            assert owner.publish(key, {"v": 1})
            owner._shm.buf[owner._heap_off] ^= 0xFF
            reader = ShmAnalysisCache.attach(owner.name)
            assert reader.load(key) is None
            assert reader.rejected == 1
            assert reader.misses == 1
        finally:
            if reader is not None:
                reader.close()
            owner.close()
            owner.unlink()

    def test_unpicklable_artifacts_degrade_to_unpublished(self):
        owner = ShmAnalysisCache.create(max_entries=8, heap_bytes=4096)
        try:
            assert not owner.publish(small_key(1), {"fn": lambda: None})
            assert owner.store_errors == 1
        finally:
            owner.close()
            owner.unlink()

    def test_only_owner_pid_publishes(self):
        owner = ShmAnalysisCache.create(max_entries=8, heap_bytes=4096)
        try:
            owner._owner_pid = os.getpid() + 1  # pose as a forked child
            assert not owner.publish(small_key(1), {"v": 1})
        finally:
            owner._owner_pid = os.getpid()
            owner.close()
            owner.unlink()

    def test_attach_failure_modes(self):
        assert attach_shm_cache("repro-no-such-segment") is None
        foreign = shared_memory.SharedMemory(create=True, size=64)
        try:
            with pytest.raises(ValueError, match="unrecognized header"):
                ShmAnalysisCache.attach(foreign.name)
            assert attach_shm_cache(foreign.name) is None
        finally:
            foreign.close()
            foreign.unlink()


class TestProcessState:
    def test_env_var_disables_tier(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "0")
        assert ensure_shm_cache() is None
        assert shm_cache_stats() is None

    def test_ensure_is_idempotent_per_process(self):
        name = ensure_shm_cache()
        assert name is not None
        assert ensure_shm_cache() == name
        assert active_shm_cache() is not None


class TestLookupIntegration:
    def test_disk_served_entry_publishes_to_shm_on_persist(self, tmp_path):
        program, config = tiny_program(), ArrayConfig()
        configure_disk_cache(tmp_path)
        try:
            entry = lookup_tiny(program, config)
            entry.routes
            entry.competing
            assert entry.persist()  # stores to the disk tier
            clear_analysis_cache()
            assert ensure_shm_cache() is not None
            reloaded = lookup_tiny(program, config)  # served from disk
            assert not reloaded.persist()  # disk already synced...
            assert active_shm_cache().publishes == 1  # ...but shm published
            clear_analysis_cache()
            lookup_tiny(program, config)
            assert active_shm_cache().hits == 1  # now served from the arena
        finally:
            configure_disk_cache(None)
            clear_analysis_cache()

    def test_shm_served_entry_never_writes_back_to_disk(self, tmp_path):
        """Regression: the worker steady state must not rewrite the
        disk tier on every LRU-thrashed revisit of a shm-served entry."""
        program, config = tiny_program(), ArrayConfig()
        configure_disk_cache(tmp_path)
        try:
            assert ensure_shm_cache() is not None
            entry = lookup_tiny(program, config)
            entry.routes
            entry.competing
            assert entry.persist()  # publishes to shm + stores to disk
            disk = active_disk_cache()
            stores_before = disk.stats()["stores"]
            for _ in range(3):  # thrashed revisits
                clear_analysis_cache()
                revisit = lookup_tiny(program, config)
                assert revisit.routes == entry.routes
                assert not revisit.persist()
            assert disk.stats()["stores"] == stores_before
            assert active_shm_cache().hits == 3
        finally:
            configure_disk_cache(None)
            clear_analysis_cache()
