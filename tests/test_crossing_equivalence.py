"""A/B equivalence: interned crossing engine vs the reference oracle.

The production engine in :mod:`repro.core.crossing` is an incremental
worklist algorithm over dense interned ids; ``tests/reference_crossing.py``
preserves the seed's name-keyed, op-by-op scanning implementation. These
properties pin the two to bit-identical output — ``steps``, ``crossings``
(full :class:`PairCrossing` equality, including skipped-write tuples),
``max_skipped``, ``uncrossed`` and the classification — across random
programs, deadlocked mutations, lookahead budgets and both stepping
modes, at three scales:

* the *small* strategy (`specs`) explores shapes densely;
* the *large* strategy (`large_specs`) drives wide cell counts and many
  messages per cell, the regime the interning targets;
* the deterministic *seed corpus* (`SEED_CORPUS`) runs fixed
  hundreds-of-cells programs on every test run, so a scale-dependent
  divergence fails reproducibly (each corpus entry is a plain
  :class:`WorkloadSpec` — replay by constructing it).

``TestPinnedShapes`` pins shapes the random families previously never
produced: cells with empty programs, single-message programs, and
message names whose lexicographic order diverges from declaration and
numeric order (the intern table assigns ids in sorted-name order — these
shapes break if id order ever leaks). The timing-wheel engine gets the
same treatment against the heap-only scheduler, including the
adaptive-horizon path for workloads with op latencies beyond the default
horizon.

Parallel mode gets its own hammer on top of the mode-sampling
properties: the bucketed step engine (readiness bits + nomination scans
+ per-step newly-executable bucket, see ``crossing.py``'s module
docstring) replaces the dirty worklist wholesale in that mode, so
``test_large_parallel*`` pin ``mode="parallel"`` over the wide
`large_specs` family and every lookahead budget,
``test_parallel_step_batches_name_ordered`` asserts the step-batch
ordering invariant directly, and ``TestParallelStepBucketShapes`` pins
the structure's edges — an initially empty executable set, one step
that crosses everything, a message entering the bucket mid-run, and
batches whose name order diverges from declaration order.
"""

from __future__ import annotations

import math
from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from reference_crossing import reference_cross_off

from repro import ArrayConfig, Simulator
from repro.core.crossing import (
    COLUMNAR_AUTO_MIN_OPS,
    CrossingState,
    configure_crossing_backend,
    cross_off,
    resolve_backend,
    uniform_lookahead,
)
from repro.core.crossing_np import numpy_available
from repro.core.message import Message
from repro.core.ops import R, W
from repro.core.program import ArrayProgram
from repro.errors import ConfigError, ProgramError
from repro.sim.engine import WHEEL_HORIZON, Engine
from repro.workloads import (
    WorkloadSpec,
    hoist_writes,
    inject_read_cycle,
    random_program,
)

specs = st.builds(
    WorkloadSpec,
    cells=st.integers(min_value=2, max_value=7),
    messages=st.integers(min_value=1, max_value=10),
    max_length=st.integers(min_value=1, max_value=4),
    max_span=st.integers(min_value=1, max_value=3),
    burst=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=10_000),
)

# Wide arrays with many messages per cell: many-digit message names
# ("M10" < "M2" lexicographically) and long incident lists, the shapes
# that stress the interned indexes rather than the pair logic.
large_specs = st.builds(
    WorkloadSpec,
    cells=st.integers(min_value=2, max_value=40),
    messages=st.integers(min_value=1, max_value=80),
    max_length=st.integers(min_value=1, max_value=5),
    max_span=st.integers(min_value=1, max_value=5),
    burst=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)

lookaheads = st.sampled_from([None, 0, 1, 2, 4, math.inf])

modes = st.sampled_from(["parallel", "sequential"])

RELAXED = settings(
    max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None
)

LARGE = settings(
    max_examples=20, suppress_health_check=[HealthCheck.too_slow], deadline=None
)

#: Fixed large programs checked on every run (no hypothesis shrinking at
#: this scale — a failure replays from the spec alone). Modes/lookaheads
#: are chosen per entry to keep the oracle's O(n^2) sequential scans
#: within a few seconds total.
SEED_CORPUS = [
    (
        WorkloadSpec(
            cells=120, messages=360, max_length=3, max_span=3, burst=2, seed=2024
        ),
        "sequential",
        2,
    ),
    (
        WorkloadSpec(
            cells=120, messages=360, max_length=3, max_span=3, burst=2, seed=2024
        ),
        "parallel",
        None,
    ),
    (
        WorkloadSpec(
            cells=250, messages=750, max_length=3, max_span=4, burst=2, seed=7
        ),
        "sequential",
        None,
    ),
    (
        WorkloadSpec(
            cells=250, messages=750, max_length=3, max_span=4, burst=2, seed=7
        ),
        "parallel",
        math.inf,
    ),
    (
        WorkloadSpec(
            cells=400, messages=1200, max_length=3, max_span=3, burst=2, seed=11
        ),
        "parallel",
        2,
    ),
    # Parallel-mode spread across the remaining budget shapes — the
    # bucketed step engine takes different code paths for no-lookahead
    # (front-only windows), zero/small budgets (R2 cutoffs inside the
    # window) and unbounded budgets (windows end only at reads).
    (
        WorkloadSpec(
            cells=120, messages=360, max_length=3, max_span=3, burst=2, seed=2024
        ),
        "parallel",
        0,
    ),
    (
        WorkloadSpec(
            cells=250, messages=750, max_length=3, max_span=4, burst=2, seed=7
        ),
        "parallel",
        1,
    ),
    (
        WorkloadSpec(
            cells=400, messages=1200, max_length=3, max_span=3, burst=2, seed=11
        ),
        "parallel",
        None,
    ),
    (
        WorkloadSpec(
            cells=400, messages=1200, max_length=3, max_span=3, burst=2, seed=11
        ),
        "parallel",
        math.inf,
    ),
]


def assert_identical(program, lookahead, mode):
    """Full-output equality of the two implementations."""
    expected = reference_cross_off(program, lookahead=lookahead, mode=mode)
    got = cross_off(program, lookahead=lookahead, mode=mode)
    assert got.deadlock_free == expected.deadlock_free
    assert got.steps == expected.steps
    assert got.crossings == expected.crossings
    assert got.max_skipped == expected.max_skipped
    assert got.uncrossed == expected.uncrossed
    assert got.lookahead_used == expected.lookahead_used


def _lookahead(program, capacity):
    return None if capacity is None else uniform_lookahead(program, capacity)


@given(specs, lookaheads, modes)
@RELAXED
def test_random_programs_identical(spec, capacity, mode):
    program = random_program(spec)
    assert_identical(program, _lookahead(program, capacity), mode)


@given(specs, lookaheads, modes)
@RELAXED
def test_hoisted_writes_identical(spec, capacity, mode):
    """Hoisting creates programs that exercise the lookahead skip paths."""
    program = hoist_writes(random_program(spec), swaps=4, seed=spec.seed + 1)
    assert_identical(program, _lookahead(program, capacity), mode)


@given(specs, lookaheads, modes)
@RELAXED
def test_deadlocked_programs_identical(spec, capacity, mode):
    """Deadlocked inputs must leave identical uncrossed remainders."""
    program = inject_read_cycle(random_program(spec), seed=spec.seed)
    assert_identical(program, _lookahead(program, capacity), mode)


@given(large_specs, lookaheads, modes)
@LARGE
def test_large_random_programs_identical(spec, capacity, mode):
    """Wide arrays, many messages per cell: the interning target regime."""
    program = random_program(spec)
    assert_identical(program, _lookahead(program, capacity), mode)


@given(large_specs, lookaheads, modes)
@LARGE
def test_large_hoisted_writes_identical(spec, capacity, mode):
    """Large programs driven through the lookahead skip machinery."""
    program = hoist_writes(random_program(spec), swaps=12, seed=spec.seed + 1)
    assert_identical(program, _lookahead(program, capacity), mode)


@given(large_specs, lookaheads)
@LARGE
def test_large_parallel_identical(spec, capacity):
    """Parallel mode pinned: the bucketed step engine vs the oracle.

    The mode-sampling properties above split their examples between the
    two modes; this one spends its whole budget on the engine the PR
    under test rewrote."""
    program = random_program(spec)
    assert_identical(program, _lookahead(program, capacity), "parallel")


@given(large_specs, lookaheads)
@LARGE
def test_large_parallel_hoisted_identical(spec, capacity):
    """Parallel mode through the skip machinery: hoisted writes force
    mid-window candidates, multi-message skipped tuples and R2 cutoffs
    inside the nomination scans."""
    program = hoist_writes(random_program(spec), swaps=12, seed=spec.seed + 3)
    assert_identical(program, _lookahead(program, capacity), "parallel")


@given(large_specs, lookaheads)
@LARGE
def test_large_parallel_deadlocked_identical(spec, capacity):
    """Deadlocked programs in parallel mode: the bucket must dry up at
    exactly the oracle's step, leaving identical uncrossed remainders."""
    program = inject_read_cycle(random_program(spec), seed=spec.seed)
    assert_identical(program, _lookahead(program, capacity), "parallel")


@given(large_specs, lookaheads)
@LARGE
def test_parallel_step_batches_name_ordered(spec, capacity):
    """Every parallel step batch comes out in ascending message-name
    order — the documented contract the sorted bucket drain implements
    (ids are assigned in sorted-name order, so this fails if id order
    ever diverges from name order, or the drain stops sorting)."""
    program = random_program(spec)
    result = cross_off(
        program, lookahead=_lookahead(program, capacity), mode="parallel"
    )
    for step in result.steps:
        names = [pair.message for pair in step]
        assert names == sorted(names)


@pytest.mark.parametrize(
    "spec,mode,capacity",
    SEED_CORPUS,
    ids=[f"{s.cells}c-{m}-cap{c}" for s, m, c in SEED_CORPUS],
)
def test_seed_corpus_identical(spec, mode, capacity):
    """Deterministic hundreds-of-cells programs, replayable from the spec."""
    program = random_program(spec)
    assert_identical(program, _lookahead(program, capacity), mode)


@given(specs)
@RELAXED
def test_sequential_observer_path_identical(spec):
    """The observer/pick general loop matches the oracle pair for pair."""
    program = random_program(spec)
    seen_ref: list[str] = []
    seen_inc: list[str] = []
    reference_cross_off(
        program,
        mode="sequential",
        observer=lambda state, pair: seen_ref.append(str(pair)),
    )
    cross_off(
        program,
        mode="sequential",
        observer=lambda state, pair: seen_inc.append(str(pair)),
    )
    assert seen_inc == seen_ref


@given(specs)
@RELAXED
def test_pick_path_identical(spec):
    """A non-default tie-breaker drives the same general loop in both."""
    program = random_program(spec)
    pick = lambda pairs: pairs[-1]
    expected = reference_cross_off(program, mode="sequential", pick=pick)
    got = cross_off(program, mode="sequential", pick=pick)
    assert got.crossings == expected.crossings
    assert got.deadlock_free == expected.deadlock_free


class TestPaperFigures:
    """Exact-output equality on every figure program of the paper."""

    @pytest.mark.parametrize("mode", ["parallel", "sequential"])
    @pytest.mark.parametrize("capacity", [None, 1, 2, math.inf])
    def test_figures_identical(self, mode, capacity):
        from repro.algorithms.figures import all_figures

        for name, program in all_figures().items():
            assert_identical(program, _lookahead(program, capacity), mode)


class TestPinnedShapes:
    """Shapes the random families never produced before this harness.

    Each one is an intern-boundary hazard: ids are assigned per cell and
    per sorted message name, so programs where those orders diverge from
    declaration order — or where cells contribute nothing at all — must
    still match the name-keyed oracle bit for bit.
    """

    ALL_MODES = [("parallel", None), ("parallel", 2), ("sequential", None),
                 ("sequential", 2), ("sequential", math.inf)]

    def _check_all(self, program):
        for mode, capacity in self.ALL_MODES:
            assert_identical(program, _lookahead(program, capacity), mode)

    def test_empty_cells(self):
        """Cells with no operations at all (pass-through / unused cells)."""
        cells = ("C1", "C2", "C3", "C4", "C5")
        messages = [Message("A", "C2", "C4", 2), Message("B", "C4", "C2", 1)]
        programs = {
            "C2": [W("A"), W("A"), R("B")],
            "C4": [R("A"), R("A"), W("B")],
            # C1, C3, C5 stay empty.
        }
        program = ArrayProgram(cells, messages, programs, name="empty-cells")
        self._check_all(program)
        result = cross_off(program)
        assert result.deadlock_free

    def test_single_message_program(self):
        """One message, two cells — the smallest worklist possible."""
        cells = ("C1", "C2")
        messages = [Message("ONLY", "C1", "C2", 3)]
        programs = {"C1": [W("ONLY")] * 3, "C2": [R("ONLY")] * 3}
        program = ArrayProgram(cells, messages, programs, name="single-message")
        self._check_all(program)

    def test_lexicographic_vs_declaration_order(self):
        """Names whose sorted order differs from declaration *and* numeric
        order: "M10" < "M2" < "M9" lexicographically. Declared M9, M2,
        M10 — if intern ids ever leaked into tie-breaks in declaration
        order, the sequential "lowest name first" choice would diverge."""
        cells = ("C1", "C2", "C3")
        messages = [
            Message("M9", "C1", "C2", 1),
            Message("M2", "C2", "C3", 1),
            Message("M10", "C1", "C2", 1),
        ]
        programs = {
            "C1": [W("M9"), W("M10")],
            "C2": [R("M10"), R("M9"), W("M2")],
            "C3": [R("M2")],
        }
        program = ArrayProgram(cells, messages, programs, name="lex-order")
        self._check_all(program)
        # The first sequential crossing must be the lexicographically
        # smallest executable message — M10, not M9 or M2.
        seq = cross_off(program, lookahead=uniform_lookahead(program, 2),
                        mode="sequential")
        assert seq.crossings[0].message == "M10"

    def test_duplicate_message_names_rejected(self):
        """Duplicate message names across cells must be rejected at
        build time — the intern table's name<->id bijection (and the
        oracle's name keying) both assume global uniqueness, so the
        engines never see such a program."""
        with pytest.raises(ProgramError):
            ArrayProgram(
                ("C1", "C2", "C3"),
                [Message("X", "C1", "C2", 1), Message("X", "C2", "C3", 1)],
                {},
                name="dup-names",
            )


class TestParallelStepBucketShapes:
    """Edges of the bucketed parallel step structure, pinned.

    Each shape targets one invariant of the readiness-bit + bucket
    engine: seeding (nothing executable at all), a bucket that drains
    the entire program in one step, a message whose readiness arises
    only from another crossing's rescan (entering the bucket mid-run),
    and batch ordering when name order diverges from declaration order.
    All of them are also run through the oracle for bit-identity.
    """

    BUDGETS = [None, 0, 1, 2, math.inf]

    def _check_all(self, program):
        for capacity in self.BUDGETS:
            assert_identical(program, _lookahead(program, capacity), "parallel")

    def test_empty_executable_set_at_start(self):
        """A mutual read-before-write knot: the seed scans must push
        nothing, and the run must end at step zero with everything
        uncrossed — deadlock detected without a single step."""
        cells = ("C1", "C2")
        messages = [Message("A", "C1", "C2", 1), Message("B", "C2", "C1", 1)]
        programs = {
            "C1": [R("B"), W("A")],
            "C2": [R("A"), W("B")],
        }
        program = ArrayProgram(cells, messages, programs, name="empty-exec")
        self._check_all(program)
        result = cross_off(program, mode="parallel")
        assert not result.deadlock_free
        assert result.steps == []
        assert result.pairs_crossed == 0
        assert sorted(result.uncrossed) == ["C1", "C2"]

    def test_single_step_crosses_everything(self):
        """Six disjoint pairs, all executable at step 1: the whole
        program is one bucket drain, in name order."""
        cells = tuple(f"C{i}" for i in range(1, 13))
        messages = [
            Message(f"M{i}", f"C{2 * i - 1}", f"C{2 * i}", 1)
            for i in range(1, 7)
        ]
        programs: dict[str, list] = {}
        for i in range(1, 7):
            programs[f"C{2 * i - 1}"] = [W(f"M{i}")]
            programs[f"C{2 * i}"] = [R(f"M{i}")]
        program = ArrayProgram(cells, messages, programs, name="one-step")
        self._check_all(program)
        result = cross_off(program, mode="parallel")
        assert result.deadlock_free
        assert result.step_count == 1
        names = [pair.message for pair in result.steps[0]]
        assert names == sorted(f"M{i}" for i in range(1, 7))

    def test_message_becomes_executable_mid_run(self):
        """B's pair is not locatable at step 1 without lookahead — only
        A's crossing moves C1's front onto W(B), so B enters the bucket
        from the post-step rescan. With a budget of 1, B instead joins
        A's step by skipping A's uncrossed write."""
        cells = ("C1", "C2", "C3")
        messages = [Message("A", "C1", "C2", 1), Message("B", "C1", "C3", 1)]
        programs = {
            "C1": [W("A"), W("B")],
            "C2": [R("A")],
            "C3": [R("B")],
        }
        program = ArrayProgram(cells, messages, programs, name="mid-run")
        self._check_all(program)
        strict = cross_off(program, mode="parallel")
        assert strict.deadlock_free
        assert [len(step) for step in strict.steps] == [1, 1]
        assert [step[0].message for step in strict.steps] == ["A", "B"]
        relaxed = cross_off(
            program, lookahead=uniform_lookahead(program, 1), mode="parallel"
        )
        assert [len(step) for step in relaxed.steps] == [2]
        assert relaxed.steps[0][1].skipped_sender == (("A", 1),)
        assert relaxed.max_skipped["A"] == 1

    def test_lexicographic_vs_declaration_order_parallel(self):
        """Three simultaneously executable messages declared M9, M2,
        M10: the step batch must come out M10 < M2 < M9
        (lexicographic), not in declaration or numeric order."""
        cells = tuple(f"C{i}" for i in range(1, 7))
        messages = [
            Message("M9", "C1", "C2", 1),
            Message("M2", "C3", "C4", 1),
            Message("M10", "C5", "C6", 1),
        ]
        programs = {
            "C1": [W("M9")],
            "C2": [R("M9")],
            "C3": [W("M2")],
            "C4": [R("M2")],
            "C5": [W("M10")],
            "C6": [R("M10")],
        }
        program = ArrayProgram(cells, messages, programs, name="lex-par")
        self._check_all(program)
        result = cross_off(program, mode="parallel")
        assert result.step_count == 1
        assert [pair.message for pair in result.steps[0]] == ["M10", "M2", "M9"]


class TestTimingWheelDeterminism:
    """Timing-wheel engine vs heap-only: byte-identical simulations."""

    def _results(self, program, config=None, registers=None, policy="ordered"):
        out = []
        for fast in (True, False):
            sim = Simulator(
                program, config=config, policy=policy, registers=registers
            )
            sim.engine = Engine(fast_lane=fast)
            out.append(sim.run())
        return out

    def test_fir_identical_assignment_trace(self):
        from repro.algorithms.fir import fir_program, fir_registers

        program = fir_program(8, 16)
        registers = fir_registers(tuple(1.0 for _ in range(8)))
        wheel, heap = self._results(program, registers=registers)
        assert wheel.assignment_trace == heap.assignment_trace
        assert wheel.received == heap.received
        assert wheel.registers == heap.registers
        assert wheel.time == heap.time
        assert wheel.events == heap.events

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_random_programs_identical_traces(self, seed):
        spec = WorkloadSpec(cells=6, messages=12, max_length=3, seed=seed)
        program = random_program(spec)
        config = ArrayConfig(queues_per_link=8, queue_capacity=2)
        wheel, heap = self._results(program, config=config)
        assert wheel.assignment_trace == heap.assignment_trace
        assert wheel.received == heap.received
        assert wheel.time == heap.time
        assert wheel.events == heap.events

    def test_wheel_lane_actually_used(self):
        engine = Engine()
        engine.after(WHEEL_HORIZON, lambda: None)
        assert engine.pending == 1
        assert not engine._heap  # rode the wheel, not the heap
        engine.after(WHEEL_HORIZON + 1, lambda: None)
        assert len(engine._heap) == 1  # beyond the horizon: overflow

    def test_mixed_delays_fire_in_time_then_scheduling_order(self):
        engine = Engine()
        log: list[tuple[int, str]] = []
        for tag, delay in (
            ("a", 5), ("b", 2), ("c", 5), ("d", 12), ("e", 2), ("f", 0),
        ):
            engine.after(delay, lambda t=tag: log.append((engine.now, t)))
        engine.run()
        assert log == [(0, "f"), (2, "b"), (2, "e"), (5, "a"), (5, "c"), (12, "d")]

    def test_heap_overflow_precedes_wheel_entries_at_same_time(self):
        # An event scheduled far in advance for time t (heap) must fire
        # before one scheduled for t from nearby (wheel): it was
        # scheduled earlier.
        engine = Engine()
        log: list[str] = []
        engine.at(20, lambda: log.append("far"))  # beyond horizon -> heap
        engine.at(
            20 - WHEEL_HORIZON,
            lambda: engine.after(WHEEL_HORIZON, lambda: log.append("near")),
        )
        engine.run()
        assert log == ["far", "near"]

    def test_max_time_leaves_wheel_event_pending(self):
        from repro.sim.engine import StopReason

        engine = Engine()
        engine.after(4, lambda: None)
        assert engine.run(max_time=3) is StopReason.MAX_TIME
        assert engine.pending == 1
        assert engine.run() is StopReason.QUIESCENT
        assert engine.pending == 0

    def test_max_events_mid_bucket_resumes_cleanly(self):
        from repro.sim.engine import StopReason

        engine = Engine()
        log: list[int] = []
        for i in range(4):
            engine.after(2, lambda i=i: log.append(i))
        assert engine.run(max_events=2) is StopReason.MAX_EVENTS
        assert log == [0, 1]
        assert engine.run() is StopReason.QUIESCENT
        assert log == [0, 1, 2, 3]

    @staticmethod
    def _slow_ops_program(seed: int, cycles: int) -> ArrayProgram:
        """A random program whose every R/W op takes ``cycles`` cycles."""
        base = random_program(
            WorkloadSpec(cells=5, messages=10, max_length=3, seed=seed)
        )
        slowed = {
            cell: [
                replace(op, cycles=cycles)
                for op in base.cell_programs[cell].ops
            ]
            for cell in base.cells
        }
        return ArrayProgram(
            base.cells, base.messages.values(), slowed,
            name=f"{base.name}-cycles{cycles}",
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_long_latency_ops_identical_traces(self, seed):
        """cycles > WHEEL_HORIZON workloads: the adaptive horizon must be
        byte-identical to both the heap-only engine and a wheel pinned at
        the default horizon (where every op overflows to the heap)."""
        cycles = WHEEL_HORIZON + 12
        program = self._slow_ops_program(seed, cycles)
        config = ArrayConfig(queues_per_link=8, queue_capacity=2)
        results = []
        for engine in (None, Engine(fast_lane=False), Engine(horizon=WHEEL_HORIZON)):
            sim = Simulator(program, config=config)
            if engine is None:
                # Default build: the horizon auto-sizes past the op latency.
                assert sim.engine.wheel_horizon >= cycles + config.op_latency
            else:
                sim.engine = engine
            results.append(sim.run())
        adaptive, heap_only, fixed8 = results
        for other in (heap_only, fixed8):
            assert adaptive.assignment_trace == other.assignment_trace
            assert adaptive.received == other.received
            assert adaptive.time == other.time
            assert adaptive.events == other.events

    def test_adaptive_horizon_rides_wheel_for_long_delays(self):
        engine = Engine(horizon=32)
        engine.after(20, lambda: None)
        assert engine.pending == 1
        assert not engine._heap  # rode the (resized) wheel
        default = Engine()
        default.after(20, lambda: None)
        assert len(default._heap) == 1  # default horizon: heap overflow


# ---------------------------------------------------------------------------
# Columnar backend: interned/columnar A/B axis, pinned edges, machinery
# ---------------------------------------------------------------------------

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="columnar backend needs numpy"
)


def assert_backends_identical(program, lookahead, mode):
    """Field-for-field equality of the two backends on one input.

    Complements :func:`assert_identical` (each backend vs the oracle):
    this axis runs the interned and columnar engines head to head, so a
    shared misreading of the paper in both engine and oracle cannot
    hide a backend divergence (and vice versa).
    """
    a = cross_off(program, lookahead=lookahead, mode=mode, backend="interned")
    b = cross_off(program, lookahead=lookahead, mode=mode, backend="columnar")
    assert b.deadlock_free == a.deadlock_free
    assert b.steps == a.steps
    assert b.crossings == a.crossings
    assert b.max_skipped == a.max_skipped
    assert b.uncrossed == a.uncrossed
    assert b.lookahead_used == a.lookahead_used


@requires_numpy
@given(specs, lookaheads, modes)
@RELAXED
def test_backend_ab_random_identical(spec, capacity, mode):
    program = random_program(spec)
    assert_backends_identical(program, _lookahead(program, capacity), mode)


@requires_numpy
@given(specs, lookaheads, modes)
@RELAXED
def test_backend_ab_deadlocked_identical(spec, capacity, mode):
    program = inject_read_cycle(random_program(spec), seed=spec.seed)
    assert_backends_identical(program, _lookahead(program, capacity), mode)


@requires_numpy
@given(large_specs, lookaheads, modes)
@LARGE
def test_backend_ab_large_identical(spec, capacity, mode):
    """The columnar target regime, with hoisting for skip pressure."""
    program = hoist_writes(random_program(spec), swaps=12, seed=spec.seed + 5)
    assert_backends_identical(program, _lookahead(program, capacity), mode)


@requires_numpy
@pytest.mark.parametrize(
    "spec,mode,capacity",
    SEED_CORPUS,
    ids=[f"{s.cells}c-{m}-cap{c}" for s, m, c in SEED_CORPUS],
)
def test_seed_corpus_backend_ab(spec, mode, capacity):
    program = random_program(spec)
    assert_backends_identical(program, _lookahead(program, capacity), mode)


@requires_numpy
class TestColumnarEdges:
    """Pinned shapes for the columnar kernels' boundary paths."""

    ALL_MODES = [("parallel", None), ("parallel", 2), ("sequential", None),
                 ("sequential", 2), ("sequential", math.inf)]

    def _check_all(self, program):
        for mode, capacity in self.ALL_MODES:
            lookahead = _lookahead(program, capacity)
            assert_identical(program, lookahead, mode)
            assert_backends_identical(program, lookahead, mode)

    def test_empty_program(self):
        """No messages at all: the kernels' zero-size guards."""
        program = ArrayProgram(("C1", "C2"), [], {}, name="empty")
        self._check_all(program)
        result = cross_off(program, backend="columnar")
        assert result.deadlock_free
        assert result.crossings == []
        assert result.uncrossed == {}

    def test_single_message(self):
        cells = ("C1", "C2")
        messages = [Message("ONLY", "C1", "C2", 3)]
        programs = {"C1": [W("ONLY")] * 3, "C2": [R("ONLY")] * 3}
        self._check_all(
            ArrayProgram(cells, messages, programs, name="single-message")
        )

    def test_empty_cells_and_skips(self):
        """Unused cells plus a hoisted write exercising nonzero skips."""
        cells = ("C1", "C2", "C3", "C4")
        messages = [
            Message("A", "C2", "C3", 2),
            Message("B", "C2", "C3", 1),
        ]
        programs = {
            "C2": [W("A"), W("B"), W("A")],
            "C3": [R("B"), R("A"), R("A")],
        }
        self._check_all(
            ArrayProgram(cells, messages, programs, name="skip-edges")
        )

    def test_auto_threshold_boundary(self):
        """``auto`` flips to columnar exactly at COLUMNAR_AUTO_MIN_OPS."""
        spec = WorkloadSpec(
            cells=6, messages=8, max_length=3, max_span=3, burst=2, seed=3
        )
        small = random_program(spec)
        assert small.total_transfer_ops < COLUMNAR_AUTO_MIN_OPS
        assert resolve_backend(small) == "interned"
        assert resolve_backend(small, "columnar") == "columnar"
        length = COLUMNAR_AUTO_MIN_OPS // 2
        at = ArrayProgram(
            ("C1", "C2"),
            [Message("M", "C1", "C2", length)],
            {"C1": [W("M")] * length, "C2": [R("M")] * length},
            name="at-threshold",
        )
        assert at.total_transfer_ops == COLUMNAR_AUTO_MIN_OPS
        assert resolve_backend(at) == "columnar"
        under = ArrayProgram(
            ("C1", "C2"),
            [Message("M", "C1", "C2", length - 1)],
            {"C1": [W("M")] * (length - 1), "C2": [R("M")] * (length - 1)},
            name="under-threshold",
        )
        assert under.total_transfer_ops == COLUMNAR_AUTO_MIN_OPS - 2
        assert resolve_backend(under) == "interned"
        # Both resolutions produce identical output either way.
        self._check_all(at)


class TestBackendMachinery:
    """Resolution order and configuration knobs, backend-independent."""

    def test_configure_returns_previous_and_restores(self):
        previous = configure_crossing_backend("interned")
        try:
            assert configure_crossing_backend(None) == "interned"
        finally:
            configure_crossing_backend(previous)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            configure_crossing_backend("vectorized")
        program = ArrayProgram(("C1",), [], {}, name="tiny")
        with pytest.raises(ConfigError):
            resolve_backend(program, "vectorized")

    def test_env_var_resolution(self, monkeypatch):
        program = ArrayProgram(("C1",), [], {}, name="tiny")
        monkeypatch.setenv("REPRO_CROSSING_BACKEND", "interned")
        assert resolve_backend(program) == "interned"
        # Explicit argument and configured preference both win over env.
        previous = configure_crossing_backend("auto")
        try:
            assert resolve_backend(program) == resolve_backend(program, "auto")
        finally:
            configure_crossing_backend(previous)

    def test_explicit_columnar_without_numpy_errors(self):
        program = ArrayProgram(("C1",), [], {}, name="tiny")
        if numpy_available():
            assert resolve_backend(program, "columnar") == "columnar"
        else:
            with pytest.raises(ConfigError):
                resolve_backend(program, "columnar")
            # auto stays a silent fallback.
            assert resolve_backend(program) == "interned"
            assert cross_off(program).deadlock_free

    def test_crossing_state_resolves_engine(self):
        cells = ("C1", "C2")
        messages = [Message("M", "C1", "C2", 1)]
        programs = {"C1": [W("M")], "C2": [R("M")]}
        program = ArrayProgram(cells, messages, programs, name="state")
        state = CrossingState(program, engine="interned")
        assert state.engine == "interned"
        small_auto = CrossingState(program)
        assert small_auto.engine == "interned"  # under the auto threshold
        if numpy_available():
            assert CrossingState(program, engine="columnar").engine == "columnar"
