"""A/B equivalence: incremental crossing-off vs the reference oracle.

The production engine in :mod:`repro.core.crossing` is an incremental
worklist algorithm; ``tests/reference_crossing.py`` preserves the seed's
op-by-op scanning implementation. These properties pin the two to
bit-identical output — ``steps``, ``crossings`` (full
:class:`PairCrossing` equality, including skipped-write tuples),
``max_skipped``, ``uncrossed`` and the classification — across random
programs, deadlocked mutations, lookahead budgets and both stepping
modes. The timing-wheel engine gets the same treatment against the
heap-only scheduler.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from reference_crossing import reference_cross_off

from repro import ArrayConfig, Simulator
from repro.core.crossing import cross_off, uniform_lookahead
from repro.sim.engine import WHEEL_HORIZON, Engine
from repro.workloads import (
    WorkloadSpec,
    hoist_writes,
    inject_read_cycle,
    random_program,
)

specs = st.builds(
    WorkloadSpec,
    cells=st.integers(min_value=2, max_value=7),
    messages=st.integers(min_value=1, max_value=10),
    max_length=st.integers(min_value=1, max_value=4),
    max_span=st.integers(min_value=1, max_value=3),
    burst=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=10_000),
)

lookaheads = st.sampled_from([None, 0, 1, 2, 4, math.inf])

modes = st.sampled_from(["parallel", "sequential"])

RELAXED = settings(
    max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None
)


def assert_identical(program, lookahead, mode):
    """Full-output equality of the two implementations."""
    expected = reference_cross_off(program, lookahead=lookahead, mode=mode)
    got = cross_off(program, lookahead=lookahead, mode=mode)
    assert got.deadlock_free == expected.deadlock_free
    assert got.steps == expected.steps
    assert got.crossings == expected.crossings
    assert got.max_skipped == expected.max_skipped
    assert got.uncrossed == expected.uncrossed
    assert got.lookahead_used == expected.lookahead_used


def _lookahead(program, capacity):
    return None if capacity is None else uniform_lookahead(program, capacity)


@given(specs, lookaheads, modes)
@RELAXED
def test_random_programs_identical(spec, capacity, mode):
    program = random_program(spec)
    assert_identical(program, _lookahead(program, capacity), mode)


@given(specs, lookaheads, modes)
@RELAXED
def test_hoisted_writes_identical(spec, capacity, mode):
    """Hoisting creates programs that exercise the lookahead skip paths."""
    program = hoist_writes(random_program(spec), swaps=4, seed=spec.seed + 1)
    assert_identical(program, _lookahead(program, capacity), mode)


@given(specs, lookaheads, modes)
@RELAXED
def test_deadlocked_programs_identical(spec, capacity, mode):
    """Deadlocked inputs must leave identical uncrossed remainders."""
    program = inject_read_cycle(random_program(spec), seed=spec.seed)
    assert_identical(program, _lookahead(program, capacity), mode)


@given(specs)
@RELAXED
def test_sequential_observer_path_identical(spec):
    """The observer/pick general loop matches the oracle pair for pair."""
    program = random_program(spec)
    seen_ref: list[str] = []
    seen_inc: list[str] = []
    reference_cross_off(
        program,
        mode="sequential",
        observer=lambda state, pair: seen_ref.append(str(pair)),
    )
    cross_off(
        program,
        mode="sequential",
        observer=lambda state, pair: seen_inc.append(str(pair)),
    )
    assert seen_inc == seen_ref


@given(specs)
@RELAXED
def test_pick_path_identical(spec):
    """A non-default tie-breaker drives the same general loop in both."""
    program = random_program(spec)
    pick = lambda pairs: pairs[-1]
    expected = reference_cross_off(program, mode="sequential", pick=pick)
    got = cross_off(program, mode="sequential", pick=pick)
    assert got.crossings == expected.crossings
    assert got.deadlock_free == expected.deadlock_free


class TestPaperFigures:
    """Exact-output equality on every figure program of the paper."""

    @pytest.mark.parametrize("mode", ["parallel", "sequential"])
    @pytest.mark.parametrize("capacity", [None, 1, 2, math.inf])
    def test_figures_identical(self, mode, capacity):
        from repro.algorithms.figures import all_figures

        for name, program in all_figures().items():
            assert_identical(program, _lookahead(program, capacity), mode)


class TestTimingWheelDeterminism:
    """Timing-wheel engine vs heap-only: byte-identical simulations."""

    def _results(self, program, config=None, registers=None, policy="ordered"):
        out = []
        for fast in (True, False):
            sim = Simulator(
                program, config=config, policy=policy, registers=registers
            )
            sim.engine = Engine(fast_lane=fast)
            out.append(sim.run())
        return out

    def test_fir_identical_assignment_trace(self):
        from repro.algorithms.fir import fir_program, fir_registers

        program = fir_program(8, 16)
        registers = fir_registers(tuple(1.0 for _ in range(8)))
        wheel, heap = self._results(program, registers=registers)
        assert wheel.assignment_trace == heap.assignment_trace
        assert wheel.received == heap.received
        assert wheel.registers == heap.registers
        assert wheel.time == heap.time
        assert wheel.events == heap.events

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_random_programs_identical_traces(self, seed):
        spec = WorkloadSpec(cells=6, messages=12, max_length=3, seed=seed)
        program = random_program(spec)
        config = ArrayConfig(queues_per_link=8, queue_capacity=2)
        wheel, heap = self._results(program, config=config)
        assert wheel.assignment_trace == heap.assignment_trace
        assert wheel.received == heap.received
        assert wheel.time == heap.time
        assert wheel.events == heap.events

    def test_wheel_lane_actually_used(self):
        engine = Engine()
        engine.after(WHEEL_HORIZON, lambda: None)
        assert engine.pending == 1
        assert not engine._heap  # rode the wheel, not the heap
        engine.after(WHEEL_HORIZON + 1, lambda: None)
        assert len(engine._heap) == 1  # beyond the horizon: overflow

    def test_mixed_delays_fire_in_time_then_scheduling_order(self):
        engine = Engine()
        log: list[tuple[int, str]] = []
        for tag, delay in (
            ("a", 5), ("b", 2), ("c", 5), ("d", 12), ("e", 2), ("f", 0),
        ):
            engine.after(delay, lambda t=tag: log.append((engine.now, t)))
        engine.run()
        assert log == [(0, "f"), (2, "b"), (2, "e"), (5, "a"), (5, "c"), (12, "d")]

    def test_heap_overflow_precedes_wheel_entries_at_same_time(self):
        # An event scheduled far in advance for time t (heap) must fire
        # before one scheduled for t from nearby (wheel): it was
        # scheduled earlier.
        engine = Engine()
        log: list[str] = []
        engine.at(20, lambda: log.append("far"))  # beyond horizon -> heap
        engine.at(
            20 - WHEEL_HORIZON,
            lambda: engine.after(WHEEL_HORIZON, lambda: log.append("near")),
        )
        engine.run()
        assert log == ["far", "near"]

    def test_max_time_leaves_wheel_event_pending(self):
        from repro.sim.engine import StopReason

        engine = Engine()
        engine.after(4, lambda: None)
        assert engine.run(max_time=3) is StopReason.MAX_TIME
        assert engine.pending == 1
        assert engine.run() is StopReason.QUIESCENT
        assert engine.pending == 0

    def test_max_events_mid_bucket_resumes_cleanly(self):
        from repro.sim.engine import StopReason

        engine = Engine()
        log: list[int] = []
        for i in range(4):
            engine.after(2, lambda i=i: log.append(i))
        assert engine.run(max_events=2) is StopReason.MAX_EVENTS
        assert log == [0, 1]
        assert engine.run() is StopReason.QUIESCENT
        assert log == [0, 1, 2, 3]
