"""Reducer merge contract and t-digest quantiles.

Two regimes matter for :class:`QuantileReducer`:

* **exact** — while the digest holds fewer values than its compression
  threshold (singleton centroids), quantiles equal the closed-form
  midpoint-interpolation over the sorted values, and ``merge`` is
  exactly associative: any partition of the observations yields the
  same summary. Hypothesis pins both below the threshold.
* **compressed** — beyond the threshold the digest guarantees only
  bounded rank error; a seeded 5000-value stream checks the estimate
  stays within a 3% rank window of the exact quantile.

For the counting reducers (outcomes, histogram, deadlock rate,
per-config makespan) ``merge`` must be exact at any size: merged state
over any partition equals the single-pass state.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.sweep import (
    CompletedCount,
    DeadlockRateByConfig,
    MakespanHistogram,
    PerConfigMakespan,
    QuantileReducer,
    RunSummary,
    merge_reducers,
    parse_quantiles,
)

QUANTS = (0.5, 0.95, 0.99)


def make_row(index, completed, deadlocked, time, policy, queues, capacity, err):
    return RunSummary(
        index=index,
        completed=completed,
        deadlocked=deadlocked and not completed,
        timed_out=not completed and not deadlocked and err is None,
        time=time,
        events=time * 2,
        words=time,
        policy=policy,
        queues=queues,
        capacity=capacity,
        error_kind="ConfigError" if err else None,
        error="boom" if err else None,
    )


row_strategy = st.builds(
    make_row,
    index=st.integers(min_value=0, max_value=10**6),
    completed=st.booleans(),
    deadlocked=st.booleans(),
    time=st.integers(min_value=0, max_value=500),
    policy=st.sampled_from(["ordered", "fcfs", "static"]),
    queues=st.sampled_from([1, 2, 8]),
    capacity=st.sampled_from([0, 2]),
    err=st.booleans(),
)

REDUCER_FACTORIES = (
    CompletedCount,
    lambda: MakespanHistogram(bucket_width=8),
    DeadlockRateByConfig,
    PerConfigMakespan,
    lambda: QuantileReducer(QUANTS),
)


def single_pass(factory, rows):
    reducer = factory()
    for row in rows:
        reducer.update(row)
    return reducer


class TestMergeContract:
    @settings(max_examples=60, deadline=None)
    @given(
        rows=st.lists(row_strategy, max_size=40),
        cut=st.integers(min_value=0, max_value=40),
    )
    def test_merge_of_any_split_equals_single_pass(self, rows, cut):
        cut = min(cut, len(rows))
        for factory in REDUCER_FACTORIES:
            left = single_pass(factory, rows[:cut])
            right = single_pass(factory, rows[cut:])
            left.merge(right)
            assert left.summary() == single_pass(factory, rows).summary()

    @settings(max_examples=40, deadline=None)
    @given(
        rows=st.lists(row_strategy, max_size=36),
        cuts=st.tuples(
            st.integers(min_value=0, max_value=36),
            st.integers(min_value=0, max_value=36),
        ),
    )
    def test_merge_is_associative(self, rows, cuts):
        a, b = sorted(min(c, len(rows)) for c in cuts)
        parts = [rows[:a], rows[a:b], rows[b:]]
        for factory in REDUCER_FACTORIES:
            left_first = single_pass(factory, parts[0])
            left_first.merge(single_pass(factory, parts[1]))
            left_first.merge(single_pass(factory, parts[2]))

            right_first = single_pass(factory, parts[1])
            right_first.merge(single_pass(factory, parts[2]))
            outer = single_pass(factory, parts[0])
            outer.merge(right_first)
            assert left_first.summary() == outer.summary()

    def test_merge_rejects_foreign_types_and_params(self):
        with pytest.raises(ConfigError):
            CompletedCount().merge(DeadlockRateByConfig())
        with pytest.raises(ConfigError):
            MakespanHistogram(bucket_width=8).merge(
                MakespanHistogram(bucket_width=16)
            )
        with pytest.raises(ConfigError):
            QuantileReducer(QUANTS, compression=100).merge(
                QuantileReducer(QUANTS, compression=200)
            )

    def test_merge_reducers_helper_folds_left(self):
        shards = []
        for base in range(3):
            shard = CompletedCount()
            shard.update(make_row(base, True, False, 10, "ordered", 1, 0, False))
            shards.append(shard)
        merged = merge_reducers(*shards)
        assert merged is shards[0]
        assert merged.summary()["total"] == 3


def exact_quantile(values, q):
    """Midpoint-interpolation quantile (the digest's exact-regime form)."""
    v = sorted(values)
    n = len(v)
    t = q * n
    if t <= 0.5:
        return v[0]
    if t >= n - 0.5:
        return v[-1]
    idx = t - 0.5
    lo = math.floor(idx)
    frac = idx - lo
    return v[lo] + (v[lo + 1] - v[lo]) * frac


class TestQuantileReducer:
    @settings(max_examples=80, deadline=None)
    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=10**6), min_size=1, max_size=60
        ),
        q=st.sampled_from([0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0]),
    )
    def test_exact_below_compression_threshold(self, values, q):
        digest = QuantileReducer((q,), compression=400)
        for value in values:
            digest.add(value)
        assert digest.quantile(q) == pytest.approx(
            exact_quantile(values, q), abs=1e-9
        )

    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=1000), min_size=1, max_size=60
        ),
        cut=st.integers(min_value=0, max_value=60),
    )
    def test_merge_exact_in_singleton_regime(self, values, cut):
        cut = min(cut, len(values))
        whole = QuantileReducer(QUANTS, compression=400)
        for v in values:
            whole.add(v)
        left = QuantileReducer(QUANTS, compression=400)
        right = QuantileReducer(QUANTS, compression=400)
        for v in values[:cut]:
            left.add(v)
        for v in values[cut:]:
            right.add(v)
        left.merge(right)
        assert left.summary() == whole.summary()

    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=1000), min_size=2, max_size=60
        ),
        cut=st.integers(min_value=1, max_value=59),
    )
    def test_merge_of_flushed_shards_stays_sorted_and_exact(self, values, cut):
        """Regression: merging two already-flushed digests must re-sort.

        summary() flushes each shard's buffer into centroids; a merge
        then concatenates two sorted centroid lists whose ranges
        overlap, which is NOT sorted overall — the compress pass must
        run anyway or quantile() walks non-monotone ranks.
        """
        cut = min(cut, len(values) - 1)
        left = QuantileReducer(QUANTS, compression=400)
        right = QuantileReducer(QUANTS, compression=400)
        for v in values[:cut]:
            left.add(v)
        for v in values[cut:]:
            right.add(v)
        left.summary(), right.summary()  # flush both buffers
        left.merge(right)
        for q in QUANTS:
            assert left.quantile(q) == pytest.approx(
                exact_quantile(values, q), abs=1e-9
            )

    def test_compressed_regime_bounded_rank_error(self):
        rng = random.Random(20260729)
        values = [rng.lognormvariate(3.0, 1.0) for _ in range(5000)]
        digest = QuantileReducer(QUANTS, compression=200)
        for v in values:
            digest.add(v)
        ordered = sorted(values)
        for q in QUANTS:
            estimate = digest.quantile(q)
            lo = ordered[max(0, int((q - 0.03) * 5000))]
            hi = ordered[min(4999, int((q + 0.03) * 5000))]
            assert lo <= estimate <= hi, (q, lo, estimate, hi)

    def test_compressed_merge_bounded_rank_error(self):
        rng = random.Random(42)
        values = [rng.gauss(100, 25) for _ in range(6000)]
        shards = [QuantileReducer(QUANTS, compression=200) for _ in range(3)]
        for i, v in enumerate(values):
            shards[i % 3].add(v)
        merged = merge_reducers(*shards)
        assert merged.count == 6000
        ordered = sorted(values)
        for q in QUANTS:
            estimate = merged.quantile(q)
            lo = ordered[max(0, int((q - 0.03) * 6000))]
            hi = ordered[min(5999, int((q + 0.03) * 6000))]
            assert lo <= estimate <= hi, (q, lo, estimate, hi)

    def test_memory_stays_bounded(self):
        digest = QuantileReducer((0.5,), compression=100)
        for v in range(50_000):
            digest.add(v)
        digest.quantile(0.5)  # flush
        assert len(digest._centroids) <= 300
        assert digest.count == 50_000
        assert digest.min_time == 0 and digest.max_time == 49_999

    def test_empty_digest(self):
        digest = QuantileReducer(QUANTS)
        assert digest.quantile(0.5) is None
        summary = digest.summary()
        assert summary["count"] == 0
        assert summary["quantiles"] == {"p50": None, "p95": None, "p99": None}

    def test_only_completed_rows_counted(self):
        digest = QuantileReducer((0.5,))
        digest.update(make_row(0, True, False, 10, "ordered", 1, 0, False))
        digest.update(make_row(1, False, True, 99, "ordered", 1, 0, False))
        digest.update(make_row(2, False, False, 99, "ordered", 1, 0, True))
        assert digest.count == 1
        assert digest.quantile(0.5) == 10

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            QuantileReducer((1.5,))
        with pytest.raises(ConfigError):
            QuantileReducer((0.5,), compression=5)
        with pytest.raises(ConfigError):
            QuantileReducer((0.5,)).quantile(-0.1)

    def test_summary_labels(self):
        digest = QuantileReducer((0.5, 0.95, 0.999))
        digest.add(1)
        assert set(digest.summary()["quantiles"]) == {"p50", "p95", "p99.9"}


class TestParseQuantiles:
    def test_p_labels_and_bare_numbers(self):
        assert parse_quantiles("p50,p95,p99") == (0.5, 0.95, 0.99)
        assert parse_quantiles("50, 99.9") == (0.5, 0.999)

    def test_invalid_tokens_rejected(self):
        with pytest.raises(ConfigError):
            parse_quantiles("pfoo")
        with pytest.raises(ConfigError):
            parse_quantiles("p0")
        with pytest.raises(ConfigError):
            parse_quantiles("150")
        with pytest.raises(ConfigError):
            parse_quantiles(",")

    def test_exact_duplicates_deduped_keeping_order(self):
        # "p50,p50" and the p-prefixed/bare mix both normalize to one
        # fraction; the summary would otherwise carry duplicate work
        # for a single "p50" key.
        assert parse_quantiles("p50,p50") == (0.5,)
        assert parse_quantiles("p95,50,p95,p50") == (0.95, 0.5)

    def test_label_collisions_rejected(self):
        # Distinct fractions closer than _quantile_label's 6-decimal
        # percent rounding would silently overwrite each other's
        # summary entry ("p50" twice); that is a caller error.
        with pytest.raises(ConfigError, match="collide"):
            parse_quantiles("p50,p50.0000000004")
        with pytest.raises(ConfigError, match="collide"):
            QuantileReducer((0.5, 0.5000000000004))

    def test_near_but_distinct_quantiles_still_allowed(self):
        # Above the rounding granularity, close quantiles are distinct
        # labels and must keep working.
        assert parse_quantiles("p50,p50.0001") == (0.5, 0.500001)
        digest = QuantileReducer((0.5, 0.500001))
        digest.add(1)
        assert set(digest.summary()["quantiles"]) == {"p50", "p50.0001"}
