"""Theorem 1 harness tests (Section 5)."""

from repro import ArrayConfig, verify_theorem1


class TestPremiseChecks:
    def test_fig7_verified(self, fig7):
        report = verify_theorem1(fig7)
        assert report.premises_hold
        assert report.conclusion_holds
        assert report.verified
        assert report.premise_failures == []

    def test_premise_i_failure(self, p1):
        report = verify_theorem1(p1)
        assert not report.deadlock_free
        assert not report.verified
        assert "premise (i)" in report.premise_failures[0]
        assert report.result is None

    def test_premise_ii_queue_shortfall(self, fig8):
        report = verify_theorem1(fig8)  # one queue per link
        assert report.deadlock_free
        assert not report.assumption_ii_ok
        assert any("queue shortfall" in f for f in report.premise_failures)
        assert report.result is None

    def test_fig8_verified_with_two_queues(self, fig8):
        report = verify_theorem1(fig8, config=ArrayConfig(queues_per_link=2))
        assert report.verified

    def test_buffering_rescues_p1(self, p1, buffered2):
        # With capacity-2 queues, lookahead reclassifies P1 deadlock-free
        # and the labeled, ordered run completes (Section 8 end to end).
        report = verify_theorem1(p1, config=buffered2)
        assert report.deadlock_free
        assert report.verified

    def test_p3_never_verifiable(self, p3):
        config = ArrayConfig(queues_per_link=8, queue_capacity=64)
        report = verify_theorem1(p3, config=config)
        assert not report.deadlock_free

    def test_paper_scheme_variant(self, fig7):
        report = verify_theorem1(fig7, scheme="paper")
        assert report.verified
        norm = report.labeling.normalized()
        assert norm == {"A": 1, "C": 2, "B": 3}


class TestAcrossFigures:
    def test_every_deadlock_free_figure_verifies(self, fig2, fig6, fig7):
        for prog in (fig2, fig6, fig7):
            report = verify_theorem1(prog)
            assert report.verified, prog.name

    def test_fig9_with_two_queues(self, fig9):
        report = verify_theorem1(fig9, config=ArrayConfig(queues_per_link=2))
        assert report.verified
