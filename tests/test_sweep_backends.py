"""Backend-differential harness: serial, pool and shm must agree.

The backend contract (see :mod:`repro.sweep.backends`) promises that
every execution backend produces *byte-identical* RunSummary rows and
reducer summaries for the same job list — the transport (in-process,
pool pipe, shared-memory arena) may differ, the data may not. This
harness pins that contract on a seed sweep corpus spanning every
outcome class (completed, deadlock, timeout, infeasible), plus the shm
backend's structural edges: arena codec round-trips, string overflow
spill to the pipe, unwritten-slot detection and on-demand hydration.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ArrayConfig
from repro.algorithms.figures import fig7_program, fig8_program
from repro.errors import ConfigError, ReproError
from repro.sweep import (
    ROW_SIZE,
    CompletedCount,
    DeadlockRateByConfig,
    MakespanHistogram,
    PerConfigMakespan,
    QuantileReducer,
    ResultHandle,
    RunSummary,
    SimJob,
    SummaryArena,
    SweepPlan,
    SweepSession,
    available_backends,
    get_backend,
    sweep_jobs,
)
from repro.sweep.arena import ERROR_CAP, KIND_CAP, POLICY_CAP, decode_row, encode_row
from repro.workloads import ensemble_programs

BACKENDS = ("serial", "pool", "shm")


def seed_corpus_jobs() -> list[SimJob]:
    """The seed sweep corpus: every outcome class, several programs.

    fig7 x {ordered, fcfs} x {1, 2} queues covers completed and
    deadlocked runs (fcfs q=1 deadlocks on Fig. 7); fig8 x {ordered,
    static} x {1, 2} covers infeasible corners (strict ordered/static
    with one queue need two); the random ensemble adds buffered-queue
    variety; the truncated jobs cover timeouts.
    """
    ensemble = ensemble_programs(3, cells=5, messages=8, max_length=3, base_seed=3)
    jobs: list[SimJob] = []
    jobs += sweep_jobs(
        fig7_program(), policies=("ordered", "fcfs"), queues=(1, 2)
    )
    jobs += sweep_jobs(
        fig8_program(), policies=("ordered", "static"), queues=(1, 2)
    )
    jobs += sweep_jobs(
        ensemble[0], queues=(1, 8), capacities=(0, 2), repeat=2
    )
    jobs += [SimJob(p, config=ArrayConfig(queues_per_link=8)) for p in ensemble]
    jobs += [
        SimJob(ensemble[1], config=ArrayConfig(queues_per_link=8), max_events=3)
    ]
    return jobs


def fresh_reducers():
    return (
        CompletedCount(),
        MakespanHistogram(bucket_width=8),
        DeadlockRateByConfig(),
        PerConfigMakespan(),
        QuantileReducer((0.5, 0.95, 0.99)),
    )


def run_backend(backend: str, jobs):
    reducers = fresh_reducers()
    plan = SweepPlan(
        jobs=jobs,
        reducers=reducers,
        backend=backend,
        workers=2,
        chunk_size=3,
    )
    outcome = SweepSession(plan).run()
    summaries = {r.name: r.summary() for r in reducers}
    return outcome, summaries


class TestBackendDifferential:
    @pytest.fixture(scope="class")
    def corpus(self):
        return seed_corpus_jobs()

    @pytest.fixture(scope="class")
    def per_backend(self, corpus):
        return {b: run_backend(b, corpus) for b in BACKENDS}

    def test_corpus_covers_every_outcome(self, per_backend):
        rows = per_backend["serial"][0].rows
        assert {row.outcome for row in rows} == {
            "completed",
            "deadlock",
            "timeout",
            "infeasible",
        }

    def test_rows_identical_across_backends(self, per_backend):
        serial_rows = per_backend["serial"][0].rows
        for backend in ("pool", "shm"):
            assert per_backend[backend][0].rows == serial_rows

    def test_rows_byte_identical_as_json(self, per_backend):
        def dump(outcome):
            return json.dumps(
                [row.__dict__ for row in outcome.rows], sort_keys=True
            ).encode()

        serial = dump(per_backend["serial"][0])
        for backend in ("pool", "shm"):
            assert dump(per_backend[backend][0]) == serial

    def test_reducer_summaries_byte_identical(self, per_backend):
        serial = json.dumps(per_backend["serial"][1], sort_keys=True).encode()
        for backend in ("pool", "shm"):
            current = json.dumps(
                per_backend[backend][1], sort_keys=True
            ).encode()
            assert current == serial

    def test_rows_are_in_job_order(self, per_backend, corpus):
        for backend in BACKENDS:
            rows = per_backend[backend][0].rows
            assert [row.index for row in rows] == list(range(len(corpus)))

    def test_shm_hydration_matches_serial_results(self, per_backend):
        serial_results = per_backend["serial"][0].results()
        shm_outcome = per_backend["shm"][0]
        assert not any(h.hydrated for h in shm_outcome.handles)
        shm_results = shm_outcome.results()
        assert all(h.hydrated for h in shm_outcome.handles)
        for got, want in zip(shm_results, serial_results):
            assert type(got) is type(want)
            if isinstance(want, Exception) or not hasattr(want, "received"):
                assert got == want  # BatchError
                continue
            assert got.completed == want.completed
            assert got.time == want.time
            assert got.events == want.events
            assert got.received == want.received
            assert got.assignment_trace == want.assignment_trace

    def test_stream_matches_run_rows(self, corpus):
        for backend in BACKENDS:
            plan = SweepPlan(
                jobs=corpus, backend=backend, workers=2, chunk_size=3
            )
            streamed = list(SweepSession(plan).stream())
            assert streamed == run_backend(backend, corpus)[0].rows


class TestSessionValidation:
    def test_unknown_backend_rejected(self, fig7):
        plan = SweepPlan(jobs=[SimJob(fig7)], backend="quantum")
        with pytest.raises(ConfigError, match="unknown execution backend"):
            SweepSession(plan)

    def test_invalid_workers_and_chunk_size(self, fig7):
        with pytest.raises(ConfigError):
            SweepSession(SweepPlan(jobs=[SimJob(fig7)], workers=0))
        with pytest.raises(ConfigError):
            SweepSession(SweepPlan(jobs=[SimJob(fig7)], chunk_size=0))
        with pytest.raises(ConfigError):
            SweepSession(SweepPlan(jobs=[SimJob(fig7)], on_error="bogus"))

    def test_backend_registry_lists_builtins(self):
        assert set(BACKENDS) <= set(available_backends())
        assert get_backend("serial").name == "serial"

    def test_auto_backend_resolution(self, fig7):
        assert SweepSession(SweepPlan(jobs=[])).backend.name == "serial"
        assert (
            SweepSession(SweepPlan(jobs=[], workers=3)).backend.name == "pool"
        )

    def test_empty_jobs(self):
        for backend in BACKENDS:
            plan = SweepPlan(jobs=[], backend=backend, workers=2)
            outcome = SweepSession(plan).run()
            assert outcome.rows == [] and outcome.handles == []

    def test_on_error_raise_propagates_from_every_backend(self, fig8):
        jobs = sweep_jobs(fig8, policies=("static",), queues=(1,))
        for backend in BACKENDS:
            plan = SweepPlan(
                jobs=jobs, backend=backend, workers=2, on_error="raise"
            )
            with pytest.raises(ConfigError):
                list(SweepSession(plan).stream())


def _row(**kw):
    base = dict(
        index=0, completed=True, deadlocked=False, timed_out=False,
        time=10, events=5, words=3, policy="ordered", queues=1, capacity=0,
    )
    base.update(kw)
    return RunSummary(**base)


class TestArenaCodec:
    def test_roundtrip_plain_row(self):
        buf = bytearray(ROW_SIZE * 2)
        row = _row(index=7, time=123, events=456, words=789)
        assert encode_row(buf, 1, row)
        assert decode_row(buf, 1, 7) == row

    def test_roundtrip_error_row(self):
        buf = bytearray(ROW_SIZE)
        row = _row(
            completed=False,
            error_kind="ConfigError",
            error="static policy needs 2 queues on link L, got 1",
        )
        assert encode_row(buf, 0, row)
        assert decode_row(buf, 0, 0) == row

    def test_empty_error_string_distinct_from_none(self):
        buf = bytearray(ROW_SIZE)
        row = _row(completed=False, error_kind="X", error="")
        assert encode_row(buf, 0, row)
        decoded = decode_row(buf, 0, 0)
        assert decoded.error == "" and decoded.error_kind == "X"
        row2 = _row(completed=False, error_kind=None, error=None)
        assert encode_row(buf, 0, row2)
        decoded2 = decode_row(buf, 0, 0)
        assert decoded2.error is None and decoded2.error_kind is None

    def test_overflow_returns_false(self):
        buf = bytearray(ROW_SIZE)
        assert not encode_row(buf, 0, _row(policy="p" * (POLICY_CAP + 1)))
        assert not encode_row(
            buf, 0, _row(error_kind="k" * (KIND_CAP + 1), completed=False)
        )
        assert not encode_row(
            buf, 0, _row(error="e" * (ERROR_CAP + 1), completed=False)
        )
        # Multibyte utf-8 overflows by *bytes*, not characters.
        assert not encode_row(buf, 0, _row(policy="é" * (POLICY_CAP // 2 + 1)))

    def test_unwritten_slot_raises(self):
        arena = SummaryArena.create(2)
        try:
            assert arena.write_row(0, _row())
            arena.read_row(0)
            with pytest.raises(ReproError, match="never written"):
                arena.read_row(1)
            with pytest.raises(ReproError, match="out of range"):
                arena.read_row(2)
        finally:
            arena.close()
            arena.unlink()

    @settings(max_examples=60, deadline=None)
    @given(
        time=st.integers(min_value=0, max_value=2**62),
        events=st.integers(min_value=0, max_value=2**62),
        words=st.integers(min_value=0, max_value=2**62),
        queues=st.integers(min_value=0, max_value=2**31 - 1),
        capacity=st.integers(min_value=0, max_value=2**31 - 1),
        completed=st.booleans(),
        deadlocked=st.booleans(),
        timed_out=st.booleans(),
        policy=st.text(max_size=POLICY_CAP),
        error=st.none() | st.text(max_size=40),
    )
    def test_roundtrip_property(
        self, time, events, words, queues, capacity,
        completed, deadlocked, timed_out, policy, error,
    ):
        row = RunSummary(
            index=3,
            completed=completed,
            deadlocked=deadlocked,
            timed_out=timed_out,
            time=time,
            events=events,
            words=words,
            policy=policy,
            queues=queues,
            capacity=capacity,
            error_kind=None if error is None else "Err",
            error=error,
        )
        buf = bytearray(ROW_SIZE)
        if encode_row(buf, 0, row):
            assert decode_row(buf, 0, 3) == row
        else:  # only a byte-budget overflow may refuse
            assert (
                len(policy.encode()) > POLICY_CAP
                or (error is not None and len(error.encode()) > ERROR_CAP)
            )


class TestSegmentedArena:
    """Segment-boundary edges of the growable arena."""

    def test_boundary_slots_roundtrip_across_segments(self):
        arena = SummaryArena.create(10, segment_rows=4)
        try:
            # Last slot of segment 0, first of segment 1, last valid slot.
            for slot in (3, 4, 9):
                assert arena.write_row(slot, _row(index=slot, time=slot))
                assert arena.read_row(slot).time == slot
            with pytest.raises(ReproError, match="out of range"):
                arena.read_row(10)
        finally:
            arena.close()
            arena.unlink()

    def test_segment_rows_must_be_positive(self):
        with pytest.raises(ReproError, match="segment_rows"):
            SummaryArena.create(1, segment_rows=0)

    def test_attacher_maps_segments_lazily_and_closes_them_all(self):
        arena = SummaryArena.create(9, segment_rows=4)
        try:
            for slot in range(9):
                assert arena.write_row(slot, _row(index=slot, events=slot))
            other = SummaryArena.attach(arena.name, 9, segment_rows=4)
            try:
                got = [other.read_row(slot).events for slot in range(9)]
                assert got == list(range(9))
            finally:
                other.close()
        finally:
            arena.close()
            arena.unlink()

    def test_unwritten_slot_in_lazily_attached_segment(self):
        arena = SummaryArena.create(8, segment_rows=4)
        try:
            other = SummaryArena.attach(
                arena.name, 8, segment_rows=4, lazy=True
            )
            try:
                with pytest.raises(ReproError, match="never written"):
                    other.read_row(5)  # segment 1 exists, slot untouched
            finally:
                other.close()
        finally:
            arena.close()
            arena.unlink()

    def test_unallocated_segment_reads_as_unwritten(self):
        from repro.errors import ArenaSlotUnwritten

        arena = SummaryArena.create(4, segment_rows=4)  # only segment 0
        try:
            other = SummaryArena.attach(
                arena.name, 12, segment_rows=4, lazy=True
            )
            try:
                with pytest.raises(ArenaSlotUnwritten, match="does not exist"):
                    other.read_row(8)  # segment 2 was never allocated
            finally:
                other.close()
        finally:
            arena.close()
            arena.unlink()

    def test_overflow_refusal_in_later_segment(self):
        arena = SummaryArena.create(6, segment_rows=2)
        try:
            big = _row(
                completed=False,
                error_kind="E",
                error="e" * (ERROR_CAP + 1),
            )
            assert not arena.write_row(5, big)  # slot in segment 2
            with pytest.raises(ReproError, match="never written"):
                arena.read_row(5)
        finally:
            arena.close()
            arena.unlink()

    def test_retire_below_frees_leading_segments(self):
        arena = SummaryArena.create(0, segment_rows=2)
        try:
            arena.ensure_rows(6)  # segments 0, 1, 2
            assert arena.max_live_segments == 3
            for slot in range(6):
                assert arena.write_row(slot, _row(index=slot))
            arena.retire_below(4)  # segments 0 and 1 are fully drained
            with pytest.raises(ReproError, match="retired"):
                arena.read_row(1)
            assert arena.read_row(4).index == 4
            # The freed segment names are really gone from the host.
            with pytest.raises(FileNotFoundError):
                SummaryArena.attach(f"{arena.name}_s1", 2, segment_rows=2)
            # Growth after retirement tracks *live* segments only.
            arena.ensure_rows(8)
            assert arena.max_live_segments == 3
        finally:
            arena.close()
            arena.unlink()

    def test_only_owner_grows_or_retires(self):
        arena = SummaryArena.create(2, segment_rows=2)
        try:
            other = SummaryArena.attach(arena.name, 2, segment_rows=2)
            try:
                with pytest.raises(ReproError, match="owner"):
                    other.ensure_rows(4)
                with pytest.raises(ReproError, match="owner"):
                    other.retire_below(2)
            finally:
                other.close()
        finally:
            arena.close()
            arena.unlink()


class TestShmStreaming:
    """The shm backend consumes a lazy job stream without materializing.

    Acceptance edges: generator input produces byte-identical rows to a
    materialized list, the stream is pulled incrementally (never more
    than the in-flight window ahead of the consumer), and peak shared
    memory stays at a few live segments however long the sweep is.
    """

    def test_generator_rows_byte_identical_to_list(self):
        jobs = [
            SimJob(fig7_program(), policy=policy)
            for policy in ("ordered", "fcfs")
        ] * 3

        plan_list = SweepPlan(
            jobs=jobs, backend="shm", workers=2, chunk_size=2
        )
        plan_gen = SweepPlan(
            jobs=iter(jobs), backend="shm", workers=2, chunk_size=2
        )
        assert list(SweepSession(plan_gen).stream()) == list(
            SweepSession(plan_list).stream()
        )

    def test_stream_pulled_incrementally_with_bounded_segments(
        self, monkeypatch
    ):
        import repro.sweep.arena as arena_mod

        monkeypatch.setattr(arena_mod, "DEFAULT_SEGMENT_ROWS", 2)
        captured = []
        real_create = arena_mod.SummaryArena.create.__func__

        def recording_create(cls, n_rows, **kwargs):
            arena = real_create(cls, n_rows, **kwargs)
            captured.append(arena)
            return arena

        monkeypatch.setattr(
            arena_mod.SummaryArena, "create", classmethod(recording_create)
        )

        n_jobs, workers, chunk = 24, 2, 2
        pulled = 0

        def gen():
            nonlocal pulled
            for _ in range(n_jobs):
                pulled += 1
                yield SimJob(fig7_program())

        plan = SweepPlan(
            jobs=gen(), backend="shm", workers=workers, chunk_size=chunk
        )
        seen = 0
        # The dispatch window holds workers*2 chunks plus the one being
        # built; anything pulled beyond that would mean materializing.
        bound = (workers * 2 + 1) * chunk
        for _row_ in SweepSession(plan).stream():
            seen += 1
            assert pulled <= seen + bound
        assert seen == n_jobs
        assert pulled == n_jobs
        [arena] = captured
        assert arena.n_rows == n_jobs
        # Peak footprint: the in-flight window's worth of segments (each
        # 2 rows here), nowhere near the 12 a materialized arena needs.
        assert arena.max_live_segments <= bound // 2 + 1


class TestShmOverflowSpill:
    def test_long_error_rows_spill_to_pipe_and_stay_exact(self, monkeypatch):
        """Rows the arena cannot hold must arrive via the pipe, unaltered."""
        import repro.sweep.backends.shm as shm_mod

        long_error = "x" * (ERROR_CAP + 50)
        real_summarize = shm_mod.summarize_result

        def lying_summarize(index, job, result):
            row = real_summarize(index, job, result)
            if index % 2 == 0:
                return RunSummary(
                    **{**row.__dict__, "error_kind": "Fake", "error": long_error}
                )
            return row

        monkeypatch.setattr(shm_mod, "summarize_result", lying_summarize)
        jobs = [SimJob(fig7_program()) for _ in range(4)]
        plan = SweepPlan(jobs=jobs, backend="shm", workers=1, chunk_size=2)
        rows = list(SweepSession(plan).stream())
        assert [row.index for row in rows] == [0, 1, 2, 3]
        assert rows[0].error == long_error and rows[2].error == long_error
        assert rows[1].error is None and rows[3].error is None

    def test_spill_from_non_first_segment(self, monkeypatch):
        """Overflow rows spill through the pipe from *later* segments too."""
        import repro.sweep.arena as arena_mod
        import repro.sweep.backends.shm as shm_mod

        monkeypatch.setattr(arena_mod, "DEFAULT_SEGMENT_ROWS", 2)
        long_error = "x" * (ERROR_CAP + 50)
        real_summarize = shm_mod.summarize_result

        def lying_summarize(index, job, result):
            row = real_summarize(index, job, result)
            if index >= 4:  # slots in segment 2 and beyond
                return RunSummary(
                    **{**row.__dict__, "error_kind": "Fake", "error": long_error}
                )
            return row

        monkeypatch.setattr(shm_mod, "summarize_result", lying_summarize)
        jobs = [SimJob(fig7_program()) for _ in range(6)]
        plan = SweepPlan(jobs=iter(jobs), backend="shm", workers=2, chunk_size=2)
        rows = list(SweepSession(plan).stream())
        assert [row.index for row in rows] == list(range(6))
        assert rows[4].error == long_error and rows[5].error == long_error
        assert rows[0].error is None and rows[3].error is None

    def test_unpicklable_chunk_falls_back_in_process(self):
        from repro import COMPUTE, ArrayProgram, Message, R, W

        lam = ArrayProgram(
            ["C1", "C2"],
            [Message("A", "C1", "C2", 1)],
            {
                "C1": [W("A", constant=2.0)],
                "C2": [R("A", into="x"), COMPUTE("y", lambda v: v + 1, ["x"])],
            },
        )
        jobs = [SimJob(fig7_program()), SimJob(lam)]
        plan = SweepPlan(jobs=jobs, backend="shm", workers=2, chunk_size=1)
        outcome = SweepSession(plan).run()
        assert [row.index for row in outcome.rows] == [0, 1]
        assert all(row.completed for row in outcome.rows)
        assert outcome.handles[1].result().registers["C2"]["y"] == 3.0


class TestResultHandle:
    def test_materialized_handle_never_reruns(self, fig7):
        job = SimJob(fig7)
        sentinel = object()
        handle = ResultHandle(_row(), job, False, result=sentinel)
        assert handle.hydrated
        assert handle.result() is sentinel

    def test_lazy_handle_runs_once_and_caches(self, fig7):
        handle = ResultHandle(_row(), SimJob(fig7), False)
        first = handle.result()
        assert first.completed
        assert handle.result() is first


class TestWorkerContextCrossingBackend:
    """The crossing-backend preference rides WorkerContext to workers."""

    @pytest.fixture(autouse=True)
    def _restore_backend(self):
        from repro.core.crossing import configure_crossing_backend

        previous = configure_crossing_backend(None)
        yield
        configure_crossing_backend(previous)

    def test_capture_snapshots_configured_preference(self):
        from repro.core.crossing import configure_crossing_backend
        from repro.sweep.backends import WorkerContext

        assert WorkerContext.capture().crossing_backend is None
        configure_crossing_backend("interned")
        ctx = WorkerContext.capture()
        assert ctx.crossing_backend == "interned"
        # Explicit disk_cache path carries the preference too.
        assert WorkerContext.capture("/tmp/x").crossing_backend == "interned"

    def test_apply_installs_preference(self):
        from repro.core.crossing import configured_crossing_backend
        from repro.sweep.backends import WorkerContext

        WorkerContext(crossing_backend="interned").apply()
        assert configured_crossing_backend() == "interned"
        # A context with no preference leaves the current one alone.
        WorkerContext().apply()
        assert configured_crossing_backend() == "interned"

    def test_pool_workers_inherit_preference(self, fig7):
        from repro.core.crossing import configure_crossing_backend

        configure_crossing_backend("interned")
        plan = SweepPlan(
            jobs=sweep_jobs(fig7, policies=("ordered",), queues=(1, 2)),
            backend="pool",
            workers=2,
        )
        rows = [h.summary for h in SweepSession(plan).run().handles]
        assert [row.outcome for row in rows] == ["completed", "completed"]
