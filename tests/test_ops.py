"""Unit tests for the operation model."""

import pytest

from repro.core.ops import COMPUTE, Op, OpKind, R, ValueSource, W, transfer_ops


class TestConstructors:
    def test_read_defaults(self):
        op = R("A")
        assert op.kind is OpKind.READ
        assert op.message == "A"
        assert op.register is None
        assert op.is_transfer

    def test_read_into_register(self):
        op = R("A", into="x")
        assert op.register == "x"

    def test_write_defaults(self):
        op = W("A")
        assert op.kind is OpKind.WRITE
        assert op.source is None

    def test_write_constant(self):
        op = W("A", constant=3.5)
        assert op.source is not None
        assert op.source.resolve({}) == 3.5

    def test_write_register_source(self):
        op = W("A", from_register="x")
        assert op.source.resolve({"x": 7.0}) == 7.0

    def test_write_register_source_missing_register(self):
        op = W("A", from_register="x")
        assert op.source.resolve({}) is None

    def test_compute(self):
        op = COMPUTE("y", lambda a, b: a + b, ["a", "b"], cycles=2)
        assert op.kind is OpKind.COMPUTE
        assert op.operands == ("a", "b")
        assert op.cycles == 2
        assert not op.is_transfer

    def test_compute_default_cycle(self):
        assert COMPUTE("y", lambda: 0.0, []).cycles == 1


class TestValidation:
    def test_read_requires_message(self):
        with pytest.raises(ValueError):
            Op(OpKind.READ)

    def test_write_requires_message(self):
        with pytest.raises(ValueError):
            Op(OpKind.WRITE)

    def test_compute_rejects_message(self):
        with pytest.raises(ValueError):
            Op(OpKind.COMPUTE, message="A")

    def test_value_source_exclusive(self):
        with pytest.raises(ValueError):
            ValueSource(register="x", constant=1.0)


class TestViews:
    def test_str_forms(self):
        assert str(R("A")) == "R(A)"
        assert str(W("B")) == "W(B)"
        assert str(COMPUTE("y", lambda: 0.0, [])) == "C(y)"

    def test_transfer_ops_filters_compute(self):
        ops = [R("A"), COMPUTE("y", lambda: 0.0, []), W("B")]
        assert [str(o) for o in transfer_ops(ops)] == ["R(A)", "W(B)"]

    def test_opkind_str(self):
        assert str(OpKind.READ) == "R"
        assert str(OpKind.WRITE) == "W"
