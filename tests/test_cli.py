"""CLI tests: check, label, run, show on program files."""

import json

import pytest

from repro.cli import main
from repro.lang import print_program
from repro.algorithms.figures import fig5_p3, fig6_cycle, fig7_program, fig8_program


@pytest.fixture
def fig7_file(tmp_path):
    path = tmp_path / "fig7.sysp"
    path.write_text(print_program(fig7_program()))
    return str(path)


@pytest.fixture
def p3_file(tmp_path):
    path = tmp_path / "p3.sysp"
    path.write_text(print_program(fig5_p3()))
    return str(path)


class TestShow:
    def test_show_lists_cells_and_messages(self, fig7_file, capsys):
        assert main(["show", fig7_file]) == 0
        out = capsys.readouterr().out
        assert "C1" in out and "C4" in out
        assert "C[4]" in out  # message summary


class TestCheck:
    def test_deadlock_free_exit_zero(self, fig7_file, capsys):
        assert main(["check", fig7_file]) == 0
        out = capsys.readouterr().out
        assert "deadlock-free" in out
        assert "Step" in out

    def test_deadlocked_exit_one(self, p3_file, capsys):
        assert main(["check", p3_file]) == 1
        out = capsys.readouterr().out
        assert "DEADLOCKED" in out
        assert "[--]" in out

    def test_lookahead_capacity_flag(self, tmp_path, capsys):
        from repro.algorithms.figures import fig5_p1

        path = tmp_path / "p1.sysp"
        path.write_text(print_program(fig5_p1()))
        assert main(["check", str(path)]) == 1
        assert main(["check", str(path), "--capacity", "2"]) == 0


class TestLabel:
    def test_labels_printed(self, fig7_file, capsys):
        assert main(["label", fig7_file]) == 0
        out = capsys.readouterr().out
        assert "A=1 B=3 C=2" in out
        assert "label 1: A" in out


class TestRun:
    def test_ordered_completes(self, fig7_file, capsys):
        assert main(["run", fig7_file, "--policy", "ordered"]) == 0
        assert "completed" in capsys.readouterr().out

    def test_fcfs_deadlocks_exit_one(self, fig7_file, capsys):
        assert main(["run", fig7_file, "--policy", "fcfs"]) == 1
        assert "DEADLOCK" in capsys.readouterr().out

    def test_trace_flag(self, fig7_file, capsys):
        main(["run", fig7_file, "--trace"])
        out = capsys.readouterr().out
        assert "grant" in out

    def test_queues_flag(self, tmp_path, capsys):
        path = tmp_path / "fig8.sysp"
        path.write_text(print_program(fig8_program()))
        assert main(["run", str(path), "--queues", "2"]) == 0

    def test_missing_file_exit_two(self, capsys):
        assert main(["check", "/nonexistent/file.sysp"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_strict_ordered_shortfall_reports_error(self, tmp_path, capsys):
        path = tmp_path / "fig8.sysp"
        path.write_text(print_program(fig8_program()))
        # 1 queue but a size-2 same-label group: ConfigError -> exit 2.
        assert main(["run", str(path), "--queues", "1"]) == 2


class TestSweep:
    def test_sweep_table_and_exit(self, fig7_file, capsys):
        # FCFS with one queue deadlocks on Fig. 7 -> nonzero exit.
        code = main([
            "sweep", fig7_file, "--policies", "ordered,fcfs", "--queues", "1,2"
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "ordered q=1 cap=0" in out
        assert "fcfs q=1 cap=0" in out
        assert "deadlock" in out
        assert "3/4 runs completed" in out

    def test_sweep_all_completed_exit_zero(self, fig7_file, capsys):
        assert main(["sweep", fig7_file, "--policies", "ordered"]) == 0
        assert "1/1 runs completed" in capsys.readouterr().out

    def test_sweep_json_output(self, fig7_file, tmp_path, capsys):
        import json
        out_path = tmp_path / "sweep.json"
        main([
            "sweep", fig7_file, "--queues", "1,2", "--json", str(out_path)
        ])
        payload = json.loads(out_path.read_text())
        assert len(payload) == 2
        assert {"label", "outcome", "time", "events"} <= set(payload[0])

    def test_sweep_trailing_comma_tolerated(self, fig7_file, capsys):
        assert main(["sweep", fig7_file, "--queues", "1,2,"]) == 0
        assert "2/2 runs completed" in capsys.readouterr().out

    def test_sweep_non_integer_queues_clean_error(self, fig7_file, capsys):
        assert main(["sweep", fig7_file, "--queues", "1,x"]) == 2
        err = capsys.readouterr().err
        assert "--queues expects integers" in err


class TestSweepQuantiles:
    def test_stream_quantiles_printed_and_in_json(self, fig7_file, tmp_path, capsys):
        import json

        out_path = tmp_path / "q.json"
        code = main([
            "sweep", fig7_file, "--queues", "1,2", "--repeat", "5",
            "--stream", "--quantiles", "p50,p95,p99", "--json", str(out_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "[quantiles]" in out
        assert "[per-config-makespan]" in out
        payload = json.loads(out_path.read_text())
        assert {"quantiles", "per-config-makespan"} <= set(payload)
        quants = payload["quantiles"]["quantiles"]
        assert set(quants) == {"p50", "p95", "p99"}
        assert all(value is not None for value in quants.values())

    def test_eager_quantiles_wrap_json_payload(self, fig7_file, tmp_path, capsys):
        import json

        out_path = tmp_path / "q.json"
        code = main([
            "sweep", fig7_file, "--queues", "1,2",
            "--quantiles", "p50", "--json", str(out_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "[quantiles]" in out
        payload = json.loads(out_path.read_text())
        assert set(payload) == {"runs", "quantiles", "per-config-makespan"}
        assert len(payload["runs"]) == 2
        assert {"label", "outcome", "time", "events"} <= set(payload["runs"][0])

    def test_json_shape_unchanged_without_quantiles(self, fig7_file, tmp_path):
        import json

        out_path = tmp_path / "plain.json"
        main(["sweep", fig7_file, "--queues", "1,2", "--json", str(out_path)])
        payload = json.loads(out_path.read_text())
        assert isinstance(payload, list) and len(payload) == 2

    def test_invalid_quantile_token_clean_error(self, fig7_file, capsys):
        assert main(["sweep", fig7_file, "--quantiles", "pfoo"]) == 2
        assert "quantiles expect" in capsys.readouterr().err

    def test_backend_flag_accepted(self, fig7_file, capsys):
        code = main([
            "sweep", fig7_file, "--queues", "1,2",
            "--backend", "shm", "--workers", "2",
        ])
        assert code == 0
        assert "2/2 runs completed" in capsys.readouterr().out


class TestSweepStream:
    def test_stream_rows_and_reducer_summaries(self, fig7_file, capsys):
        code = main([
            "sweep", fig7_file, "--policies", "ordered,fcfs",
            "--queues", "1,2", "--stream",
        ])
        out = capsys.readouterr().out
        assert code == 1  # fcfs q=1 deadlocks on Fig. 7
        assert "ordered q=1 cap=0" in out
        assert "deadlock" in out
        assert "3/4 runs completed" in out
        assert "[outcomes]" in out
        assert "[makespan]" in out
        assert "[deadlock-rate]" in out

    def test_stream_exit_zero_when_all_complete(self, fig7_file, capsys):
        assert main(["sweep", fig7_file, "--stream"]) == 0
        assert "1/1 runs completed" in capsys.readouterr().out

    def test_stream_repeat_scales_without_accumulation(self, fig7_file, capsys):
        code = main([
            "sweep", fig7_file, "--repeat", "50", "--stream",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "50/50 runs completed" in out
        assert '"total": 50' in out

    def test_stream_json_writes_reducer_aggregates(
        self, fig7_file, tmp_path, capsys
    ):
        import json

        out_path = tmp_path / "stream.json"
        main([
            "sweep", fig7_file, "--queues", "1,2", "--stream",
            "--json", str(out_path),
        ])
        payload = json.loads(out_path.read_text())
        assert set(payload) == {"outcomes", "makespan", "deadlock-rate"}
        assert payload["outcomes"]["total"] == 2

    def test_stream_reports_infeasible_corners(self, tmp_path, capsys):
        from repro.lang import print_program

        path = tmp_path / "fig8.sysp"
        path.write_text(print_program(fig8_program()))
        code = main([
            "sweep", str(path), "--policies", "ordered", "--queues", "1,2",
            "--stream",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "infeasible" in out
        assert '"infeasible": 1' in out


class TestSweepFaultToleranceFlags:
    def test_job_timeout_and_max_retries_accepted(self, fig7_file, capsys):
        code = main([
            "sweep", fig7_file, "--policies", "ordered,fcfs",
            "--queues", "1,2", "--workers", "2",
            "--job-timeout", "30", "--max-retries", "1",
        ])
        out = capsys.readouterr().out
        assert code == 1  # fcfs q=1 still deadlocks; supervision changes nothing
        assert "3/4 runs completed" in out

    def test_checkpoint_resume_round_trip(self, fig7_file, tmp_path, capsys):
        ck = str(tmp_path / "sweep.ckpt")
        code = main([
            "sweep", fig7_file, "--policies", "ordered,fcfs",
            "--queues", "1,2", "--checkpoint", ck,
        ])
        first = capsys.readouterr().out
        assert code == 1
        assert "3/4 runs completed" in first
        # Resume against the finished checkpoint: no rows re-run, but the
        # tally (and exit code) still covers the whole grid via the
        # checkpointed CompletedCount reducer.
        code = main([
            "sweep", fig7_file, "--policies", "ordered,fcfs",
            "--queues", "1,2", "--checkpoint", ck, "--resume",
        ])
        resumed = capsys.readouterr().out
        assert code == 1
        assert "3/4 runs completed" in resumed
        assert "deadlock" not in resumed  # every row was skipped

    def test_stream_checkpoint_labels_follow_row_index(
        self, fig7_file, tmp_path, capsys
    ):
        ck = str(tmp_path / "stream.ckpt")
        code = main([
            "sweep", fig7_file, "--policies", "ordered,fcfs",
            "--queues", "1,2", "--stream", "--checkpoint", ck,
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "fcfs q=1 cap=0" in out
        assert "3/4 runs completed" in out

    def test_resume_without_checkpoint_clean_error(self, fig7_file, capsys):
        assert main(["sweep", fig7_file, "--resume"]) == 2
        assert "requires a checkpoint" in capsys.readouterr().err

    def test_keyboard_interrupt_exits_130(
        self, fig7_file, tmp_path, capsys, monkeypatch
    ):
        from repro import cli as cli_mod

        closed = []

        class FakeSession:
            def __init__(self, plan):
                self.plan = plan

            def stream(self):
                def generator():
                    try:
                        yield
                    finally:
                        closed.append(True)

                gen = generator()
                next(gen)  # suspend at the yield so close() runs the finally

                class Raising:
                    def __iter__(self):
                        return self

                    def __next__(self):
                        raise KeyboardInterrupt

                    def close(self):
                        gen.close()

                return Raising()

        monkeypatch.setattr(cli_mod, "SweepSession", FakeSession)
        ck = str(tmp_path / "int.ckpt")
        code = cli_mod.main([
            "sweep", fig7_file, "--stream", "--checkpoint", ck,
        ])
        captured = capsys.readouterr()
        assert code == 130
        assert closed == [True]  # the stream was torn down
        assert "interrupted" in captured.err
        assert "--resume" in captured.err


@pytest.fixture
def burst_file(tmp_path):
    """Two cells exchanging 2-word bursts: static frontier at cap=2."""
    from repro.core.message import Message
    from repro.core.ops import R, W
    from repro.core.program import ArrayProgram

    msgs = [Message("M0", "A", "B", 2), Message("M1", "B", "A", 2)]
    progs = {
        "A": [W("M0", constant=1.0)] * 2 + [R("M1", into="a0"), R("M1", into="a1")],
        "B": [W("M1", constant=2.0)] * 2 + [R("M0", into="b0"), R("M0", into="b1")],
    }
    path = tmp_path / "burst.sysp"
    path.write_text(print_program(ArrayProgram(["A", "B"], msgs, progs)))
    return str(path)


class TestFrontier:
    def test_frontier_found_exit_zero(self, burst_file, capsys):
        code = main([
            "frontier", burst_file, "--queues", "1,2",
            "--capacity", "0,1,2,3,4,5",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "frontier static q=1: cap=2" in out
        assert "frontier static q=2: cap=2" in out
        assert "[bisect" in out
        assert "grid jobs" in out

    def test_probe_rows_use_sweep_labels(self, burst_file, capsys):
        main(["frontier", burst_file, "--capacity", "0,1,2,3"])
        out = capsys.readouterr().out
        assert "static q=1 cap=3" in out  # top probe, grid-format label

    def test_no_frontier_exit_one(self, burst_file, capsys):
        code = main(["frontier", burst_file, "--capacity", "0,1"])
        out = capsys.readouterr().out
        assert code == 1
        assert "none" in out

    def test_exhaustive_flag_runs_whole_grid(self, burst_file, capsys):
        code = main([
            "frontier", burst_file, "--capacity", "0,1,2,3,4,5",
            "--exhaustive",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "[exhaustive, 6 probes]" in out
        assert "executed 6/6 grid jobs" in out

    def test_json_report(self, burst_file, tmp_path, capsys):
        import json

        out_path = tmp_path / "frontier.json"
        code = main([
            "frontier", burst_file, "--queues", "1,2",
            "--capacity", "0,1,2,3,4,5,6,7", "--json", str(out_path),
        ])
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["frontier"] == {"static q=1": 2, "static q=2": 2}
        assert payload["grid_jobs"] == 16
        assert payload["jobs_executed"] < payload["grid_jobs"]
        assert payload["lines"][0]["mode"] == "bisect"

    def test_fcfs_line_reported_exhaustive(self, fig7_file, capsys):
        code = main([
            "frontier", fig7_file, "--policies", "fcfs",
            "--queues", "2", "--capacity", "0,1,2",
        ])
        out = capsys.readouterr().out
        assert "[exhaustive, 3 probes]" in out
        assert code in (0, 1)

    def test_duplicate_capacities_clean_error(self, burst_file, capsys):
        assert main(["frontier", burst_file, "--capacity", "0,1,1"]) == 2
        assert "duplicates" in capsys.readouterr().err

    def test_workers_and_backend_flags(self, burst_file, capsys):
        code = main([
            "frontier", burst_file, "--capacity", "0,1,2,3",
            "--workers", "2", "--backend", "pool",
        ])
        assert code == 0
        assert "frontier static q=1: cap=2" in capsys.readouterr().out


class TestCrossingBackendFlag:
    """--crossing-backend on check/label/sweep (process-global knob)."""

    @pytest.fixture(autouse=True)
    def _restore_backend(self):
        from repro.core.crossing import configure_crossing_backend

        previous = configure_crossing_backend(None)
        yield
        configure_crossing_backend(previous)

    def test_check_backends_print_identically(self, fig7_file, capsys):
        from repro.core.crossing_np import numpy_available

        assert main(["check", fig7_file, "--crossing-backend", "interned"]) == 0
        interned = capsys.readouterr().out
        if not numpy_available():
            pytest.skip("columnar leg needs numpy")
        assert main(["check", fig7_file, "--crossing-backend", "columnar"]) == 0
        assert capsys.readouterr().out == interned

    def test_label_accepts_flag(self, fig7_file, capsys):
        code = main(["label", fig7_file, "--crossing-backend", "interned"])
        assert code == 0
        assert "A=1 B=3 C=2" in capsys.readouterr().out

    def test_sweep_accepts_flag_and_forwards_to_workers(self, fig7_file, capsys):
        code = main([
            "sweep", fig7_file, "--queues", "1,2",
            "--crossing-backend", "interned", "--workers", "2",
        ])
        assert code == 0
        assert "2/2 runs completed" in capsys.readouterr().out

    def test_unknown_backend_rejected_by_argparse(self, fig7_file, capsys):
        with pytest.raises(SystemExit):
            main(["check", fig7_file, "--crossing-backend", "vectorized"])
        assert "invalid choice" in capsys.readouterr().err


@pytest.fixture
def crossread_file(tmp_path):
    """Cross-reading cells: deadlocks at every capacity, every policy."""
    from repro.core.message import Message
    from repro.core.ops import R, W
    from repro.core.program import ArrayProgram

    msgs = [Message("M0", "A", "B", 1), Message("M1", "B", "A", 1)]
    progs = {
        "A": [R("M1", into="x"), W("M0", constant=1.0)],
        "B": [R("M0", into="y"), W("M1", constant=2.0)],
    }
    path = tmp_path / "crossread.sysp"
    path.write_text(print_program(ArrayProgram(["A", "B"], msgs, progs)))
    return str(path)


class TestWitnessCli:
    GRID = ["--policies", "static,fcfs", "--capacity", "0,1,2,3,4,5,6,7"]

    def test_sweep_with_store_prints_identical_rows(
        self, crossread_file, tmp_path, capsys
    ):
        store = str(tmp_path / "w.json")
        assert main(["sweep", crossread_file] + self.GRID) == 1
        baseline = capsys.readouterr().out
        assert main(
            ["sweep", crossread_file, "--witness-store", store] + self.GRID
        ) == 1
        cold = capsys.readouterr().out
        assert main(
            ["sweep", crossread_file, "--witness-store", store] + self.GRID
        ) == 1
        warm = capsys.readouterr().out
        # The per-row table is unchanged; only the [witness] line is new.
        strip = lambda out: [
            line for line in out.splitlines()
            if not line.startswith("[witness]")
        ]
        assert strip(cold) == strip(baseline)
        assert strip(warm) == strip(baseline)
        assert "[witness] pruned 8" in warm  # the whole static line
        assert "mined 0" in warm

    def test_witness_ls_show_prune(self, crossread_file, tmp_path, capsys):
        store = str(tmp_path / "w.json")
        main(["sweep", crossread_file, "--witness-store", store] + self.GRID)
        capsys.readouterr()

        assert main(["witness", "ls", store]) == 0
        out = capsys.readouterr().out
        assert "static" in out
        assert "cells=A,B" in out
        assert "1 witness(es)" in out
        witness_id = out.split()[0]

        assert main(["witness", "show", store, witness_id[:6]]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["id"] == witness_id
        assert payload["policy"] == "static"

        assert main(["witness", "show", store, "zzzz"]) == 2
        assert "no witness matching" in capsys.readouterr().err

        assert main(["witness", "prune", store]) == 0
        assert "pruned 0" in capsys.readouterr().out

    @pytest.mark.parametrize("backend", ("pool", "shm"))
    def test_json_carries_witness_counters_per_backend(
        self, crossread_file, tmp_path, capsys, backend
    ):
        # Worker-side mining makes the counters meaningful on every
        # backend: a cold multiprocess sweep must report nonzero mined.
        store = str(tmp_path / "w.json")
        out_path = tmp_path / "sweep.json"
        multiproc = ["--backend", backend, "--workers", "2"]
        assert main(
            ["sweep", crossread_file, "--witness-store", store,
             "--json", str(out_path)] + self.GRID + multiproc
        ) == 1
        cold = json.loads(out_path.read_text())
        assert cold["witness_mined"] >= 1
        assert cold["witness_mined"] + cold["witness_pruned"] == 8
        assert cold["witness_stored"] >= 1
        assert len(cold["runs"]) == 16

        assert main(
            ["sweep", crossread_file, "--witness-store", store,
             "--json", str(out_path)] + self.GRID + multiproc
        ) == 1
        warm = json.loads(out_path.read_text())
        assert warm["witness_pruned"] == 8  # the whole static line
        assert warm["witness_mined"] == 0
        capsys.readouterr()

    def test_stream_json_carries_witness_counters(
        self, crossread_file, tmp_path, capsys
    ):
        store = str(tmp_path / "w.json")
        out_path = tmp_path / "stream.json"
        assert main(
            ["sweep", crossread_file, "--witness-store", store, "--stream",
             "--json", str(out_path)] + self.GRID
        ) == 1
        payload = json.loads(out_path.read_text())
        assert {"outcomes", "makespan", "deadlock-rate"} <= set(payload)
        assert payload["witness_mined"] >= 1
        assert payload["witness_mined"] + payload["witness_pruned"] == 8
        capsys.readouterr()

    def test_json_shape_unchanged_without_store(self, crossread_file, tmp_path):
        out_path = tmp_path / "plain.json"
        main(
            ["sweep", crossread_file, "--json", str(out_path)] + self.GRID
        )
        payload = json.loads(out_path.read_text())
        assert isinstance(payload, list) and len(payload) == 16

    def test_frontier_with_store_reports_seeding(
        self, crossread_file, tmp_path, capsys
    ):
        store = str(tmp_path / "w.json")
        main(["sweep", crossread_file, "--witness-store", store] + self.GRID)
        capsys.readouterr()
        code = main([
            "frontier", crossread_file, "--capacity", "0,1,2,4",
            "--witness-store", store,
        ])
        out = capsys.readouterr().out
        assert code == 1  # nothing on this axis completes
        assert "[witness] seeded 1 line(s)" in out
