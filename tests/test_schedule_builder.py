"""Section 3.3 schedule-to-program builder tests."""

import pytest

from repro import constraint_labeling, is_deadlock_free, simulate
from repro.arch.config import ArrayConfig
from repro.arch.routing import default_router
from repro.arch.topology import ExplicitLinear
from repro.core.message import Message
from repro.core.requirements import dynamic_queue_demand
from repro.errors import ProgramError
from repro.workloads import (
    program_from_schedule,
    round_robin_schedule,
    sequential_schedule,
)

CELLS = ("C1", "C2", "C3")
MESSAGES = [
    Message("A", "C1", "C2", 2),
    Message("B", "C2", "C3", 3),
    Message("C", "C3", "C1", 1),
]


class TestProgramFromSchedule:
    def test_any_valid_schedule_is_deadlock_free(self):
        schedule = ["A", "B", "A", "B", "C", "B"]
        prog = program_from_schedule(CELLS, MESSAGES, schedule)
        assert is_deadlock_free(prog)

    def test_runs_to_completion(self):
        schedule = ["B", "B", "A", "C", "A", "B"]
        prog = program_from_schedule(CELLS, MESSAGES, schedule)
        router = default_router(ExplicitLinear(CELLS))
        labeling = constraint_labeling(prog)
        queues = max(dynamic_queue_demand(prog, router, labeling).values())
        result = simulate(prog, config=ArrayConfig(queues_per_link=queues))
        assert result.completed

    def test_count_mismatch_rejected(self):
        with pytest.raises(ProgramError):
            program_from_schedule(CELLS, MESSAGES, ["A", "B", "C"])

    def test_unknown_message_rejected(self):
        with pytest.raises(ProgramError):
            program_from_schedule(CELLS, MESSAGES, ["Z"] * 6)

    def test_op_order_follows_schedule(self):
        schedule = ["B", "A", "B", "A", "B", "C"]
        prog = program_from_schedule(CELLS, MESSAGES, schedule)
        assert [str(o) for o in prog.transfers("C2")] == [
            "W(B)", "R(A)", "W(B)", "R(A)", "W(B)",
        ]


class TestCannedSchedules:
    def test_round_robin_interleaves(self):
        schedule = round_robin_schedule(MESSAGES)
        assert schedule == ["A", "B", "C", "A", "B", "B"]
        prog = program_from_schedule(CELLS, MESSAGES, schedule)
        assert is_deadlock_free(prog)

    def test_sequential_never_relates(self):
        from repro.core.related import related_groups

        schedule = sequential_schedule(MESSAGES)
        assert schedule == ["A", "A", "B", "B", "B", "C"]
        prog = program_from_schedule(CELLS, MESSAGES, schedule)
        assert all(len(g) == 1 for g in related_groups(prog))

    def test_round_robin_relates_coaccessed(self):
        from repro.core.related import are_related

        prog = program_from_schedule(
            CELLS, MESSAGES, round_robin_schedule(MESSAGES)
        )
        # C2 interleaves W(B) with R(A): related.
        assert are_related(prog, "A", "B")
