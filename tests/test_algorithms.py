"""Algorithm generator tests: structure, deadlock-freedom, numerics."""

import pytest

from repro import ArrayConfig, Simulator, cross_off, simulate
from repro.algorithms.figures import fig2_fir
from repro.algorithms.fir import (
    fir_expected,
    fir_host_registers_expected,
    fir_program,
    fir_registers,
)
from repro.algorithms.horner import (
    horner_expected,
    horner_program,
    horner_registers,
)
from repro.algorithms.matmul2d import (
    matmul_expected,
    matmul_program,
    matmul_results,
)
from repro.algorithms.matvec import (
    matvec_expected,
    matvec_program,
    matvec_registers,
)
from repro.algorithms.oddeven import (
    oddeven_program,
    oddeven_registers,
    oddeven_result,
)
from repro.algorithms.seqcompare import (
    encode,
    lcs_expected,
    lcs_program_for,
    lcs_registers,
)


class TestFirGenerator:
    def test_k3_n2_matches_fig2_transfer_shape(self):
        gen, fig = fir_program(3, 2), fig2_fir()
        for cg, cf in zip(gen.cells, fig.cells):
            kinds_g = [o.kind for o in gen.transfers(cg)]
            kinds_f = [o.kind for o in fig.transfers(cf)]
            assert kinds_g == kinds_f, cg

    @pytest.mark.parametrize("k,n", [(1, 1), (2, 3), (3, 2), (4, 5), (6, 4)])
    def test_deadlock_free_across_sizes(self, k, n):
        assert cross_off(fir_program(k, n)).deadlock_free

    @pytest.mark.parametrize("k,n", [(2, 2), (3, 4), (5, 3)])
    def test_numeric_correctness(self, k, n):
        xs = tuple(float((i * 7) % 5 - 2) for i in range(n + k - 1))
        ws = tuple(float(i + 1) / 2 for i in range(k))
        result = simulate(fir_program(k, n, xs=xs), registers=fir_registers(ws))
        assert result.completed
        expected = fir_host_registers_expected(xs, ws, n)
        for reg, value in expected.items():
            assert result.registers["HOST"][reg] == pytest.approx(value)

    def test_input_length_validation(self):
        with pytest.raises(ValueError):
            fir_program(3, 2, xs=(1.0, 2.0))

    def test_size_validation(self):
        with pytest.raises(ValueError):
            fir_program(0, 1)

    def test_expected_reference(self):
        assert fir_expected((1.0, 2.0, 3.0), (1.0, 1.0), 2) == [3.0, 5.0]


class TestMatvec:
    def test_deadlock_free(self):
        a = [[1.0] * 4 for _ in range(6)]
        assert cross_off(matvec_program(a)).deadlock_free

    @pytest.mark.parametrize(
        "m,n", [(1, 1), (2, 2), (3, 4), (5, 3), (8, 2)]
    )
    def test_numeric_correctness(self, m, n):
        a = [[float((i * n + j) % 7 - 3) for j in range(n)] for i in range(m)]
        x = [float(j + 1) / 2 for j in range(n)]
        result = simulate(
            matvec_program(a),
            config=ArrayConfig(queues_per_link=2),
            registers=matvec_registers(x),
        )
        assert result.completed
        expected = matvec_expected(a, x)
        got = [result.registers["HOST"][f"y{i + 1}"] for i in range(m)]
        assert got == pytest.approx(expected)

    def test_rectangular_validation(self):
        with pytest.raises(ValueError):
            matvec_program([[1.0, 2.0], [3.0]])


class TestMatmul2D:
    @pytest.mark.parametrize("m,k,n", [(1, 1, 1), (2, 2, 2), (2, 3, 2), (3, 2, 4)])
    def test_numeric_correctness(self, m, k, n):
        a = [[float((i + j) % 5 - 1) for j in range(k)] for i in range(m)]
        b = [[float((i * j) % 4) for j in range(n)] for i in range(k)]
        prog, mesh = matmul_program(a, b)
        assert cross_off(prog).deadlock_free
        sim = Simulator(
            prog,
            topology=mesh,
            config=ArrayConfig(queues_per_link=3),
            policy="ordered",
        )
        result = sim.run()
        assert result.completed
        got = matmul_results(result.registers, m, n, mesh)
        expected = matmul_expected(a, b)
        for got_row, exp_row in zip(got, expected):
            assert got_row == pytest.approx(exp_row)

    def test_east_edge_collects_row(self):
        a = [[1.0, 0.0], [0.0, 1.0]]
        b = [[3.0, 4.0], [5.0, 6.0]]
        prog, mesh = matmul_program(a, b)
        sim = Simulator(
            prog, topology=mesh, config=ArrayConfig(queues_per_link=3)
        )
        result = sim.run()
        edge = result.registers[mesh.cell_at(1, 2)]
        assert edge["c1"] == 3.0  # c_11 collected at the east edge

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            matmul_program([[1.0]], [[1.0], [2.0]])


class TestOddEven:
    @pytest.mark.parametrize(
        "keys",
        [
            [2.0, 1.0],
            [3.0, 1.0, 2.0],
            [5.0, 4.0, 3.0, 2.0, 1.0],
            [1.0, 2.0, 3.0, 4.0],
            [4.0, 4.0, 1.0, 1.0],
        ],
    )
    def test_sorts(self, keys):
        n = len(keys)
        result = simulate(oddeven_program(n), registers=oddeven_registers(keys))
        assert result.completed
        assert oddeven_result(result.registers, n) == sorted(keys)

    def test_deadlock_free(self):
        assert cross_off(oddeven_program(6)).deadlock_free

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            oddeven_program(1)

    def test_partial_rounds_leave_unsorted(self):
        keys = [9.0, 7.0, 5.0, 3.0, 1.0]
        result = simulate(
            oddeven_program(5, rounds=1), registers=oddeven_registers(keys)
        )
        assert result.completed
        assert oddeven_result(result.registers, 5) != sorted(keys)


class TestHorner:
    @pytest.mark.parametrize(
        "coeffs,pts",
        [
            ([1.0, -2.0], [0.0, 1.0, 3.0]),
            ([2.0, 0.0, 1.0], [1.0, -1.0]),
            ([1.0, 2.0, 3.0, 4.0], [0.5, 2.0, -2.0]),
        ],
    )
    def test_numeric_correctness(self, coeffs, pts):
        degree = len(coeffs) - 1
        result = simulate(
            horner_program(degree, pts),
            config=ArrayConfig(queues_per_link=2),
            registers=horner_registers(coeffs),
        )
        assert result.completed
        got = [result.registers["HOST"][f"p{t + 1}"] for t in range(len(pts))]
        assert got == pytest.approx(horner_expected(coeffs, pts))

    def test_deadlock_free(self):
        assert cross_off(horner_program(4, [1.0, 2.0])).deadlock_free

    def test_validation(self):
        with pytest.raises(ValueError):
            horner_program(0, [1.0])
        with pytest.raises(ValueError):
            horner_program(2, [])
        with pytest.raises(ValueError):
            horner_registers([1.0])


class TestSequenceComparison:
    @pytest.mark.parametrize(
        "a,b",
        [
            ("AB", "AB"),
            ("GATTACA", "TACGTA"),
            ("AAAA", "TTTT"),
            ("ACGT", "TGCA"),
            ("BANANA", "ANANAS"),
        ],
    )
    def test_lcs_length(self, a, b):
        prog = lcs_program_for(a, b)
        result = simulate(
            prog,
            config=ArrayConfig(queues_per_link=2),
            registers=lcs_registers(encode(b)),
        )
        assert result.completed
        assert result.registers["HOST"][f"d{len(a)}"] == lcs_expected(a, b)

    def test_deadlock_free(self):
        assert cross_off(lcs_program_for("ACGT", "CGA")).deadlock_free

    def test_length_validation(self):
        from repro.algorithms.seqcompare import lcs_program

        with pytest.raises(ValueError):
            lcs_program(3, 2, [65.0])
