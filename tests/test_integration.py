"""Cross-module integration tests: full pipelines on realistic workloads."""

import pytest

from repro import (
    ArrayConfig,
    CommModel,
    Simulator,
    constraint_labeling,
    cross_off,
    simulate,
    verify_theorem1,
)
from repro.algorithms.fir import fir_host_registers_expected, fir_program, fir_registers
from repro.algorithms.matvec import matvec_expected, matvec_program, matvec_registers
from repro.algorithms.oddeven import oddeven_program, oddeven_registers, oddeven_result
from repro.arch.routing import default_router
from repro.arch.topology import ExplicitLinear
from repro.core.requirements import dynamic_queue_demand, static_queue_demand
from repro.workloads import WorkloadSpec, random_program


class TestFullPipelineFIR:
    """generate -> classify -> label -> provision -> simulate -> check."""

    def test_pipeline_k5_n6(self):
        xs = tuple(float(i % 4) for i in range(10))
        ws = (1.0, -0.5, 0.25, 2.0, 0.75)
        prog = fir_program(5, 6, xs=xs)

        crossing = cross_off(prog)
        assert crossing.deadlock_free
        labeling = constraint_labeling(prog)
        router = default_router(ExplicitLinear(tuple(prog.cells)))
        demand = dynamic_queue_demand(prog, router, labeling)
        config = ArrayConfig(queues_per_link=max(demand.values()))

        result = simulate(
            prog, config=config, labeling=labeling, registers=fir_registers(ws)
        )
        assert result.completed
        for reg, val in fir_host_registers_expected(xs, ws, 6).items():
            assert result.registers["HOST"][reg] == pytest.approx(val)

    def test_theorem_harness_on_fir(self):
        prog = fir_program(4, 3)
        report = verify_theorem1(prog, registers=fir_registers((1.0,) * 4))
        assert report.verified


class TestPolicyAgreement:
    """All sound policies produce identical values, differing only in time."""

    def test_matvec_all_policies(self):
        a = [[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]
        x = [1.5, -0.5]
        prog = matvec_program(a)
        router = default_router(ExplicitLinear(tuple(prog.cells)))
        queues = max(static_queue_demand(prog, router).values())
        config = ArrayConfig(queues_per_link=queues)
        outputs = []
        for policy in ("ordered", "static", "fcfs"):
            result = simulate(
                prog, config=config, policy=policy,
                registers=matvec_registers(x),
            )
            assert result.completed, policy
            outputs.append(
                [result.registers["HOST"][f"y{i + 1}"] for i in range(3)]
            )
        assert outputs[0] == outputs[1] == outputs[2] == matvec_expected(a, x)


class TestMemoryModelOnRealWorkload:
    def test_sort_under_memory_model(self):
        keys = [4.0, 2.0, 5.0, 1.0, 3.0]
        prog = oddeven_program(5)
        fast = simulate(prog, registers=oddeven_registers(keys))
        slow = simulate(
            prog,
            config=ArrayConfig(
                comm_model=CommModel.MEMORY_TO_MEMORY, memory_access_cycles=2
            ),
            registers=oddeven_registers(keys),
        )
        assert oddeven_result(fast.registers, 5) == sorted(keys)
        assert oddeven_result(slow.registers, 5) == sorted(keys)
        assert slow.time > fast.time
        assert slow.total_memory_accesses == 4 * prog.total_words


class TestBufferedSpeedup:
    def test_buffering_reduces_makespan_on_random_programs(self):
        # Rendezvous handoffs serialize; buffered queues decouple cells.
        faster = 0
        for seed in range(8):
            prog = random_program(WorkloadSpec(seed=seed, cells=5, messages=6))
            router = default_router(ExplicitLinear(tuple(prog.cells)))
            queues = max(static_queue_demand(prog, router).values())
            slow = simulate(
                prog,
                config=ArrayConfig(queues_per_link=queues, queue_capacity=0),
                policy="static",
            )
            fast = simulate(
                prog,
                config=ArrayConfig(queues_per_link=queues, queue_capacity=8),
                policy="static",
            )
            assert slow.completed and fast.completed
            assert fast.time <= slow.time  # buffering never hurts
            if fast.time < slow.time:
                faster += 1
        assert faster >= 1  # and genuinely helps some programs


class TestQueueExtensionRuntime:
    def test_extension_lets_single_queue_absorb_burst(self):
        from repro.core.message import Message
        from repro.core.ops import R, W
        from repro.core.program import ArrayProgram

        # Sender bursts 6 words of A before B; receiver wants B first.
        prog = ArrayProgram(
            ("C1", "C2"),
            [Message("A", "C1", "C2", 6), Message("B", "C1", "C2", 1)],
            {
                "C1": [W("A")] * 6 + [W("B")],
                "C2": [R("B")] + [R("A")] * 6,
            },
        )
        base = ArrayConfig(queues_per_link=2, queue_capacity=1)
        plain = simulate(prog, config=base, policy="static")
        assert plain.deadlocked  # burst exceeds physical buffering
        extended = simulate(
            prog, config=base.with_(allow_extension=True), policy="static"
        )
        assert extended.completed
        spilled = sum(
            s.spilled_words for s in extended.queue_stats.values()
        )
        assert spilled > 0

    def test_extension_penalty_costs_time(self):
        from repro.core.message import Message
        from repro.core.ops import R, W
        from repro.core.program import ArrayProgram

        prog = ArrayProgram(
            ("C1", "C2"),
            [Message("A", "C1", "C2", 6), Message("B", "C1", "C2", 1)],
            {
                "C1": [W("A")] * 6 + [W("B")],
                "C2": [R("B")] + [R("A")] * 6,
            },
        )
        cheap = simulate(
            prog,
            config=ArrayConfig(
                queues_per_link=2, queue_capacity=1,
                allow_extension=True, extension_penalty=0,
            ),
            policy="static",
        )
        costly = simulate(
            prog,
            config=ArrayConfig(
                queues_per_link=2, queue_capacity=1,
                allow_extension=True, extension_penalty=10,
            ),
            policy="static",
        )
        assert cheap.completed and costly.completed
        assert costly.time > cheap.time


class TestMeshIntegration:
    def test_theorem_on_mesh_matmul(self):
        from repro.algorithms.matmul2d import matmul_program

        a = [[1.0, 2.0], [3.0, 4.0]]
        b = [[1.0, 0.0], [0.0, 1.0]]
        prog, mesh = matmul_program(a, b)
        report = verify_theorem1(
            prog, config=ArrayConfig(queues_per_link=3), topology=mesh
        )
        assert report.verified
