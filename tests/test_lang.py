"""DSL tests: builder, parser, printer, round-trips."""

import pytest

from repro.algorithms.figures import all_figures
from repro.errors import ParseError, ProgramError
from repro.lang import ProgramBuilder, parse_program, print_program, side_by_side


class TestBuilder:
    def test_simple_exchange(self):
        b = ProgramBuilder("demo", ["C1", "C2"])
        b.cell("C1").send("A", times=2)
        b.cell("C2").recv("A", times=2)
        prog = b.build()
        assert prog.message("A").length == 2
        assert prog.message("A").endpoints == ("C1", "C2")

    def test_chaining(self):
        b = ProgramBuilder("demo", ["C1", "C2"])
        b.cell("C1").send("A").recv("B").send("A")
        b.cell("C2").recv("A", times=2).send("B")
        prog = b.build()
        assert prog.total_transfer_ops == 6

    def test_compute_and_delay(self):
        b = ProgramBuilder("demo", ["C1", "C2"])
        b.cell("C1").compute("x", lambda: 1.0, []).send("A", from_register="x")
        b.cell("C2").delay(3).recv("A", into="y")
        prog = b.build()
        assert len(prog.cell_programs["C1"]) == 2
        assert prog.transfers("C1")[0].source.register == "x"

    def test_unknown_cell_rejected(self):
        b = ProgramBuilder("demo", ["C1"])
        with pytest.raises(ProgramError):
            b.cell("CX")

    def test_two_writers_rejected(self):
        b = ProgramBuilder("demo", ["C1", "C2", "C3"])
        b.cell("C1").send("A")
        with pytest.raises(ProgramError):
            b.cell("C2").send("A")

    def test_two_readers_rejected(self):
        b = ProgramBuilder("demo", ["C1", "C2", "C3"])
        b.cell("C1").send("A", times=2)
        b.cell("C2").recv("A")
        with pytest.raises(ProgramError):
            b.cell("C3").recv("A")

    def test_unbalanced_counts_rejected(self):
        b = ProgramBuilder("demo", ["C1", "C2"])
        b.cell("C1").send("A", times=3)
        b.cell("C2").recv("A", times=2)
        with pytest.raises(ProgramError):
            b.build()

    def test_never_read_rejected(self):
        b = ProgramBuilder("demo", ["C1", "C2"])
        b.cell("C1").send("A")
        with pytest.raises(ProgramError):
            b.build()


class TestParser:
    SOURCE = """
    program demo
    cells C1 C2

    message A C1 -> C2 length 2

    cell C1:
        W(A) <- 1.5    # constant source
        W(A) <- x      # register source

    cell C2:
        R(A) -> y
        delay 2
        R(A)
    """

    def test_parse_valid(self):
        prog = parse_program(self.SOURCE)
        assert prog.name == "demo"
        assert prog.message("A").length == 2
        ops = prog.cell_programs["C1"].ops
        assert ops[0].source.constant == 1.5
        assert ops[1].source.register == "x"
        assert prog.cell_programs["C2"].ops[0].register == "y"

    def test_missing_cells_line(self):
        with pytest.raises(ParseError):
            parse_program("program x\ncell C1:\n    W(A)")

    def test_statement_outside_cell(self):
        with pytest.raises(ParseError):
            parse_program("program x\ncells C1 C2\nW(A)")

    def test_unparseable_statement(self):
        with pytest.raises(ParseError):
            parse_program("cells C1 C2\ncell C1:\n    FROB(A)")

    def test_declared_message_mismatch(self):
        src = (
            "cells C1 C2\n"
            "message A C1 -> C2 length 5\n"
            "cell C1:\n    W(A)\n"
            "cell C2:\n    R(A)\n"
        )
        with pytest.raises(ParseError):
            parse_program(src)

    def test_declared_message_unused(self):
        src = (
            "cells C1 C2\n"
            "message Z C1 -> C2 length 1\n"
            "cell C1:\n    W(A)\n"
            "cell C2:\n    R(A)\n"
        )
        with pytest.raises(ParseError):
            parse_program(src)

    def test_duplicate_cells_line(self):
        with pytest.raises(ParseError):
            parse_program("cells C1\ncells C2")

    def test_empty_source(self):
        with pytest.raises(ParseError):
            parse_program("# nothing here")


class TestRoundTrip:
    @pytest.mark.parametrize("key", sorted(all_figures()))
    def test_figures_round_trip(self, key):
        original = all_figures()[key]
        parsed = parse_program(print_program(original))
        assert parsed.messages == original.messages
        for cell in original.cells:
            assert [str(o) for o in parsed.transfers(cell)] == [
                str(o) for o in original.transfers(cell)
            ]


class TestPrinter:
    def test_side_by_side_columns(self, fig6):
        text = side_by_side(fig6)
        lines = text.splitlines()
        assert lines[0].split() == list(fig6.cells)
        assert "W(A)" in text and "R(D)" in text
