"""Labeling tests: the Section 6 scheme, the constraint scheme, consistency."""

from fractions import Fraction

import pytest

from repro.core.consistency import check_consistency, is_consistent
from repro.core.labeling import (
    Labeling,
    constraint_labeling,
    label_messages,
    labels_as_str,
    trivial_labeling,
)
from repro.core.crossing import uniform_lookahead
from repro.core.message import Message
from repro.core.ops import R, W
from repro.core.program import ArrayProgram
from repro.errors import DeadlockedProgramError, LabelingError
from repro.workloads import WorkloadSpec, random_program


class TestPaperSchemeOnFigures:
    def test_fig7_labels_1_3_2(self, fig7):
        labeling = label_messages(fig7)
        assert labels_as_str(labeling) == "A=1 B=3 C=2"

    def test_fig8_equal_labels(self, fig8):
        labeling = label_messages(fig8)
        assert labeling.same_label("A", "B")

    def test_fig9_equal_labels(self, fig9):
        labeling = label_messages(fig9)
        assert labeling.same_label("A", "B")

    def test_fig2_single_class(self, fig2):
        labeling = label_messages(fig2)
        assert len(labeling.groups()) == 1

    def test_fig6_increasing_chain(self, fig6):
        labeling = label_messages(fig6)
        norm = labeling.normalized()
        assert norm == {"A": 1, "B": 2, "C": 3, "D": 4}

    def test_deadlocked_program_rejected(self, p1):
        with pytest.raises(DeadlockedProgramError):
            label_messages(p1)

    def test_lookahead_step_1d_shares_labels(self, p1):
        labeling = label_messages(p1, lookahead=uniform_lookahead(p1, 2))
        assert labeling.same_label("A", "B")

    def test_consistency_of_all_figure_labelings(self, fig2, fig6, fig7, fig8, fig9):
        for prog in (fig2, fig6, fig7, fig8, fig9):
            assert is_consistent(prog, label_messages(prog))


class TestPaperSchemeFractionCase:
    def test_step_1b_places_between_labels(self):
        # Z is crossed after A (label 1) and after B inherited label 2 by
        # relation to E at cell C5; C1 last accessed A and will access B,
        # so Z needs a value strictly inside (1, 2) — the paper's "real
        # number between two consecutive integers".
        prog = ArrayProgram(
            ("C1", "C2", "C3", "C4", "C5"),
            [
                Message("A", "C1", "C2", 1),
                Message("B", "C1", "C5", 2),
                Message("E", "C4", "C5", 2),
                Message("Z", "C1", "C3", 1),
            ],
            {
                "C1": [W("A"), W("Z"), W("B"), W("B")],
                "C2": [R("A")],
                "C3": [R("Z")],
                "C4": [W("E"), W("E")],
                "C5": [R("E"), R("B"), R("E"), R("B")],
            },
        )
        labeling = label_messages(prog)
        assert is_consistent(prog, labeling)
        assert labeling.label("A") < labeling.label("Z") < labeling.label("B")
        assert labeling.label("Z").denominator > 1  # genuinely fractional
        assert labeling.same_label("B", "E")  # via step 1c propagation


class TestPaperSchemeOrderSensitivity:
    """The finding documented in DESIGN.md section 7."""

    def test_paper_scheme_order_sensitivity(self):
        prog = random_program(WorkloadSpec(seed=1))
        with pytest.raises(LabelingError):
            label_messages(prog)
        # Yet a consistent labeling exists, and the constraint scheme finds it.
        labeling = constraint_labeling(prog)
        assert is_consistent(prog, labeling)


class TestConstraintScheme:
    def test_matches_paper_on_fig7(self, fig7):
        assert labels_as_str(constraint_labeling(fig7)) == "A=1 B=3 C=2"

    def test_matches_paper_on_fig8(self, fig8):
        assert constraint_labeling(fig8).same_label("A", "B")

    def test_matches_paper_on_fig9(self, fig9):
        assert constraint_labeling(fig9).same_label("A", "B")

    def test_always_consistent_on_random_programs(self):
        for seed in range(40):
            prog = random_program(WorkloadSpec(seed=seed))
            assert is_consistent(prog, constraint_labeling(prog))

    def test_finest_on_fig6(self, fig6):
        # No interleavings: four singleton classes, in chain order.
        labeling = constraint_labeling(fig6)
        assert labeling.normalized() == {"A": 1, "B": 2, "C": 3, "D": 4}

    def test_lookahead_equalities(self, p1):
        labeling = constraint_labeling(p1, lookahead=uniform_lookahead(p1, 2))
        assert labeling.same_label("A", "B")

    def test_lookahead_on_deadlocked_program_rejected(self, p3):
        with pytest.raises(DeadlockedProgramError):
            constraint_labeling(p3, lookahead=uniform_lookahead(p3, 2))

    def test_without_lookahead_works_even_on_deadlocked(self, p3):
        # The static constraints exist regardless of deadlock-freedom.
        labeling = constraint_labeling(p3)
        assert set(labeling.labels) == {"A", "B"}


class TestLabelingObject:
    def test_groups_sorted(self):
        labeling = Labeling(
            {"A": Fraction(2), "B": Fraction(1), "C": Fraction(2)}
        )
        groups = labeling.groups()
        assert groups[0] == (Fraction(1), ("B",))
        assert groups[1] == (Fraction(2), ("A", "C"))

    def test_normalized_dense_ranks(self):
        labeling = Labeling(
            {"A": Fraction(7), "B": Fraction(3, 2), "C": Fraction(7)}
        )
        assert labeling.normalized() == {"A": 2, "B": 1, "C": 2}

    def test_unknown_message(self):
        with pytest.raises(LabelingError):
            Labeling({}).label("Z")

    def test_trivial_labeling_consistent_everywhere(self, fig2, fig7, fig8):
        for prog in (fig2, fig7, fig8):
            assert is_consistent(prog, trivial_labeling(prog))

    def test_len(self, fig7):
        assert len(label_messages(fig7)) == 3


class TestConsistencyChecker:
    def test_violation_details(self, fig7):
        bad = Labeling(
            {"A": Fraction(1), "B": Fraction(1), "C": Fraction(2)}
        )
        # C4 reads C (2) then B (1): decreasing.
        violations = check_consistency(fig7, bad)
        assert violations
        v = violations[0]
        assert v.cell == "C4"
        assert v.previous_message == "C"
        assert v.message == "B"
        assert "C4" in str(v)

    def test_consistent_has_no_violations(self, fig7):
        assert check_consistency(fig7, label_messages(fig7)) == []
