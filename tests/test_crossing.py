"""Crossing-off procedure tests: Sections 3 and 8.1, Figs. 4, 5, 6, 10."""

import pytest

from repro.core.crossing import (
    LookaheadConfig,
    cross_off,
    is_deadlock_free,
    uniform_lookahead,
)
from repro.core.message import Message
from repro.core.ops import R, W
from repro.core.program import ArrayProgram


class TestFig4Trace:
    """The crossing-off run on the Fig. 2 filtering program."""

    def test_deadlock_free(self, fig2):
        assert cross_off(fig2).deadlock_free

    def test_twelve_steps(self, fig2):
        result = cross_off(fig2)
        assert result.step_count == 12

    def test_fifteen_pairs(self, fig2):
        assert cross_off(fig2).pairs_crossed == 15

    def test_double_steps_are_3_5_9(self, fig2):
        result = cross_off(fig2)
        doubles = [
            i for i, step in enumerate(result.steps, start=1) if len(step) == 2
        ]
        assert doubles == [3, 5, 9]

    def test_first_pair_is_xa(self, fig2):
        result = cross_off(fig2)
        first = result.steps[0]
        assert len(first) == 1
        assert first[0].message == "XA"
        assert first[0].sender == "HOST"
        assert first[0].receiver == "C1"

    def test_sequential_mode_same_classification(self, fig2):
        assert cross_off(fig2, mode="sequential").deadlock_free

    def test_sequential_crosses_one_pair_per_step(self, fig2):
        result = cross_off(fig2, mode="sequential")
        assert all(len(step) == 1 for step in result.steps)
        assert result.step_count == 15


class TestFig5Classification:
    def test_p1_deadlocked(self, p1):
        assert not is_deadlock_free(p1)

    def test_p2_deadlocked(self, p2):
        assert not is_deadlock_free(p2)

    def test_p3_deadlocked(self, p3):
        assert not is_deadlock_free(p3)

    def test_p1_no_executable_pair_at_start(self, p1):
        result = cross_off(p1)
        assert result.pairs_crossed == 0
        assert set(result.uncrossed) == {"C1", "C2"}

    def test_uncrossed_lists_all_ops(self, p1):
        result = cross_off(p1)
        assert len(result.uncrossed["C1"]) == 6
        assert len(result.uncrossed["C2"]) == 6


class TestFig6Cycle:
    def test_cycle_yet_deadlock_free(self, fig6):
        assert is_deadlock_free(fig6)

    def test_cycle_crossing_order(self, fig6):
        result = cross_off(fig6, mode="sequential")
        assert [p.message for p in result.crossings] == ["A", "B", "C", "D"]


class TestLookaheadFig10:
    """Section 8.1 on program P1 with two-word queues."""

    def test_p1_becomes_deadlock_free(self, p1):
        assert is_deadlock_free(p1, uniform_lookahead(p1, 2))

    def test_first_pair_is_b_skipping_two_writes(self, p1):
        result = cross_off(p1, lookahead=uniform_lookahead(p1, 2), mode="sequential")
        first = result.crossings[0]
        assert first.message == "B"
        assert first.sender_pos == 2  # W(B) behind two W(A)s
        assert first.receiver_pos == 0
        assert dict(first.skipped_sender) == {"A": 2}

    def test_second_pair_is_first_a(self, p1):
        result = cross_off(p1, lookahead=uniform_lookahead(p1, 2), mode="sequential")
        second = result.crossings[1]
        assert second.message == "A"
        assert second.sender_pos == 0
        assert second.receiver_pos == 1

    def test_third_pair_is_b_again_skipping_two(self, p1):
        result = cross_off(p1, lookahead=uniform_lookahead(p1, 2), mode="sequential")
        third = result.crossings[2]
        assert third.message == "B"
        assert third.sender_pos == 4
        assert dict(third.skipped_sender) == {"A": 2}

    def test_max_skipped_never_exceeds_bound(self, p1):
        result = cross_off(p1, lookahead=uniform_lookahead(p1, 2), mode="sequential")
        assert result.max_skipped["A"] == 2
        assert result.max_skipped["B"] == 0

    def test_capacity_one_insufficient_for_p1(self, p1):
        assert not is_deadlock_free(p1, uniform_lookahead(p1, 1))

    def test_rule_r1_p3_never_rescued(self, p3):
        assert not is_deadlock_free(p3, uniform_lookahead(p3, 10_000))

    def test_p2_rescued_by_capacity_two(self, p2):
        assert is_deadlock_free(p2, uniform_lookahead(p2, 2))

    def test_p2_capacity_one_insufficient(self, p2):
        # Both cells must buffer their full 2-word output before reading.
        assert not is_deadlock_free(p2, uniform_lookahead(p2, 1))


class TestLookaheadConfig:
    def test_per_message_capacity(self):
        cfg = LookaheadConfig(route_capacity={"A": 2.0}, default_capacity=1.0)
        assert cfg.capacity("A") == 2.0
        assert cfg.capacity("B") == 1.0


class TestRuleR2Accounting:
    def test_skip_budget_is_per_message(self):
        # C1 writes A, B, then C; C2 reads C, A, B. Locating W(C) skips one
        # write to A and one to B — allowed with capacity 1 each, even
        # though two writes are skipped in total.
        prog = ArrayProgram(
            ("C1", "C2"),
            [
                Message("A", "C1", "C2", 1),
                Message("B", "C1", "C2", 1),
                Message("C", "C1", "C2", 1),
            ],
            {
                "C1": [W("A"), W("B"), W("C")],
                "C2": [R("C"), R("A"), R("B")],
            },
        )
        assert not is_deadlock_free(prog)
        assert is_deadlock_free(prog, uniform_lookahead(prog, 1))

    def test_receiver_side_lookahead(self):
        # The receiver's R(A) sits behind its own write; lookahead must
        # skip the receiver-side write too (rule R1 allows it).
        prog = ArrayProgram(
            ("C1", "C2"),
            [
                Message("A", "C1", "C2", 1),
                Message("B", "C2", "C1", 1),
            ],
            {
                "C1": [W("A"), R("B")],
                "C2": [W("B"), R("A")],
            },
        )
        assert not is_deadlock_free(prog)
        result = cross_off(prog, lookahead=uniform_lookahead(prog, 1), mode="sequential")
        assert result.deadlock_free
        first = result.crossings[0]
        assert first.skipped_receiver or first.skipped_sender


class TestModeValidation:
    def test_unknown_mode(self, fig2):
        with pytest.raises(ValueError):
            cross_off(fig2, mode="bogus")


class TestObserver:
    def test_observer_sees_every_pair(self, fig6):
        seen = []
        cross_off(
            fig6,
            mode="sequential",
            observer=lambda state, pair: seen.append(pair.message),
        )
        assert seen == ["A", "B", "C", "D"]

    def test_pick_overrides_choice(self, fig7):
        result = cross_off(
            fig7,
            mode="sequential",
            pick=lambda pairs: pairs[-1],
        )
        # C sorts after A, so picking the last pair starts with C.
        assert result.crossings[0].message == "C"
        assert result.deadlock_free
