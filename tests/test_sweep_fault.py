"""Fault-injection harness: the supervised executor under crash/hang/corrupt.

Deterministically injects the three characteristic sweep failures —
worker crash (abrupt ``os._exit``), hung job, torn arena write — via
:class:`repro.sweep.fault.FaultPlan` and pins the recovery contract:
a recovered sweep's rows and reducer summaries are byte-identical to a
fault-free serial run, poison jobs are quarantined as data instead of
aborting the sweep, and persistent hangs become timeout rows.
"""

import dataclasses
import json
import os

import pytest

from repro.algorithms.figures import fig7_program
from repro.errors import (
    ArenaSlotUnwritten,
    ConfigError,
    ReproError,
    WorkerCrashError,
)
from repro.sweep import (
    WORKER_CRASH_KIND,
    CompletedCount,
    DeadlockRateByConfig,
    FaultPlan,
    MakespanHistogram,
    QuantileReducer,
    SimJob,
    SweepPlan,
    SweepSession,
    Tolerance,
    sweep_jobs,
)
from repro.sweep.fault import CRASH_EXIT_CODE

SUPERVISED = ("pool", "shm")


def corpus_jobs() -> list[SimJob]:
    """A small grid covering completed, deadlocked and timeout rows."""
    jobs = sweep_jobs(
        fig7_program(), policies=("ordered", "fcfs"), queues=(1, 2), repeat=2
    )
    jobs.append(SimJob(fig7_program(), max_events=3))  # timeout corner
    return jobs


def fresh_reducers():
    return (
        CompletedCount(),
        MakespanHistogram(bucket_width=8),
        DeadlockRateByConfig(),
        QuantileReducer((0.5, 0.95)),
    )


def summaries_json(reducers) -> str:
    return json.dumps(
        {r.name: r.summary() for r in reducers}, sort_keys=True, default=str
    )


def run_plan(jobs, backend, **kwargs):
    reducers = fresh_reducers()
    plan = SweepPlan(
        jobs=jobs,
        reducers=reducers,
        backend=backend,
        workers=2,
        chunk_size=3,
        **kwargs,
    )
    rows = list(SweepSession(plan).stream())
    return rows, summaries_json(reducers)


@pytest.fixture(scope="module")
def baseline():
    jobs = corpus_jobs()
    rows, summaries = run_plan(jobs, "serial")
    return jobs, rows, summaries


class TestSupervisedDifferential:
    """Supervision without faults must change nothing observable."""

    @pytest.mark.parametrize("backend", SUPERVISED)
    def test_no_faults_matches_serial(self, baseline, backend):
        jobs, base_rows, base_summaries = baseline
        rows, summaries = run_plan(jobs, backend, max_retries=2)
        assert rows == base_rows
        assert summaries == base_summaries

    def test_serial_ignores_tolerance_and_faults(self, baseline, tmp_path):
        jobs, base_rows, base_summaries = baseline
        plan = FaultPlan(spool=str(tmp_path), crash={0: 1}, hang={1: 1})
        rows, summaries = run_plan(
            jobs, "serial", fault_plan=plan, job_timeout_s=5.0
        )
        # Serial is the fault-free reference: the plan is installed but
        # never fired (no supervised worker loop in-process).
        assert rows == base_rows
        assert summaries == base_summaries
        assert not os.listdir(tmp_path)


class TestCrashRecovery:
    @pytest.mark.parametrize("backend", SUPERVISED)
    def test_crashed_jobs_are_requeued(self, baseline, tmp_path, backend):
        jobs, base_rows, base_summaries = baseline
        spool = tmp_path / backend
        spool.mkdir()
        plan = FaultPlan(spool=str(spool), crash={1: 1, 5: 2})
        rows, summaries = run_plan(
            jobs, backend, fault_plan=plan, max_retries=3
        )
        assert rows == base_rows
        assert summaries == base_summaries
        fired = sorted(os.listdir(spool))
        # Every armed crash actually fired (plus the one clean re-probe
        # marker per fault key that finds the fault exhausted).
        assert any(m.startswith("crash-1-") for m in fired)
        assert any(m.startswith("crash-5-1") for m in fired)

    def test_poison_job_quarantined_as_row(self, baseline, tmp_path):
        jobs, base_rows, _ = baseline
        # Crashes forever: armed for more attempts than the budget.
        plan = FaultPlan(spool=str(tmp_path), crash={2: 99})
        rows, _ = run_plan(
            jobs, "pool", fault_plan=plan, max_retries=1
        )
        assert len(rows) == len(base_rows)
        poisoned = rows[2]
        assert poisoned.error_kind == WORKER_CRASH_KIND
        assert poisoned.outcome == "infeasible"
        assert str(CRASH_EXIT_CODE) in (poisoned.error or "")
        # Every other job is untouched by the quarantine.
        assert [r for i, r in enumerate(rows) if i != 2] == [
            r for i, r in enumerate(base_rows) if i != 2
        ]

    def test_poison_job_raises_under_on_error_raise(self, tmp_path):
        jobs = corpus_jobs()
        plan = FaultPlan(spool=str(tmp_path), crash={0: 99})
        session = SweepSession(
            SweepPlan(
                jobs=jobs,
                backend="pool",
                workers=2,
                chunk_size=3,
                on_error="raise",
                fault_plan=plan,
                max_retries=1,
            )
        )
        with pytest.raises(WorkerCrashError, match="job 0"):
            list(session.stream())


class TestTimeouts:
    @pytest.mark.parametrize("backend", SUPERVISED)
    def test_hung_job_recovers_on_retry(self, baseline, tmp_path, backend):
        jobs, base_rows, base_summaries = baseline
        spool = tmp_path / backend
        spool.mkdir()
        plan = FaultPlan(spool=str(spool), hang={3: 1}, hang_s=30.0)
        rows, summaries = run_plan(
            jobs, backend, fault_plan=plan, job_timeout_s=0.5, max_retries=2
        )
        assert rows == base_rows
        assert summaries == base_summaries

    def test_persistent_hang_becomes_timeout_row(self, baseline, tmp_path):
        jobs, base_rows, _ = baseline
        plan = FaultPlan(spool=str(tmp_path), hang={4: 99}, hang_s=30.0)
        rows, _ = run_plan(
            jobs, "pool", fault_plan=plan, job_timeout_s=0.3, max_retries=1
        )
        hung = rows[4]
        assert hung.outcome == "timeout"
        assert hung.timed_out and not hung.completed and not hung.deadlocked
        assert hung.error_kind is None  # same bucket as a max_time expiry
        assert "timeout" in (hung.error or "")
        assert [r for i, r in enumerate(rows) if i != 4] == [
            r for i, r in enumerate(base_rows) if i != 4
        ]


class PlainBoom(Exception):
    """A picklable non-Repro bug: must cross the pipe verbatim."""


class UnpicklableBoom(Exception):
    """An exception whose payload defeats pickling (closure attribute)."""

    def __init__(self, message):
        super().__init__(message)
        self.payload = lambda: None


def _raise_plain(value):
    raise PlainBoom("original message intact")


def _raise_unpicklable(value):
    raise UnpicklableBoom("kaboom with context")


def _raise_memory_error(value):
    raise MemoryError("injected bug-class failure")


def _compute_job(fn) -> SimJob:
    """A job whose simulation calls ``fn`` (a module-level, picklable
    callable) on a received value — the worker-side error injection."""
    from repro import COMPUTE, ArrayProgram, Message, R, W

    program = ArrayProgram(
        ["C1", "C2"],
        [Message("A", "C1", "C2", 1)],
        {
            "C1": [W("A", constant=2.0)],
            "C2": [R("A", into="x"), COMPUTE("y", fn, ["x"])],
        },
    )
    return SimJob(program)


class TestWorkerErrorNarrowing:
    """The worker's except blocks are narrowed, not blanket.

    Three pinned behaviors: a picklable bug crosses the pipe verbatim;
    an exception whose *payload* cannot pickle is substituted with a
    summary ``RuntimeError`` and counted in ``payload_drops``; and
    :exc:`MemoryError` is bug-class — it kills the worker (crash
    recovery territory) instead of being shipped as an ordinary error.
    """

    def _supervisor(self, jobs, **tol):
        from repro.sweep.backends import WorkerContext
        from repro.sweep.backends.supervise import Supervisor

        return Supervisor(
            jobs,
            want_results=False,
            collect_errors=True,
            workers=1,
            chunk_size=1,
            ctx=WorkerContext.capture(),
            tolerance=Tolerance(**tol),
        )

    def test_picklable_error_crosses_verbatim(self):
        sup = self._supervisor([_compute_job(_raise_plain)])
        with pytest.raises(PlainBoom, match="original message intact"):
            list(sup.run())
        assert sup.stats()["payload_drops"] == 0

    def test_unpicklable_payload_substituted_and_counted(self):
        sup = self._supervisor(
            [SimJob(fig7_program()), _compute_job(_raise_unpicklable)]
        )
        records = []
        with pytest.raises(RuntimeError, match="UnpicklableBoom: kaboom"):
            for record in sup.run():
                records.append(record)
        # The healthy job's row still made it out, in order.
        assert [r.index for r in records] == [0]
        assert sup.stats()["payload_drops"] == 1

    def test_memory_error_kills_the_worker_not_the_contract(self):
        sup = self._supervisor(
            [SimJob(fig7_program()), _compute_job(_raise_memory_error)],
            max_retries=0,
        )
        rows = [record.row for record in sup.run()]
        # The MemoryError was never shipped as data: the worker died and
        # the job was quarantined through crash recovery instead.
        assert rows[1].error_kind == WORKER_CRASH_KIND
        assert rows[0].completed
        assert sup.stats()["payload_drops"] == 0


class TestArenaFaults:
    def test_corrupt_slot_requeued(self, baseline, tmp_path):
        jobs, base_rows, base_summaries = baseline
        plan = FaultPlan(spool=str(tmp_path), corrupt={0: 1, 6: 1})
        rows, summaries = run_plan(
            jobs, "shm", fault_plan=plan, max_retries=2
        )
        assert rows == base_rows
        assert summaries == base_summaries
        fired = os.listdir(tmp_path)
        assert any(m.startswith("corrupt-0-") for m in fired)
        assert any(m.startswith("corrupt-6-") for m in fired)

    def test_unwritten_slot_error_is_typed(self):
        from repro.sweep import SummaryArena

        arena = SummaryArena.create(2)
        try:
            with pytest.raises(ArenaSlotUnwritten, match="never written"):
                arena.read_row(1)
            assert issubclass(ArenaSlotUnwritten, ReproError)
        finally:
            arena.close()
            arena.unlink()


class TestKnobValidation:
    def test_tolerance_validates(self):
        with pytest.raises(ConfigError, match="max_retries"):
            Tolerance(max_retries=-1)
        with pytest.raises(ConfigError, match="job_timeout_s"):
            Tolerance(job_timeout_s=0)
        with pytest.raises(ConfigError, match="retry_backoff_s"):
            Tolerance(retry_backoff_s=-0.1)
        assert Tolerance().backoff(1) == pytest.approx(0.05)
        assert Tolerance().backoff(3) == pytest.approx(0.2)
        assert Tolerance(retry_backoff_s=10).backoff(9) == 2.0  # capped

    def test_plan_knobs_validate_at_session_creation(self):
        jobs = corpus_jobs()[:1]
        with pytest.raises(ConfigError, match="max_retries"):
            SweepSession(SweepPlan(jobs=jobs, max_retries=-2))
        with pytest.raises(ConfigError, match="job_timeout_s"):
            SweepSession(SweepPlan(jobs=jobs, job_timeout_s=-1.0))

    def test_fault_plan_normalization(self, tmp_path):
        plan = FaultPlan(spool=str(tmp_path), crash=[1, 4], hang={2: 3})
        assert plan.crash == {1: 1, 4: 1}
        assert plan.hang == {2: 3}
        with pytest.raises(ConfigError, match="times >= 1"):
            FaultPlan(spool=str(tmp_path), crash={1: 0})
        with pytest.raises(ConfigError, match="index >= 0"):
            FaultPlan(spool=str(tmp_path), hang=[-1])

    def test_fault_plan_fires_bounded_times(self, tmp_path):
        plan = FaultPlan(spool=str(tmp_path), corrupt={0: 2})

        class FakeArena:
            cleared = 0

            def clear_slot(self, slot):
                FakeArena.cleared += 1

        arena = FakeArena()
        fired = [plan.maybe_corrupt(arena, 0) for _ in range(5)]
        assert fired == [True, True, False, False, False]
        assert FakeArena.cleared == 2
        assert plan.maybe_corrupt(arena, 1) is False  # unarmed index


class TestArenaCleanup:
    """The shm arena must be unlinked on every exit path."""

    def _capture_arena_names(self, monkeypatch):
        from repro.sweep import arena as arena_mod

        created = []
        real_create = arena_mod.SummaryArena.create.__func__

        def recording_create(cls, n_rows):
            arena = real_create(cls, n_rows)
            created.append(arena.name)
            return arena

        monkeypatch.setattr(
            arena_mod.SummaryArena,
            "create",
            classmethod(recording_create),
        )
        return created

    def _assert_unlinked(self, names):
        from repro.sweep import SummaryArena

        assert names, "backend never created an arena"
        for name in names:
            with pytest.raises(FileNotFoundError):
                SummaryArena.attach(name, 1)

    def test_unlinked_after_error_raise(self, monkeypatch):
        names = self._capture_arena_names(monkeypatch)
        bad = SimJob(fig7_program(), policy="no-such-policy")
        session = SweepSession(
            SweepPlan(
                jobs=[bad],
                backend="shm",
                workers=2,
                on_error="raise",
                max_retries=1,
            )
        )
        with pytest.raises(ReproError):
            list(session.stream())
        self._assert_unlinked(names)

    def test_unlinked_after_generator_close(self, monkeypatch, baseline):
        jobs, _, _ = baseline
        names = self._capture_arena_names(monkeypatch)
        stream = SweepSession(
            SweepPlan(
                jobs=jobs,
                backend="shm",
                workers=2,
                chunk_size=3,
                max_retries=1,
            )
        ).stream()
        next(stream)
        stream.close()  # mid-sweep teardown (what Ctrl-C does in the CLI)
        self._assert_unlinked(names)

    def test_unlinked_after_legacy_close(self, monkeypatch, baseline):
        jobs, _, _ = baseline
        names = self._capture_arena_names(monkeypatch)
        stream = SweepSession(
            SweepPlan(jobs=jobs, backend="shm", workers=2, chunk_size=3)
        ).stream()
        next(stream)
        stream.close()
        self._assert_unlinked(names)


class TestFaultPlanUnits:
    """The FaultPlan pieces that fire inside workers, tested in-parent."""

    def test_iterable_spec_normalizes_to_fire_once(self, tmp_path):
        from repro.sweep.fault import FaultPlan

        plan = FaultPlan(spool=str(tmp_path), hang=[3, 7], hang_s=0.0)
        assert plan.hang == {3: 1, 7: 1}

    def test_invalid_entries_rejected(self, tmp_path):
        from repro.errors import ConfigError
        from repro.sweep.fault import FaultPlan

        with pytest.raises(ConfigError, match="index >= 0"):
            FaultPlan(spool=str(tmp_path), crash={-1: 1})
        with pytest.raises(ConfigError, match="times >= 1"):
            FaultPlan(spool=str(tmp_path), crash={0: 0})

    def test_hang_fires_exactly_times_then_runs_clean(self, tmp_path):
        from repro.sweep.fault import FaultPlan

        plan = FaultPlan(spool=str(tmp_path), hang={5: 1}, hang_s=0.0)
        plan.maybe_hang(5)  # armed: claims attempt 0 and sleeps (0s)
        assert (tmp_path / "hang-5-0").exists()
        plan.maybe_hang(5)  # exhausted: claims attempt 1, no sleep
        assert (tmp_path / "hang-5-1").exists()
        plan.maybe_hang(0)  # unarmed index: no marker at all
        assert not (tmp_path / "hang-0-0").exists()

    def test_install_and_active_plan_round_trip(self, tmp_path):
        from repro.sweep.fault import FaultPlan, active_plan, install

        assert active_plan() is None
        plan = FaultPlan(spool=str(tmp_path))
        install(plan)
        try:
            assert active_plan() is plan
        finally:
            install(None)
        assert active_plan() is None
