"""Simulator edge cases: overrides, bidirectional traffic, odd shapes."""

import pytest

from repro import ArrayConfig, Link, Simulator, simulate
from repro.core.message import Message
from repro.core.ops import R, W
from repro.core.program import ArrayProgram
from repro.errors import ProgramError


class TestLinkOverrides:
    def test_override_fixes_only_the_hot_link(self, fig8):
        # Fig. 8 needs 2 queues only on C2->C3; override just that link.
        config = ArrayConfig(
            queues_per_link=1,
            link_queue_overrides={Link("C2", "C3"): 2},
        )
        result = simulate(fig8, config=config, policy="ordered")
        assert result.completed


class TestBidirectionalTraffic:
    def test_same_interval_both_directions(self):
        # A rightward and a leftward message share the C1-C2 interval but
        # use per-direction queues; no interference.
        prog = ArrayProgram(
            ("C1", "C2"),
            [
                Message("R1", "C1", "C2", 3),
                Message("L1", "C2", "C1", 3),
            ],
            {
                "C1": [W("R1"), R("L1"), W("R1"), R("L1"), W("R1"), R("L1")],
                "C2": [R("R1"), W("L1"), R("R1"), W("L1"), R("R1"), W("L1")],
            },
        )
        result = simulate(prog)
        assert result.completed


class TestDegenerateShapes:
    def test_single_message_single_word(self):
        prog = ArrayProgram(
            ("C1", "C2"),
            [Message("M", "C1", "C2", 1)],
            {"C1": [W("M", constant=7.0)], "C2": [R("M", into="v")]},
        )
        result = simulate(prog)
        assert result.completed
        assert result.registers["C2"]["v"] == 7.0

    def test_cells_with_no_programs(self):
        prog = ArrayProgram(
            ("C1", "C2", "C3", "C4", "C5"),
            [Message("M", "C1", "C5", 2)],
            {"C1": [W("M")] * 2, "C5": [R("M")] * 2},
        )
        result = simulate(prog)
        assert result.completed

    def test_empty_program_completes_immediately(self):
        prog = ArrayProgram(("C1", "C2"), [], {})
        result = simulate(prog)
        assert result.completed
        assert result.time == 0

    def test_long_message_through_narrow_pipe(self):
        prog = ArrayProgram(
            ("C1", "C2", "C3"),
            [Message("M", "C1", "C3", 50)],
            {
                "C1": [W("M", constant=float(i)) for i in range(50)],
                "C3": [R("M", into="last")] * 50,
            },
        )
        result = simulate(prog)
        assert result.completed
        assert result.received["M"] == [float(i) for i in range(50)]
        assert result.registers["C3"]["last"] == 49.0


class TestLatencyKnobs:
    def test_op_latency_scales_makespan(self):
        def run(op_latency: int) -> int:
            prog = ArrayProgram(
                ("C1", "C2"),
                [Message("M", "C1", "C2", 5)],
                {"C1": [W("M")] * 5, "C2": [R("M")] * 5},
            )
            return simulate(prog, config=ArrayConfig(op_latency=op_latency)).time

        assert run(4) > run(1)

    def test_buffered_queue_decouples_sender(self):
        prog = ArrayProgram(
            ("C1", "C2"),
            [Message("M", "C1", "C2", 4)],
            {
                "C1": [W("M")] * 4,
                "C2": [R("M", cycles=5)] * 4,  # slow reader
            },
        )
        sync = simulate(prog, config=ArrayConfig(queue_capacity=0))
        buffered = simulate(prog, config=ArrayConfig(queue_capacity=4))
        assert sync.completed and buffered.completed
        # With buffering, the sender's busy time is not stretched by the
        # slow reader: the cell finishes writing long before the run ends.
        assert buffered.busy_cycles["cell:C1"] <= sync.time


class TestValidationAtSimLevel:
    def test_program_errors_surface_before_running(self):
        with pytest.raises(ProgramError):
            ArrayProgram(
                ("C1", "C2"),
                [Message("M", "C1", "C2", 2)],
                {"C1": [W("M")], "C2": [R("M"), R("M")]},
            )

    def test_simulator_rejects_reuse(self, fig6):
        sim = Simulator(fig6)
        first = sim.run()
        assert first.completed
        # A second run on the same instance is undefined; the engine is
        # drained, so it returns immediately without progress.
        second = sim.run()
        assert second.events == first.events  # nothing further happened
