"""Systolic vs memory-to-memory comparison tests (Fig. 1, Section 1)."""

from repro import ArrayConfig
from repro.algorithms.figures import fig2_fir, fig2_registers
from repro.sim.memory_model import compare_models


class TestComparison:
    def test_accesses_per_word_is_four(self, fig2):
        cmp = compare_models(fig2, registers=fig2_registers())
        assert cmp.systolic_accesses == 0
        assert cmp.accesses_per_word(cmp.memory) == 4.0

    def test_memory_model_is_slower(self, fig2):
        cmp = compare_models(fig2, registers=fig2_registers())
        assert cmp.speedup > 1.0

    def test_speedup_grows_with_memory_cost(self, fig2):
        speedups = [
            compare_models(
                fig2, memory_access_cycles=cost, registers=fig2_registers()
            ).speedup
            for cost in (1, 2, 4)
        ]
        assert speedups == sorted(speedups)
        assert speedups[-1] > speedups[0]

    def test_same_results_under_both_models(self, fig2):
        cmp = compare_models(fig2, registers=fig2_registers())
        assert cmp.systolic.received["YA"] == cmp.memory.received["YA"]

    def test_row_fields(self, fig2):
        row = compare_models(fig2, registers=fig2_registers()).row()
        assert set(row) >= {
            "mem_cost",
            "systolic_cycles",
            "memory_cycles",
            "speedup",
            "mem_accesses_per_word",
        }

    def test_respects_base_config(self, fig8):
        base = ArrayConfig(queues_per_link=2)
        cmp = compare_models(fig8, base_config=base)
        assert cmp.systolic.completed and cmp.memory.completed
