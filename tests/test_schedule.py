"""Schedule analysis tests."""

import pytest

from repro import simulate
from repro.algorithms.figures import fig2_registers
from repro.core.schedule import analyze_schedule, schedule_row
from repro.errors import DeadlockedProgramError


class TestAnalyzeSchedule:
    def test_fig2_rounds_match_fig4(self, fig2):
        analysis = analyze_schedule(fig2)
        assert analysis.transfer_rounds == 12
        assert analysis.total_pairs == 15
        assert analysis.max_parallelism == 2
        assert analysis.mean_parallelism == pytest.approx(15 / 12)

    def test_busiest_cell_is_c1(self, fig2):
        analysis = analyze_schedule(fig2)
        assert analysis.busiest_cell == "C1"
        assert analysis.busiest_cell_ops == 11
        assert analysis.cycle_lower_bound == 11

    def test_deadlocked_program_rejected(self, p1):
        with pytest.raises(DeadlockedProgramError):
            analyze_schedule(p1)

    def test_efficiency_bounds(self, fig2):
        analysis = analyze_schedule(fig2)
        result = simulate(fig2, registers=fig2_registers())
        eff = analysis.efficiency_against(result.time)
        assert 0 < eff <= 1.0  # the bound is a true lower bound

    def test_lower_bound_is_sound(self, fig6, fig7):
        for prog in (fig6, fig7):
            analysis = analyze_schedule(prog)
            result = simulate(prog)
            assert result.time >= analysis.cycle_lower_bound


class TestScheduleRow:
    def test_row_fields(self, fig2):
        result = simulate(fig2, registers=fig2_registers())
        row = schedule_row(fig2, result.time)
        assert row["rounds"] == 12
        assert row["pairs"] == 15
        assert row["makespan"] == result.time
        assert 0 < row["efficiency"] <= 1.0
