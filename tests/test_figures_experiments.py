"""The paper's figures as executable assertions — the reproduction core.

Each class pins one figure's claims; benches regenerate the artefacts,
these tests gate them. (Experiment ids follow DESIGN.md.)
"""

import pytest

from repro import (
    ArrayConfig,
    constraint_labeling,
    cross_off,
    is_deadlock_free,
    label_messages,
    simulate,
    uniform_lookahead,
)
from repro.algorithms.figures import (
    all_figures,
    fig2_expected_outputs,
    fig2_registers,
    fig7_program,
)
from repro.core.labeling import labels_as_str


class TestE2Fig2Program:
    """Fig. 2: the filtering program is valid, deadlock-free, and correct."""

    def test_message_lengths_match_paper(self, fig2):
        lengths = {name: msg.length for name, msg in fig2.messages.items()}
        assert lengths == {
            "XA": 4, "XB": 3, "XC": 2, "YA": 2, "YB": 2, "YC": 2,
        }

    def test_host_listing(self, fig2):
        assert [str(o) for o in fig2.transfers("HOST")] == [
            "W(XA)", "W(XA)", "W(XA)", "R(YA)", "W(XA)", "R(YA)",
        ]

    def test_c1_listing(self, fig2):
        assert [str(o) for o in fig2.transfers("C1")] == [
            "R(XA)", "W(XB)", "R(XA)", "W(XB)", "R(XA)", "R(YB)",
            "W(XB)", "W(YA)", "R(XA)", "R(YB)", "W(YA)",
        ]

    def test_c2_listing(self, fig2):
        assert [str(o) for o in fig2.transfers("C2")] == [
            "R(XB)", "W(XC)", "R(XB)", "R(YC)", "W(XC)",
            "W(YB)", "R(XB)", "R(YC)", "W(YB)",
        ]

    def test_c3_listing(self, fig2):
        assert [str(o) for o in fig2.transfers("C3")] == [
            "R(XC)", "W(YC)", "R(XC)", "W(YC)",
        ]

    def test_filter_values(self, fig2):
        result = simulate(fig2, registers=fig2_registers())
        assert result.received["YA"] == list(fig2_expected_outputs())


class TestE3Fig4CrossingTrace:
    """Fig. 4: 12 steps, doubles at 3/5/9 — asserted in test_crossing too,
    here pinned against the rendered artefact."""

    def test_full_trace_shape(self, fig2):
        result = cross_off(fig2)
        sizes = [len(step) for step in result.steps]
        assert sizes == [1, 1, 2, 1, 2, 1, 1, 1, 2, 1, 1, 1]

    def test_step_messages(self, fig2):
        trace = [
            sorted(p.message for p in step) for step in cross_off(fig2).steps
        ]
        assert trace == [
            ["XA"],
            ["XB"],
            ["XA", "XC"],
            ["XB"],
            ["XA", "YC"],
            ["XC"],
            ["YB"],
            ["XB"],
            ["YA", "YC"],
            ["XA"],
            ["YB"],
            ["YA"],
        ]


class TestE4Fig5Gallery:
    def test_classifications(self, p1, p2, p3):
        assert not is_deadlock_free(p1)
        assert not is_deadlock_free(p2)
        assert not is_deadlock_free(p3)

    def test_all_deadlock_at_runtime_unbuffered(self, p1, p2, p3, unbuffered):
        for prog in (p1, p2, p3):
            result = simulate(prog, config=unbuffered, policy="fcfs")
            assert result.deadlocked, prog.name

    def test_p1_first_words_blocked(self, p1, unbuffered):
        # "cell Cl cannot finish writing the first word in A"
        result = simulate(p1, config=unbuffered, policy="fcfs")
        assert any("W(A)" in b for b in result.blocked)


class TestE5Fig6CycleNotDeadlock:
    def test_cycle_in_endpoints(self, fig6):
        senders = {m.sender: m.receiver for m in fig6.messages.values()}
        # Follow the chain from C1: it must return to C1 (a cycle).
        node, seen = "C1", []
        for _ in range(4):
            node = senders[node]
            seen.append(node)
        assert node == "C1"

    def test_yet_deadlock_free_and_completes(self, fig6, unbuffered):
        assert is_deadlock_free(fig6)
        assert simulate(fig6, config=unbuffered).completed


class TestE6Fig7OrderingDeadlock:
    def test_paper_labels(self, fig7):
        assert labels_as_str(label_messages(fig7)) == "A=1 B=3 C=2"

    def test_contrast(self, fig7, unbuffered):
        assert simulate(fig7, config=unbuffered, policy="fcfs").deadlocked
        assert simulate(fig7, config=unbuffered, policy="ordered").completed

    @pytest.mark.parametrize("c_len,b_len", [(2, 2), (4, 2), (6, 3), (8, 4)])
    def test_contrast_across_segment_lengths(self, c_len, b_len, unbuffered):
        prog = fig7_program(c_len=c_len, b_len=b_len)
        assert simulate(prog, config=unbuffered, policy="fcfs").deadlocked
        assert simulate(prog, config=unbuffered, policy="ordered").completed


class TestE7E8InterleavedAccess:
    def test_fig8_needs_two_queues(self, fig8, unbuffered):
        assert constraint_labeling(fig8).same_label("A", "B")
        assert simulate(fig8, config=unbuffered, policy="fcfs").deadlocked
        two = ArrayConfig(queues_per_link=2)
        assert simulate(fig8, config=two, policy="ordered").completed

    def test_fig9_needs_two_queues(self, fig9, unbuffered):
        assert constraint_labeling(fig9).same_label("A", "B")
        assert simulate(fig9, config=unbuffered, policy="fcfs").deadlocked
        two = ArrayConfig(queues_per_link=2)
        assert simulate(fig9, config=two, policy="ordered").completed


class TestE10Fig10Lookahead:
    def test_three_pairs_and_runtime(self, p1, buffered2):
        result = cross_off(p1, lookahead=uniform_lookahead(p1, 2), mode="sequential")
        assert result.deadlock_free
        first_three = [(p.message, p.sender_pos) for p in result.crossings[:3]]
        assert first_three == [("B", 2), ("A", 0), ("B", 4)]
        run = simulate(p1, config=buffered2, policy="static")
        assert run.completed


class TestAllFiguresValidate:
    @pytest.mark.parametrize("key", sorted(all_figures()))
    def test_programs_construct_and_validate(self, key):
        prog = all_figures()[key]
        assert prog.total_transfer_ops > 0
