"""Analysis-cache tests: keying, sharing, equivalence, bounds."""

import pytest

from repro import ArrayConfig, Simulator, simulate
from repro.perf import (
    AnalysisCache,
    GLOBAL_ANALYSIS_CACHE,
    analysis_cache_stats,
    clear_analysis_cache,
    program_fingerprint,
    topology_fingerprint,
)
from repro.algorithms.fir import fir_program, fir_registers
from repro.arch.topology import ExplicitLinear, LinearArray, Mesh2D
from repro.workloads import WorkloadSpec, random_program


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_analysis_cache()
    yield
    clear_analysis_cache()


class TestFingerprints:
    def test_identical_programs_share_fingerprint(self):
        a = fir_program(4, 8)
        b = fir_program(4, 8)
        assert a is not b
        assert program_fingerprint(a) == program_fingerprint(b)

    def test_different_structure_differs(self):
        assert program_fingerprint(fir_program(4, 8)) != program_fingerprint(
            fir_program(4, 9)
        )

    def test_fingerprint_memoized_on_instance(self):
        program = fir_program(4, 8)
        first = program_fingerprint(program)
        assert program_fingerprint(program) is first

    def test_topology_fingerprint_separates_shapes(self):
        cells = ("C1", "C2", "C3", "C4")
        linear = ExplicitLinear(cells)
        assert topology_fingerprint(linear) != topology_fingerprint(
            Mesh2D(2, 2)
        )
        assert topology_fingerprint(Mesh2D(2, 2)) != topology_fingerprint(
            Mesh2D(1, 4)
        )


class TestCacheBehaviour:
    def test_repeat_simulation_hits_cache(self):
        program = fir_program(4, 8)
        registers = fir_registers((1.0,) * 4)
        simulate(program, registers=registers)
        stats = analysis_cache_stats()
        assert stats["misses"] == 1
        simulate(program, registers=registers)
        stats = analysis_cache_stats()
        assert stats["hits"] >= 1
        assert stats["misses"] == 1

    def test_structurally_equal_program_object_hits(self):
        registers = fir_registers((1.0,) * 4)
        simulate(fir_program(4, 8), registers=registers)
        simulate(fir_program(4, 8), registers=registers)
        assert analysis_cache_stats()["misses"] == 1

    def test_config_bits_key_the_entry(self):
        program = fir_program(4, 8)
        registers = fir_registers((1.0,) * 4)
        simulate(program, registers=registers)
        simulate(
            program, config=ArrayConfig(queue_capacity=2), registers=registers
        )
        assert analysis_cache_stats()["misses"] == 2
        # queues_per_link does not affect the analyses -> same entry.
        simulate(
            program,
            config=ArrayConfig(queues_per_link=3),
            registers=registers,
        )
        assert analysis_cache_stats()["misses"] == 2

    def test_reuse_analysis_false_bypasses_cache(self):
        program = fir_program(4, 8)
        registers = fir_registers((1.0,) * 4)
        result = Simulator(
            program, registers=registers, reuse_analysis=False
        ).run()
        assert result.completed
        assert analysis_cache_stats()["misses"] == 0

    def test_clear_resets_counters(self):
        simulate(fir_program(4, 8), registers=fir_registers((1.0,) * 4))
        clear_analysis_cache()
        stats = analysis_cache_stats()
        assert stats == {"size": 0, "hits": 0, "misses": 0}

    def test_lru_bound_respected(self):
        cache = AnalysisCache(maxsize=2)
        config = ArrayConfig()
        for outputs in (4, 5, 6):
            program = fir_program(2, outputs)
            topo = ExplicitLinear(tuple(program.cells))
            from repro.arch.routing import default_router

            cache.lookup(program, topo, default_router(topo), config)
        assert len(cache) == 2


class TestCachedEqualsFresh:
    @pytest.mark.parametrize("seed", [0, 5])
    @pytest.mark.parametrize("capacity", [0, 2])
    def test_identical_results(self, seed, capacity):
        spec = WorkloadSpec(cells=6, messages=10, max_length=3, seed=seed)
        program = random_program(spec)
        config = ArrayConfig(queues_per_link=8, queue_capacity=capacity)
        fresh = Simulator(program, config=config, reuse_analysis=False).run()
        cold = Simulator(program, config=config).run()  # fills the cache
        warm = Simulator(program, config=config).run()  # reads the cache
        for result in (cold, warm):
            assert result.received == fresh.received
            assert result.registers == fresh.registers
            assert result.assignment_trace == fresh.assignment_trace
            assert result.time == fresh.time
            assert result.events == fresh.events

    def test_custom_labeling_not_cached_across_runs(self):
        from repro.core.labeling import trivial_labeling

        program = fir_program(4, 8)
        registers = fir_registers((1.0,) * 4)
        config = ArrayConfig(queues_per_link=4)
        auto = simulate(program, config=config, registers=registers)
        custom = Simulator(
            program,
            config=config,
            registers=registers,
            labeling=trivial_labeling(program),
        ).run()
        assert auto.completed and custom.completed
        assert auto.received == custom.received

    def test_global_cache_is_shared_across_simulators(self):
        program = fir_program(4, 8)
        sim1 = Simulator(program, registers=fir_registers((1.0,) * 4))
        sim2 = Simulator(program, registers=fir_registers((1.0,) * 4))
        assert sim1.labeling is sim2.labeling
        assert GLOBAL_ANALYSIS_CACHE.stats()["size"] == 1


class TestCustomSubclassSafety:
    def test_custom_router_is_uncacheable_without_token(self):
        from repro.arch.routing import LinearRouter
        from repro.perf import router_fingerprint

        class ParamRouter(LinearRouter):
            def __init__(self, topology, reverse=False):
                super().__init__(topology)
                self.reverse = reverse

        program = fir_program(4, 8)
        topo = ExplicitLinear(tuple(program.cells))
        router = ParamRouter(topo)
        assert router_fingerprint(router) is None
        result = Simulator(
            program, router=router, registers=fir_registers((1.0,) * 4)
        ).run()
        assert result.completed
        assert analysis_cache_stats()["size"] == 0  # nothing was cached

    def test_custom_router_with_token_is_cacheable(self):
        from repro.arch.routing import LinearRouter
        from repro.perf import router_fingerprint

        class TokenRouter(LinearRouter):
            def __init__(self, topology, flavor):
                super().__init__(topology)
                self.flavor = flavor
                self.analysis_fingerprint = f"flavor={flavor}"

        program = fir_program(4, 8)
        topo = ExplicitLinear(tuple(program.cells))
        fp_a = router_fingerprint(TokenRouter(topo, "a"))
        fp_b = router_fingerprint(TokenRouter(topo, "b"))
        assert fp_a is not None and fp_a != fp_b

    def test_custom_topology_is_uncacheable_without_token(self):
        from repro.perf import topology_fingerprint

        class WeirdTopology(ExplicitLinear):
            pass

        assert topology_fingerprint(WeirdTopology(("C1", "C2"))) is None


class TestBackendIndependence:
    """The content key deliberately excludes the crossing backend.

    The interned and columnar engines are pinned bit-identical
    (tests/test_crossing_equivalence.py), so switching backends
    mid-process must keep sharing the same cache entry — no second
    miss, no recomputed labeling.
    """

    def test_backend_switch_shares_cache_entry(self):
        from repro.core.crossing import configure_crossing_backend

        program = fir_program(4, 8)
        registers = fir_registers((1.0,) * 4)
        previous = configure_crossing_backend("interned")
        try:
            first = simulate(program, registers=registers)
            assert analysis_cache_stats()["misses"] == 1
            configure_crossing_backend("auto")
            second = simulate(program, registers=registers)
        finally:
            configure_crossing_backend(previous)
        stats = analysis_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] >= 1
        assert second.completed == first.completed
        assert second.time == first.time
