"""Unit tests for message declarations and program validation."""

import pytest

from repro.core.message import Message
from repro.core.ops import COMPUTE, R, W
from repro.core.program import ArrayProgram, CellProgram, ProgramStats
from repro.errors import ProgramError


class TestMessage:
    def test_valid(self):
        msg = Message("A", "C1", "C2", 3)
        assert msg.endpoints == ("C1", "C2")
        assert "A[3]" in str(msg)

    def test_empty_name(self):
        with pytest.raises(ProgramError):
            Message("", "C1", "C2", 1)

    def test_nonpositive_length(self):
        with pytest.raises(ProgramError):
            Message("A", "C1", "C2", 0)

    def test_self_loop(self):
        with pytest.raises(ProgramError):
            Message("A", "C1", "C1", 1)

    def test_ordering_by_name(self):
        a = Message("A", "C1", "C2", 1)
        b = Message("B", "C1", "C2", 1)
        assert sorted([b, a])[0] is a


def _simple() -> ArrayProgram:
    return ArrayProgram(
        ("C1", "C2"),
        [Message("A", "C1", "C2", 2)],
        {"C1": [W("A"), W("A")], "C2": [R("A"), R("A")]},
    )


class TestArrayProgram:
    def test_valid_program(self):
        prog = _simple()
        assert prog.total_transfer_ops == 4
        assert prog.total_words == 2

    def test_duplicate_cells(self):
        with pytest.raises(ProgramError):
            ArrayProgram(("C1", "C1"), [], {})

    def test_duplicate_message(self):
        msg = Message("A", "C1", "C2", 1)
        with pytest.raises(ProgramError):
            ArrayProgram(
                ("C1", "C2"), [msg, msg], {"C1": [W("A")], "C2": [R("A")]}
            )

    def test_unknown_sender_cell(self):
        with pytest.raises(ProgramError):
            ArrayProgram(("C1", "C2"), [Message("A", "CX", "C2", 1)], {})

    def test_unknown_receiver_cell(self):
        with pytest.raises(ProgramError):
            ArrayProgram(("C1", "C2"), [Message("A", "C1", "CX", 1)], {})

    def test_undeclared_message_use(self):
        with pytest.raises(ProgramError):
            ArrayProgram(("C1", "C2"), [], {"C1": [W("A")]})

    def test_write_by_non_sender(self):
        with pytest.raises(ProgramError):
            ArrayProgram(
                ("C1", "C2"),
                [Message("A", "C1", "C2", 1)],
                {"C2": [W("A"), R("A")]},
            )

    def test_read_by_non_receiver(self):
        with pytest.raises(ProgramError):
            ArrayProgram(
                ("C1", "C2"),
                [Message("A", "C1", "C2", 1)],
                {"C1": [W("A"), R("A")]},
            )

    def test_write_count_mismatch(self):
        with pytest.raises(ProgramError):
            ArrayProgram(
                ("C1", "C2"),
                [Message("A", "C1", "C2", 2)],
                {"C1": [W("A")], "C2": [R("A"), R("A")]},
            )

    def test_read_count_mismatch(self):
        with pytest.raises(ProgramError):
            ArrayProgram(
                ("C1", "C2"),
                [Message("A", "C1", "C2", 1)],
                {"C1": [W("A")], "C2": []},
            )

    def test_program_for_unknown_cell(self):
        with pytest.raises(ProgramError):
            ArrayProgram(("C1", "C2"), [], {"CX": []})

    def test_empty_cell_program_allowed(self):
        prog = ArrayProgram(
            ("C1", "C2", "C3"),
            [Message("A", "C1", "C3", 1)],
            {"C1": [W("A")], "C3": [R("A")]},
        )
        assert len(prog.cell_programs["C2"]) == 0

    def test_compute_ops_skip_validation(self):
        prog = ArrayProgram(
            ("C1", "C2"),
            [Message("A", "C1", "C2", 1)],
            {
                "C1": [COMPUTE("x", lambda: 1.0, []), W("A")],
                "C2": [R("A")],
            },
        )
        assert [str(o) for o in prog.transfers("C1")] == ["W(A)"]

    def test_message_lookup(self):
        prog = _simple()
        assert prog.message("A").length == 2
        with pytest.raises(ProgramError):
            prog.message("Z")

    def test_messages_touching(self):
        prog = _simple()
        assert [m.name for m in prog.messages_touching("C1")] == ["A"]

    def test_repr(self):
        assert "messages=1" in repr(_simple())


class TestCellProgram:
    def test_access_order(self):
        prog = CellProgram("C1", (W("A"), W("B"), W("A")))
        assert prog.message_access_order() == ["A", "B", "A"]

    def test_iteration(self):
        prog = CellProgram("C1", (W("A"),))
        assert [str(o) for o in prog] == ["W(A)"]

    def test_empty_name_rejected(self):
        with pytest.raises(ProgramError):
            CellProgram("", ())


class TestProgramStats:
    def test_of(self):
        stats = ProgramStats.of(_simple())
        assert stats.cells == 2
        assert stats.messages == 1
        assert stats.words == 2
        assert stats.transfer_ops == 4
        assert stats.max_ops_per_cell == 2
