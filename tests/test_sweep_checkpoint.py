"""Checkpoint/resume harness: interrupted sweeps must report exactly.

Pins the resumability contract of :mod:`repro.sweep.checkpoint`: a sweep
interrupted at any point — generator close, hard SIGKILL of the whole
CLI process — and resumed against its checkpoint yields the remaining
rows and reducer summaries *byte-identical* to a never-interrupted run;
a corrupt checkpoint (truncated, bit-flipped, foreign bytes) degrades to
a clean restart; a valid checkpoint for a different sweep refuses to
resume.
"""

import itertools
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.algorithms.figures import fig7_program
from repro.errors import CheckpointError, ConfigError
from repro.lang.printer import print_program
from repro.sweep import (
    CompletedCount,
    DeadlockRateByConfig,
    MakespanHistogram,
    QuantileReducer,
    SimJob,
    SweepCheckpoint,
    SweepPlan,
    SweepSession,
    sweep_fingerprint,
    sweep_jobs,
)


def corpus_jobs() -> list[SimJob]:
    jobs = sweep_jobs(
        fig7_program(), policies=("ordered", "fcfs"), queues=(1, 2), repeat=2
    )
    jobs.append(SimJob(fig7_program(), max_events=3))
    return jobs


def fresh_reducers():
    return (
        CompletedCount(),
        MakespanHistogram(bucket_width=8),
        DeadlockRateByConfig(),
        QuantileReducer((0.5, 0.95)),
    )


def summaries_json(reducers) -> str:
    return json.dumps(
        {r.name: r.summary() for r in reducers}, sort_keys=True, default=str
    )


def plan_for(jobs, reducers, **kwargs):
    return SweepPlan(jobs=jobs, reducers=reducers, **kwargs)


@pytest.fixture(scope="module")
def baseline():
    jobs = corpus_jobs()
    reducers = fresh_reducers()
    rows = list(SweepSession(plan_for(jobs, reducers)).stream())
    return jobs, rows, summaries_json(reducers)


class TestResumeByteIdentity:
    @pytest.mark.parametrize("backend", ("serial", "pool"))
    @pytest.mark.parametrize("cut", (1, 4, 8))
    def test_interrupt_then_resume(self, baseline, tmp_path, backend, cut):
        jobs, base_rows, base_summaries = baseline
        ck = str(tmp_path / f"{backend}-{cut}.ckpt")
        first = fresh_reducers()
        stream = SweepSession(
            plan_for(
                jobs,
                first,
                backend=backend,
                workers=2,
                chunk_size=3,
                checkpoint=ck,
                checkpoint_every=2,
            )
        ).stream()
        head = list(itertools.islice(stream, cut))
        stream.close()  # the finally writes a final snapshot
        assert os.path.exists(ck)

        second = fresh_reducers()
        tail = list(
            SweepSession(
                plan_for(
                    jobs,
                    second,
                    backend=backend,
                    workers=2,
                    chunk_size=3,
                    checkpoint=ck,
                    resume=True,
                )
            ).stream()
        )
        assert [r.index for r in tail] == list(range(cut, len(jobs)))
        assert head + tail == base_rows
        assert summaries_json(second) == base_summaries

    def test_resume_when_complete_restores_summaries(self, baseline, tmp_path):
        jobs, _, base_summaries = baseline
        ck = str(tmp_path / "done.ckpt")
        first = fresh_reducers()
        list(SweepSession(plan_for(jobs, first, checkpoint=ck)).stream())
        second = fresh_reducers()
        rows = list(
            SweepSession(
                plan_for(jobs, second, checkpoint=ck, resume=True)
            ).stream()
        )
        assert rows == []
        assert summaries_json(second) == base_summaries

    def test_without_resume_flag_checkpoint_is_overwritten(
        self, baseline, tmp_path
    ):
        jobs, base_rows, base_summaries = baseline
        ck = str(tmp_path / "fresh.ckpt")
        first = fresh_reducers()
        stream = SweepSession(plan_for(jobs, first, checkpoint=ck)).stream()
        next(stream)
        stream.close()
        # No --resume: the sweep starts over and runs everything.
        second = fresh_reducers()
        rows = list(SweepSession(plan_for(jobs, second, checkpoint=ck)).stream())
        assert rows == base_rows
        assert summaries_json(second) == base_summaries


class TestCorruptionTolerance:
    def _partial_checkpoint(self, jobs, tmp_path, name):
        ck = str(tmp_path / name)
        stream = SweepSession(
            plan_for(jobs, fresh_reducers(), checkpoint=ck)
        ).stream()
        list(itertools.islice(stream, 5))
        stream.close()
        return ck

    def _assert_clean_restart(self, jobs, ck, base_rows, base_summaries):
        reducers = fresh_reducers()
        rows = list(
            SweepSession(
                plan_for(jobs, reducers, checkpoint=ck, resume=True)
            ).stream()
        )
        assert rows == base_rows  # nothing was skipped
        assert summaries_json(reducers) == base_summaries

    def test_truncated_checkpoint_restarts_cleanly(self, baseline, tmp_path):
        jobs, base_rows, base_summaries = baseline
        ck = self._partial_checkpoint(jobs, tmp_path, "trunc.ckpt")
        blob = Path(ck).read_bytes()
        Path(ck).write_bytes(blob[: len(blob) // 2])
        self._assert_clean_restart(jobs, ck, base_rows, base_summaries)

    def test_bit_flipped_checkpoint_restarts_cleanly(self, baseline, tmp_path):
        jobs, base_rows, base_summaries = baseline
        ck = self._partial_checkpoint(jobs, tmp_path, "flip.ckpt")
        blob = bytearray(Path(ck).read_bytes())
        blob[len(blob) // 2] ^= 0x40
        Path(ck).write_bytes(bytes(blob))
        self._assert_clean_restart(jobs, ck, base_rows, base_summaries)

    def test_foreign_bytes_restart_cleanly(self, baseline, tmp_path):
        jobs, base_rows, base_summaries = baseline
        ck = str(tmp_path / "garbage.ckpt")
        Path(ck).write_bytes(b"not a checkpoint at all" * 10)
        self._assert_clean_restart(jobs, ck, base_rows, base_summaries)

    def test_missing_checkpoint_restarts_cleanly(self, baseline, tmp_path):
        jobs, base_rows, base_summaries = baseline
        ck = str(tmp_path / "never-written.ckpt")
        self._assert_clean_restart(jobs, ck, base_rows, base_summaries)

    @pytest.mark.parametrize(
        "corrupt",
        [
            lambda blob: blob[: len(blob) // 2],  # truncated
            lambda blob: b"junk" * 50,  # foreign bytes
            lambda blob: blob[:9] + bytes([blob[9] ^ 0x40]) + blob[10:],
        ],
        ids=["truncated", "foreign", "bit-flip"],
    )
    def test_rejected_load_is_counted(self, tmp_path, corrupt):
        path = str(tmp_path / "counted.ckpt")
        reducers = fresh_reducers()
        ck = SweepCheckpoint(path, "fp", 8)
        ck.mark_done(0)
        ck.save(reducers)
        Path(path).write_bytes(corrupt(Path(path).read_bytes()))
        fresh = SweepCheckpoint(path, "fp", 8)
        assert fresh.resume(fresh_reducers()) == 0  # clean restart...
        assert fresh.stats()["loads_rejected"] == 1  # ...but observable

    def test_missing_file_is_not_counted_as_rejected(self, tmp_path):
        ck = SweepCheckpoint(str(tmp_path / "absent.ckpt"), "fp", 8)
        assert ck.resume(fresh_reducers()) == 0
        assert ck.stats() == {"n_jobs": 8, "done": 0, "loads_rejected": 0}

    def test_memory_error_propagates_not_swallowed(
        self, tmp_path, monkeypatch
    ):
        # The bare except this replaced would have read an OOM during
        # unpickling as "absent checkpoint" and silently redone the
        # whole sweep. Only the corruption classes may be swallowed.
        import pickle

        path = str(tmp_path / "oom.ckpt")
        ck = SweepCheckpoint(path, "fp", 8)
        ck.save(fresh_reducers())

        def exploding_loads(payload):
            raise MemoryError("simulated OOM during unpickle")

        monkeypatch.setattr(pickle, "loads", exploding_loads)
        fresh = SweepCheckpoint(path, "fp", 8)
        with pytest.raises(MemoryError):
            fresh.resume(fresh_reducers())
        assert fresh.loads_rejected == 0


class TestMismatchRefusal:
    def test_different_jobs_refuse_to_resume(self, baseline, tmp_path):
        jobs, _, _ = baseline
        ck = str(tmp_path / "grid.ckpt")
        stream = SweepSession(
            plan_for(jobs, fresh_reducers(), checkpoint=ck)
        ).stream()
        next(stream)
        stream.close()
        with pytest.raises(CheckpointError, match="different sweep"):
            list(
                SweepSession(
                    plan_for(
                        jobs[:3], fresh_reducers(), checkpoint=ck, resume=True
                    )
                ).stream()
            )

    def test_different_reducers_refuse_to_resume(self, baseline, tmp_path):
        # The reducer stack is folded into the grid fingerprint, so a
        # changed stack is caught as a different sweep.
        jobs, _, _ = baseline
        ck = str(tmp_path / "reducers.ckpt")
        stream = SweepSession(
            plan_for(jobs, fresh_reducers(), checkpoint=ck)
        ).stream()
        next(stream)
        stream.close()
        with pytest.raises(CheckpointError, match="different sweep"):
            list(
                SweepSession(
                    plan_for(
                        jobs, (CompletedCount(),), checkpoint=ck, resume=True
                    )
                ).stream()
            )

    def test_reducer_stack_check_guards_direct_use(self, tmp_path):
        # Second line of defense for callers constructing SweepCheckpoint
        # directly with a fingerprint that ignores reducers.
        path = str(tmp_path / "stack.ckpt")
        ck = SweepCheckpoint(path, "same-fp", 4)
        ck.save(fresh_reducers())
        with pytest.raises(CheckpointError, match="reducer stack"):
            SweepCheckpoint(path, "same-fp", 4).resume((CompletedCount(),))

    def test_job_count_check_guards_direct_use(self, tmp_path):
        path = str(tmp_path / "count.ckpt")
        reducers = fresh_reducers()
        SweepCheckpoint(path, "same-fp", 4).save(reducers)
        with pytest.raises(CheckpointError, match="4 jobs"):
            SweepCheckpoint(path, "same-fp", 9).resume(reducers)


class TestPlanValidation:
    def test_eager_run_rejects_checkpoint(self):
        session = SweepSession(
            SweepPlan(jobs=corpus_jobs(), checkpoint="/tmp/x.ckpt")
        )
        with pytest.raises(ConfigError, match="streaming feature"):
            session.run()
        with pytest.raises(ConfigError, match="streaming feature"):
            list(session.iter_handles())

    def test_resume_requires_checkpoint_path(self):
        with pytest.raises(ConfigError, match="requires a checkpoint"):
            SweepSession(SweepPlan(jobs=corpus_jobs(), resume=True))

    def test_checkpoint_every_validated(self):
        with pytest.raises(ConfigError, match="checkpoint_every"):
            SweepSession(SweepPlan(jobs=corpus_jobs(), checkpoint_every=0))


class TestFinalSnapshotFailure:
    """A final snapshot that cannot be written must not pass silently.

    The sweep's rows are fine, but the checkpoint on disk is stale; a
    later ``--resume`` would silently redo (or double-count) work. The
    session must record the failure, warn, and raise
    :class:`CheckpointError` when nothing else is already propagating.
    """

    def _blocked_checkpoint_path(self, tmp_path) -> str:
        # The checkpoint's parent "directory" is a regular file, so
        # every snapshot write fails at makedirs with a real OSError.
        blocker = tmp_path / "blocked"
        blocker.write_text("not a directory")
        return str(blocker / "sweep.ckpt")

    def _session(self, tmp_path):
        # checkpoint_every is huge: periodic saves never fire, so the
        # *final* snapshot in the stream's finally is the failing write.
        return SweepSession(
            plan_for(
                corpus_jobs(),
                fresh_reducers(),
                checkpoint=self._blocked_checkpoint_path(tmp_path),
                checkpoint_every=10_000,
            )
        )

    def test_exhausted_stream_raises_and_marks_session(self, tmp_path):
        session = self._session(tmp_path)
        rows = []
        with pytest.warns(RuntimeWarning, match="final checkpoint"):
            with pytest.raises(CheckpointError, match="final checkpoint"):
                for row in session.stream():
                    rows.append(row)
        # Every row was delivered before the failure surfaced.
        assert len(rows) == len(corpus_jobs())
        assert isinstance(session.checkpoint_error, OSError)

    def test_closed_stream_warns_and_marks_without_raising(self, tmp_path):
        # Ctrl-C teardown closes the generator; GeneratorExit is the
        # more fundamental event, so the failure is recorded and warned
        # about but close() still completes.
        session = self._session(tmp_path)
        stream = session.stream()
        next(stream)
        with pytest.warns(RuntimeWarning, match="final checkpoint"):
            stream.close()
        assert isinstance(session.checkpoint_error, OSError)

    def test_body_error_not_replaced_by_checkpoint_error(self, tmp_path):
        # An error propagating out of the stream body must survive a
        # failing final save (which is still recorded on the session).
        jobs = corpus_jobs() + [SimJob(fig7_program(), max_events="bad")]
        session = SweepSession(
            plan_for(
                jobs,
                fresh_reducers(),
                on_error="raise",
                checkpoint=self._blocked_checkpoint_path(tmp_path),
                checkpoint_every=10_000,
            )
        )
        with pytest.warns(RuntimeWarning, match="final checkpoint"):
            with pytest.raises(TypeError):
                list(session.stream())
        assert isinstance(session.checkpoint_error, OSError)

    def test_healthy_session_has_no_checkpoint_error(self, tmp_path):
        ck = str(tmp_path / "ok.ckpt")
        session = SweepSession(
            plan_for(corpus_jobs(), fresh_reducers(), checkpoint=ck)
        )
        rows = list(session.stream())
        assert rows and os.path.exists(ck)
        assert session.checkpoint_error is None


class TestCheckpointUnit:
    def test_bitmap_roundtrip(self, tmp_path):
        ck = SweepCheckpoint(str(tmp_path / "u.ckpt"), "fp", 20, every=4)
        assert ck.remaining() == list(range(20))
        for i in (0, 7, 8, 19):
            ck.mark_done(i)
        assert all(ck.is_done(i) for i in (0, 7, 8, 19))
        assert not ck.is_done(1)
        assert ck.done_count() == 4
        assert ck.remaining() == [
            i for i in range(20) if i not in (0, 7, 8, 19)
        ]

    def test_maybe_save_cadence(self, tmp_path):
        path = tmp_path / "cadence.ckpt"
        ck = SweepCheckpoint(str(path), "fp", 20, every=4)
        saves = []
        for i in range(9):
            ck.mark_done(i)
            saves.append(ck.maybe_save(()))
        assert saves == [False] * 3 + [True] + [False] * 3 + [True, False]

    def test_save_resume_roundtrip(self, tmp_path):
        path = str(tmp_path / "rt.ckpt")
        jobs = corpus_jobs()
        reducers = fresh_reducers()
        fp = sweep_fingerprint(jobs, reducers)
        ck = SweepCheckpoint(path, fp, len(jobs))
        ck.mark_done(0)
        ck.mark_done(3)
        ck.save(reducers)
        # No stray temp files survive an atomic publish.
        assert [p.name for p in Path(str(tmp_path)).iterdir()] == ["rt.ckpt"]

        fresh = fresh_reducers()
        ck2 = SweepCheckpoint(path, fp, len(jobs))
        assert ck2.resume(fresh) == 2
        assert ck2.is_done(0) and ck2.is_done(3) and not ck2.is_done(1)
        assert summaries_json(fresh) == summaries_json(reducers)

    def test_fingerprint_sensitivity(self):
        jobs = corpus_jobs()
        reducers = fresh_reducers()
        fp = sweep_fingerprint(jobs, reducers)
        assert fp == sweep_fingerprint(list(jobs), fresh_reducers())
        assert fp != sweep_fingerprint(jobs[:-1], reducers)
        assert fp != sweep_fingerprint(jobs, (CompletedCount(),))
        tweaked = jobs[:-1] + [SimJob(fig7_program(), max_events=4)]
        assert fp != sweep_fingerprint(tweaked, reducers)


class TestCliSigkillResume:
    """End-to-end: SIGKILL the CLI mid-sweep, resume, compare bytes."""

    ARGS = [
        "--policies", "ordered,fcfs",
        "--queues", "1,2",
        "--capacity", "0,2",
        "--repeat", "3",
        "--stream",
        "--quantiles", "p50,p95",
        "--workers", "2",
    ]

    def _env(self):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return env

    def test_sigkill_then_resume_byte_identical(self, tmp_path):
        program = tmp_path / "fig7.sysp"
        program.write_text(print_program(fig7_program()))
        ref_json = tmp_path / "ref.json"
        res_json = tmp_path / "res.json"
        ck = tmp_path / "ck.bin"
        env = self._env()

        def cli(*extra):
            return subprocess.run(
                [sys.executable, "-m", "repro", "sweep", str(program)]
                + self.ARGS
                + list(extra),
                env=env,
                capture_output=True,
                text=True,
                timeout=120,
            )

        ref = cli("--json", str(ref_json))
        assert ref.returncode in (0, 1), ref.stderr

        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "sweep", str(program)]
            + self.ARGS
            + ["--checkpoint", str(ck), "--checkpoint-every", "4"],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.time() + 60
            while time.time() < deadline and not ck.exists():
                time.sleep(0.02)
            assert ck.exists(), "checkpoint never appeared"
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait()

        res = cli(
            "--checkpoint", str(ck), "--resume", "--json", str(res_json)
        )
        assert res.returncode in (0, 1), res.stderr
        assert res_json.read_bytes() == ref_json.read_bytes()
