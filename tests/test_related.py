"""Tests for the related-messages relation (Section 6)."""

from repro.core.message import Message
from repro.core.ops import R, W
from repro.core.program import ArrayProgram
from repro.core.related import (
    UnionFind,
    are_related,
    interleaved_pairs,
    related_groups,
    related_map,
)


def _three_cell(reads_c3):
    return ArrayProgram(
        ("C1", "C2", "C3"),
        [
            Message("A", "C2", "C3", sum(1 for m in reads_c3 if m == "A")),
            Message("B", "C1", "C3", sum(1 for m in reads_c3 if m == "B")),
        ],
        {
            "C1": [W("B") for m in reads_c3 if m == "B"],
            "C2": [W("A") for m in reads_c3 if m == "A"],
            "C3": [R(m) for m in reads_c3],
        },
    )


class TestInterleaving:
    def test_fig8_reads_related(self, fig8):
        assert are_related(fig8, "A", "B")

    def test_fig9_writes_related(self, fig9):
        assert are_related(fig9, "A", "B")

    def test_contiguous_blocks_unrelated(self):
        prog = _three_cell(["A", "A", "B", "B"])
        assert not are_related(prog, "A", "B")

    def test_single_interleave_is_enough(self):
        prog = _three_cell(["A", "B", "A"])
        assert are_related(prog, "A", "B")

    def test_fig7_all_singletons(self, fig7):
        groups = related_groups(fig7)
        assert all(len(g) == 1 for g in groups)

    def test_fig2_all_one_group(self, fig2):
        # Every cell of the FIR pipeline interleaves its streams, so all
        # six messages collapse into a single related class.
        groups = related_groups(fig2)
        assert len(groups) == 1
        assert len(groups[0]) == 6


class TestTransitivity:
    def test_chain_through_middle_message(self):
        # C3 interleaves A with B; C3 interleaves B with C (in separate
        # spans) -> A related to C transitively.
        prog = ArrayProgram(
            ("C1", "C2", "C3"),
            [
                Message("A", "C1", "C3", 2),
                Message("B", "C2", "C3", 3),
                Message("C", "C1", "C3", 2),
            ],
            {
                "C1": [W("A"), W("A"), W("C"), W("C")],
                "C2": [W("B"), W("B"), W("B")],
                "C3": [R("A"), R("B"), R("A"), R("B"), R("C"), R("B"), R("C")],
            },
        )
        assert are_related(prog, "A", "C")

    def test_related_map_covers_all_messages(self, fig7):
        mapping = related_map(fig7)
        assert set(mapping) == {"A", "B", "C"}


class TestInterleavedPairs:
    def test_pairs_are_canonical_order(self, fig8):
        pairs = interleaved_pairs(fig8)
        assert pairs == {("A", "B")}


class TestUnionFind:
    def test_union_and_find(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.find("a") == uf.find("c")

    def test_groups(self):
        uf = UnionFind()
        uf.add("x")
        uf.union("a", "b")
        groups = {frozenset(g) for g in uf.groups()}
        assert frozenset({"a", "b"}) in groups
        assert frozenset({"x"}) in groups
