"""Streaming reduction API: ordering, laziness, reducers, degradation."""

import types

import pytest

from repro import ArrayConfig, SimJob, simulate_many
from repro.errors import ConfigError
from repro.sim.batch import (
    CompletedCount,
    DeadlockRateByConfig,
    MakespanHistogram,
    RunSummary,
    iter_sweep_jobs,
    iter_sweep_labels,
    simulate_stream,
    summarize_result,
    sweep_jobs,
    sweep_labels,
)
from repro.workloads import ensemble_programs


@pytest.fixture(scope="module")
def ensemble():
    return ensemble_programs(6, cells=5, messages=8, max_length=3, base_seed=3)


CONFIG = ArrayConfig(queues_per_link=8)


class TestSimulateStream:
    def test_rows_in_job_order_and_match_simulate_many(self, ensemble):
        jobs = [SimJob(p, config=CONFIG) for p in ensemble]
        rows = list(simulate_stream(iter(jobs)))
        results = simulate_many(jobs)
        assert [row.index for row in rows] == list(range(len(jobs)))
        for row, result in zip(rows, results):
            assert row.completed == result.completed
            assert row.deadlocked == result.deadlocked
            assert row.time == result.time
            assert row.events == result.events
            assert row.words == result.words_transferred
            assert row.outcome == "completed"

    def test_is_a_lazy_generator(self, ensemble):
        jobs = (SimJob(p, config=CONFIG) for p in ensemble)
        counter = CompletedCount()
        stream = simulate_stream(jobs, reducers=(counter,), chunk_size=1)
        assert isinstance(stream, types.GeneratorType)
        assert counter.total == 0  # nothing ran yet
        first = next(stream)
        assert isinstance(first, RunSummary)
        assert counter.total == 1  # exactly one job ran and was reduced

    def test_workers_match_in_process(self, ensemble):
        jobs = [SimJob(p, config=CONFIG) for p in ensemble]
        serial = list(simulate_stream(iter(jobs)))
        parallel = list(simulate_stream(iter(jobs), workers=2, chunk_size=2))
        assert serial == parallel

    def test_reducers_see_every_row(self, ensemble):
        jobs = [SimJob(p, config=CONFIG) for p in ensemble]
        outcomes = CompletedCount()
        makespan = MakespanHistogram(bucket_width=8)
        rows = list(simulate_stream(iter(jobs), reducers=(outcomes, makespan)))
        assert outcomes.total == len(rows)
        assert outcomes.completed == sum(1 for r in rows if r.completed)
        assert makespan.count == outcomes.completed
        assert sum(makespan.buckets.values()) == makespan.count
        assert makespan.summary()["min"] == min(r.time for r in rows)
        assert makespan.summary()["max"] == max(r.time for r in rows)

    def test_large_lazy_sweep_streams_without_accumulation(self, ensemble):
        repeat = 600
        jobs = iter_sweep_jobs(ensemble[0], queues=(8,), repeat=repeat)
        outcomes = CompletedCount()
        times = set()
        for row in simulate_stream(
            jobs, reducers=(outcomes,), workers=2, chunk_size=64
        ):
            times.add(row.time)
        assert outcomes.total == repeat
        assert outcomes.completed == repeat
        assert len(times) == 1  # deterministic repeats

    def test_infeasible_corners_become_rows(self, ensemble):
        jobs = sweep_jobs(
            ensemble[0], policies=("static", "ordered"), queues=(1, 8)
        )
        rows = list(simulate_stream(iter(jobs)))
        outcomes = {row.outcome for row in rows}
        assert "infeasible" in outcomes
        infeasible = [r for r in rows if r.outcome == "infeasible"]
        assert all(r.error_kind == "ConfigError" for r in infeasible)

    def test_on_error_raise_propagates(self, ensemble):
        jobs = sweep_jobs(ensemble[0], policies=("static",), queues=(1,))
        with pytest.raises(ConfigError):
            list(simulate_stream(iter(jobs), on_error="raise"))

    def test_invalid_arguments_rejected(self, ensemble):
        jobs = [SimJob(ensemble[0], config=CONFIG)]
        with pytest.raises(ConfigError):
            list(simulate_stream(iter(jobs), workers=0))
        with pytest.raises(ConfigError):
            list(simulate_stream(iter(jobs), chunk_size=0))
        with pytest.raises(ConfigError):
            list(simulate_stream(iter(jobs), on_error="bogus"))

    def test_unpicklable_chunk_runs_in_process(self, ensemble):
        from repro import COMPUTE, ArrayProgram, Message, R, W

        lam = ArrayProgram(
            ["C1", "C2"],
            [Message("A", "C1", "C2", 1)],
            {
                "C1": [W("A", constant=2.0)],
                "C2": [R("A", into="x"), COMPUTE("y", lambda v: v + 1, ["x"])],
            },
        )
        jobs = [SimJob(ensemble[0], config=CONFIG), SimJob(lam)]
        rows = list(simulate_stream(iter(jobs), workers=2, chunk_size=1))
        assert [row.index for row in rows] == [0, 1]
        assert all(row.completed for row in rows)

    def test_empty_stream(self):
        assert list(simulate_stream(iter(()))) == []


class TestReducers:
    def _row(self, **kw):
        base = dict(
            index=0, completed=True, deadlocked=False, timed_out=False,
            time=10, events=5, words=3, policy="ordered", queues=1, capacity=0,
        )
        base.update(kw)
        return RunSummary(**base)

    def test_completed_count_buckets_every_outcome(self):
        counter = CompletedCount()
        counter.update(self._row())
        counter.update(self._row(completed=False, deadlocked=True))
        counter.update(self._row(completed=False, timed_out=True))
        counter.update(
            self._row(completed=False, error_kind="ConfigError", error="x")
        )
        assert counter.summary() == {
            "total": 4,
            "completed": 1,
            "deadlock": 1,
            "timeout": 1,
            "infeasible": 1,
        }

    def test_makespan_histogram_ignores_failures(self):
        histogram = MakespanHistogram(bucket_width=10)
        histogram.update(self._row(time=5))
        histogram.update(self._row(time=15))
        histogram.update(self._row(time=15))
        histogram.update(self._row(completed=False, deadlocked=True, time=99))
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["histogram"] == {0: 1, 10: 2}
        assert summary["min"] == 5 and summary["max"] == 15

    def test_makespan_invalid_bucket_width(self):
        with pytest.raises(ConfigError):
            MakespanHistogram(bucket_width=0)

    def test_deadlock_rate_groups_by_config(self):
        rate = DeadlockRateByConfig()
        rate.update(self._row(policy="fcfs", completed=False, deadlocked=True))
        rate.update(self._row(policy="fcfs"))
        rate.update(self._row(policy="ordered"))
        summary = rate.summary()
        assert summary["fcfs q=1 cap=0"] == {
            "deadlocks": 1,
            "runs": 2,
            "rate": 0.5,
        }
        assert summary["ordered q=1 cap=0"]["rate"] == 0.0

    def test_summarize_result_flattens_batch_error(self):
        from repro.sim.batch import BatchError

        job = SimJob(program=None, config=ArrayConfig(queues_per_link=3))
        row = summarize_result(7, job, BatchError(kind="ConfigError", error="no"))
        assert row.index == 7
        assert row.outcome == "infeasible"
        assert row.queues == 3


class TestLazySweepGenerators:
    def test_iter_matches_list_forms(self, ensemble):
        kwargs = dict(
            policies=("ordered", "fcfs"), queues=(1, 2), capacities=(0,), repeat=2
        )
        assert list(
            iter_sweep_labels(**kwargs)
        ) == sweep_labels(**kwargs)
        lazy = list(iter_sweep_jobs(ensemble[0], **kwargs))
        eager = sweep_jobs(ensemble[0], **kwargs)
        assert lazy == eager

    def test_generators_are_lazy(self, ensemble):
        jobs = iter_sweep_jobs(ensemble[0], repeat=10**9)  # would never fit
        first = next(jobs)
        assert first.program is ensemble[0]
