"""Witness pruning through the sweep stack: differential byte-identity.

The contract under test: a sweep given a witness store produces rows and
reducer summaries *byte-identical* to the same sweep without one — the
store only changes how many jobs actually simulate. Pinned against the
serial baseline across backends, under checkpoint/resume composition,
and through the frontier planner's bisection seeding; the acceptance
grid (2 policies x 64 capacities, deadlock-dense) must simulate at most
half its jobs on a warm store, with FCFS never pruned.
"""

import itertools
import json

import pytest

from repro.core.message import Message
from repro.core.ops import R, W
from repro.core.program import ArrayProgram
from repro.sweep import (
    CompletedCount,
    DeadlockRateByConfig,
    FrontierPlanner,
    MakespanHistogram,
    PlanSpec,
    SweepPlan,
    SweepSession,
    exhaustive_spec,
    sweep_jobs,
)
from repro.witness import WitnessStore


def cross_read():
    """Deadlocks at every capacity under every policy (circular read)."""
    msgs = [Message("M0", "A", "B", 1), Message("M1", "B", "A", 1)]
    progs = {
        "A": [R("M1", into="x"), W("M0", constant=1.0)],
        "B": [R("M0", into="y"), W("M1", constant=2.0)],
    }
    return ArrayProgram(["A", "B"], msgs, progs)


def burst_exchange():
    """Two cells exchanging 2-word bursts: static frontier at cap=2."""
    msgs = [Message("M0", "A", "B", 2), Message("M1", "B", "A", 2)]
    progs = {
        "A": [W("M0", constant=1.0)] * 2
        + [R("M1", into="a0"), R("M1", into="a1")],
        "B": [W("M1", constant=2.0)] * 2
        + [R("M0", into="b0"), R("M0", into="b1")],
    }
    return ArrayProgram(["A", "B"], msgs, progs)


def fresh_reducers():
    return (CompletedCount(), MakespanHistogram(), DeadlockRateByConfig())


def summaries_json(reducers) -> str:
    return json.dumps({r.name: r.summary() for r in reducers}, sort_keys=True)


def run_sweep(jobs, store=None, **plan_kwargs):
    reducers = fresh_reducers()
    session = SweepSession(
        SweepPlan(
            jobs=jobs, reducers=reducers, witness_store=store, **plan_kwargs
        )
    )
    rows = list(session.stream())
    return rows, summaries_json(reducers), session


class TestAcceptanceGrid:
    """The issue's acceptance bar, asserted in-test."""

    CAPACITIES = tuple(range(64))

    def grid(self, policies=("static", "fcfs")):
        return sweep_jobs(
            cross_read(),
            policies=policies,
            queues=(1,),
            capacities=self.CAPACITIES,
        )

    def test_warm_store_halves_the_simulated_jobs(self, tmp_path):
        jobs = self.grid()
        base_rows, base_summaries, _ = run_sweep(jobs)

        # Cold: the store starts empty, mines as it goes, prunes the
        # static tail it has already proven. Rows must not change.
        store = WitnessStore(tmp_path / "w.json")
        cold_rows, cold_summaries, cold = run_sweep(jobs, store)
        assert cold_rows == base_rows
        assert cold_summaries == base_summaries
        assert cold.witness_pruned >= 60
        assert cold.witness_mined >= 1
        store.save()

        # Warm: every static job is covered; only FCFS simulates.
        warm_store = WitnessStore(tmp_path / "w.json")
        warm_rows, warm_summaries, warm = run_sweep(jobs, warm_store)
        assert warm_rows == base_rows
        assert warm_summaries == base_summaries
        simulated = len(jobs) - warm.witness_pruned
        assert simulated <= len(jobs) // 2
        # FCFS is never pruned: all 64 prunes are the static half, and
        # the store never even holds an FCFS certificate.
        assert warm.witness_pruned == 64
        assert all(w.policy == "static" for w in warm_store.witnesses())

    def test_pruned_rows_at_the_end_of_the_grid(self, tmp_path):
        # Policy order reversed: every pruned (static) row now lands
        # *after* the backend's stream is exhausted — the flush path.
        jobs = self.grid(policies=("fcfs", "static"))
        base_rows, base_summaries, _ = run_sweep(jobs)
        store = WitnessStore(tmp_path / "w.json")
        run_sweep(self.grid(), store)  # mine on the forward grid
        rows, summaries, session = run_sweep(jobs, store)
        assert rows == base_rows
        assert summaries == base_summaries
        assert session.witness_pruned == 64
        assert [r.index for r in rows] == list(range(len(jobs)))


class TestBackendDifferential:
    @pytest.mark.parametrize("backend", ("pool", "shm"))
    def test_pruned_rows_byte_identical_across_backends(
        self, tmp_path, backend
    ):
        jobs = sweep_jobs(
            cross_read(),
            policies=("static", "fcfs"),
            queues=(1,),
            capacities=(0, 1, 2, 3),
        )
        base_rows, base_summaries, _ = run_sweep(jobs)
        store = WitnessStore(tmp_path / "w.json")
        run_sweep(jobs, store)  # warm it up on the serial baseline
        rows, summaries, session = run_sweep(
            jobs, store, backend=backend, workers=2, chunk_size=2
        )
        assert rows == base_rows
        assert summaries == base_summaries
        assert session.witness_pruned == 4  # the whole static line
        # The warm store withholds every static job, and worker-side
        # mining refuses FCFS (non-monotone), so nothing new mines.
        assert session.witness_mined == 0


class TestWorkerMining:
    """Cold multiprocess sweeps mine in-worker, matching serial exactly.

    The capacity axis runs *descending*, so the first-mined certificate
    (highest capacity, open ray: peak occupancy 0) subsumes every later
    one on every backend — the post-subsumption stores must therefore be
    *equal* to serial's, not merely equivalent, regardless of how far
    ahead a backend pulled jobs before the first certificate landed.
    """

    def jobs(self):
        return sweep_jobs(
            cross_read(),
            policies=("static",),
            queues=(1,),
            capacities=tuple(range(7, -1, -1)),
        )

    @staticmethod
    def dump(store):
        return [w.as_dict() for w in store.witnesses()]

    def test_serial_baseline_interleaves_mining_and_pruning(self):
        store = WitnessStore()
        _rows, _summaries, session = run_sweep(self.jobs(), store)
        # cap=7 simulates and mines the open ray; caps 6..0 all prune.
        assert session.witness_mined == 1
        assert session.witness_pruned == 7
        assert len(store) == 1

    @pytest.mark.parametrize(
        "backend,extra",
        [
            ("pool", {}),
            ("shm", {}),
            # max_retries engages the supervised executor underneath.
            ("pool", {"max_retries": 1}),
        ],
        ids=("pool", "shm", "supervised"),
    )
    def test_cold_store_matches_serial_post_subsumption(self, backend, extra):
        jobs = self.jobs()
        base_rows, base_summaries, _ = run_sweep(jobs)
        serial_store = WitnessStore()
        run_sweep(jobs, serial_store)

        store = WitnessStore()
        rows, summaries, session = run_sweep(
            jobs, store, backend=backend, workers=2, chunk_size=2, **extra
        )
        assert rows == base_rows
        assert summaries == base_summaries
        # Summary-only streams ship no results, so a nonzero mined count
        # can only have come through the worker-side witness payloads.
        assert session.witness_mined == 1
        assert self.dump(store) == self.dump(serial_store)


class TestCheckpointComposition:
    def test_interrupt_resume_with_store_stays_byte_identical(self, tmp_path):
        jobs = sweep_jobs(
            cross_read(),
            policies=("static", "fcfs"),
            queues=(1,),
            capacities=(0, 1, 2, 3, 4, 5),
        )
        base_rows, base_summaries, _ = run_sweep(jobs)

        store = WitnessStore(tmp_path / "w.json")
        run_sweep(jobs, store)
        store.save()

        ck = str(tmp_path / "sweep.ckpt")
        first = fresh_reducers()
        warm = WitnessStore(tmp_path / "w.json")
        stream = SweepSession(
            SweepPlan(
                jobs=jobs,
                reducers=first,
                witness_store=warm,
                checkpoint=ck,
                checkpoint_every=2,
            )
        ).stream()
        head = list(itertools.islice(stream, 4))
        stream.close()  # interrupt: the finally writes a snapshot

        second = fresh_reducers()
        tail = list(
            SweepSession(
                SweepPlan(
                    jobs=jobs,
                    reducers=second,
                    witness_store=WitnessStore(tmp_path / "w.json"),
                    checkpoint=ck,
                    resume=True,
                )
            ).stream()
        )
        assert head + tail == base_rows
        assert summaries_json(second) == base_summaries

    def test_session_counters(self, tmp_path):
        jobs = sweep_jobs(
            cross_read(),
            policies=("static",),
            queues=(1,),
            capacities=(0, 1, 2, 3),
        )
        store = WitnessStore()
        _rows, _summaries, session = run_sweep(jobs, store)
        # cap=0 and cap=1 mine (closed point, then the open ray that
        # subsumes it); cap>=2 is covered by the ray and prunes.
        assert session.witness_mined == 2
        assert session.witness_pruned == 2
        assert len(store) == 1

    def test_mining_can_be_disabled(self):
        jobs = sweep_jobs(
            cross_read(), policies=("static",), queues=(1,), capacities=(0, 1)
        )
        store = WitnessStore()
        _rows, _summaries, session = run_sweep(jobs, store, witness_mine=False)
        assert session.witness_mined == 0
        assert len(store) == 0


class TestPlannerSeeding:
    AXIS = (0, 1, 2, 3, 4)

    def spec(self, store=None, **kwargs):
        return PlanSpec(
            burst_exchange(),
            policies=("static",),
            queues=(1,),
            capacities=self.AXIS,
            witness_store=store,
            **kwargs,
        )

    def test_seeded_bisection_same_frontier_fewer_probes(self, tmp_path):
        unseeded = FrontierPlanner(self.spec()).run()
        exhaustive = FrontierPlanner(exhaustive_spec(self.spec())).run()
        assert (
            unseeded.lines[0].frontier_capacity
            == exhaustive.lines[0].frontier_capacity
            == 2
        )

        # Mine deadlock witnesses below the frontier via a plain sweep.
        store = WitnessStore(tmp_path / "w.json")
        run_sweep(
            sweep_jobs(
                burst_exchange(),
                policies=("static",),
                queues=(1,),
                capacities=(0, 1),
            ),
            store,
        )
        store.save()

        seeded = FrontierPlanner(
            self.spec(store=WitnessStore(tmp_path / "w.json"))
        ).run()
        assert seeded.lines[0].frontier_capacity == 2
        assert seeded.witness_seeded_lines == 1
        # Seeding replaces the bottom probe with stored knowledge.
        assert seeded.jobs_executed < unseeded.jobs_executed
        # Probe rows still agree with the exhaustive grid at the same
        # coordinates (row-exactness survives seeding).
        by_coord = {
            (r.policy, r.queues, r.capacity): r for r in exhaustive.rows
        }
        for row in seeded.rows:
            assert row == by_coord[(row.policy, row.queues, row.capacity)]

    def test_fully_dominated_line_skips_all_probes(self, tmp_path):
        # Every capacity on the axis is witnessed deadlocked: the line
        # resolves to "no frontier" without a single probe.
        store = WitnessStore(tmp_path / "w.json")
        run_sweep(
            sweep_jobs(
                cross_read(),
                policies=("static",),
                queues=(1,),
                capacities=(0, 4),
            ),
            store,
        )
        store.save()
        spec = PlanSpec(
            cross_read(),
            policies=("static",),
            queues=(1,),
            capacities=(0, 1, 2, 4),
            witness_store=WitnessStore(tmp_path / "w.json"),
        )
        report = FrontierPlanner(spec).run()
        assert report.lines[0].frontier_capacity is None
        assert report.lines[0].jobs_executed == 0
        assert report.jobs_executed == 0
        assert report.witness_seeded_lines == 1

    def test_report_dict_carries_witness_fields(self):
        report = FrontierPlanner(self.spec()).run()
        payload = report.as_dict()
        assert payload["witness_seeded_lines"] == 0
        assert payload["witness_pruned"] == 0
        assert payload["witness_mined"] == 0


class TestMinePayloadUnit:
    """The worker-side mining hook, exercised directly in-parent."""

    def test_completed_run_yields_no_payload(self):
        from repro import ArrayConfig
        from repro.sweep.jobs import SimJob, mine_witness_payload

        job = SimJob(
            burst_exchange(),
            config=ArrayConfig(queue_capacity=2),
            policy="static",
        )
        result = job.run()
        assert result.completed
        assert mine_witness_payload(job, result) is None

    def test_deadlocked_static_run_yields_certificate_dict(self):
        from repro.sweep.jobs import SimJob, mine_witness_payload
        from repro.witness import DeadlockWitness

        job = SimJob(cross_read(), policy="static")
        result = job.run()
        assert result.deadlocked
        payload = mine_witness_payload(job, result)
        assert isinstance(payload, dict)
        # The compact dict round-trips into the same certificate the
        # parent would have mined from the full result.
        assert DeadlockWitness.from_dict(payload).as_dict() == payload

    def test_fcfs_refusal_propagates_as_none(self):
        from repro.sweep.jobs import SimJob, mine_witness_payload

        job = SimJob(cross_read(), policy="fcfs")
        result = job.run()
        assert result.deadlocked
        assert mine_witness_payload(job, result) is None

    def test_job_fingerprint_covers_register_files(self):
        from repro.sweep.jobs import SimJob, job_fingerprint

        bare = SimJob(cross_read())
        seeded = SimJob(
            cross_read(), registers={"A": {"x": 1.0}, "B": {"y": None}}
        )
        assert job_fingerprint(seeded) != job_fingerprint(bare)
        assert job_fingerprint(seeded) == job_fingerprint(
            SimJob(cross_read(), registers={"B": {"y": None}, "A": {"x": 1.0}})
        )
