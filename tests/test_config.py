"""ArrayConfig validation and helpers."""

import pytest

from repro.arch.config import UNBUFFERED_SINGLE_QUEUE, ArrayConfig, CommModel
from repro.arch.links import Link


class TestValidation:
    def test_defaults_are_sections_3_to_7(self):
        cfg = ArrayConfig()
        assert cfg.queues_per_link == 1
        assert cfg.queue_capacity == 0
        assert cfg.comm_model is CommModel.SYSTOLIC

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"queues_per_link": 0},
            {"queue_capacity": -1},
            {"hop_latency": 0},
            {"op_latency": 0},
            {"memory_access_cycles": -1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ArrayConfig(**kwargs)


class TestHelpers:
    def test_link_overrides(self):
        link = Link("C1", "C2")
        cfg = ArrayConfig(queues_per_link=1, link_queue_overrides={link: 4})
        assert cfg.queues_on(link) == 4
        assert cfg.queues_on(Link("C2", "C3")) == 1

    def test_with_copies(self):
        cfg = ArrayConfig(queues_per_link=2)
        new = cfg.with_(queue_capacity=5)
        assert new.queue_capacity == 5
        assert new.queues_per_link == 2
        assert cfg.queue_capacity == 0

    def test_memory_accesses_per_word(self):
        assert ArrayConfig().memory_accesses_per_word == 0
        mem = ArrayConfig(comm_model=CommModel.MEMORY_TO_MEMORY)
        assert mem.memory_accesses_per_word == 4

    def test_canned_config(self):
        assert UNBUFFERED_SINGLE_QUEUE.queue_capacity == 0
