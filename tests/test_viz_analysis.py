"""Visualisation and analysis helper tests."""

from repro import ArrayConfig, constraint_labeling, cross_off, simulate
from repro.analysis import contention_row, format_table
from repro.analysis.stats import ContentionStats, LabelStats
from repro.arch.routing import default_router
from repro.arch.topology import ExplicitLinear
from repro.core.crossing import uniform_lookahead
from repro.viz import (
    render_annotated,
    render_assignments,
    render_linear,
    render_outcome,
    render_routes,
    render_steps,
)


class TestCrossingView:
    def test_render_steps_fig4(self, fig2):
        text = render_steps(cross_off(fig2))
        lines = [l for l in text.splitlines() if l.startswith("Step")]
        assert len(lines) == 12
        assert "W(XA)@HOST & R(XA)@C1" in lines[0]

    def test_render_steps_deadlocked(self, p1):
        text = render_steps(cross_off(p1))
        assert "STUCK" in text

    def test_render_annotated_tags(self, p1):
        result = cross_off(p1, lookahead=uniform_lookahead(p1, 2), mode="sequential")
        text = render_annotated(p1, result)
        assert "W(B) [1]" in text  # the lookahead pair crossed first
        assert "[--]" not in text  # everything crossed

    def test_render_annotated_marks_uncrossed(self, p3):
        text = render_annotated(p3, cross_off(p3))
        assert text.count("[--]") == 4


class TestTimeline:
    def test_assignments_rendering(self, fig7):
        result = simulate(fig7, policy="ordered")
        text = render_assignments(result.assignment_trace)
        assert "C3->C4:" in text
        assert "grant" in text and "release" in text

    def test_empty_trace(self):
        assert "no assignments" in render_assignments([])

    def test_outcome_completed(self, fig6):
        assert "completed" in render_outcome(simulate(fig6))

    def test_outcome_deadlock_detail(self, fig7):
        text = render_outcome(simulate(fig7, policy="fcfs"))
        assert "DEADLOCK" in text
        assert "blocked:" in text


class TestArrayView:
    def test_linear_listing(self, fig7):
        text = render_linear(fig7)
        assert "C1  <->  C2  <->  C3  <->  C4" in text
        assert "C1 -> C4" in text

    def test_routes_listing(self, fig7):
        router = default_router(ExplicitLinear(tuple(fig7.cells)))
        text = render_routes(fig7, router)
        assert "C1->C2 C2->C3 C3->C4" in text


class TestAnalysis:
    def test_format_table(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}]
        text = format_table(rows, title="T")
        assert text.splitlines()[0] == "T"
        assert "a" in text and "0.125" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_label_stats(self, fig8):
        stats = LabelStats.of(constraint_labeling(fig8))
        assert stats.classes == 1
        assert stats.largest_class == 2

    def test_contention_stats(self, fig7):
        router = default_router(ExplicitLinear(tuple(fig7.cells)))
        stats = ContentionStats.of(fig7, router, constraint_labeling(fig7))
        assert stats.max_competing == 2
        assert stats.static_queue_max == 2
        assert stats.dynamic_queue_max == 1

    def test_contention_row_keys(self, fig7):
        router = default_router(ExplicitLinear(tuple(fig7.cells)))
        row = contention_row(fig7, router, constraint_labeling(fig7))
        assert row["program"] == "fig7"
        assert row["messages"] == 3
