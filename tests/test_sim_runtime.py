"""Simulator integration tests: figure outcomes, values, counters."""

import pytest

from repro import (
    ArrayConfig,
    CommModel,
    Simulator,
    simulate,
)
from repro.algorithms.figures import (
    fig2_expected_outputs,
    fig2_fir,
    fig2_registers,
)
from repro.core.message import Message
from repro.core.ops import COMPUTE, R, W
from repro.core.program import ArrayProgram
from repro.errors import ConfigError


class TestFirEndToEnd:
    def test_completes_on_unbuffered_single_queue(self, fig2, unbuffered):
        result = simulate(fig2, config=unbuffered, registers=fig2_registers())
        assert result.completed
        assert not result.deadlocked

    def test_numeric_outputs(self, fig2):
        result = simulate(fig2, registers=fig2_registers())
        y1, y2 = fig2_expected_outputs()
        assert result.received["YA"] == [y1, y2]
        assert result.registers["HOST"]["y1"] == y1
        assert result.registers["HOST"]["y2"] == y2

    def test_custom_inputs_and_weights(self):
        xs = (2.0, -1.0, 0.5, 3.0)
        weights = (1.0, 2.0, -1.0)
        prog = fig2_fir(xs=xs)
        result = simulate(prog, registers=fig2_registers(weights))
        y1, y2 = fig2_expected_outputs(xs, weights)
        assert result.received["YA"] == [y1, y2]

    def test_words_transferred(self, fig2):
        result = simulate(fig2, registers=fig2_registers())
        assert result.words_transferred == fig2.total_words

    def test_all_policies_equivalent_outputs(self, fig2):
        expected = list(fig2_expected_outputs())
        for policy in ("ordered", "static", "fcfs"):
            result = simulate(fig2, policy=policy, registers=fig2_registers())
            assert result.completed, policy
            assert result.received["YA"] == expected, policy


class TestFig5Runtime:
    def test_p1_deadlocks_unbuffered(self, p1, unbuffered):
        result = simulate(p1, config=unbuffered, policy="fcfs")
        assert result.deadlocked
        assert result.blocked

    def test_p1_completes_with_buffered_separate_queues(self, p1, buffered2):
        result = simulate(p1, config=buffered2, policy="static")
        assert result.completed

    def test_p1_single_buffered_queue_still_deadlocks(self, p1):
        config = ArrayConfig(queues_per_link=1, queue_capacity=2)
        result = simulate(p1, config=config, policy="fcfs")
        assert result.deadlocked

    def test_p2_completes_with_buffering(self, p2, buffered2):
        result = simulate(p2, config=buffered2, policy="static")
        assert result.completed

    def test_p3_deadlocks_despite_generous_hardware(self, p3):
        config = ArrayConfig(queues_per_link=4, queue_capacity=16)
        result = simulate(p3, config=config, policy="static")
        assert result.deadlocked

    def test_deadlock_assert_raises(self, p3):
        result = simulate(p3, policy="fcfs")
        with pytest.raises(AssertionError):
            result.assert_completed()


class TestFig7Runtime:
    def test_fcfs_deadlocks(self, fig7, unbuffered):
        result = simulate(fig7, config=unbuffered, policy="fcfs")
        assert result.deadlocked

    def test_ordered_completes(self, fig7, unbuffered):
        result = simulate(fig7, config=unbuffered, policy="ordered")
        assert result.completed

    def test_ordered_assignment_order_on_shared_link(self, fig7, unbuffered):
        result = simulate(fig7, config=unbuffered, policy="ordered")
        grants = [
            e.message
            for e in result.assignment_trace
            if e.kind == "grant" and str(e.link) == "C3->C4"
        ]
        assert grants == ["C", "B"]  # label order, not arrival order

    def test_fcfs_wrong_order_on_shared_link(self, fig7, unbuffered):
        result = simulate(fig7, config=unbuffered, policy="fcfs")
        grants = [
            e.message
            for e in result.assignment_trace
            if e.kind == "grant" and str(e.link) == "C3->C4"
        ]
        assert grants == ["B"]  # B grabbed it; C never got on

    def test_think_time_rescues_fcfs(self, unbuffered):
        from repro.algorithms.figures import fig7_program

        # If C3 waits long enough before writing B, C's header wins the
        # race and even FCFS completes — the D1/D2 timing of the figure.
        slow = fig7_program(think_cycles=8)
        result = simulate(slow, config=unbuffered, policy="fcfs")
        assert result.completed


class TestFig8Fig9Runtime:
    def test_fig8_one_queue_deadlocks(self, fig8, unbuffered):
        assert simulate(fig8, config=unbuffered, policy="fcfs").deadlocked

    def test_fig8_two_queues_complete(self, fig8):
        config = ArrayConfig(queues_per_link=2)
        assert simulate(fig8, config=config, policy="ordered").completed

    def test_fig8_ordered_strict_rejects_one_queue(self, fig8, unbuffered):
        with pytest.raises(ConfigError):
            Simulator(fig8, config=unbuffered, policy="ordered")

    def test_fig8_ordered_lenient_deadlocks_on_one_queue(self, fig8, unbuffered):
        result = simulate(
            fig8, config=unbuffered, policy="ordered", strict=False
        )
        assert result.deadlocked

    def test_fig9_one_queue_deadlocks(self, fig9, unbuffered):
        assert simulate(fig9, config=unbuffered, policy="fcfs").deadlocked

    def test_fig9_two_queues_complete(self, fig9):
        config = ArrayConfig(queues_per_link=2)
        assert simulate(fig9, config=config, policy="static").completed


class TestMemoryModel:
    def test_systolic_zero_accesses(self, fig2):
        result = simulate(fig2, registers=fig2_registers())
        assert result.total_memory_accesses == 0

    def test_memory_model_four_per_word_through_cells(self, fig2):
        config = ArrayConfig(comm_model=CommModel.MEMORY_TO_MEMORY)
        result = simulate(fig2, config=config, registers=fig2_registers())
        # 15 words transferred, each with a read and a write end: 2 + 2.
        assert result.total_memory_accesses == 4 * fig2.total_words

    def test_memory_model_still_correct(self, fig2):
        config = ArrayConfig(comm_model=CommModel.MEMORY_TO_MEMORY)
        result = simulate(fig2, config=config, registers=fig2_registers())
        assert result.received["YA"] == list(fig2_expected_outputs())

    def test_memory_model_slower(self, fig2):
        fast = simulate(fig2, registers=fig2_registers())
        config = ArrayConfig(
            comm_model=CommModel.MEMORY_TO_MEMORY, memory_access_cycles=2
        )
        slow = simulate(fig2, config=config, registers=fig2_registers())
        assert slow.time > fast.time


class TestResultDetails:
    def test_queue_stats_exposed(self, fig6):
        result = simulate(fig6)
        assert any(s.words_pushed > 0 for s in result.queue_stats.values())

    def test_busy_cycles_and_utilization(self, fig2):
        result = simulate(fig2, registers=fig2_registers())
        assert result.busy_cycles["cell:C1"] > 0
        assert 0 < result.utilization("cell:C1") <= 1.0

    def test_summary_strings(self, fig6, p3):
        assert "completed" in simulate(fig6).summary()
        assert "DEADLOCK" in simulate(p3, policy="fcfs").summary()

    def test_timeout_reported(self, fig2):
        sim = Simulator(fig2, registers=fig2_registers())
        result = sim.run(max_events=3)
        assert result.timed_out
        assert not result.completed
        assert not result.deadlocked


class TestComputeOps:
    def test_compute_consumes_time(self):
        prog = ArrayProgram(
            ("C1", "C2"),
            [Message("A", "C1", "C2", 1)],
            {
                "C1": [COMPUTE("x", lambda: 5.0, [], cycles=10), W("A", from_register="x")],
                "C2": [R("A", into="got")],
            },
        )
        result = simulate(prog)
        assert result.completed
        assert result.registers["C2"]["got"] == 5.0
        assert result.time >= 10


class TestMultiHop:
    def test_three_hop_message(self):
        prog = ArrayProgram(
            ("C1", "C2", "C3", "C4"),
            [Message("M", "C1", "C4", 3)],
            {
                "C1": [W("M", constant=v) for v in (1.0, 2.0, 3.0)],
                "C4": [R("M", into=f"v{i}") for i in range(3)],
            },
        )
        result = simulate(prog)
        assert result.completed
        assert result.received["M"] == [1.0, 2.0, 3.0]
        # Words hop C1->C2->C3->C4: latency visible in the makespan.
        assert result.time >= 5

    def test_hop_latency_scales_makespan(self):
        def run(latency: int) -> int:
            prog = ArrayProgram(
                ("C1", "C2", "C3"),
                [Message("M", "C1", "C3", 1)],
                {"C1": [W("M")], "C3": [R("M")]},
            )
            config = ArrayConfig(hop_latency=latency)
            return simulate(prog, config=config).time

        assert run(5) > run(1)
