"""Batched ensemble runner tests: ordering, broadcasting, workers, sweeps."""

import pytest

from repro import ArrayConfig, SimJob, simulate, simulate_many
from repro.errors import ConfigError
from repro.sim.batch import sweep_jobs, sweep_labels
from repro.workloads import ensemble_programs


@pytest.fixture(scope="module")
def ensemble():
    return ensemble_programs(6, cells=5, messages=8, max_length=3, base_seed=3)


CONFIG = ArrayConfig(queues_per_link=8)


class TestSimulateMany:
    def test_results_in_input_order(self, ensemble):
        results = simulate_many(ensemble, CONFIG)
        assert len(results) == len(ensemble)
        singles = [simulate(p, config=CONFIG) for p in ensemble]
        for got, want in zip(results, singles):
            assert got.completed == want.completed
            assert got.time == want.time
            assert got.received == want.received

    def test_single_config_broadcasts(self, ensemble):
        results = simulate_many(ensemble, CONFIG)
        assert all(r.completed for r in results)

    def test_per_program_configs(self, ensemble):
        configs = [CONFIG] * len(ensemble)
        results = simulate_many(ensemble, configs)
        assert all(r.completed for r in results)

    def test_config_length_mismatch_raises(self, ensemble):
        with pytest.raises(ConfigError):
            simulate_many(ensemble, [CONFIG])

    def test_empty_input(self):
        assert simulate_many([]) == []

    def test_simjob_inputs(self, ensemble):
        jobs = [SimJob(p, config=CONFIG, policy="static") for p in ensemble]
        results = simulate_many(jobs)
        assert all(r.completed for r in results)

    def test_simjob_plus_configs_rejected(self, ensemble):
        jobs = [SimJob(p, config=CONFIG) for p in ensemble]
        with pytest.raises(ConfigError):
            simulate_many(jobs, CONFIG)

    def test_invalid_workers(self, ensemble):
        with pytest.raises(ConfigError):
            simulate_many(ensemble, CONFIG, workers=0)

    def test_invalid_chunk_size(self, ensemble):
        # chunk_size=0 used to crash deep inside the chunking helper
        # (range() with a zero step); it must be validated like workers.
        with pytest.raises(ConfigError, match="chunk_size"):
            simulate_many(ensemble, CONFIG, workers=2, chunk_size=0)
        with pytest.raises(ConfigError, match="chunk_size"):
            simulate_many(ensemble, CONFIG, workers=2, chunk_size=-3)

    def test_explicit_chunk_size_matches_serial(self, ensemble):
        serial = simulate_many(ensemble, CONFIG, workers=1)
        chunked = simulate_many(ensemble, CONFIG, workers=2, chunk_size=1)
        for a, b in zip(serial, chunked):
            assert a.completed == b.completed
            assert a.time == b.time
            assert a.received == b.received

    def test_shm_backend_rejected(self, ensemble):
        # simulate_many materializes every full result; the shm backend
        # never ships them, so honoring it would re-run each job
        # in-parent — worse than serial. Refuse instead of degrading.
        with pytest.raises(ConfigError, match="shm"):
            simulate_many(ensemble, CONFIG, workers=2, backend="shm")

    def test_pool_backend_matches_serial(self, ensemble):
        serial = simulate_many(ensemble, CONFIG, workers=1)
        via_pool = simulate_many(ensemble, CONFIG, workers=2, backend="pool")
        for a, b in zip(serial, via_pool):
            assert a.completed == b.completed
            assert a.time == b.time
            assert a.events == b.events
            assert a.received == b.received
            assert a.assignment_trace == b.assignment_trace

    def test_workers_match_serial(self, ensemble):
        serial = simulate_many(ensemble, CONFIG, workers=1)
        parallel = simulate_many(ensemble, CONFIG, workers=2)
        for a, b in zip(serial, parallel):
            assert a.completed == b.completed
            assert a.time == b.time
            assert a.events == b.events
            assert a.received == b.received
            assert a.assignment_trace == b.assignment_trace

    def test_max_events_respected_per_job(self, ensemble):
        jobs = [SimJob(p, config=CONFIG, max_events=3) for p in ensemble]
        results = simulate_many(jobs)
        assert all(r.timed_out for r in results)
        assert all(r.events == 3 for r in results)


class TestSweep:
    def test_sweep_jobs_align_with_labels(self, ensemble):
        program = ensemble[0]
        jobs = sweep_jobs(
            program,
            policies=("ordered", "fcfs"),
            queues=(1, 8),
            capacities=(0,),
            repeat=2,
        )
        labels = sweep_labels(
            policies=("ordered", "fcfs"), queues=(1, 8), capacities=(0,), repeat=2
        )
        assert len(jobs) == len(labels) == 8
        assert labels[0].startswith("ordered q=1")
        assert labels[-1].startswith("fcfs q=8")
        assert all(
            job.config.queues_per_link == int(label.split("q=")[1].split()[0])
            for job, label in zip(jobs, labels)
        )

    def test_sweep_repeats_are_deterministic(self, ensemble):
        program = ensemble[1]
        jobs = sweep_jobs(program, queues=(8,), repeat=3)
        results = simulate_many(jobs)
        assert len({r.time for r in results}) == 1
        assert len({r.events for r in results}) == 1


class TestErrorCollection:
    def test_infeasible_corner_collected_not_fatal(self, ensemble):
        from repro.sim.batch import BatchError
        program = ensemble[0]
        jobs = sweep_jobs(
            program, policies=("static", "ordered"), queues=(1, 8), capacities=(0,)
        )
        results = simulate_many(jobs, on_error="collect")
        assert len(results) == 4
        errors = [r for r in results if isinstance(r, BatchError)]
        assert errors and errors[0].kind == "ConfigError"
        assert not errors[0].completed
        assert any(getattr(r, "completed", False) for r in results)

    def test_on_error_raise_is_default(self, ensemble):
        program = ensemble[0]
        jobs = sweep_jobs(program, policies=("static",), queues=(1,))
        with pytest.raises(ConfigError):
            simulate_many(jobs)

    def test_invalid_on_error_value(self, ensemble):
        with pytest.raises(ConfigError):
            simulate_many(ensemble, CONFIG, on_error="bogus")

    def test_mixed_picklability_falls_back_in_process(self, ensemble):
        from repro import ArrayProgram, Message, W, R, COMPUTE
        lam = ArrayProgram(
            ["C1", "C2"],
            [Message("A", "C1", "C2", 1)],
            {"C1": [W("A", constant=2.0)],
             "C2": [R("A", into="x"), COMPUTE("y", lambda v: v + 1, ["x"])]},
        )
        jobs = [SimJob(ensemble[0], config=CONFIG), SimJob(lam)]
        results = simulate_many(jobs, workers=2)
        assert all(r.completed for r in results)
        assert results[1].registers["C2"]["y"] == 3.0
