"""Golden-file regression: canonical analysis output, byte for byte.

The equivalence suite pins the interned crossing engine to the reference
oracle *relative* to each other; these tests pin the absolute output. A
canonical JSON rendering of each program's crossing trace — strict
parallel, lookahead-2 sequential, and lookahead-2 parallel (the bucketed
step engine with its skip machinery engaged) — plus exact labeling
fractions, normalized labels and schedule bounds is checked into
``tests/golden/`` — any engine change that silently perturbs a step, a
skipped-write tuple or a label fails on a one-line diff instead of deep
inside some downstream consumer.

Regenerate after an *intentional* behaviour change with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_outputs.py

and review the diff like any other code change.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core.crossing import CrossingResult, cross_off, uniform_lookahead
from repro.core.labeling import constraint_labeling
from repro.core.program import ArrayProgram
from repro.core.schedule import analyze_schedule

GOLDEN_DIR = Path(__file__).parent / "golden"

UPDATE = os.environ.get("REPRO_UPDATE_GOLDEN") == "1"


def _fir():
    from repro.algorithms.fir import fir_program

    return fir_program(4, 8)


def _matvec():
    from repro.algorithms.matvec import matvec_program

    return matvec_program([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])


def _seqcompare():
    from repro.algorithms.seqcompare import lcs_program_for

    return lcs_program_for("GATTACA", "GCAT")


PROGRAMS = {
    "fir": _fir,
    "matvec": _matvec,
    "seqcompare": _seqcompare,
}


def _pair_doc(pair) -> dict:
    return {
        "message": pair.message,
        "sender": pair.sender,
        "sender_pos": pair.sender_pos,
        "receiver": pair.receiver,
        "receiver_pos": pair.receiver_pos,
        "skipped_sender": [list(item) for item in pair.skipped_sender],
        "skipped_receiver": [list(item) for item in pair.skipped_receiver],
    }


def _result_doc(result: CrossingResult) -> dict:
    return {
        "deadlock_free": result.deadlock_free,
        "step_count": result.step_count,
        "pairs_crossed": result.pairs_crossed,
        "steps": [[_pair_doc(p) for p in step] for step in result.steps],
        "max_skipped": result.max_skipped,
        "uncrossed": {
            cell: [str(op) for op in ops]
            for cell, ops in result.uncrossed.items()
        },
    }


def canonical_analysis(program: ArrayProgram) -> dict:
    """The full canonical analysis document for one program."""
    lookahead = uniform_lookahead(program, 2)
    strict = cross_off(program, mode="parallel")
    relaxed = cross_off(program, lookahead=lookahead, mode="sequential")
    relaxed_parallel = cross_off(program, lookahead=lookahead, mode="parallel")
    plain_labeling = constraint_labeling(program)
    relaxed_labeling = constraint_labeling(program, lookahead=lookahead)
    doc = {
        "program": program.name,
        "cells": list(program.cells),
        "messages": [
            {
                "name": msg.name,
                "sender": msg.sender,
                "receiver": msg.receiver,
                "length": msg.length,
            }
            for msg in (
                program.messages[name] for name in sorted(program.messages)
            )
        ],
        "strict_parallel": _result_doc(strict),
        "lookahead2_sequential": _result_doc(relaxed),
        "lookahead2_parallel": _result_doc(relaxed_parallel),
        "labeling": {
            "exact": {n: str(v) for n, v in plain_labeling.labels.items()},
            "normalized": plain_labeling.normalized(),
        },
        "labeling_lookahead2": {
            "exact": {n: str(v) for n, v in relaxed_labeling.labels.items()},
            "normalized": relaxed_labeling.normalized(),
        },
    }
    if strict.deadlock_free:
        schedule = analyze_schedule(program)
        doc["schedule"] = {
            "transfer_rounds": schedule.transfer_rounds,
            "total_pairs": schedule.total_pairs,
            "max_parallelism": schedule.max_parallelism,
            "mean_parallelism": round(schedule.mean_parallelism, 6),
            "busiest_cell": schedule.busiest_cell,
            "busiest_cell_ops": schedule.busiest_cell_ops,
        }
    return doc


def canonical_bytes(program: ArrayProgram) -> bytes:
    return (
        json.dumps(canonical_analysis(program), indent=2, sort_keys=True) + "\n"
    ).encode()


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_golden_analysis_output(name):
    program = PROGRAMS[name]()
    produced = canonical_bytes(program)
    path = GOLDEN_DIR / f"{name}.json"
    if UPDATE:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_bytes(produced)
        pytest.skip(f"golden file {path.name} regenerated")
    assert path.exists(), (
        f"missing golden file {path}; generate with REPRO_UPDATE_GOLDEN=1"
    )
    expected = path.read_bytes()
    assert produced == expected, (
        f"canonical analysis output for {name!r} diverged from "
        f"{path.name}; if the change is intentional, regenerate with "
        f"REPRO_UPDATE_GOLDEN=1 and review the diff"
    )


def test_golden_files_are_canonical_json():
    """Checked-in golden files must themselves be canonically formatted
    (sorted keys, two-space indent, trailing newline) so regeneration
    diffs stay minimal."""
    paths = sorted(GOLDEN_DIR.glob("*.json"))
    assert paths, f"no golden files in {GOLDEN_DIR}"
    for path in paths:
        raw = path.read_bytes()
        doc = json.loads(raw)
        assert raw == (
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        ).encode(), f"{path.name} is not canonically formatted"
