"""Run-time deadlock diagnosis tests."""

from repro import ArrayConfig, Simulator, simulate
from repro.sim.deadlock import build_wait_graph, find_cycle


class TestDiagnosis:
    def test_blocked_descriptions_name_the_ops(self, p3):
        result = simulate(p3, policy="fcfs")
        assert result.deadlocked
        text = " ".join(result.blocked)
        assert "W(A)" in text or "R(A)" in text or "R(B)" in text

    def test_p3_circular_wait_cycle_found(self, p3):
        # P3 is the canonical circular wait: C1 waits for B from C2, which
        # waits for A from C1.
        sim = Simulator(p3, policy="fcfs")
        result = sim.run()
        assert result.deadlocked
        assert result.wait_cycle is not None
        assert result.wait_cycle[0] == result.wait_cycle[-1]
        assert set(result.wait_cycle) >= {"cell:C1", "cell:C2"}

    def test_fig7_fcfs_diagnosis_mentions_grant_wait(self, fig7):
        result = simulate(fig7, policy="fcfs")
        assert result.deadlocked
        assert any("awaiting queue" in b or "no queue granted" in b
                   for b in result.blocked)

    def test_completed_run_has_no_diagnosis(self, fig6):
        result = simulate(fig6)
        assert result.blocked == []
        assert result.wait_cycle is None


class TestWaitGraph:
    def test_graph_over_blocked_agents(self, p3):
        sim = Simulator(p3, policy="fcfs")
        sim.run()
        graph = build_wait_graph(sim)
        assert "cell:C1" in graph
        assert "cell:C2" in graph

    def test_find_cycle_simple(self):
        graph = {"a": {"b"}, "b": {"c"}, "c": {"a"}}
        cycle = find_cycle(graph)
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert len(set(cycle)) == 3

    def test_find_cycle_none_in_dag(self):
        graph = {"a": {"b"}, "b": {"c"}, "c": set()}
        assert find_cycle(graph) is None

    def test_find_cycle_self_loop(self):
        assert find_cycle({"a": {"a"}}) == ["a", "a"]

    def test_find_cycle_ignores_unknown_targets(self):
        assert find_cycle({"a": {"ghost"}}) is None

    def test_find_cycle_deterministic_across_set_orders(self):
        # Neighbor sets have no order; the DFS sorts them, so the same
        # graph must always yield the same cycle — witness certificates
        # canonicalize what this returns, so instability would make the
        # same deadlock mine as different certificates run to run.
        graph = {"b": {"c", "a"}, "a": {"b"}, "c": {"b"}}
        assert find_cycle(graph) == ["b", "a", "b"]
        # The same edges with differently-built sets must not matter.
        rebuilt = {"b": set(["a", "c"]), "a": {"b"}, "c": {"b"}}
        assert find_cycle(rebuilt) == ["b", "a", "b"]

    def test_find_cycle_deep_chain_into_cycle(self):
        # A long tail before the cycle exercises the index-cursor DFS
        # frames (descend, backtrack, resume at the saved cursor).
        chain = {f"n{i}": {f"n{i+1}"} for i in range(50)}
        chain["n50"] = {"n20"}
        cycle = find_cycle(chain)
        assert cycle is not None
        assert cycle[0] == cycle[-1] == "n20"
        assert len(cycle) == 32  # n20..n50 plus the closing repeat


class TestWaitGrantEdges:
    """Grant-wait edges: multi-queue holders and stuck senders."""

    def _stuck_grant_sim(self):
        # A pushes X and Y (filling both queues on A->B), then blocks
        # awaiting a grant for Z; B waits for Z, which was never even
        # granted a queue — its sender is itself stuck.
        from repro.core.message import Message
        from repro.core.ops import R, W
        from repro.core.program import ArrayProgram

        msgs = [
            Message("X", "A", "B", 1),
            Message("Y", "A", "B", 1),
            Message("Z", "A", "B", 1),
        ]
        progs = {
            "A": [
                W("X", constant=1.0),
                W("Y", constant=2.0),
                W("Z", constant=3.0),
            ],
            "B": [R("Z", into="z"), R("X", into="x"), R("Y", into="y")],
        }
        program = ArrayProgram(["A", "B"], msgs, progs)
        sim = Simulator(
            program,
            config=ArrayConfig(queues_per_link=2, queue_capacity=1),
            policy="fcfs",
        )
        result = sim.run()
        return sim, result

    def test_multi_queue_holders_all_point_at_their_consumer(self):
        sim, result = self._stuck_grant_sim()
        assert result.deadlocked
        graph = build_wait_graph(sim)
        # A awaits a grant on a link whose two queues are both held by
        # flows B consumes: every holder edge lands on cell:B.
        assert "cell:B" in graph["cell:A"]

    def test_receiver_of_stuck_sender_gets_pusher_edge(self):
        sim, result = self._stuck_grant_sim()
        graph = build_wait_graph(sim)
        # B waits for Z, which holds no queue anywhere — the fallback
        # edge to Z's would-be pusher (A) is what closes the cycle.
        assert "cell:A" in graph["cell:B"]
        cycle = find_cycle(graph)
        assert cycle is not None
        assert set(cycle) == {"cell:A", "cell:B"}
