"""Run-time deadlock diagnosis tests."""

from repro import ArrayConfig, Simulator, simulate
from repro.sim.deadlock import build_wait_graph, find_cycle


class TestDiagnosis:
    def test_blocked_descriptions_name_the_ops(self, p3):
        result = simulate(p3, policy="fcfs")
        assert result.deadlocked
        text = " ".join(result.blocked)
        assert "W(A)" in text or "R(A)" in text or "R(B)" in text

    def test_p3_circular_wait_cycle_found(self, p3):
        # P3 is the canonical circular wait: C1 waits for B from C2, which
        # waits for A from C1.
        sim = Simulator(p3, policy="fcfs")
        result = sim.run()
        assert result.deadlocked
        assert result.wait_cycle is not None
        assert result.wait_cycle[0] == result.wait_cycle[-1]
        assert set(result.wait_cycle) >= {"cell:C1", "cell:C2"}

    def test_fig7_fcfs_diagnosis_mentions_grant_wait(self, fig7):
        result = simulate(fig7, policy="fcfs")
        assert result.deadlocked
        assert any("awaiting queue" in b or "no queue granted" in b
                   for b in result.blocked)

    def test_completed_run_has_no_diagnosis(self, fig6):
        result = simulate(fig6)
        assert result.blocked == []
        assert result.wait_cycle is None


class TestWaitGraph:
    def test_graph_over_blocked_agents(self, p3):
        sim = Simulator(p3, policy="fcfs")
        sim.run()
        graph = build_wait_graph(sim)
        assert "cell:C1" in graph
        assert "cell:C2" in graph

    def test_find_cycle_simple(self):
        graph = {"a": {"b"}, "b": {"c"}, "c": {"a"}}
        cycle = find_cycle(graph)
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert len(set(cycle)) == 3

    def test_find_cycle_none_in_dag(self):
        graph = {"a": {"b"}, "b": {"c"}, "c": set()}
        assert find_cycle(graph) is None

    def test_find_cycle_self_loop(self):
        assert find_cycle({"a": {"a"}}) == ["a", "a"]

    def test_find_cycle_ignores_unknown_targets(self):
        assert find_cycle({"a": {"ghost"}}) is None
