"""The frontier planner: bisection == exhaustive grid, fallback honest.

The planner's whole claim is that it *searches* the same answer the
exhaustive provisioning grid *computes*: per (policy, queues) line, the
minimal capacity that completes. These tests pin that claim three ways:

* a differential corpus (closed-form burst programs + generated
  workloads) where planner and exhaustive-twin reports must agree on
  the frontier and on every shared row, byte for byte;
* a hypothesis property quantifying the same agreement over the random
  program family under the static (monotone) policy;
* the FCFS fallback, kept honest by the pinned PR 2 non-monotonicity
  counterexample (``test_properties.test_fcfs_buffering_can_hurt_completion``):
  on that program a bisection would *miss* the frontier that full
  evaluation finds.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ArrayConfig
from repro.arch.routing import default_router
from repro.arch.topology import ExplicitLinear
from repro.core.message import Message
from repro.core.ops import R, W
from repro.core.program import ArrayProgram
from repro.errors import ConfigError
from repro.perf.analysis_cache import GLOBAL_ANALYSIS_CACHE
from repro.sweep import (
    MONOTONE_POLICIES,
    CompletedCount,
    FrontierPlanner,
    PlanSpec,
    exhaustive_spec,
    find_frontier,
    sweep_labels,
)
from repro.sweep.planner import MODE_BISECT, MODE_EXHAUSTIVE, probe_label
from repro.workloads import WorkloadSpec, hoist_writes, random_program

#: The pinned FCFS non-monotonicity counterexample of
#: tests/test_properties.py: completes at capacity 0, deadlocks at 2.
FCFS_COUNTEREXAMPLE = WorkloadSpec(
    cells=6, messages=6, max_length=1, max_span=2, burst=1, seed=2
)


def burst_exchange(k: int) -> ArrayProgram:
    """Two cells exchange k-word bursts; static frontier at cap=k."""
    msgs = [Message("M0", "A", "B", k), Message("M1", "B", "A", k)]
    progs = {
        "A": [W("M0", constant=1.0) for _ in range(k)]
        + [R("M1", into=f"a{i}") for i in range(k)],
        "B": [W("M1", constant=2.0) for _ in range(k)]
        + [R("M0", into=f"b{i}") for i in range(k)],
    }
    return ArrayProgram(["A", "B"], msgs, progs)


def assert_differential(spec: PlanSpec) -> tuple:
    """Planner vs exhaustive twin: same frontier, identical shared rows."""
    planned = FrontierPlanner(spec).run()
    grid = FrontierPlanner(exhaustive_spec(spec)).run()
    assert planned.frontier() == grid.frontier()
    assert grid.jobs_executed == grid.grid_jobs
    grid_rows = {row.index: row for row in grid.rows}
    for row in planned.rows:
        assert row == grid_rows[row.index]
    return planned, grid


class TestDifferentialCorpus:
    def test_burst_programs_frontier_at_burst_size(self):
        for k in (1, 3, 6):
            spec = PlanSpec(
                burst_exchange(k),
                policies=("static",),
                queues=(1, 2),
                capacities=tuple(range(10)),
            )
            planned, grid = assert_differential(spec)
            assert planned.frontier() == {
                "static q=1": k,
                "static q=2": k,
            }
            assert planned.jobs_executed < grid.jobs_executed

    def test_generated_workloads(self):
        for seed in (0, 7, 23, 91):
            prog = hoist_writes(
                random_program(
                    WorkloadSpec(
                        cells=4,
                        messages=6,
                        max_length=2,
                        max_span=2,
                        burst=3,
                        seed=seed,
                    )
                ),
                swaps=4,
                seed=seed,
            )
            spec = PlanSpec(
                prog,
                policies=("static",),
                queues=(1, 2),
                capacities=(0, 1, 2, 3, 4, 6, 8),
            )
            assert_differential(spec)

    def test_logarithmic_cost_on_long_axis(self):
        spec = PlanSpec(
            burst_exchange(5),
            policies=("static",),
            queues=(1,),
            capacities=tuple(range(64)),
        )
        planned, grid = assert_differential(spec)
        # 2 endpoint probes + ceil(log2 63) bisections = 8 jobs vs 64.
        assert planned.jobs_executed <= 8
        assert planned.jobs_executed * 4 <= grid.jobs_executed


class TestStaticPropertyAgreement:
    @given(
        st.builds(
            WorkloadSpec,
            cells=st.integers(min_value=2, max_value=6),
            messages=st.integers(min_value=1, max_value=8),
            max_length=st.integers(min_value=1, max_value=3),
            max_span=st.integers(min_value=1, max_value=2),
            burst=st.integers(min_value=1, max_value=3),
            seed=st.integers(min_value=0, max_value=10_000),
        )
    )
    @settings(
        max_examples=25,
        suppress_health_check=[HealthCheck.too_slow],
        deadline=None,
    )
    def test_planner_frontier_equals_exhaustive(self, wspec):
        prog = hoist_writes(random_program(wspec), swaps=3, seed=wspec.seed)
        spec = PlanSpec(
            prog,
            policies=("static",),
            queues=(1, 2),
            capacities=(0, 1, 2, 4),
        )
        assert_differential(spec)


class TestFcfsFallback:
    def test_fcfs_routes_to_full_evaluation(self):
        report = find_frontier(
            random_program(FCFS_COUNTEREXAMPLE),
            policies=("fcfs",),
            queues=(2,),
            capacities=(0, 1, 2),
        )
        (line,) = report.lines
        assert line.mode == MODE_EXHAUSTIVE
        assert line.jobs_executed == 3  # the whole axis, no bisection
        # The counterexample's signature: the *minimum* of the axis
        # completes while a larger capacity deadlocks — the exact shape
        # a bisection (which trusts the top probe) would answer "no
        # frontier" on. Full evaluation finds cap=0.
        assert line.frontier_capacity == 0
        outcomes = dict(line.probes)
        assert outcomes[0] == "completed"
        assert outcomes[2] == "deadlock"

    def test_fcfs_is_not_in_monotone_policies(self):
        assert "fcfs" not in MONOTONE_POLICIES
        assert "static" in MONOTONE_POLICIES

    def test_forcing_bisection_on_fcfs_would_lie(self):
        """The guard this fallback provides, demonstrated: bisecting the
        non-monotone line misses the frontier full evaluation finds."""
        prog = random_program(FCFS_COUNTEREXAMPLE)
        lying = find_frontier(
            prog,
            policies=("fcfs",),
            queues=(2,),
            capacities=(0, 1, 2),
            monotone_policies=frozenset({"fcfs"}),
        )
        honest = find_frontier(
            prog, policies=("fcfs",), queues=(2,), capacities=(0, 1, 2)
        )
        assert honest.frontier() == {"fcfs q=2": 0}
        assert lying.frontier() != honest.frontier()


class TestPlannerMechanics:
    def test_spec_validation(self):
        prog = burst_exchange(1)
        with pytest.raises(ConfigError):
            FrontierPlanner(PlanSpec(prog, policies=()))
        with pytest.raises(ConfigError):
            FrontierPlanner(PlanSpec(prog, queues=()))
        with pytest.raises(ConfigError):
            FrontierPlanner(PlanSpec(prog, capacities=()))
        with pytest.raises(ConfigError):
            FrontierPlanner(PlanSpec(prog, capacities=(0, 1, 1)))

    def test_no_frontier_costs_one_probe_per_bisect_line(self):
        # burst 5 never completes below capacity 5: on an axis capped at
        # 3 the top probe fails and monotonicity ends the line there.
        report = find_frontier(
            burst_exchange(5),
            policies=("static",),
            queues=(1,),
            capacities=(0, 1, 2, 3),
        )
        (line,) = report.lines
        assert line.frontier_capacity is None
        assert line.jobs_executed == 1
        assert line.probes == ((3, "deadlock"),)

    def test_single_point_axis(self):
        report = find_frontier(
            burst_exchange(2),
            policies=("static",),
            queues=(1,),
            capacities=(2,),
        )
        (line,) = report.lines
        assert line.frontier_capacity == 2
        assert line.jobs_executed == 1

    def test_unsorted_capacities_are_searched_sorted(self):
        report = find_frontier(
            burst_exchange(2),
            policies=("static",),
            queues=(1,),
            capacities=(5, 0, 2, 1, 4),
        )
        assert report.capacities == (0, 1, 2, 4, 5)
        assert report.frontier() == {"static q=1": 2}

    def test_row_indices_and_labels_match_grid_geometry(self):
        caps = (0, 1, 2, 3)
        spec = PlanSpec(
            burst_exchange(2),
            policies=("static",),
            queues=(1, 2),
            capacities=caps,
        )
        labels = sweep_labels(
            policies=spec.policies, queues=spec.queues, capacities=caps
        )
        report = FrontierPlanner(spec).run()
        for row in report.rows:
            assert probe_label(row) == labels[row.index]

    def test_reducers_fed_executed_rows_in_emission_order(self):
        outcomes = CompletedCount()
        spec = PlanSpec(
            burst_exchange(2),
            policies=("static",),
            queues=(1,),
            capacities=(0, 1, 2, 3, 4),
            reducers=(outcomes,),
        )
        report = FrontierPlanner(spec).run()
        assert outcomes.total == report.jobs_executed
        assert outcomes.completed == sum(
            1 for row in report.rows if row.completed
        )

    def test_report_as_dict_round_trips_through_json(self):
        import json

        report = find_frontier(
            burst_exchange(1),
            policies=("static",),
            queues=(1,),
            capacities=(0, 1, 2),
        )
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["frontier"] == {"static q=1": 1}
        assert payload["jobs_executed"] == report.jobs_executed

    def test_infeasible_corners_are_data(self):
        # One queue per link is too few for a static assignment with
        # two competing messages in some generated programs; the planner
        # must treat the ConfigError row as "not completed", not crash.
        prog = random_program(
            WorkloadSpec(
                cells=4, messages=8, max_length=1, max_span=2, burst=2, seed=5
            )
        )
        report = find_frontier(
            prog,
            policies=("static",),
            queues=(1,),
            capacities=(0, 2),
        )
        assert len(report.lines) == 1  # reached a verdict without raising


class TestAnalysisSeeding:
    def test_capacity_independent_artifacts_are_shared(self):
        GLOBAL_ANALYSIS_CACHE.clear()
        prog = burst_exchange(3)
        topo = ExplicitLinear(tuple(prog.cells))
        router = default_router(topo)
        donor = GLOBAL_ANALYSIS_CACHE.lookup(
            prog, topo, router, ArrayConfig(queue_capacity=0)
        )
        _ = donor.routes, donor.competing  # force computation
        target = GLOBAL_ANALYSIS_CACHE.lookup(
            prog, topo, router, ArrayConfig(queue_capacity=7)
        )
        target.seed_capacity_independent(donor)
        assert target.routes is donor.routes
        assert target.competing is donor.competing
        # Seeding must not mark the entry disk-synced: under a disk
        # tier the seeded artifacts still need persisting for this key.
        assert target._disk_synced is False

    def test_seeding_never_overwrites_computed_artifacts(self):
        GLOBAL_ANALYSIS_CACHE.clear()
        prog = burst_exchange(2)
        topo = ExplicitLinear(tuple(prog.cells))
        router = default_router(topo)
        donor = GLOBAL_ANALYSIS_CACHE.lookup(
            prog, topo, router, ArrayConfig(queue_capacity=0)
        )
        _ = donor.routes
        target = GLOBAL_ANALYSIS_CACHE.lookup(
            prog, topo, router, ArrayConfig(queue_capacity=5)
        )
        own_routes = target.routes  # computed before seeding
        target.seed_capacity_independent(donor)
        assert target.routes is own_routes

    def test_planner_reuses_analysis_across_probes(self):
        GLOBAL_ANALYSIS_CACHE.clear()
        find_frontier(
            burst_exchange(4),
            policies=("static",),
            queues=(1,),
            capacities=tuple(range(16)),
        )
        stats = GLOBAL_ANALYSIS_CACHE.stats()
        # One probed capacity == at most one cache miss; the planner's
        # warming plus the simulator's lookup hit the same entries.
        assert 0 < stats["size"] <= 6  # 2 + log2(16) probes
        assert stats["hits"] >= stats["size"]
