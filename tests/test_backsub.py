"""Triangular-solve generator tests."""

import pytest

from repro import ArrayConfig, constraint_labeling, cross_off, simulate
from repro.algorithms.backsub import (
    backsub_expected,
    backsub_program,
    backsub_solution,
)
from repro.arch.routing import default_router
from repro.arch.topology import ExplicitLinear
from repro.core.requirements import dynamic_queue_demand


def lower_matrix(n: int) -> list[list[float]]:
    return [
        [float(i - j + 1) if j < i else (2.0 if j == i else 0.0)
         for j in range(n)]
        for i in range(n)
    ]


class TestBacksub:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 7])
    def test_numeric_correctness(self, n):
        lower = lower_matrix(n)
        b = [float((i * 3) % 5 + 1) for i in range(n)]
        prog = backsub_program(lower, b)
        result = simulate(prog, config=ArrayConfig(queues_per_link=2))
        assert result.completed
        assert backsub_solution(result.registers, n) == pytest.approx(
            backsub_expected(lower, b)
        )

    def test_deadlock_free(self):
        assert cross_off(backsub_program(lower_matrix(4), [1.0] * 4)).deadlock_free

    def test_deferred_returns_keep_labels_distinct(self):
        # The design note in the module: X returns must not be related to
        # the row stream, so one queue per reverse link suffices.
        prog = backsub_program(lower_matrix(4), [1.0] * 4)
        labeling = constraint_labeling(prog)
        router = default_router(ExplicitLinear(tuple(prog.cells)))
        demand = dynamic_queue_demand(prog, router, labeling)
        reverse_demands = [
            d for link, d in demand.items()
            if prog.cells.index(link.src) > prog.cells.index(link.dst)
        ]
        assert max(reverse_demands) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            backsub_program([[1.0]], [1.0, 2.0])

    def test_identity_system(self):
        n = 3
        identity = [[1.0 if i == j else 0.0 for j in range(n)] for i in range(n)]
        b = [5.0, -2.0, 7.0]
        result = simulate(
            backsub_program(identity, b), config=ArrayConfig(queues_per_link=2)
        )
        assert backsub_solution(result.registers, n) == b
