"""Shared fixtures: the paper's figure programs and common configs."""

from __future__ import annotations

import pytest

from repro import ArrayConfig


@pytest.fixture(autouse=True)
def _isolated_shm_cache():
    """Tear down the process-wide shm analysis arena between tests.

    Any multiprocess sweep lazily creates the shared-memory analysis
    tier for the whole process; left alive, it would warm lookups in
    every *later* test (e.g. turning disk-tier "restart" hits into shm
    hits) and leak one segment per pytest session.
    """
    yield
    from repro.perf.shm_cache import reset_shm_cache_state

    reset_shm_cache_state()
from repro.algorithms.figures import (
    fig2_fir,
    fig5_p1,
    fig5_p2,
    fig5_p3,
    fig6_cycle,
    fig7_program,
    fig8_program,
    fig9_program,
)


@pytest.fixture
def fig2():
    return fig2_fir()


@pytest.fixture
def p1():
    return fig5_p1()


@pytest.fixture
def p2():
    return fig5_p2()


@pytest.fixture
def p3():
    return fig5_p3()


@pytest.fixture
def fig6():
    return fig6_cycle()


@pytest.fixture
def fig7():
    return fig7_program()


@pytest.fixture
def fig8():
    return fig8_program()


@pytest.fixture
def fig9():
    return fig9_program()


@pytest.fixture
def unbuffered():
    """Sections 3-7 hardware: one capacity-0 queue per directed link."""
    return ArrayConfig(queues_per_link=1, queue_capacity=0)


@pytest.fixture
def buffered2():
    """Section 8 hardware for Fig. 10: two queues of capacity 2 per link."""
    return ArrayConfig(queues_per_link=2, queue_capacity=2)
