"""Sweep-backend throughput at scale: serial vs pool vs shm.

The workload is the provisioning shape the shm backend exists for — a
queue-rich configuration (many :class:`HardwareQueue` stats objects, a
full assignment trace) whose *full* :class:`SimulationResult` costs
about as much to pickle + unpickle through the pool pipe as the
simulation itself costs to run. For a full-result sweep:

* ``serial`` runs and materializes everything in-process (no pipe);
* ``pool`` ships every full result back through the pipe — the
  pipe-bound regime;
* ``shm`` ships only 256-byte arena rows and hydrates full results on
  demand (the bench hydrates a sample to price that path honestly).

Rows/sec per backend at 1k and 10k jobs is recorded into
``BENCH_core.json`` (``sweep_rows_{backend}_{1k,10k}``), with
``speedup_vs_pool`` on the shm records — the tentpole claim is shm
>= 2x pool on the 10k full-result sweep. Smoke mode (CI,
``--benchmark-disable``) runs a small sweep and checks only the
cross-backend row agreement.

Note the host caveat: on a single-core box (like the recording
container) the pool's parallelism cannot hide any of its
serialization, so the pool numbers here are a *floor* — on multi-core
hosts pool closes part of the gap on sim time but its parent-side
unpickle stays serialized, which is exactly the bottleneck shm removes.
"""

import time

from conftest import recording_enabled

from repro import ArrayConfig
from repro.core.message import Message
from repro.core.ops import R, W
from repro.core.program import ArrayProgram
from repro.sweep import SimJob, SweepPlan, SweepSession

BACKENDS = ("serial", "pool", "shm")
WORKERS = 2
CHUNK = 64
HYDRATE_SAMPLE = 10


def chain_program(n_cells: int) -> ArrayProgram:
    """A relay chain: cell i writes one word to cell i+1."""
    cells = [f"C{i}" for i in range(n_cells)]
    messages, programs = [], {c: [] for c in cells}
    for i in range(n_cells - 1):
        name = f"M{i}"
        messages.append(Message(name, cells[i], cells[i + 1], 1))
        programs[cells[i]].append(W(name, constant=float(i)))
        programs[cells[i + 1]].append(R(name, into=f"x{i}"))
    return ArrayProgram(cells, messages, programs)


def sweep_jobs_for(n_jobs: int) -> list[SimJob]:
    # A queue-rich provisioning corner: 31 links x 48 queues puts ~1.5k
    # QueueStats objects in every result, so the full-result payload
    # (~86 KB pickled) costs roughly as much to ship + rebuild through
    # the pool pipe as the simulation costs to run — the regime the
    # arena removes. Chosen for measurement stability over maximum
    # ratio.
    program = chain_program(32)
    config = ArrayConfig(queues_per_link=48)
    return [SimJob(program, config=config) for _ in range(n_jobs)]


def run_full_result_sweep(backend: str, jobs):
    """Consume a full-result sweep with bounded memory; return the rows.

    Every handle is touched the way a result-processing pipeline would
    (summary fields), then dropped — so the pool backend's per-result
    pipe cost is paid in full while results never accumulate.
    """
    plan = SweepPlan(
        jobs=jobs, backend=backend, workers=WORKERS, chunk_size=CHUNK
    )
    session = SweepSession(plan)
    rows = []
    sampled = 0
    for handle in session.iter_handles():
        rows.append(handle.summary)
        if backend == "shm" and sampled < HYDRATE_SAMPLE:
            # Price the on-demand hydration path honestly: the sampled
            # results re-execute in-parent against the warm cache.
            result = handle.result()
            assert result.completed
            sampled += 1
    return rows


def _measure(backend: str, n_jobs: int):
    jobs = sweep_jobs_for(n_jobs)
    t0 = time.perf_counter()
    rows = run_full_result_sweep(backend, jobs)
    wall = time.perf_counter() - t0
    assert len(rows) == n_jobs
    assert all(row.completed for row in rows)
    return rows, wall


def test_backends_agree_smoke(benchmark):
    """Cross-backend row agreement on a small sweep (runs everywhere)."""
    per_backend = {}
    for backend in BACKENDS:
        per_backend[backend], _wall = _measure(backend, 3 * CHUNK)
    assert per_backend["pool"] == per_backend["serial"]
    assert per_backend["shm"] == per_backend["serial"]
    benchmark(lambda: run_full_result_sweep("shm", sweep_jobs_for(CHUNK)))


def test_sweep_scale_rows_per_sec(core_metrics):
    """Record rows/sec per backend at 1k and 10k full-result jobs."""
    if not recording_enabled():
        # Smoke mode: the agreement test above already exercised every
        # backend; the 1k/10k timing sweeps only make sense when their
        # numbers are being recorded.
        return
    import os

    sizes = ((1_000, "1k"), (10_000, "10k"))
    if os.environ.get("CI"):
        # The 10k sweep costs ~7 minutes of wall clock; CI's bench
        # guard records the 1k family only (its 10k baseline records
        # then read as "not measured", which the guard never fails on).
        sizes = sizes[:1]
    for n_jobs, tag in sizes:
        walls = {}
        events = {}
        reference = None
        for backend in BACKENDS:
            rows, wall = _measure(backend, n_jobs)
            walls[backend] = wall
            events[backend] = sum(row.events for row in rows)
            if reference is None:
                reference = rows
            else:
                assert rows == reference  # byte-identical across backends
        for backend in BACKENDS:
            extra = {}
            if backend == "shm":
                extra["speedup_vs_pool"] = round(
                    walls["pool"] / walls["shm"], 2
                )
            core_metrics(
                f"sweep_rows_{backend}_{tag}",
                events=events[backend],
                seconds=walls[backend],
                rows=n_jobs,
                rows_per_sec=round(n_jobs / walls[backend]),
                workers=WORKERS,
                **extra,
            )
        print(
            f"[sweep {tag}] serial={n_jobs/walls['serial']:.0f} "
            f"pool={n_jobs/walls['pool']:.0f} "
            f"shm={n_jobs/walls['shm']:.0f} rows/s "
            f"(shm {walls['pool']/walls['shm']:.2f}x pool)"
        )
