"""E14 — compile-time procedure scaling.

Expected shape: crossing-off and labeling cost grow near-linearly in the
number of word transfers (each pair is found and crossed once); the table
printed shows ops/second staying in the same order of magnitude across a
16x size range.
"""

import pytest

from repro import constraint_labeling, cross_off, label_messages
from repro.core.requirements import extension_demand
from repro.arch.config import ArrayConfig
from repro.arch.routing import default_router
from repro.arch.topology import ExplicitLinear
from repro.workloads import WorkloadSpec, random_program

SIZES = [(8, 12, 4), (12, 30, 6), (16, 60, 8)]


@pytest.mark.parametrize("cells,messages,max_length", SIZES)
def test_crossing_off_scaling(benchmark, cells, messages, max_length):
    prog = random_program(
        WorkloadSpec(
            cells=cells, messages=messages, max_length=max_length, seed=42
        )
    )
    result = benchmark(lambda: cross_off(prog))
    assert result.deadlock_free


@pytest.mark.parametrize("cells,messages,max_length", SIZES)
def test_constraint_labeling_scaling(benchmark, cells, messages, max_length):
    prog = random_program(
        WorkloadSpec(
            cells=cells, messages=messages, max_length=max_length, seed=43
        )
    )
    labeling = benchmark(lambda: constraint_labeling(prog))
    assert len(labeling) == messages


@pytest.mark.parametrize("cells,messages,max_length", SIZES[:2])
def test_paper_labeling_scaling(benchmark, cells, messages, max_length):
    # Seeds chosen where the literal scheme succeeds, to time it fairly.
    prog = random_program(
        WorkloadSpec(
            cells=cells, messages=messages, max_length=max_length, seed=0
        )
    )
    labeling = benchmark(lambda: label_messages(prog))
    assert len(labeling) == messages


def test_extension_analysis_scaling(benchmark):
    prog = random_program(WorkloadSpec(cells=10, messages=30, seed=44))
    router = default_router(ExplicitLinear(tuple(prog.cells)))
    config = ArrayConfig(queue_capacity=2)
    demand = benchmark(lambda: extension_demand(prog, router, config))
    assert len(demand) == 30
