"""Benchmark-suite configuration.

Each bench module regenerates one of the paper's figures (or a section's
claim) and asserts its qualitative shape, while pytest-benchmark measures
our implementation. Run with::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` flag shows the regenerated paper-style tables.

Core-throughput trajectory
--------------------------

Benches that exercise the simulation hot path record their numbers via
the ``core_metrics`` fixture; at session end the collected records are
merged into ``BENCH_core.json`` at the repo root (events/sec, words/sec,
wall seconds per workload). The checked-in file is the perf trajectory,
so writing it is opt-in — a smoke run (``--benchmark-disable`` in CI or
locally) must not clobber the baseline with throwaway timings.
Regenerate with::

    REPRO_BENCH_RECORD=1 pytest benchmarks/bench_scaling_simulation.py \
        benchmarks/bench_batch_throughput.py benchmarks/bench_crossing_cold.py -q

Setting ``REPRO_BENCH_OUT=/some/path.json`` redirects the recorded
records to that file instead of the checked-in baseline — this is how
the CI regression guard captures fresh numbers to diff against
``BENCH_core.json`` (see ``benchmarks/check_regression.py``) without
touching the committed trajectory.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import sys
from pathlib import Path

import pytest

BENCH_CORE_PATH = Path(__file__).resolve().parent.parent / "BENCH_core.json"

_RECORDS: dict[str, dict] = {}


@pytest.fixture
def core_metrics():
    """Record one workload's core-throughput numbers.

    Usage::

        core_metrics("fir_32x64", events=result.events, seconds=dt,
                     words=result.words_transferred)

    Extra keyword arguments are stored verbatim (e.g. speedup ratios).
    """

    def record(
        name: str,
        *,
        events: int | None = None,
        seconds: float | None = None,
        words: int | None = None,
        **extra,
    ) -> None:
        entry: dict = {}
        if seconds is not None:
            entry["wall_s"] = round(seconds, 6)
        if events is not None:
            entry["events"] = events
            if seconds:
                entry["events_per_sec"] = round(events / seconds)
        if words is not None:
            entry["words"] = words
            if seconds:
                entry["words_per_sec"] = round(words / seconds)
        entry.update(extra)
        _RECORDS[name] = entry

    return record


def recording_enabled() -> bool:
    """True when this run should touch the checked-in perf baseline."""
    return os.environ.get("REPRO_BENCH_RECORD") == "1"


def pytest_sessionfinish(session, exitstatus):
    if not _RECORDS or not recording_enabled():
        return
    out_path = Path(os.environ.get("REPRO_BENCH_OUT") or BENCH_CORE_PATH)
    # Merge into the existing trajectory at the target path: a partial
    # run (one bench file, a -k subset) updates only the records it
    # produced and must not wipe the rest of the baseline.
    existing: dict = {}
    if out_path.exists():
        try:
            existing = json.loads(out_path.read_text()).get("records", {})
        except (ValueError, OSError):
            existing = {}
    existing.update(_RECORDS)
    payload = {
        "suite": "core",
        "generated": datetime.date.today().isoformat(),
        "python": platform.python_version(),
        "records": dict(sorted(existing.items())),
    }
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    print(
        f"\n[bench] updated {len(_RECORDS)} of {len(existing)} records in "
        f"{out_path}",
        file=sys.stderr,
    )
