"""Benchmark-suite configuration.

Each bench module regenerates one of the paper's figures (or a section's
claim) and asserts its qualitative shape, while pytest-benchmark measures
our implementation. Run with::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` flag shows the regenerated paper-style tables.
"""
