"""E11 — Section 8.1 / rule R2: the iWarp queue-extension mechanism.

Expected shape: the compile-time analysis predicts extension exactly when
skipped writes exceed the physical buffering along the route; at run time
the extension absorbs the excess (completing runs that otherwise
deadlock) at the cost of per-spilled-word penalty cycles.
"""

from repro import ArrayConfig, simulate
from repro.analysis import format_table
from repro.arch.routing import default_router
from repro.arch.topology import ExplicitLinear
from repro.core.message import Message
from repro.core.ops import R, W
from repro.core.program import ArrayProgram
from repro.core.requirements import extension_demand


def burst_program(burst: int) -> ArrayProgram:
    """Sender bursts ``burst`` words of A before B; receiver wants B first."""
    return ArrayProgram(
        ("C1", "C2"),
        [Message("A", "C1", "C2", burst), Message("B", "C1", "C2", 1)],
        {
            "C1": [W("A")] * burst + [W("B")],
            "C2": [R("B")] + [R("A")] * burst,
        },
        name=f"burst-{burst}",
    )


def test_sec8_extension_prediction_and_runtime(benchmark):
    def sweep():
        rows = []
        capacity = 2
        for burst in (1, 2, 3, 5, 8):
            prog = burst_program(burst)
            router = default_router(ExplicitLinear(tuple(prog.cells)))
            config = ArrayConfig(queues_per_link=2, queue_capacity=capacity)
            demand = extension_demand(prog, router, config)["A"]
            plain = simulate(prog, config=config, policy="static")
            extended = simulate(
                prog, config=config.with_(allow_extension=True), policy="static"
            )
            spilled = sum(
                s.spilled_words for s in extended.queue_stats.values()
            )
            rows.append(
                {
                    "burst": burst,
                    "skipped_writes": demand.skipped_writes,
                    "physical_cap": demand.physical_capacity,
                    "predicted_ext": demand.needs_extension,
                    "plain_run": plain.summary().split()[0],
                    "extended_run": extended.summary().split()[0],
                    "spilled": spilled,
                }
            )
        return rows

    rows = benchmark(sweep)
    print()
    print(format_table(rows, title="Section 8 / E11: queue extension (capacity 2)"))
    for row in rows:
        # Prediction matches run-time behaviour exactly.
        assert row["predicted_ext"] == (row["plain_run"] == "DEADLOCK")
        assert row["extended_run"] == "completed"
        assert (row["spilled"] > 0) == row["predicted_ext"]


def test_sec8_extension_penalty_cost(benchmark):
    prog = burst_program(8)

    def run():
        times = {}
        for penalty in (0, 4, 16):
            config = ArrayConfig(
                queues_per_link=2,
                queue_capacity=1,
                allow_extension=True,
                extension_penalty=penalty,
            )
            times[penalty] = simulate(prog, config=config, policy="static").time
        return times

    times = benchmark(run)
    print()
    print("E11: makespan vs extension penalty:", times)
    assert times[0] < times[4] < times[16]
