"""E13 — Theorem 1 at ensemble scale (the paper's central guarantee).

Expected shape: over random deadlock-free programs with assumption (ii)
satisfied, the ordered policy completes 100% of runs; naive FCFS
deadlocks on a measurable fraction; the cost of the guarantee (ordered
makespan / FCFS makespan on FCFS's surviving runs) is modest.
"""

from repro import ArrayConfig, constraint_labeling, simulate, verify_theorem1
from repro.analysis import format_table
from repro.arch.routing import default_router
from repro.arch.topology import ExplicitLinear
from repro.core.requirements import dynamic_queue_demand
from repro.workloads import WorkloadSpec, random_program


def _provisioned(prog):
    router = default_router(ExplicitLinear(tuple(prog.cells)))
    labeling = constraint_labeling(prog)
    demand = dynamic_queue_demand(prog, router, labeling)
    queues = max(demand.values(), default=1)
    return labeling, ArrayConfig(queues_per_link=queues)


def test_theorem1_ensemble(benchmark):
    def ensemble():
        total = 40
        ordered_ok = fcfs_ok = 0
        overhead_num = overhead_den = 0
        for seed in range(total):
            prog = random_program(
                WorkloadSpec(seed=seed, cells=6, messages=9, burst=3)
            )
            labeling, config = _provisioned(prog)
            ordered = simulate(
                prog, config=config, policy="ordered", labeling=labeling
            )
            fcfs = simulate(prog, config=config, policy="fcfs")
            ordered_ok += ordered.completed
            fcfs_ok += fcfs.completed
            if fcfs.completed:
                overhead_num += ordered.time
                overhead_den += fcfs.time
        return {
            "programs": total,
            "ordered_completed": ordered_ok,
            "fcfs_completed": fcfs_ok,
            "fcfs_deadlocks": total - fcfs_ok,
            "ordered_overhead": round(overhead_num / max(overhead_den, 1), 3),
        }

    row = benchmark(ensemble)
    print()
    print(format_table([row], title="Theorem 1 / E13: ordered vs FCFS over random programs"))
    assert row["ordered_completed"] == row["programs"]  # the theorem
    assert row["fcfs_deadlocks"] > 0  # the hazard is real
    assert row["ordered_overhead"] < 1.5  # safety is not expensive


def test_theorem1_full_report_ensemble(benchmark):
    def verify_all():
        verified = 0
        for seed in range(15):
            prog = random_program(WorkloadSpec(seed=seed, cells=5, messages=7))
            _labeling, config = _provisioned(prog)
            report = verify_theorem1(prog, config=config)
            verified += report.verified
        return verified

    verified = benchmark(verify_all)
    assert verified == 15
