"""E4 — Fig. 5: the deadlocked-program gallery P1/P2/P3.

Expected shape: all three classified deadlocked by the strict procedure;
all three deadlock at run time on unbuffered queues; P1 and P2 are
rescued by buffering (Section 8), P3 never is (rule R1).
"""

import math

from repro import ArrayConfig, is_deadlock_free, simulate, uniform_lookahead
from repro.algorithms.figures import fig5_p1, fig5_p2, fig5_p3
from repro.analysis import format_table


def test_fig5_gallery(benchmark):
    def classify():
        rows = []
        for build in (fig5_p1, fig5_p2, fig5_p3):
            prog = build()
            run = simulate(prog, policy="fcfs")
            buffered = simulate(
                prog,
                config=ArrayConfig(queues_per_link=2, queue_capacity=2),
                policy="static",
            )
            rows.append(
                {
                    "program": prog.name,
                    "strict_free": is_deadlock_free(prog),
                    "lookahead_cap2": is_deadlock_free(
                        prog, uniform_lookahead(prog, 2)
                    ),
                    "lookahead_inf": is_deadlock_free(
                        prog, uniform_lookahead(prog, math.inf)
                    ),
                    "unbuffered_run": run.summary().split()[0],
                    "buffered_run": buffered.summary().split()[0],
                }
            )
        return rows

    rows = benchmark(classify)
    print()
    print(format_table(rows, title="Fig. 5 / E4: P1, P2, P3"))
    assert [r["strict_free"] for r in rows] == [False, False, False]
    assert [r["lookahead_cap2"] for r in rows] == [True, True, False]
    assert [r["lookahead_inf"] for r in rows] == [True, True, False]
    assert all(r["unbuffered_run"] == "DEADLOCK" for r in rows)
    assert [r["buffered_run"] for r in rows] == [
        "completed",
        "completed",
        "DEADLOCK",
    ]
