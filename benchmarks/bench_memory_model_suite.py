"""E1 (extended) — the §9 efficiency claim across the workload suite.

"By avoiding the unnecessary access to cells' local memories, the
systolic model of communication can be much more efficient than the
memory-to-memory model" — measured here not just on the Fig. 2 filter
but on every algorithm generator in the library.

Expected shape: 4 accesses/word and >1x slowdown under the memory model
on every workload; identical numeric results under both models.
"""

from repro import ArrayConfig
from repro.algorithms.backsub import backsub_program
from repro.algorithms.fir import fir_program, fir_registers
from repro.algorithms.horner import horner_program, horner_registers
from repro.algorithms.matvec import matvec_program, matvec_registers
from repro.algorithms.oddeven import oddeven_program, oddeven_registers
from repro.algorithms.seqcompare import encode, lcs_program_for, lcs_registers
from repro.analysis import format_table
from repro.sim.memory_model import compare_models


def _workloads():
    yield (
        fir_program(4, 8),
        ArrayConfig(),
        fir_registers((1.0, 0.5, 0.25, 0.125)),
    )
    yield (
        matvec_program([[1.0, 2.0, 3.0]] * 4),
        ArrayConfig(queues_per_link=2),
        matvec_registers([1.0, 2.0, 3.0]),
    )
    yield (
        oddeven_program(6),
        ArrayConfig(),
        oddeven_registers([6.0, 5.0, 4.0, 3.0, 2.0, 1.0]),
    )
    yield (
        horner_program(3, [1.0, 2.0, -1.0]),
        ArrayConfig(queues_per_link=2),
        horner_registers([1.0, 0.0, 2.0, -3.0]),
    )
    yield (
        lcs_program_for("GATTAC", "TACG"),
        ArrayConfig(queues_per_link=2),
        lcs_registers(encode("TACG")),
    )
    yield (
        backsub_program(
            [[2.0, 0.0], [1.0, 4.0]], [2.0, 6.0]
        ),
        ArrayConfig(queues_per_link=2),
        None,
    )


def test_memory_model_across_workloads(benchmark):
    def measure():
        rows = []
        for prog, config, registers in _workloads():
            cmp = compare_models(
                prog,
                base_config=config,
                memory_access_cycles=2,
                registers=registers,
            )
            rows.append(
                {
                    "workload": prog.name,
                    "words": prog.total_words,
                    "systolic_cycles": cmp.systolic.time,
                    "memory_cycles": cmp.memory.time,
                    "speedup": round(cmp.speedup, 2),
                    "mem_acc_per_word": round(
                        cmp.accesses_per_word(cmp.memory), 2
                    ),
                }
            )
        return rows

    rows = benchmark(measure)
    print()
    print(format_table(rows, title="§9 / E1 extended: systolic vs memory-to-memory"))
    for row in rows:
        assert row["mem_acc_per_word"] == 4.0, row
        assert row["speedup"] > 1.0, row
