"""E6 — Fig. 7: queue-induced deadlock from mis-ordered assignment.

Expected shape: with one queue per link, FCFS assigns B the C3-C4 queue
before C and deadlocks (the figure's lower half); the ordered policy
serves the smaller label C first and completes — across all segment
lengths. The 'think' sweep shows the race the figure's D1/D2 constants
encode: once C3 delays its B writes long enough, even FCFS survives.
"""

import pytest

from repro import label_messages, simulate
from repro.algorithms.figures import fig7_program
from repro.analysis import format_table
from repro.core.labeling import labels_as_str
from repro.viz import render_assignments


def test_fig7_contrast(benchmark):
    prog = fig7_program()

    def run():
        return (
            simulate(prog, policy="fcfs"),
            simulate(prog, policy="ordered"),
        )

    fcfs, ordered = benchmark(run)
    print()
    print("Fig. 7 / E6: labels", labels_as_str(label_messages(prog)))
    print("FCFS   :", fcfs.summary())
    print("Ordered:", ordered.summary())
    print(render_assignments(ordered.assignment_trace))
    assert fcfs.deadlocked
    assert ordered.completed
    grants = [
        e.message
        for e in ordered.assignment_trace
        if e.kind == "grant" and str(e.link) == "C3->C4"
    ]
    assert grants == ["C", "B"]  # label order beats arrival order


@pytest.mark.parametrize("c_len,b_len", [(2, 2), (4, 2), (8, 4), (16, 8)])
def test_fig7_segment_sweep(benchmark, c_len, b_len):
    prog = fig7_program(c_len=c_len, b_len=b_len)

    def run():
        return (
            simulate(prog, policy="fcfs"),
            simulate(prog, policy="ordered"),
        )

    fcfs, ordered = benchmark(run)
    assert fcfs.deadlocked
    assert ordered.completed


def test_fig7_think_time_race(benchmark):
    def sweep():
        rows = []
        for think in (0, 2, 4, 6, 8, 12):
            result = simulate(fig7_program(think_cycles=think), policy="fcfs")
            rows.append(
                {"think_cycles": think, "fcfs_outcome": result.summary().split()[0]}
            )
        return rows

    rows = benchmark(sweep)
    print()
    print(format_table(rows, title="Fig. 7 / E6: FCFS vs C3 think time (D1/D2 race)"))
    outcomes = [r["fcfs_outcome"] for r in rows]
    assert outcomes[0] == "DEADLOCK"
    assert outcomes[-1] == "completed"
    # Single crossover: once C wins the race, it keeps winning.
    flips = sum(1 for a, b in zip(outcomes, outcomes[1:]) if a != b)
    assert flips == 1
