"""E2 — Fig. 2: the filtering program.

Regenerates the listing, checks it against the paper's exact transfer
sequences, and measures program construction + numeric execution across
filter sizes.
"""

import pytest

from repro import simulate
from repro.algorithms.figures import (
    fig2_expected_outputs,
    fig2_fir,
    fig2_registers,
)
from repro.algorithms.fir import fir_program, fir_registers
from repro.lang import side_by_side


def test_fig2_listing_and_values(benchmark):
    def run():
        prog = fig2_fir()
        result = simulate(prog, registers=fig2_registers())
        return prog, result

    prog, result = benchmark(run)
    print()
    print(side_by_side(prog))
    assert result.received["YA"] == list(fig2_expected_outputs())


@pytest.mark.parametrize("taps,outputs", [(3, 2), (8, 16), (16, 32)])
def test_fir_scaling(benchmark, taps, outputs):
    xs = tuple(float(i % 5) for i in range(outputs + taps - 1))
    ws = tuple(1.0 / (i + 1) for i in range(taps))

    def run():
        prog = fir_program(taps, outputs, xs=xs)
        return simulate(prog, registers=fir_registers(ws))

    result = benchmark(run)
    assert result.completed
