"""E3 — Fig. 4: the crossing-off procedure on the Fig. 2 program.

Expected shape: 12 steps crossing 15 pairs, with two pairs crossed at
steps 3, 5 and 9 exactly as the figure shows.
"""

import pytest

from repro import cross_off
from repro.algorithms.figures import fig2_fir
from repro.algorithms.fir import fir_program
from repro.viz import render_steps


def test_fig4_trace(benchmark):
    prog = fig2_fir()
    result = benchmark(lambda: cross_off(prog))
    print()
    print("Fig. 4 / E3: crossing-off on the Fig. 2 program")
    print(render_steps(result))
    assert result.deadlock_free
    assert result.step_count == 12
    assert result.pairs_crossed == 15
    doubles = [i for i, s in enumerate(result.steps, start=1) if len(s) == 2]
    assert doubles == [3, 5, 9]


@pytest.mark.parametrize("taps,outputs", [(4, 8), (8, 32), (16, 64)])
def test_crossing_off_scaling(benchmark, taps, outputs):
    prog = fir_program(taps, outputs)
    result = benchmark(lambda: cross_off(prog))
    assert result.deadlock_free
    assert result.pairs_crossed == prog.total_words
