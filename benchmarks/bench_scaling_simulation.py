"""E15 — simulator throughput on realistic systolic workloads.

Expected shape: events processed scale with array size and word count;
the pipelined workloads keep cells busy (utilisation well above zero);
runs remain deterministic at every size. The largest size of each family
also records wall time / events/sec / words/sec into ``BENCH_core.json``
(via ``core_metrics``) so the perf trajectory accumulates.
"""

import time

import pytest

from repro import ArrayConfig, Simulator, simulate
from repro.algorithms.fir import fir_program, fir_registers
from repro.algorithms.matmul2d import matmul_program
from repro.algorithms.matvec import matvec_program, matvec_registers
from repro.algorithms.oddeven import oddeven_program, oddeven_registers
from repro.algorithms.seqcompare import encode, lcs_program_for, lcs_registers


def _best_seconds(benchmark, run):
    """Best measured wall time for one call of ``run``.

    Uses pytest-benchmark's calibrated minimum when timing ran; under
    --benchmark-disable falls back to a single direct sample.
    """
    stats = getattr(benchmark, "stats", None)
    if stats is not None:
        try:
            return stats.stats.min
        except AttributeError:
            pass
    t0 = time.perf_counter()
    run()
    return time.perf_counter() - t0


@pytest.mark.parametrize("cells", [4, 8, 16, 32])
def test_fir_pipeline_scaling(benchmark, core_metrics, cells):
    outputs = 2 * cells
    prog = fir_program(cells, outputs)
    ws = tuple(1.0 for _ in range(cells))
    run = lambda: simulate(prog, registers=fir_registers(ws))
    result = benchmark(run)
    assert result.completed
    assert result.utilization("cell:C1") > 0.2
    if cells == 32:
        core_metrics(
            "sim_fir_32x64",
            events=result.events,
            seconds=_best_seconds(benchmark, run),
            words=result.words_transferred,
        )


@pytest.mark.parametrize("n", [8, 16, 32, 64])
def test_sort_scaling(benchmark, core_metrics, n):
    keys = [float((i * 37) % n) for i in range(n)]
    prog = oddeven_program(n)
    run = lambda: simulate(prog, registers=oddeven_registers(keys))
    result = benchmark(run)
    assert result.completed
    if n == 64:
        core_metrics(
            "sim_oddeven_64",
            events=result.events,
            seconds=_best_seconds(benchmark, run),
            words=result.words_transferred,
        )


@pytest.mark.parametrize("m,n", [(4, 4), (8, 8), (16, 8)])
def test_matvec_scaling(benchmark, core_metrics, m, n):
    a = [[float((i + j) % 3) for j in range(n)] for i in range(m)]
    x = [1.0] * n
    prog = matvec_program(a)
    config = ArrayConfig(queues_per_link=2)
    run = lambda: simulate(prog, config=config, registers=matvec_registers(x))
    result = benchmark(run)
    assert result.completed
    if (m, n) == (16, 8):
        core_metrics(
            "sim_matvec_16x8",
            events=result.events,
            seconds=_best_seconds(benchmark, run),
            words=result.words_transferred,
        )


@pytest.mark.parametrize("size", [2, 3, 4])
def test_mesh_matmul_scaling(benchmark, core_metrics, size):
    a = [[1.0] * size for _ in range(size)]
    b = [[1.0] * size for _ in range(size)]
    prog, mesh = matmul_program(a, b)

    def run():
        sim = Simulator(
            prog, topology=mesh, config=ArrayConfig(queues_per_link=size + 1)
        )
        return sim.run()

    result = benchmark(run)
    assert result.completed
    if size == 4:
        core_metrics(
            "sim_matmul_4x4",
            events=result.events,
            seconds=_best_seconds(benchmark, run),
            words=result.words_transferred,
        )


def test_lcs_throughput(benchmark, core_metrics):
    a, b = "GATTACAGATTACA", "TACGTACGTA"
    prog = lcs_program_for(a, b)
    config = ArrayConfig(queues_per_link=2)
    run = lambda: simulate(prog, config=config, registers=lcs_registers(encode(b)))
    result = benchmark(run)
    assert result.completed
    core_metrics(
        "sim_lcs",
        events=result.events,
        seconds=_best_seconds(benchmark, run),
        words=result.words_transferred,
    )
