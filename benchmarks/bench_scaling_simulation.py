"""E15 — simulator throughput on realistic systolic workloads.

Expected shape: events processed scale with array size and word count;
the pipelined workloads keep cells busy (utilisation well above zero);
runs remain deterministic at every size.
"""

import pytest

from repro import ArrayConfig, Simulator, simulate
from repro.algorithms.fir import fir_program, fir_registers
from repro.algorithms.matmul2d import matmul_program
from repro.algorithms.matvec import matvec_program, matvec_registers
from repro.algorithms.oddeven import oddeven_program, oddeven_registers
from repro.algorithms.seqcompare import encode, lcs_program_for, lcs_registers


@pytest.mark.parametrize("cells", [4, 8, 16, 32])
def test_fir_pipeline_scaling(benchmark, cells):
    outputs = 2 * cells
    prog = fir_program(cells, outputs)
    ws = tuple(1.0 for _ in range(cells))
    result = benchmark(lambda: simulate(prog, registers=fir_registers(ws)))
    assert result.completed
    assert result.utilization("cell:C1") > 0.2


@pytest.mark.parametrize("n", [8, 16, 32, 64])
def test_sort_scaling(benchmark, n):
    keys = [float((i * 37) % n) for i in range(n)]
    prog = oddeven_program(n)
    result = benchmark(
        lambda: simulate(prog, registers=oddeven_registers(keys))
    )
    assert result.completed


@pytest.mark.parametrize("m,n", [(4, 4), (8, 8), (16, 8)])
def test_matvec_scaling(benchmark, m, n):
    a = [[float((i + j) % 3) for j in range(n)] for i in range(m)]
    x = [1.0] * n
    prog = matvec_program(a)
    config = ArrayConfig(queues_per_link=2)
    result = benchmark(
        lambda: simulate(prog, config=config, registers=matvec_registers(x))
    )
    assert result.completed


@pytest.mark.parametrize("size", [2, 3, 4])
def test_mesh_matmul_scaling(benchmark, size):
    a = [[1.0] * size for _ in range(size)]
    b = [[1.0] * size for _ in range(size)]
    prog, mesh = matmul_program(a, b)

    def run():
        sim = Simulator(
            prog, topology=mesh, config=ArrayConfig(queues_per_link=size + 1)
        )
        return sim.run()

    result = benchmark(run)
    assert result.completed


def test_lcs_throughput(benchmark):
    a, b = "GATTACAGATTACA", "TACGTACGTA"
    prog = lcs_program_for(a, b)
    config = ArrayConfig(queues_per_link=2)
    result = benchmark(
        lambda: simulate(prog, config=config, registers=lcs_registers(encode(b)))
    )
    assert result.completed
