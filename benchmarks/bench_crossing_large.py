"""E18 — interned crossing engine at 1k-10k cells: the scale-up claim.

PR 2's incremental engine made fir-class (tens-of-cells) analysis fast,
but it keyed every per-cell index by message-name strings and re-sorted
a growing dirty set every sequential step — on 1k-10k-cell programs the
string constant factor and that accidental quadratic dominated: the PR 2
engine needed ~95 s for one cold 10k-cell buffered-config analysis. The
interned engine (dense int ids from the program's
:class:`~repro.core.program.InternTable`, flat list indexes, a
lazy-deletion dirty heap) runs the same analysis in ~1.5 s.

PR 4 rebuilt *parallel* stepping (the paper's canonical crossing mode,
and what ``analyze_schedule`` drives) on the bucketed step structure —
readiness bits, nomination scans over changed cells, a per-step
newly-executable bucket — replacing the per-step dirty flush and
``sorted(executable)``; the parallel family below measures that.

Records written to ``BENCH_core.json``:

* ``cross_off_cold_large_{1k,4k,10k}_seq`` — one cold sequential
  lookahead run (what ``constraint_labeling`` drives during
  buffered-config analysis) over the ``large_spec_family`` program of
  that size;
* ``cross_off_cold_large_{1k,4k,10k}_par`` — the same cold lookahead
  analysis in maximal-parallel stepping over the same programs;
* ``analysis_cold_large_10k`` — the full cold buffered-config analysis
  (crossing-off + constraint condensation) at 10k cells;
* ``cross_off_cold_large_{1k,4k,10k}_{seq,par}_np`` — the same cold
  crossing-off runs through the columnar numpy backend (PR 7). The
  non-``_np`` records pin ``backend="interned"`` so they keep
  measuring the pure-Python engine their baselines were recorded
  against.

Sequential records carry ``speedup_vs_pr2`` (the PR 2 engine re-run on
the recording box over these exact programs; the old engine was
resurrected from git history for the measurement). Parallel records
carry ``speedup_vs_pr3``, measured the same way against the PR 3
engine's parallel stepping, interleaved with the bucketed engine in a
single process to cancel box noise. The ``_np`` records carry
``speedup_vs_pr4``, measured the same way: the PR 4 engine resurrected
from git history, interleaved with the columnar kernel over these
exact programs on the recording box. When recording the
baseline (``REPRO_BENCH_RECORD=1``) the acceptance floor of 2x is
asserted; smoke runs on foreign hardware only assert the qualitative
shape.
"""

import os
import time
from functools import lru_cache

import pytest

from repro.core.crossing import cross_off, uniform_lookahead
from repro.core.crossing_np import numpy_available
from repro.core.labeling import constraint_labeling
from repro.workloads import large_spec_family, random_program

#: Wall ms for the PR 2 (string-keyed, pre-intern) engine on this
#: workload family, measured on the baseline-recording box (best of 3).
PR2_BASELINE_MS = {
    "cross_off_cold_large_1k_seq": 667.0,
    "cross_off_cold_large_4k_seq": 12632.0,
    "cross_off_cold_large_10k_seq": 94533.0,
    "analysis_cold_large_10k": 94438.0,
}

#: Wall ms for the PR 3 engine's parallel stepping (dirty-flush +
#: per-step ``sorted(executable)``) on this workload family, measured on
#: the baseline-recording box: best-of-4/5, old and new engine
#: interleaved in one process over identical program objects.
PR3_PARALLEL_BASELINE_MS = {
    "cross_off_cold_large_1k_par": 82.9,
    "cross_off_cold_large_4k_par": 476.0,
    "cross_off_cold_large_10k_par": 1725.1,
}

#: Wall ms for the PR 4 interned engine on this workload family,
#: measured on the baseline-recording box: the PR 4 ``crossing.py``
#: resurrected from git history, interleaved best-of-4/8 with the
#: columnar kernel in one process over identical program objects (the
#: same protocol as the PR 3 parallel constants — interleaving cancels
#: box noise, which the committed records alone cannot). Keyed by the
#: ``_np`` record names.
PR4_BASELINE_MS = {
    "cross_off_cold_large_1k_seq_np": 105.7,
    "cross_off_cold_large_4k_seq_np": 692.8,
    "cross_off_cold_large_10k_seq_np": 1980.2,
    "cross_off_cold_large_1k_par_np": 37.3,
    "cross_off_cold_large_4k_par_np": 214.0,
    "cross_off_cold_large_10k_par_np": 695.6,
}

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="columnar backend needs numpy"
)

_SPECS = {spec.cells: spec for spec in large_spec_family()}


@lru_cache(maxsize=None)
def _program(cells: int):
    """Generation at 10k cells costs seconds; share one build per size."""
    return random_program(_SPECS[cells])


def _refreshing_committed_baseline() -> bool:
    # REPRO_BENCH_RECORD without REPRO_BENCH_OUT is the combination that
    # rewrites the checked-in BENCH_core.json (see benchmarks/conftest).
    return (
        os.environ.get("REPRO_BENCH_RECORD") == "1"
        and not os.environ.get("REPRO_BENCH_OUT")
    )


def _record_with_speedup(core_metrics, name, *, events, seconds, **extra):
    if name in PR4_BASELINE_MS:
        baseline_ms, against, field = (
            PR4_BASELINE_MS[name], "PR 4", "speedup_vs_pr4"
        )
    elif name in PR2_BASELINE_MS:
        baseline_ms, against, field = (
            PR2_BASELINE_MS[name], "PR 2", "speedup_vs_pr2"
        )
    else:
        baseline_ms, against, field = (
            PR3_PARALLEL_BASELINE_MS[name], "PR 3", "speedup_vs_pr3"
        )
    speedup = round(baseline_ms / (seconds * 1e3), 1)
    core_metrics(
        name,
        events=events,
        seconds=seconds,
        ms_per_run=round(seconds * 1e3, 1),
        **{field: speedup},
        **extra,
    )
    if _refreshing_committed_baseline():
        # The acceptance floor: >= 2x over the previous engine on cold
        # buffered-config analysis. Only enforced while refreshing the
        # committed baseline — the baseline constants were measured on
        # that box, so comparing foreign-hardware timings against them
        # would measure the hardware, not the engine. (Cross-hardware
        # drift is the regression guard's job, via events_per_sec.)
        assert speedup >= 2.0, (
            f"{name}: {speedup}x vs {against} is below the 2x "
            f"acceptance floor"
        )


def _cold_sequential(program, lookahead, backend="interned"):
    # Pinned: these records extend the PR 4 baseline series, and the
    # _np family A/Bs the columnar kernel against it on the same box.
    return cross_off(
        program, lookahead=lookahead, mode="sequential", backend=backend
    )


def _best_of(runs, fn):
    best = None
    result = None
    for _ in range(runs):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def test_cold_crossing_1k_sequential(benchmark, core_metrics):
    program = _program(1000)
    lookahead = uniform_lookahead(program, 2)
    result = benchmark(lambda: _cold_sequential(program, lookahead))
    assert result.deadlock_free
    seconds, result = _best_of(3, lambda: _cold_sequential(program, lookahead))
    _record_with_speedup(
        core_metrics,
        "cross_off_cold_large_1k_seq",
        events=result.pairs_crossed,
        seconds=seconds,
        pairs=result.pairs_crossed,
        cells=1000,
    )


def test_cold_crossing_4k_sequential(core_metrics):
    program = _program(4000)
    lookahead = uniform_lookahead(program, 2)
    seconds, result = _best_of(2, lambda: _cold_sequential(program, lookahead))
    assert result.deadlock_free
    _record_with_speedup(
        core_metrics,
        "cross_off_cold_large_4k_seq",
        events=result.pairs_crossed,
        seconds=seconds,
        pairs=result.pairs_crossed,
        cells=4000,
    )


def test_cold_crossing_10k_sequential(core_metrics):
    program = _program(10000)
    lookahead = uniform_lookahead(program, 2)
    seconds, result = _best_of(2, lambda: _cold_sequential(program, lookahead))
    assert result.deadlock_free
    _record_with_speedup(
        core_metrics,
        "cross_off_cold_large_10k_seq",
        events=result.pairs_crossed,
        seconds=seconds,
        pairs=result.pairs_crossed,
        cells=10000,
    )


def test_cold_full_analysis_10k(core_metrics):
    """Crossing-off plus constraint condensation: the whole cold
    buffered-config analysis a Simulator build pays."""
    program = _program(10000)
    lookahead = uniform_lookahead(program, 2)
    seconds, labeling = _best_of(
        2, lambda: constraint_labeling(program, lookahead=lookahead)
    )
    assert len(labeling) == len(program.messages)
    _record_with_speedup(
        core_metrics,
        "analysis_cold_large_10k",
        events=program.total_words,
        seconds=seconds,
        messages=len(program.messages),
        cells=10000,
    )


def _cold_parallel(program, lookahead, backend="interned"):
    return cross_off(
        program, lookahead=lookahead, mode="parallel", backend=backend
    )


def test_cold_crossing_1k_parallel(benchmark, core_metrics):
    program = _program(1000)
    lookahead = uniform_lookahead(program, 2)
    result = benchmark(lambda: _cold_parallel(program, lookahead))
    assert result.deadlock_free
    seconds, result = _best_of(3, lambda: _cold_parallel(program, lookahead))
    _record_with_speedup(
        core_metrics,
        "cross_off_cold_large_1k_par",
        events=result.pairs_crossed,
        seconds=seconds,
        pairs=result.pairs_crossed,
        steps=result.step_count,
        cells=1000,
    )


def test_cold_crossing_4k_parallel(core_metrics):
    program = _program(4000)
    lookahead = uniform_lookahead(program, 2)
    seconds, result = _best_of(3, lambda: _cold_parallel(program, lookahead))
    assert result.deadlock_free
    _record_with_speedup(
        core_metrics,
        "cross_off_cold_large_4k_par",
        events=result.pairs_crossed,
        seconds=seconds,
        pairs=result.pairs_crossed,
        steps=result.step_count,
        cells=4000,
    )


def test_cold_crossing_10k_parallel(core_metrics):
    program = _program(10000)
    lookahead = uniform_lookahead(program, 2)
    seconds, result = _best_of(2, lambda: _cold_parallel(program, lookahead))
    assert result.deadlock_free
    _record_with_speedup(
        core_metrics,
        "cross_off_cold_large_10k_par",
        events=result.pairs_crossed,
        seconds=seconds,
        pairs=result.pairs_crossed,
        steps=result.step_count,
        cells=10000,
    )


@requires_numpy
@pytest.mark.parametrize(
    "cells,label", [(1000, "1k"), (4000, "4k"), (10000, "10k")]
)
def test_cold_crossing_columnar_sequential(cells, label, core_metrics):
    program = _program(cells)
    lookahead = uniform_lookahead(program, 2)
    seconds, result = _best_of(
        3 if cells <= 4000 else 2,
        lambda: _cold_sequential(program, lookahead, backend="columnar"),
    )
    assert result.deadlock_free
    _record_with_speedup(
        core_metrics,
        f"cross_off_cold_large_{label}_seq_np",
        events=result.pairs_crossed,
        seconds=seconds,
        pairs=result.pairs_crossed,
        cells=cells,
        backend="columnar",
    )


@requires_numpy
@pytest.mark.parametrize(
    "cells,label", [(1000, "1k"), (4000, "4k"), (10000, "10k")]
)
def test_cold_crossing_columnar_parallel(cells, label, core_metrics):
    program = _program(cells)
    lookahead = uniform_lookahead(program, 2)
    seconds, result = _best_of(
        3 if cells <= 4000 else 2,
        lambda: _cold_parallel(program, lookahead, backend="columnar"),
    )
    assert result.deadlock_free
    _record_with_speedup(
        core_metrics,
        f"cross_off_cold_large_{label}_par_np",
        events=result.pairs_crossed,
        seconds=seconds,
        pairs=result.pairs_crossed,
        steps=result.step_count,
        cells=cells,
        backend="columnar",
    )


def test_parallel_mode_scales_too():
    """Qualitative guard: maximal-parallel stepping at 10k cells stays
    interactive. Redundant with the recorded ``*_par`` family when the
    bench guard runs, but this one fires on every smoke run."""
    program = _program(10000)
    t0 = time.perf_counter()
    result = cross_off(program, lookahead=uniform_lookahead(program, 2))
    elapsed = time.perf_counter() - t0
    assert result.deadlock_free
    assert elapsed < 30.0  # PR 2 needed ~1.6 s; catch order-of-magnitude rot
