"""Frontier planner cost: jobs executed vs the exhaustive grid.

The Section 8 sizing question — minimal queue capacity per
(policy, queues) line — costs the exhaustive grid ``lines x n_caps``
simulations. The planner (:mod:`repro.sweep.planner`) binary-searches
each static-policy line in ``2 + ceil(log2 n_caps)`` probes, so on the
64-point capacity axis here it answers with ~8 probes per line instead
of 64 — and, being a *search*, it must land on exactly the frontier the
grid finds.

This bench runs both on a burst-exchange workload (two cells exchange a
k-word burst of writes before any read, so the static frontier sits at
capacity k — squarely mid-axis, the binary search's worst case) and
asserts:

* the planner's frontier equals the exhaustive grid's, per line;
* every planner row is byte-identical to the grid row at the same
  grid index;
* the planner executed >= 4x fewer jobs (the acceptance floor; the
  expected ratio on 64 points is ~8x).

``REPRO_BENCH_RECORD=1`` records ``frontier_plan_64`` /
``frontier_grid_64`` into ``BENCH_core.json`` (events/sec over the jobs
each mode ran, wall seconds, the job counts and their ratio). Smoke mode
(CI ``--benchmark-disable``) runs the same assertions without touching
the baseline.
"""

import time

from repro.core.message import Message
from repro.core.ops import R, W
from repro.core.program import ArrayProgram
from repro.sweep import FrontierPlanner, PlanSpec, exhaustive_spec

N_CAPS = 64
QUEUES = (1, 2)
BURST = 11  # frontier at cap=11: mid-axis, the bisection's worst case


def burst_exchange(k: int) -> ArrayProgram:
    """Two cells exchange k-word bursts: all writes precede any read.

    Under the static policy both directions stall until a queue can
    absorb the whole burst, so the completion frontier sits at exactly
    ``capacity == k`` — a workload whose sizing answer is interesting
    (neither endpoint of the axis) and known in closed form.
    """
    msgs = [Message("M0", "A", "B", k), Message("M1", "B", "A", k)]
    progs = {
        "A": [W("M0", constant=1.0) for _ in range(k)]
        + [R("M1", into=f"a{i}") for i in range(k)],
        "B": [W("M1", constant=2.0) for _ in range(k)]
        + [R("M0", into=f"b{i}") for i in range(k)],
    }
    return ArrayProgram(["A", "B"], msgs, progs)


def _spec() -> PlanSpec:
    return PlanSpec(
        burst_exchange(BURST),
        policies=("static",),
        queues=QUEUES,
        capacities=tuple(range(N_CAPS)),
    )


def _run_both():
    spec = _spec()
    t0 = time.perf_counter()
    planned = FrontierPlanner(spec).run()
    plan_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    grid = FrontierPlanner(exhaustive_spec(spec)).run()
    grid_wall = time.perf_counter() - t0
    return planned, plan_wall, grid, grid_wall


def _check(planned, grid) -> None:
    assert planned.frontier() == grid.frontier()
    assert planned.frontier() == {f"static q={nq}": BURST for nq in QUEUES}
    grid_rows = {row.index: row for row in grid.rows}
    for row in planned.rows:
        assert row == grid_rows[row.index]
    assert grid.jobs_executed == grid.grid_jobs == len(QUEUES) * N_CAPS
    # The acceptance floor; expected ~8x (2 + log2(64) probes per line).
    assert planned.jobs_executed * 4 <= grid.jobs_executed, (
        planned.jobs_executed,
        grid.jobs_executed,
    )


def test_frontier_beats_grid_smoke(benchmark):
    """Frontier == grid at >= 4x fewer jobs (runs everywhere)."""
    planned, _pw, grid, _gw = _run_both()
    _check(planned, grid)
    benchmark(lambda: FrontierPlanner(_spec()).run())


def test_frontier_cost_recorded(core_metrics):
    """Record planner-vs-grid cost on the 64-point axis."""
    planned, plan_wall, grid, grid_wall = _run_both()
    _check(planned, grid)
    ratio = round(grid.jobs_executed / planned.jobs_executed, 2)
    core_metrics(
        "frontier_plan_64",
        events=sum(row.events for row in planned.rows),
        seconds=plan_wall,
        jobs=planned.jobs_executed,
        grid_jobs=grid.grid_jobs,
        jobs_saved_ratio=ratio,
    )
    core_metrics(
        "frontier_grid_64",
        events=sum(row.events for row in grid.rows),
        seconds=grid_wall,
        jobs=grid.jobs_executed,
    )
    print(
        f"[frontier] planner {planned.jobs_executed} jobs vs grid "
        f"{grid.jobs_executed} ({ratio}x fewer), frontier cap={BURST} "
        f"on both"
    )
