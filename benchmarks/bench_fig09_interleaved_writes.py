"""E8 — Fig. 9: the symmetric case, interleaved writes by the sender.

Expected shape: identical to Fig. 8 — one queue on the C1-C2 interval
deadlocks, two complete; the paper's example of static assignment "if
there are two queues between Cl and C2" is exercised explicitly.
"""

from repro import ArrayConfig, constraint_labeling, simulate
from repro.algorithms.figures import fig9_program
from repro.analysis import format_table


def test_fig9_queue_sweep(benchmark):
    prog = fig9_program()

    def sweep():
        rows = []
        for queues in (1, 2):
            for policy in ("fcfs", "static"):
                try:
                    result = simulate(
                        prog,
                        config=ArrayConfig(queues_per_link=queues),
                        policy=policy,
                    )
                    outcome = result.summary().split()[0]
                except Exception as exc:  # static setup rejects shortfalls
                    outcome = f"rejected ({type(exc).__name__})"
                rows.append(
                    {"queues": queues, "policy": policy, "outcome": outcome}
                )
        return rows

    rows = benchmark(sweep)
    print()
    print("Fig. 9 / E8: interleaved writes; same label:",
          constraint_labeling(prog).same_label("A", "B"))
    print(format_table(rows))
    by_key = {(r["queues"], r["policy"]): r["outcome"] for r in rows}
    assert by_key[(1, "fcfs")] == "DEADLOCK"
    assert by_key[(1, "static")].startswith("rejected")
    assert by_key[(2, "fcfs")] == "completed"
    assert by_key[(2, "static")] == "completed"  # the paper's fix
