"""Ablation — structural schedule bounds vs simulated makespan.

The maximal-parallel crossing-off trace bounds any execution from below
(busiest-cell ops, transfer rounds). This bench measures how tight that
bound is across the workload suite — high efficiency means the systolic
execution is structure-limited, not contention-limited, which is the
design goal the paper's machinery protects.
"""

from repro import ArrayConfig, simulate
from repro.algorithms.backsub import backsub_program
from repro.algorithms.figures import fig2_fir, fig2_registers
from repro.algorithms.fir import fir_program, fir_registers
from repro.algorithms.horner import horner_program, horner_registers
from repro.algorithms.oddeven import oddeven_program, oddeven_registers
from repro.analysis import format_table
from repro.core.schedule import schedule_row


def test_schedule_efficiency_suite(benchmark):
    def measure():
        rows = []
        cases = [
            (fig2_fir(), ArrayConfig(), fig2_registers()),
            (fir_program(6, 12), ArrayConfig(), fir_registers((1.0,) * 6)),
            (
                oddeven_program(8),
                ArrayConfig(),
                oddeven_registers([float(8 - i) for i in range(8)]),
            ),
            (
                horner_program(4, [1.0, 2.0, 3.0, 4.0]),
                ArrayConfig(queues_per_link=2),
                horner_registers([1.0, 0.0, -2.0, 1.0, 5.0]),
            ),
            (
                backsub_program(
                    [[2.0, 0, 0], [1.0, 2.0, 0], [1.0, 1.0, 2.0]],
                    [2.0, 4.0, 8.0],
                ),
                ArrayConfig(queues_per_link=2),
                None,
            ),
        ]
        for prog, config, registers in cases:
            result = simulate(prog, config=config, registers=registers)
            assert result.completed, prog.name
            rows.append(schedule_row(prog, result.time, config=config))
        return rows

    rows = benchmark(measure)
    print()
    print(format_table(rows, title="Ablation: structural bounds vs measured makespan"))
    for row in rows:
        assert row["makespan"] >= row["cycle_lb"]  # soundness
        assert row["efficiency"] > 0.15  # the bound is informative


def test_buffering_tightens_efficiency(benchmark):
    """More queue capacity moves the FIR pipeline toward its bound."""

    def measure():
        prog = fir_program(6, 24)
        regs = fir_registers((1.0,) * 6)
        out = {}
        for cap in (0, 2, 8):
            result = simulate(
                prog,
                config=ArrayConfig(queue_capacity=cap),
                registers=regs,
            )
            row = schedule_row(
                prog, result.time, config=ArrayConfig(queue_capacity=cap)
            )
            out[cap] = (result.time, row["efficiency"])
        return out

    out = benchmark(measure)
    print()
    print("FIR k=6 n=24: capacity -> (makespan, efficiency):", out)
    times = [out[cap][0] for cap in (0, 2, 8)]
    assert times[0] >= times[1] >= times[2]  # buffering only helps
