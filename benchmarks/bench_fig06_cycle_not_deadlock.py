"""E5 — Fig. 6: a message cycle that is nonetheless deadlock-free.

Expected shape: the endpoint graph has a 4-cycle, yet crossing-off
completes and the unbuffered run finishes — the paper's warning that
cycle-checking senders/receivers is not a deadlock test.
"""

from repro import cross_off, simulate
from repro.algorithms.figures import fig6_cycle
from repro.viz import render_linear, render_steps


def test_fig6_cycle(benchmark):
    prog = fig6_cycle()

    def run():
        return cross_off(prog), simulate(prog)

    crossing, result = benchmark(run)
    print()
    print("Fig. 6 / E5: cycle of messages, deadlock-free program")
    print(render_linear(prog))
    print(render_steps(crossing))
    senders = {m.sender: m.receiver for m in prog.messages.values()}
    node = "C1"
    for _ in range(4):
        node = senders[node]
    assert node == "C1"  # the cycle is real
    assert crossing.deadlock_free  # ...but the program is fine
    assert result.completed
