"""E17 — cold-cache analysis throughput: the compile-time half at scale.

PR 1 made the run-time simulator fast; the compile-time crossing-off
procedure then dominated cold-cache ensemble runs (~85% of an uncached
buffered fir16x32 run was analysis). The incremental crossing engine —
per-(cell, kind, message) position indexes, prefix write-counts for the
R2 checks, and a dirty-message worklist — targets exactly that.

Three claims, recorded into ``BENCH_core.json``:

* **cold crossing-off** — one sequential lookahead run over fir16x32
  (what ``constraint_labeling`` drives during buffered-config analysis)
  in single-digit milliseconds;
* **ensemble analysis** — 100 *distinct* fir-class programs fully
  analysed cold (capacities + constraint labeling, no cache reuse
  possible) at a rate that keeps classification off the critical path;
* **streamed sweep** — a large repeat sweep through
  ``simulate_stream`` with O(1) retained results sustains batch-runner
  throughput.

Expected shape: per-program cold analysis is several times faster than
the PR 1 baseline implied (51.5 ms uncached vs 7.4 ms cached per run —
~44 ms of analysis); streamed and collected sweeps agree on outcomes.
"""

import time

from repro.algorithms.fir import fir_program
from repro.arch.config import ArrayConfig
from repro.arch.routing import default_router
from repro.arch.topology import ExplicitLinear
from repro.core.crossing import cross_off, route_capacities
from repro.core.labeling import constraint_labeling
from repro.sim.batch import CompletedCount, SimJob, iter_sweep_jobs, simulate_stream


def _fir_family(count: int):
    """``count`` structurally distinct fir-class programs."""
    programs = []
    taps, outputs = 4, 8
    for index in range(count):
        programs.append(fir_program(taps + index % 13, outputs + index))
    return programs


def _lookahead_for(program, capacity=2):
    router = default_router(ExplicitLinear(tuple(program.cells)))
    return route_capacities(program, router, capacity)


def test_cold_crossing_off_fir16x32(benchmark, core_metrics):
    prog = fir_program(16, 32)
    lookahead = _lookahead_for(prog)

    def run():
        return cross_off(prog, lookahead=lookahead, mode="sequential")

    result = benchmark(run)
    assert result.deadlock_free

    samples = []
    for _ in range(5):
        t0 = time.perf_counter()
        result = run()
        samples.append(time.perf_counter() - t0)
    seconds = min(samples)
    core_metrics(
        "cross_off_cold_fir16x32_cap2",
        events=result.pairs_crossed,
        seconds=seconds,
        pairs=result.pairs_crossed,
        ms_per_run=round(seconds * 1e3, 3),
    )


def test_cold_analysis_fir_ensemble(benchmark, core_metrics):
    """100 distinct fir-class programs, full cold analysis each."""
    programs = _fir_family(100)

    def analyse_all():
        labelings = []
        for prog in programs:
            labelings.append(
                constraint_labeling(prog, lookahead=_lookahead_for(prog))
            )
        return labelings

    labelings = benchmark(analyse_all)
    assert len(labelings) == len(programs)
    assert all(len(labeling) > 0 for labeling in labelings)

    t0 = time.perf_counter()
    analyse_all()
    seconds = time.perf_counter() - t0
    total_pairs = sum(p.total_words for p in programs)
    core_metrics(
        "analysis_cold_fir_ensemble_x100",
        events=total_pairs,
        seconds=seconds,
        programs=len(programs),
        ms_per_program=round(seconds / len(programs) * 1e3, 3),
    )


def test_streamed_sweep_matches_collected(benchmark, core_metrics):
    prog = fir_program(8, 16)
    repeat = 50

    def stream_sweep():
        outcomes = CompletedCount()
        jobs = iter_sweep_jobs(prog, queues=(1,), capacities=(2,), repeat=repeat)
        for _row in simulate_stream(jobs, reducers=(outcomes,)):
            pass
        return outcomes

    outcomes = benchmark(stream_sweep)
    assert outcomes.total == repeat
    assert outcomes.completed == repeat

    t0 = time.perf_counter()
    outcomes = stream_sweep()
    seconds = time.perf_counter() - t0
    core_metrics(
        "stream_sweep_fir8x16_x50",
        events=outcomes.total,
        seconds=seconds,
        runs_per_sec=round(outcomes.total / seconds),
    )


def test_streamed_outcomes_agree_with_batch():
    """Correctness guard: streaming and collecting classify identically."""
    from repro.sim.batch import simulate_many

    prog = fir_program(4, 8)
    jobs = [
        SimJob(prog, config=ArrayConfig(queue_capacity=2)) for _ in range(8)
    ]
    rows = list(simulate_stream(iter(jobs)))
    results = simulate_many(jobs)
    assert [r.completed for r in rows] == [r.completed for r in results]
    assert [r.time for r in rows] == [r.time for r in results]
