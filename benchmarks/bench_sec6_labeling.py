"""E9 — Section 6: the consistent labeling scheme.

Expected shape: the Fig. 7 walkthrough labels are (A, C, B) = (1, 2, 3);
the literal scheme and the constraint-based scheme agree on every figure;
on random ensembles the literal scheme occasionally wedges on its pick
order (the DESIGN.md finding) while the constraint scheme always
succeeds. Scaling: labeling cost grows roughly linearly with word count.
"""

import pytest

from repro import constraint_labeling, is_consistent, label_messages
from repro.algorithms.figures import fig7_program, fig8_program, fig9_program
from repro.algorithms.fir import fir_program
from repro.analysis import format_table
from repro.core.labeling import labels_as_str
from repro.errors import LabelingError
from repro.workloads import WorkloadSpec, random_program


def test_sec6_fig7_labels(benchmark):
    prog = fig7_program()
    labeling = benchmark(lambda: label_messages(prog))
    print()
    print("Section 6 / E9 labels on Fig. 7:", labels_as_str(labeling))
    assert labels_as_str(labeling) == "A=1 B=3 C=2"
    assert labels_as_str(constraint_labeling(prog)) == "A=1 B=3 C=2"


def test_sec6_scheme_agreement_on_figures(benchmark):
    def agree():
        out = []
        for prog in (fig7_program(), fig8_program(), fig9_program()):
            paper = label_messages(prog).normalized()
            ours = constraint_labeling(prog).normalized()
            out.append((prog.name, paper == ours))
        return out

    rows = benchmark(agree)
    assert all(same for _name, same in rows)


def test_sec6_robustness_ensemble(benchmark):
    def ensemble():
        paper_fail = constraint_fail = 0
        inconsistent = 0
        total = 60
        for seed in range(total):
            prog = random_program(WorkloadSpec(seed=seed))
            try:
                label_messages(prog)
            except LabelingError:
                paper_fail += 1
            labeling = constraint_labeling(prog)
            if not is_consistent(prog, labeling):
                inconsistent += 1
        return {
            "programs": total,
            "paper_scheme_wedged": paper_fail,
            "constraint_scheme_wedged": constraint_fail,
            "constraint_inconsistent": inconsistent,
        }

    row = benchmark(ensemble)
    print()
    print(format_table([row], title="E9: labeling robustness over 60 random programs"))
    assert row["constraint_scheme_wedged"] == 0
    assert row["constraint_inconsistent"] == 0
    assert row["paper_scheme_wedged"] > 0  # the documented finding


@pytest.mark.parametrize("taps,outputs", [(4, 16), (8, 64), (16, 128)])
def test_sec6_labeling_scaling(benchmark, taps, outputs):
    prog = fir_program(taps, outputs)
    labeling = benchmark(lambda: constraint_labeling(prog))
    assert is_consistent(prog, labeling)
