"""E7 — Fig. 8: interleaved reads require simultaneously separate queues.

Expected shape: A and B are related (equal labels); one queue on the
shared C2-C3 interval deadlocks; two queues complete ("no deadlock if
# queues greater than 1").
"""

import pytest

from repro import ArrayConfig, constraint_labeling, simulate
from repro.algorithms.figures import fig8_program
from repro.analysis import format_table


def test_fig8_queue_sweep(benchmark):
    prog = fig8_program()

    def sweep():
        rows = []
        for queues in (1, 2, 3):
            result = simulate(
                prog,
                config=ArrayConfig(queues_per_link=queues),
                policy="ordered",
                strict=False,
            )
            rows.append(
                {"queues_per_link": queues, "outcome": result.summary().split()[0]}
            )
        return rows

    rows = benchmark(sweep)
    print()
    labeling = constraint_labeling(prog)
    print("Fig. 8 / E7: interleaved reads; same label:",
          labeling.same_label("A", "B"))
    print(format_table(rows))
    assert labeling.same_label("A", "B")
    assert [r["outcome"] for r in rows] == ["DEADLOCK", "completed", "completed"]


@pytest.mark.parametrize("policy", ["fcfs", "static", "ordered"])
def test_fig8_two_queues_all_policies(benchmark, policy):
    prog = fig8_program()
    config = ArrayConfig(queues_per_link=2)
    result = benchmark(lambda: simulate(prog, config=config, policy=policy))
    assert result.completed
