"""E12 — Section 7: static vs dynamic queue assignment.

Expected shape: static assignment needs one queue per competing message
(more hardware), the ordered dynamic scheme needs only the largest
same-label group (less hardware, same completion guarantee); both produce
identical results where both are feasible.
"""

from repro import ArrayConfig, constraint_labeling, simulate
from repro.analysis import format_table
from repro.arch.routing import default_router
from repro.arch.topology import ExplicitLinear
from repro.core.requirements import dynamic_queue_demand, static_queue_demand
from repro.workloads import WorkloadSpec, random_program


def test_sec7_demand_gap(benchmark):
    def measure():
        rows = []
        for seed in range(20):
            prog = random_program(
                WorkloadSpec(seed=seed, cells=6, messages=10, burst=2)
            )
            router = default_router(ExplicitLinear(tuple(prog.cells)))
            labeling = constraint_labeling(prog)
            static = max(static_queue_demand(prog, router).values())
            dynamic = max(dynamic_queue_demand(prog, router, labeling).values())
            rows.append(
                {"seed": seed, "static_q": static, "dynamic_q": dynamic}
            )
        return rows

    rows = benchmark(measure)
    print()
    summary = {
        "programs": len(rows),
        "mean_static_q": sum(r["static_q"] for r in rows) / len(rows),
        "mean_dynamic_q": sum(r["dynamic_q"] for r in rows) / len(rows),
        "dynamic_saves_hw": sum(
            1 for r in rows if r["dynamic_q"] < r["static_q"]
        ),
    }
    print(format_table([summary], title="Section 7 / E12: queue demand, static vs dynamic"))
    assert all(r["dynamic_q"] <= r["static_q"] for r in rows)
    assert summary["dynamic_saves_hw"] > len(rows) / 2


def test_sec7_both_schemes_complete(benchmark):
    def run():
        outcomes = []
        for seed in range(10):
            prog = random_program(WorkloadSpec(seed=seed, cells=5, messages=8))
            router = default_router(ExplicitLinear(tuple(prog.cells)))
            labeling = constraint_labeling(prog)
            static_q = max(static_queue_demand(prog, router).values())
            dynamic_q = max(
                dynamic_queue_demand(prog, router, labeling).values()
            )
            s = simulate(
                prog,
                config=ArrayConfig(queues_per_link=static_q),
                policy="static",
            )
            d = simulate(
                prog,
                config=ArrayConfig(queues_per_link=dynamic_q),
                policy="ordered",
                labeling=labeling,
            )
            outcomes.append((s.completed, d.completed, static_q, dynamic_q))
        return outcomes

    outcomes = benchmark(run)
    assert all(s and d for s, d, _sq, _dq in outcomes)
    # The dynamic scheme completed with no more hardware than static needed.
    assert all(dq <= sq for _s, _d, sq, dq in outcomes)
