"""Warm-analysis shm tier + streaming result arena: the PR-10 warm path.

Two workloads, both in the shape the ROADMAP's sweep-as-a-service story
cares about — a warm process pool answering many provisioning queries.

``shm_cache_pool_{10k,2k}`` — the repeated-program ensemble: 320
distinct programs (more than the in-process ``AnalysisCache`` LRU's 256
entries, so cyclic revisits always miss memory) revisited round-robin
for 10k pool jobs. Three legs over byte-identical jobs:

* ``recompute`` — no disk cache, shm tier disabled: the pre-PR default
  for a zero-config multiprocess run. Every in-memory miss recomputes
  routes/competing from scratch in the worker.
* ``disk`` — warm disk cache only: every miss costs a file open + read,
  a checksum, and two ``pickle.loads``, again and again as the LRU
  thrashes.
* ``shm`` — the new tier above disk: the first touch of an entry
  unpickles it once out of shared memory, after which the per-process
  memo serves a plain dict hit — no filesystem I/O, no deserialization,
  and immune to the LRU thrash by design.

The *asserted* >= 2x is the warm-analysis acquisition speedup
(``warm_lookup_speedup_vs_disk``): the exact ``AnalysisCache.lookup`` +
artifact-touch path a worker executes per job, timed on the same
thrashed ensemble, shm tier vs disk tier. End-to-end pool rows/sec is
recorded for all three legs (``speedup_vs_disk``,
``speedup_vs_recompute``) but not held to 2x: on a single-core host
(like the recording container) the pool cannot overlap anything, so
every leg shares the simulation + job-pickle/unpickle floor and Amdahl
caps the end-to-end ratio at ~1.1-1.7x no matter how cheap acquisition
gets. ``cpu_count`` rides along so multi-core recordings — where
workers overlap the floor and the acquisition share grows — stay
interpretable.

``shm_stream_{10k,2k}`` — the segmented result arena: 10k jobs fed to
the shm backend as a *generator*, never materialized. Records rows/sec
plus the arena's true peak shared-memory footprint
(``max_live_segments`` x segment bytes) and the parent's ru_maxrss;
asserts the peak stays at the in-flight window, not the sweep length.

Smoke mode (no ``REPRO_BENCH_RECORD``) shrinks every size and checks
only correctness: byte-identical rows across the three legs, the shm
arena fully populated, and the streaming peak bound.
"""

import os
import resource
import time

from conftest import recording_enabled

from repro import ArrayConfig
from repro.arch.routing import default_router
from repro.arch.topology import ExplicitLinear
from repro.core.message import Message
from repro.core.ops import R, W
from repro.core.program import ArrayProgram
from repro.perf.analysis_cache import (
    GLOBAL_ANALYSIS_CACHE,
    clear_analysis_cache,
)
from repro.perf.disk_cache import configure_disk_cache
from repro.perf.shm_cache import (
    ENV_VAR as SHM_ENV_VAR,
    ensure_shm_cache,
    reset_shm_cache_state,
    shm_cache_stats,
)
from repro.sweep import SimJob, SweepPlan, SweepSession
from repro.sweep.arena import ROW_SIZE

WORKERS = 2
CHUNK = 64
#: Payload messages per program — sets both the analysis blob size and
#: the per-job simulation floor (the two scale together; see module
#: docstring for why that caps end-to-end ratios).
K = 48
#: queue_capacity > 0 so the lookahead-capacities artifact is part of
#: every entry (the Section 8 provisioning regime).
CONFIG = ArrayConfig(queue_capacity=2)


def ensemble_program(i: int, k: int = K) -> ArrayProgram:
    """Distinct-by-register cross-read program #``i``.

    A and B each read the message the other writes *last*, so every
    policy deadlocks at t=0 — the simulation pays only build + detection
    cost, keeping the measurement on the analysis-acquisition path. The
    ``i``-suffixed register names make each program a distinct content
    fingerprint (operands are hashed; W constants are not).
    """
    cells = ["A", "B"]
    messages = [Message("B0", "A", "B", 1), Message("B1", "B", "A", 1)]
    a_ops = [R("B1", into=f"g{i}")]
    b_ops = [R("B0", into=f"h{i}")]
    for j in range(k):
        name = f"M{j}"
        messages.append(Message(name, "A", "B", 1))
        a_ops.append(W(name, constant=1.0))
        b_ops.append(R(name, into=f"x{i}_{j}"))
    a_ops.append(W("B0", constant=0.0))
    b_ops.append(W("B1", constant=0.0))
    return ArrayProgram(cells, messages, {"A": a_ops, "B": b_ops})


def ensemble_jobs(programs, n_jobs: int) -> list[SimJob]:
    """Round-robin revisits: adjacent jobs never share a program, and a
    program's revisit distance (len(programs)) exceeds the LRU."""
    return [
        SimJob(programs[i % len(programs)], config=CONFIG, policy="fcfs")
        for i in range(n_jobs)
    ]


def run_pool(jobs):
    plan = SweepPlan(
        jobs=jobs, backend="pool", workers=WORKERS, chunk_size=CHUNK
    )
    t0 = time.perf_counter()
    rows = list(SweepSession(plan).stream())
    return rows, time.perf_counter() - t0


def prewarm_entries(programs) -> None:
    """Materialize + persist every program's full artifact set.

    ``persist()`` publishes to whichever tiers are active, so the same
    loop warms the disk tier (shm disabled) and later the shm tier
    (entries reload from disk, then publish into the arena).
    """
    for program in programs:
        topology = ExplicitLinear(tuple(program.cells))
        entry = GLOBAL_ANALYSIS_CACHE.lookup(
            program, topology, default_router(topology), CONFIG
        )
        entry.routes
        entry.competing
        entry.capacities
        entry.persist()


def acquisition_wall(programs, n_lookups: int) -> float:
    """Wall time of ``n_lookups`` thrashed warm-analysis acquisitions.

    This is the exact per-job path a pool worker executes: an
    ``AnalysisCache.lookup`` (an in-memory miss, by construction) that
    probes the active tiers, then the artifact touches the simulator
    build performs. Topology/router objects are prebuilt — their cost
    is identical across tiers and not what this measures.
    """
    triples = []
    for program in programs:
        topology = ExplicitLinear(tuple(program.cells))
        triples.append((program, topology, default_router(topology)))
    t0 = time.perf_counter()
    for i in range(n_lookups):
        program, topology, router = triples[i % len(triples)]
        entry = GLOBAL_ANALYSIS_CACHE.lookup(program, topology, router, CONFIG)
        entry.routes
        entry.competing
        entry.capacities
    return time.perf_counter() - t0


def test_streaming_shm_peak_rss(core_metrics, monkeypatch):
    """Generator job stream through the shm backend: bounded peak memory.

    Runs first in this module so the parent's ru_maxrss high-water mark
    is read before the materialized ensemble legs inflate it.
    """
    import repro.sweep.arena as arena_mod

    if recording_enabled():
        n_jobs, tag = (2_000, "2k") if os.environ.get("CI") else (10_000, "10k")
    else:
        n_jobs, tag = 200, "smoke"

    captured = []
    real_create = arena_mod.SummaryArena.create.__func__

    def recording_create(cls, n_rows, **kwargs):
        arena = real_create(cls, n_rows, **kwargs)
        captured.append(arena)
        return arena

    monkeypatch.setattr(
        arena_mod.SummaryArena, "create", classmethod(recording_create)
    )
    monkeypatch.setenv(SHM_ENV_VAR, "0")  # isolate: result arena only

    program = ensemble_program(0, k=4)

    def jobs():
        for _ in range(n_jobs):
            yield SimJob(program, config=CONFIG, policy="fcfs")

    try:
        plan = SweepPlan(
            jobs=jobs(), backend="shm", workers=WORKERS, chunk_size=CHUNK
        )
        t0 = time.perf_counter()
        seen = 0
        for row in SweepSession(plan).stream():
            assert row.deadlocked
            seen += 1
        wall = time.perf_counter() - t0
    finally:
        reset_shm_cache_state()
        clear_analysis_cache()

    assert seen == n_jobs
    [arena] = captured
    segment_bytes = arena.segment_rows * ROW_SIZE
    window_rows = (WORKERS * 2 + 1) * CHUNK
    window_segments = -(-window_rows // arena.segment_rows) + 1
    # Peak footprint is the in-flight window, not the sweep length.
    assert arena.max_live_segments <= window_segments
    if not recording_enabled():
        return
    core_metrics(
        f"shm_stream_{tag}",
        events=seen,
        seconds=wall,
        rows=n_jobs,
        rows_per_sec=round(n_jobs / wall),
        arena_peak_bytes=arena.max_live_segments * segment_bytes,
        arena_peak_segments=arena.max_live_segments,
        arena_total_segments=-(-n_jobs // arena.segment_rows),
        ru_maxrss_mb=round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1
        ),
        workers=WORKERS,
    )
    print(
        f"[shm stream {tag}] {n_jobs/wall:.0f} rows/s, peak "
        f"{arena.max_live_segments} live segment(s) of "
        f"{-(-n_jobs // arena.segment_rows)} total"
    )


def test_warm_pool_ensemble(core_metrics, tmp_path):
    """Three-leg repeated-program ensemble + acquisition microbench."""
    if recording_enabled():
        n_programs, acq_n = 320, 3_200
        n_jobs, tag = (2_000, "2k") if os.environ.get("CI") else (10_000, "10k")
    else:
        # Smoke: too few programs to thrash the LRU (so no timing
        # claims) — checks row identity and tier wiring only.
        n_programs, acq_n, n_jobs, tag = 24, 48, 96, "smoke"

    programs = [ensemble_program(i) for i in range(n_programs)]
    jobs = ensemble_jobs(programs, n_jobs)
    saved_env = os.environ.get(SHM_ENV_VAR)
    walls: dict[str, float] = {}
    acq: dict[str, float] = {}
    rows_by_leg: dict[str, list] = {}
    try:
        # recompute: the pre-PR zero-config default — no tiers at all.
        os.environ[SHM_ENV_VAR] = "0"
        reset_shm_cache_state()
        configure_disk_cache(None)
        clear_analysis_cache()
        acq["recompute"] = acquisition_wall(programs, acq_n)
        clear_analysis_cache()
        rows_by_leg["recompute"], walls["recompute"] = run_pool(jobs)

        # disk: warm disk cache, shm still disabled.
        configure_disk_cache(tmp_path / "disk_tier")
        clear_analysis_cache()
        prewarm_entries(programs)
        clear_analysis_cache()
        acq["disk"] = acquisition_wall(programs, acq_n)
        clear_analysis_cache()
        rows_by_leg["disk"], walls["disk"] = run_pool(jobs)

        # shm: the new tier above disk. Re-running the prewarm loop
        # pulls each entry out of the disk tier and publishes it into
        # the freshly created arena.
        os.environ.pop(SHM_ENV_VAR, None)
        assert ensure_shm_cache() is not None
        clear_analysis_cache()
        prewarm_entries(programs)
        stats = shm_cache_stats()
        assert stats is not None and stats["entries"] == n_programs
        clear_analysis_cache()
        acq["shm"] = acquisition_wall(programs, acq_n)
        clear_analysis_cache()
        rows_by_leg["shm"], walls["shm"] = run_pool(jobs)
    finally:
        if saved_env is None:
            os.environ.pop(SHM_ENV_VAR, None)
        else:
            os.environ[SHM_ENV_VAR] = saved_env
        reset_shm_cache_state()
        configure_disk_cache(None)
        clear_analysis_cache()

    for leg in ("recompute", "disk", "shm"):
        assert len(rows_by_leg[leg]) == n_jobs
        assert all(row.deadlocked for row in rows_by_leg[leg])
    assert rows_by_leg["disk"] == rows_by_leg["recompute"]
    assert rows_by_leg["shm"] == rows_by_leg["recompute"]

    if not recording_enabled():
        return
    lookup_speedup = acq["disk"] / acq["shm"]
    # The tentpole claim: warm-analysis acquisition through the shm
    # tier beats re-reading the disk tier by >= 2x on the thrashed
    # repeated-program ensemble. (In practice a dict hit vs a file
    # read + checksum + two unpickles: closer to an order of
    # magnitude.)
    assert lookup_speedup >= 2.0, (
        f"shm acquisition only {lookup_speedup:.2f}x vs disk "
        f"(disk {acq['disk']:.3f}s, shm {acq['shm']:.3f}s "
        f"for {acq_n} lookups)"
    )
    # End-to-end must never regress vs disk-only; 0.9 absorbs timer
    # noise on a shared single-core box where the true ratio is ~1.0x
    # (the acquisition delta is ~3% of the per-job floor there).
    assert walls["shm"] <= walls["disk"] / 0.9
    core_metrics(
        f"shm_cache_pool_{tag}",
        events=sum(row.events for row in rows_by_leg["shm"]),
        seconds=walls["shm"],
        rows=n_jobs,
        programs=n_programs,
        rows_per_sec=round(n_jobs / walls["shm"]),
        rows_per_sec_disk=round(n_jobs / walls["disk"]),
        rows_per_sec_recompute=round(n_jobs / walls["recompute"]),
        speedup_vs_disk=round(walls["disk"] / walls["shm"], 2),
        speedup_vs_recompute=round(walls["recompute"] / walls["shm"], 2),
        warm_lookup_us=round(acq["shm"] / acq_n * 1e6, 1),
        warm_lookup_us_disk=round(acq["disk"] / acq_n * 1e6, 1),
        warm_lookup_us_recompute=round(acq["recompute"] / acq_n * 1e6, 1),
        warm_lookup_speedup_vs_disk=round(lookup_speedup, 2),
        workers=WORKERS,
        cpu_count=os.cpu_count(),
    )
    print(
        f"[shm cache {tag}] pool rows/s: recompute "
        f"{n_jobs/walls['recompute']:.0f}, disk {n_jobs/walls['disk']:.0f}, "
        f"shm {n_jobs/walls['shm']:.0f}; warm lookup "
        f"{acq['disk']/acq_n*1e6:.0f}us disk vs "
        f"{acq['shm']/acq_n*1e6:.0f}us shm ({lookup_speedup:.1f}x)"
    )
