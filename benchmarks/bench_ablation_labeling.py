"""Ablation — labeling granularity: trivial vs finest consistent labeling.

The paper notes the trivial all-same-label scheme is consistent but "will
not likely yield an efficient use of queues": every competing message
then needs a simultaneous queue. This bench quantifies that: the finest
(constraint) labeling needs strictly less hardware on most programs, and
where both are feasible the runs behave identically.
"""

from repro import ArrayConfig, constraint_labeling, simulate, trivial_labeling
from repro.analysis import format_table
from repro.arch.routing import default_router
from repro.arch.topology import ExplicitLinear
from repro.core.requirements import dynamic_queue_demand
from repro.workloads import WorkloadSpec, random_program


def test_labeling_granularity_vs_hardware(benchmark):
    def measure():
        rows = []
        for seed in range(15):
            prog = random_program(
                WorkloadSpec(seed=seed, cells=6, messages=10, burst=2)
            )
            router = default_router(ExplicitLinear(tuple(prog.cells)))
            fine = constraint_labeling(prog)
            fine_q = max(
                dynamic_queue_demand(prog, router, fine).values()
            )
            trivial_q = max(
                dynamic_queue_demand(prog, router, trivial_labeling(prog)).values()
            )
            rows.append(
                {"seed": seed, "fine_queues": fine_q, "trivial_queues": trivial_q}
            )
        return rows

    rows = benchmark(measure)
    print()
    summary = {
        "programs": len(rows),
        "mean_fine_q": sum(r["fine_queues"] for r in rows) / len(rows),
        "mean_trivial_q": sum(r["trivial_queues"] for r in rows) / len(rows),
        "fine_saves_hw_on": sum(
            1 for r in rows if r["fine_queues"] < r["trivial_queues"]
        ),
    }
    print(format_table([summary], title="Ablation: labeling granularity vs queue demand"))
    assert all(r["fine_queues"] <= r["trivial_queues"] for r in rows)
    assert summary["fine_saves_hw_on"] > len(rows) / 2


def test_both_labelings_complete_when_provisioned(benchmark):
    def run():
        done = 0
        for seed in range(8):
            prog = random_program(WorkloadSpec(seed=seed, cells=5, messages=7))
            router = default_router(ExplicitLinear(tuple(prog.cells)))
            for labeling in (constraint_labeling(prog), trivial_labeling(prog)):
                queues = max(
                    dynamic_queue_demand(prog, router, labeling).values()
                )
                result = simulate(
                    prog,
                    config=ArrayConfig(queues_per_link=queues),
                    policy="ordered",
                    labeling=labeling,
                )
                done += result.completed
        return done

    done = benchmark(run)
    assert done == 16  # Theorem 1 holds for *any* consistent labeling
