"""E10 — Fig. 10 / Section 8: lookahead crossing-off with buffered queues.

Expected shape: with capacity-2 queues, P1's first three executable pairs
are exactly the figure's — W(B)@step3 with R(B)@step1 (skipping two
W(A)s), then W(A)@step1 with R(A)@step2, then W(B)@step5 with R(B)@step3
(again skipping two) — at most two skipped writes to A throughout (rule
R2), and the buffered run completes.
"""

import pytest

from repro import ArrayConfig, cross_off, simulate, uniform_lookahead
from repro.algorithms.figures import fig5_p1
from repro.analysis import format_table
from repro.viz import render_annotated


def test_fig10_lookahead_trace(benchmark):
    prog = fig5_p1()
    result = benchmark(
        lambda: cross_off(
            prog, lookahead=uniform_lookahead(prog, 2), mode="sequential"
        )
    )
    print()
    print("Fig. 10 / E10: lookahead crossing-off of P1 (capacity 2)")
    print(render_annotated(prog, result))
    assert result.deadlock_free
    pairs = [(p.message, p.sender_pos, p.receiver_pos) for p in result.crossings[:3]]
    assert pairs == [("B", 2, 0), ("A", 0, 1), ("B", 4, 2)]
    assert result.max_skipped["A"] == 2  # rule R2 bound met exactly


def test_fig10_capacity_sweep(benchmark):
    prog = fig5_p1()

    def sweep():
        rows = []
        for cap in (0, 1, 2, 3):
            free = cross_off(
                prog, lookahead=uniform_lookahead(prog, cap) if cap else None
            ).deadlock_free
            run = simulate(
                prog,
                config=ArrayConfig(queues_per_link=2, queue_capacity=cap),
                policy="static",
            )
            rows.append(
                {
                    "capacity": cap,
                    "classified_free": free,
                    "runtime": run.summary().split()[0],
                }
            )
        return rows

    rows = benchmark(sweep)
    print()
    print(format_table(rows, title="E10: P1 vs queue capacity (2 queues/link)"))
    # Classification and run-time agree at every capacity: the crossover
    # from deadlock to completion sits exactly at capacity 2.
    assert [r["classified_free"] for r in rows] == [False, False, True, True]
    assert [r["runtime"] for r in rows] == [
        "DEADLOCK",
        "DEADLOCK",
        "completed",
        "completed",
    ]


@pytest.mark.parametrize("cap", [1, 4, 16])
def test_lookahead_scaling(benchmark, cap):
    from repro.workloads import WorkloadSpec, hoist_writes, random_program

    prog = hoist_writes(
        random_program(WorkloadSpec(seed=11, messages=10, max_length=5)),
        swaps=8,
        seed=3,
    )
    result = benchmark(
        lambda: cross_off(prog, lookahead=uniform_lookahead(prog, cap))
    )
    assert result.lookahead_used
