"""Benchmark regression guard: fail when throughput drops below baseline.

Compares a freshly recorded bench file (``REPRO_BENCH_RECORD=1
REPRO_BENCH_OUT=... pytest benchmarks/...``) against the committed
``BENCH_core.json`` trajectory. Any record whose ``events_per_sec``
falls more than ``--max-drop`` (default 30%) below the baseline fails
the check; records present on only one side are reported but never
fatal, so adding or retiring benches doesn't break the guard.

With ``--enforce GLOB`` (repeatable) only failing records matching one
of the patterns are fatal; other drops are downgraded to warnings. This
is how CI promotes the compile-time ``cross_off*`` records to a blocking
gate while the noisier simulation benches stay report-only.

Usage::

    python benchmarks/check_regression.py \
        --baseline BENCH_core.json --current /tmp/bench_current.json \
        [--enforce 'cross_off*']
"""

from __future__ import annotations

import argparse
import json
import sys
from fnmatch import fnmatch
from pathlib import Path

METRIC = "events_per_sec"


def load_records(path: Path) -> dict[str, dict]:
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    records = payload.get("records")
    if not isinstance(records, dict):
        raise SystemExit(f"error: {path} has no 'records' object")
    return records


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default="BENCH_core.json",
        help="committed trajectory to compare against",
    )
    parser.add_argument(
        "--current", required=True, help="freshly recorded bench file"
    )
    parser.add_argument(
        "--max-drop", type=float, default=0.30,
        help="maximum tolerated fractional drop in events_per_sec "
             "(default 0.30 = 30%%)",
    )
    parser.add_argument(
        "--enforce", action="append", metavar="GLOB", default=None,
        help="fnmatch pattern of record names whose drops are fatal; "
             "repeatable. Non-matching drops become warnings. Default: "
             "every record is fatal.",
    )
    args = parser.parse_args(argv)

    baseline = load_records(Path(args.baseline))
    current = load_records(Path(args.current))

    failures: list[str] = []
    warnings: list[str] = []
    compared = 0
    for name in sorted(baseline):
        base_value = baseline[name].get(METRIC)
        if base_value is None:
            continue
        entry = current.get(name)
        if entry is None or entry.get(METRIC) is None:
            print(f"  [skip]  {name}: not measured in current run")
            continue
        compared += 1
        value = entry[METRIC]
        ratio = value / base_value if base_value else float("inf")
        status = "ok"
        if ratio < 1.0 - args.max_drop:
            enforced = args.enforce is None or any(
                fnmatch(name, pattern) for pattern in args.enforce
            )
            if enforced:
                status = "FAIL"
                failures.append(name)
            else:
                status = "warn"
                warnings.append(name)
        print(
            f"  [{status:>4}]  {name}: {value:,} vs baseline "
            f"{base_value:,} ({ratio:.2f}x)"
        )
    for name in sorted(set(current) - set(baseline)):
        if current[name].get(METRIC) is not None:
            print(f"  [new ]  {name}: {current[name][METRIC]:,} (no baseline)")

    if not compared:
        print("error: no overlapping events_per_sec records to compare")
        return 2
    if warnings:
        print(
            f"\nwarning: {len(warnings)} unenforced record(s) dropped more "
            f"than {args.max_drop:.0%}: {', '.join(warnings)}"
        )
    if failures:
        print(
            f"\n{len(failures)} record(s) dropped more than "
            f"{args.max_drop:.0%} below baseline: {', '.join(failures)}"
        )
        return 1
    print(
        f"\nall {compared} compared records within {args.max_drop:.0%} of "
        f"baseline"
        + ("" if args.enforce is None else " (or unenforced)")
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
