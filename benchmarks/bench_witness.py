"""Witness-pruned sweep cost: jobs simulated vs the full grid.

A deadlock-dense provisioning sweep mostly re-proves deadlocks it has
already proven. With a witness store (:mod:`repro.witness`), jobs a
stored certificate covers emit their deadlock row without simulating —
sound only for the monotone static policy, so on the 2-policy x 64-cap
grid here (cross-reading cells: every corner deadlocks) a warm store
prunes exactly the static half and simulates only FCFS, which is exempt
by construction.

The bench runs the grid three ways — no store (baseline), cold store
(mines as it goes, prunes its own tail), warm store (second run against
the saved file) — and asserts the issue's acceptance bar:

* per-index rows and reducer summaries byte-identical across all three;
* the warm run simulates at most half the grid;
* no FCFS job is ever pruned and no FCFS certificate is ever stored.

``REPRO_BENCH_RECORD=1`` records ``witness_warm_128`` /
``witness_grid_128`` into ``BENCH_core.json`` (wall seconds, jobs
simulated, ``witness_pruned_jobs`` / ``witness_grid_jobs``). Smoke mode
(CI ``--benchmark-disable``) runs the same assertions without touching
the baseline.
"""

import json
import time

from repro.core.message import Message
from repro.core.ops import R, W
from repro.core.program import ArrayProgram
from repro.sweep import (
    CompletedCount,
    DeadlockRateByConfig,
    MakespanHistogram,
    SweepPlan,
    SweepSession,
    sweep_jobs,
)
from repro.witness import WitnessStore

N_CAPS = 64
POLICIES = ("static", "fcfs")


def cross_read() -> ArrayProgram:
    """Two cells each reading before writing: deadlocks everywhere."""
    msgs = [Message("M0", "A", "B", 1), Message("M1", "B", "A", 1)]
    progs = {
        "A": [R("M1", into="x"), W("M0", constant=1.0)],
        "B": [R("M0", into="y"), W("M1", constant=2.0)],
    }
    return ArrayProgram(["A", "B"], msgs, progs)


def _jobs():
    return sweep_jobs(
        cross_read(),
        policies=POLICIES,
        queues=(1,),
        capacities=tuple(range(N_CAPS)),
    )


def _run(store=None):
    reducers = (CompletedCount(), MakespanHistogram(), DeadlockRateByConfig())
    session = SweepSession(
        SweepPlan(jobs=_jobs(), reducers=reducers, witness_store=store)
    )
    t0 = time.perf_counter()
    rows = list(session.stream())
    wall = time.perf_counter() - t0
    summaries = json.dumps(
        {r.name: r.summary() for r in reducers}, sort_keys=True
    )
    return rows, summaries, session, wall


def _run_all(tmp_path):
    base_rows, base_summaries, _base, base_wall = _run()
    store = WitnessStore(tmp_path / "witness.json")
    cold_rows, cold_summaries, cold, _cold_wall = _run(store)
    store.save()
    warm_store = WitnessStore(tmp_path / "witness.json")
    warm_rows, warm_summaries, warm, warm_wall = _run(warm_store)
    return (
        (base_rows, base_summaries, base_wall),
        (cold_rows, cold_summaries, cold),
        (warm_rows, warm_summaries, warm, warm_store, warm_wall),
    )


def _check(base, cold, warm) -> None:
    base_rows, base_summaries, _base_wall = base
    cold_rows, cold_summaries, cold_session = cold
    warm_rows, warm_summaries, warm_session, warm_store, _warm_wall = warm
    n = len(base_rows)
    assert n == len(POLICIES) * N_CAPS
    # Byte-identity: pruning may never change a row or an aggregate.
    assert cold_rows == base_rows and cold_summaries == base_summaries
    assert warm_rows == base_rows and warm_summaries == base_summaries
    # The acceptance bar: a warm store halves the simulated jobs.
    assert n - warm_session.witness_pruned <= n // 2, (
        warm_session.witness_pruned,
        n,
    )
    # FCFS is never pruned: every prune is on the static half, and the
    # store holds no FCFS certificate to prune with.
    assert warm_session.witness_pruned == N_CAPS
    assert all(w.policy == "static" for w in warm_store.witnesses())
    assert cold_session.witness_mined >= 1


def test_witness_pruning_smoke(benchmark, tmp_path):
    """Warm store simulates <= half the grid, rows byte-identical."""
    base, cold, warm = _run_all(tmp_path)
    _check(base, cold, warm)
    warm_store = warm[3]
    benchmark(lambda: _run(warm_store))


def test_witness_pruning_recorded(core_metrics, tmp_path):
    """Record warm-pruned vs unpruned cost on the 128-job grid."""
    base, cold, warm = _run_all(tmp_path)
    _check(base, cold, warm)
    base_rows, _bs, base_wall = base
    _wr, _ws, warm_session, _store, warm_wall = warm
    n = len(base_rows)
    core_metrics(
        "witness_warm_128",
        events=sum(row.events for row in base_rows),
        seconds=warm_wall,
        jobs=n - warm_session.witness_pruned,
        witness_pruned_jobs=warm_session.witness_pruned,
        witness_grid_jobs=n,
    )
    core_metrics(
        "witness_grid_128",
        events=sum(row.events for row in base_rows),
        seconds=base_wall,
        jobs=n,
    )
    print(
        f"[witness] warm store simulated {n - warm_session.witness_pruned}"
        f"/{n} jobs ({warm_session.witness_pruned} pruned), rows identical"
    )
