"""E1 — Fig. 1 / Section 1: systolic vs memory-to-memory communication.

Paper's claim: the memory-to-memory model needs at least four local-memory
accesses per word flowing through a cell; systolic communication needs
none, and is therefore much faster when memory access is the bottleneck.

Expected shape: systolic accesses/word = 0, memory model = 4; the speedup
grows monotonically with the per-access cost.
"""

from repro.algorithms.figures import fig2_fir, fig2_registers
from repro.analysis import format_table
from repro.sim.memory_model import compare_models


def test_fig1_access_counts_and_speedup(benchmark):
    rows = benchmark(
        lambda: [
            compare_models(
                fig2_fir(), memory_access_cycles=cost, registers=fig2_registers()
            ).row()
            for cost in (1, 2, 4, 8)
        ]
    )
    print()
    print(
        format_table(
            rows, title="Fig. 1 / E1: communication models on the Fig. 2 filter"
        )
    )
    assert all(row["systolic_accesses"] == 0 for row in rows)
    assert all(row["mem_accesses_per_word"] == 4.0 for row in rows)
    speedups = [row["speedup"] for row in rows]
    assert speedups == sorted(speedups)
    assert speedups[-1] > 2.0
