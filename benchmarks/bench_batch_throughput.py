"""E16 — fast-path core: engine dispatch, analysis caching, batch runner.

Three claims, each recorded into ``BENCH_core.json``:

* **engine dispatch** — the same-time FIFO fast lane processes pure
  ``after(0, ...)`` event streams at multi-million events/sec (the heap
  only sees strictly-future timestamps);
* **repeated-program ensembles** — simulating one program many times
  (policy ablations, Theorem-1 sweeps) amortises static analysis through
  the content-keyed cache; with buffered queues, whose analysis runs the
  full lookahead crossing-off, the cache still pays measurably — though
  far less dramatically than in PR 1, because the incremental crossing
  engine (see ``bench_crossing_cold.py``) made cold analysis itself
  ~5x cheaper;
* **batched ensembles** — ``simulate_many`` sustains the same
  throughput over many distinct programs with a deterministic merge.

Expected shape: cached ensemble beats uncached (the residual analysis
cost is real but no longer dominant); all ensemble runs complete;
dispatch rate far above workload event rates.
"""

import time

from conftest import recording_enabled

from repro import ArrayConfig, Simulator, simulate_many
from repro.algorithms.fir import fir_program, fir_registers
from repro.perf import clear_analysis_cache
from repro.sim.batch import SimJob
from repro.sim.engine import Engine
from repro.workloads import ensemble_programs

DISPATCH_EVENTS = 100_000
REPEAT_RUNS = 100


def _dispatch_chain(n: int) -> float:
    engine = Engine()
    remaining = [n]

    def chain():
        remaining[0] -= 1
        if remaining[0]:
            engine.after(0, chain)

    engine.after(0, chain)
    t0 = time.perf_counter()
    engine.run()
    dt = time.perf_counter() - t0
    assert engine.events_processed == n
    return dt


def test_engine_dispatch_rate(benchmark, core_metrics):
    dt = benchmark(lambda: _dispatch_chain(DISPATCH_EVENTS))
    core_metrics(
        "engine_same_time_dispatch", events=DISPATCH_EVENTS, seconds=dt
    )


def test_repeated_program_ensemble_cached(benchmark, core_metrics):
    """Same program 100x: the analysis cache pays after the first run.

    Buffered queues make static analysis run the full lookahead
    crossing-off, which is exactly what sweeps re-paid per run before
    the cache existed.
    """
    prog = fir_program(16, 32)
    regs = fir_registers(tuple(1.0 for _ in range(16)))
    config = ArrayConfig(queue_capacity=2)

    def cached_ensemble():
        clear_analysis_cache()
        jobs = [
            SimJob(prog, config=config, registers=regs)
            for _ in range(REPEAT_RUNS)
        ]
        return simulate_many(jobs)

    results = benchmark(cached_ensemble)
    assert len(results) == REPEAT_RUNS
    assert all(r.completed for r in results)
    assert all(r.time == results[0].time for r in results)

    if not recording_enabled():
        # Smoke mode: correctness only. Wall-clock ratios on a loaded CI
        # runner are noise, and the measurement itself costs seconds.
        return

    # Uncached cost, per run (the pre-cache world).
    uncached_runs = 3
    t0 = time.perf_counter()
    for _ in range(uncached_runs):
        result = Simulator(
            prog, config=config, registers=regs, reuse_analysis=False
        ).run()
        assert result.completed
    uncached_per_run = (time.perf_counter() - t0) / uncached_runs

    t0 = time.perf_counter()
    results = cached_ensemble()
    cached_total = time.perf_counter() - t0
    total_events = sum(r.events for r in results)
    total_words = sum(r.words_transferred for r in results)
    speedup = uncached_per_run * REPEAT_RUNS / cached_total
    core_metrics(
        "ensemble_repeated_fir16x32_cap2_x100",
        events=total_events,
        seconds=cached_total,
        words=total_words,
        uncached_ms_per_run=round(uncached_per_run * 1e3, 3),
        cached_ms_per_run=round(cached_total / REPEAT_RUNS * 1e3, 3),
        speedup_vs_uncached=round(speedup, 1),
    )
    # The cache must still pay end-to-end on repeated simulations of one
    # program. The bar was 5x when cold analysis cost ~44 ms/run; the
    # incremental crossing engine cut that to single-digit milliseconds,
    # so the residual cacheable cost bounds the ratio near 2x. Only
    # asserted on quiet recording machines — shared CI runners record
    # numbers for the relative regression guard but are too noisy for a
    # hard wall-clock ratio.
    import os

    if not os.environ.get("CI"):
        assert speedup >= 1.4


def test_distinct_program_ensemble_batched(benchmark, core_metrics):
    """40 distinct random programs through the batch runner."""
    programs = ensemble_programs(40, cells=8, messages=12, max_length=4)
    config = ArrayConfig(queues_per_link=10)

    results = benchmark(lambda: simulate_many(programs, config))
    assert len(results) == 40
    assert all(r.completed for r in results)

    t0 = time.perf_counter()
    results = simulate_many(programs, config)
    dt = time.perf_counter() - t0
    core_metrics(
        "ensemble_distinct_random_x40",
        events=sum(r.events for r in results),
        seconds=dt,
        words=sum(r.words_transferred for r in results),
    )
