"""Section 8 live: queue buffering, lookahead, and the extension mechanism.

Shows program P1 going from deadlocked to deadlock-free as queue capacity
grows (Fig. 10), rule R2's bookkeeping, and the iWarp-style queue
extension absorbing bursts that exceed physical buffering.

Run:  python examples/lookahead_buffering.py
"""

from repro import ArrayConfig, cross_off, simulate, uniform_lookahead
from repro.algorithms.figures import fig5_p1
from repro.analysis import format_table
from repro.arch.routing import default_router
from repro.arch.topology import ExplicitLinear
from repro.core.message import Message
from repro.core.ops import R, W
from repro.core.program import ArrayProgram
from repro.core.requirements import extension_demand
from repro.viz import render_annotated


def main() -> None:
    p1 = fig5_p1()
    print("Program P1 (Fig. 5):")

    rows = []
    for cap in (0, 1, 2, 4):
        lookahead = uniform_lookahead(p1, cap) if cap else None
        free = cross_off(p1, lookahead=lookahead).deadlock_free
        run = simulate(
            p1,
            config=ArrayConfig(queues_per_link=2, queue_capacity=cap),
            policy="static",
        )
        rows.append(
            {
                "queue_capacity": cap,
                "classified_deadlock_free": free,
                "runtime": run.summary().split()[0],
            }
        )
    print(format_table(rows, title="P1 vs queue capacity (2 queues per link)"))

    print("Fig. 10 — the lookahead trace at capacity 2 "
          "([n] = step that crossed the op):")
    trace = cross_off(p1, lookahead=uniform_lookahead(p1, 2), mode="sequential")
    print(render_annotated(p1, trace))
    print(f"max writes skipped per message (rule R2): {trace.max_skipped}\n")

    # Queue extension: an 8-word burst of A ahead of B overwhelms a
    # capacity-2 queue; the extension spills to local memory and completes.
    burst = ArrayProgram(
        ("C1", "C2"),
        [Message("A", "C1", "C2", 8), Message("B", "C1", "C2", 1)],
        {
            "C1": [W("A")] * 8 + [W("B")],
            "C2": [R("B")] + [R("A")] * 8,
        },
        name="burst",
    )
    router = default_router(ExplicitLinear(tuple(burst.cells)))
    config = ArrayConfig(queues_per_link=2, queue_capacity=2)
    demand = extension_demand(burst, router, config)["A"]
    print("Queue extension (Section 8.1 / rule R2):")
    print(f"  message A skips {demand.skipped_writes} writes; physical "
          f"capacity {demand.physical_capacity}; needs extension: "
          f"{demand.needs_extension} (excess {demand.excess_words} words)")
    plain = simulate(burst, config=config, policy="static")
    extended = simulate(
        burst, config=config.with_(allow_extension=True, extension_penalty=4),
        policy="static",
    )
    print(f"  without extension: {plain.summary()}")
    print(f"  with extension   : {extended.summary()}")
    spilled = sum(s.spilled_words for s in extended.queue_stats.values())
    print(f"  words spilled to local memory: {spilled}")


if __name__ == "__main__":
    main()
