"""Triangular solve on a systolic array, with schedule analysis.

Solves L x = b by forward substitution (the classic Kung-Leiserson
workload), then compares the measured makespan against the structural
bounds extracted from the crossing-off trace.

Run:  python examples/triangular_solver.py
"""

from repro import ArrayConfig, constraint_labeling, cross_off, simulate
from repro.algorithms.backsub import (
    backsub_expected,
    backsub_program,
    backsub_solution,
)
from repro.analysis import format_table
from repro.arch.routing import default_router
from repro.arch.topology import ExplicitLinear
from repro.core.requirements import dynamic_queue_demand
from repro.core.schedule import schedule_row


def main() -> None:
    lower = [
        [4.0, 0.0, 0.0, 0.0, 0.0],
        [1.0, 2.0, 0.0, 0.0, 0.0],
        [-2.0, 1.0, 5.0, 0.0, 0.0],
        [0.0, 3.0, -1.0, 2.0, 0.0],
        [1.0, 0.0, 2.0, 1.0, 4.0],
    ]
    b = [8.0, 5.0, 3.0, 7.0, 16.0]
    program = backsub_program(lower, b)
    print(f"program: {program!r}")

    crossing = cross_off(program)
    print(f"deadlock-free: {crossing.deadlock_free}")

    router = default_router(ExplicitLinear(tuple(program.cells)))
    labeling = constraint_labeling(program)
    queues = max(dynamic_queue_demand(program, router, labeling).values())
    print(f"queues needed per link (ordered policy): {queues}")

    result = simulate(
        program,
        config=ArrayConfig(queues_per_link=queues),
        labeling=labeling,
    )
    result.assert_completed()

    x = backsub_solution(result.registers, len(b))
    print(f"solution x = {x}")
    assert x == backsub_expected(lower, b), "mismatch against reference"
    print("matches the reference forward substitution.\n")

    row = schedule_row(program, result.time)
    print(format_table([row], title="structural schedule bounds vs measured run"))


if __name__ == "__main__":
    main()
