"""Quickstart: write a systolic program, prove it safe, run it.

Builds a tiny two-stage pipeline with the fluent DSL, classifies it with
the crossing-off procedure, labels its messages, provisions queues, and
simulates — the full workflow of the paper in ~40 lines.

Run:  python examples/quickstart.py
"""

from repro import ArrayConfig, constraint_labeling, cross_off, simulate
from repro.core.labeling import labels_as_str
from repro.lang import ProgramBuilder, side_by_side


def main() -> None:
    # A 3-cell pipeline: C1 streams two numbers to C2, which doubles them
    # and forwards to C3, which accumulates a total back to C1.
    b = ProgramBuilder("quickstart", cells=["C1", "C2", "C3"])
    b.cell("C1").send("X", constant=3.0).send("X", constant=4.0).recv(
        "TOTAL", into="total"
    )
    (
        b.cell("C2")
        .recv("X", into="x")
        .compute("y", lambda x: 2 * x, ["x"])
        .send("Y", from_register="y")
        .recv("X", into="x")
        .compute("y", lambda x: 2 * x, ["x"])
        .send("Y", from_register="y")
    )
    (
        b.cell("C3")
        .recv("Y", into="a")
        .recv("Y", into="b")
        .compute("t", lambda a, b: a + b, ["a", "b"])
        .send("TOTAL", from_register="t")
    )
    program = b.build()

    print("The program (paper-style listing):")
    print(side_by_side(program))

    # 1. Compile-time classification (Section 3).
    crossing = cross_off(program)
    print(f"deadlock-free: {crossing.deadlock_free} "
          f"({crossing.pairs_crossed} pairs in {crossing.step_count} steps)")

    # 2. Consistent labeling (Sections 5-6).
    labeling = constraint_labeling(program)
    print(f"labels: {labels_as_str(labeling)}")

    # 3. Run under the compatible (ordered) queue assignment (Section 7).
    result = simulate(
        program,
        config=ArrayConfig(queues_per_link=1, queue_capacity=0),
        policy="ordered",
        labeling=labeling,
    )
    result.assert_completed()
    print(f"run: {result.summary()}")
    print(f"C1 received TOTAL = {result.registers['C1']['total']}  (expected 14.0)")
    assert result.registers["C1"]["total"] == 14.0


if __name__ == "__main__":
    main()
