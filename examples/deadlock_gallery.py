"""The deadlock gallery: Figs. 5, 6, 7, 8, 9 live.

Walks every deadlock example in the paper: classification by crossing-off,
what actually happens at run time with the figure's queue provisioning,
and how labels + compatible assignment (or more queues) fix it.

Run:  python examples/deadlock_gallery.py
"""

from repro import (
    ArrayConfig,
    constraint_labeling,
    cross_off,
    is_deadlock_free,
    simulate,
)
from repro.algorithms.figures import (
    fig5_p1,
    fig5_p2,
    fig5_p3,
    fig6_cycle,
    fig7_program,
    fig8_program,
    fig9_program,
)
from repro.core.labeling import labels_as_str
from repro.lang import side_by_side
from repro.viz import render_annotated, render_outcome


def banner(title: str) -> None:
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    banner("Fig. 5 — three deadlocked programs")
    for build in (fig5_p1, fig5_p2, fig5_p3):
        prog = build()
        print(f"\n{prog.name}:")
        print(side_by_side(prog))
        print(f"  crossing-off: deadlock-free = {is_deadlock_free(prog)}")
        print(render_annotated(prog, cross_off(prog)))
        run = simulate(prog, policy="fcfs")
        print("  run-time:", render_outcome(run))

    banner("Fig. 6 — a cycle of messages that is NOT a deadlock")
    prog = fig6_cycle()
    print(side_by_side(prog))
    print(f"  deadlock-free = {is_deadlock_free(prog)}; "
          f"run: {simulate(prog).summary()}\n")

    banner("Fig. 7 — queue-induced deadlock: assignment order matters")
    prog = fig7_program()
    print(side_by_side(prog))
    print(f"  labels: {labels_as_str(constraint_labeling(prog))}")
    print("  FCFS (B grabs the C3->C4 queue first):")
    print("   ", render_outcome(simulate(prog, policy="fcfs")))
    print("  Ordered (C's smaller label served first):")
    print("   ", render_outcome(simulate(prog, policy="ordered")))

    banner("Fig. 8 — interleaved reads need simultaneously separate queues")
    prog = fig8_program()
    print(side_by_side(prog))
    one = simulate(prog, config=ArrayConfig(queues_per_link=1), policy="fcfs")
    two = simulate(prog, config=ArrayConfig(queues_per_link=2), policy="ordered")
    print("  1 queue :", render_outcome(one))
    print("  2 queues:", render_outcome(two))

    banner("Fig. 9 — the symmetric case: interleaved writes")
    prog = fig9_program()
    print(side_by_side(prog))
    one = simulate(prog, config=ArrayConfig(queues_per_link=1), policy="fcfs")
    two = simulate(prog, config=ArrayConfig(queues_per_link=2), policy="static")
    print("  1 queue :", render_outcome(one))
    print("  2 queues (static, the paper's fix):", render_outcome(two))


if __name__ == "__main__":
    main()
