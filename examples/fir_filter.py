"""The paper's running example: the Fig. 2 FIR filter, end to end.

Reproduces Fig. 2 (the program), Fig. 4 (its crossing-off trace), the
numeric filter outputs, and the Fig. 1 contrast between systolic and
memory-to-memory communication.

Run:  python examples/fir_filter.py
"""

from repro import cross_off, simulate
from repro.algorithms.figures import (
    fig2_expected_outputs,
    fig2_fir,
    fig2_registers,
)
from repro.algorithms.fir import fir_program, fir_registers
from repro.analysis import format_table
from repro.lang import side_by_side
from repro.sim.memory_model import compare_models
from repro.viz import render_steps


def main() -> None:
    program = fig2_fir()
    print("Fig. 2 — the filtering program:")
    print(side_by_side(program))

    print("Fig. 4 — crossing-off trace (note two pairs at steps 3, 5, 9):")
    print(render_steps(cross_off(program)))

    result = simulate(program, registers=fig2_registers())
    result.assert_completed()
    y1, y2 = fig2_expected_outputs()
    print(f"filter outputs: {result.received['YA']}  (expected [{y1}, {y2}])")
    print(f"makespan {result.time} cycles, {result.events} events\n")

    print("Fig. 1 — systolic vs memory-to-memory communication:")
    rows = [
        compare_models(
            fig2_fir(), memory_access_cycles=cost, registers=fig2_registers()
        ).row()
        for cost in (1, 2, 4)
    ]
    print(format_table(rows))

    print("The same filter, scaled to 8 taps / 16 outputs:")
    big = fir_program(8, 16)
    weights = tuple(1.0 / (i + 1) for i in range(8))
    big_run = simulate(big, registers=fir_registers(weights))
    big_run.assert_completed()
    print(f"  {big_run.summary()}")
    print(f"  first output y1 = {big_run.registers['HOST']['y1']:.6f}")


if __name__ == "__main__":
    main()
