"""2-D systolic matrix multiplication — the higher-dimensional case.

The paper's results "apply to arrays of higher dimensionalities"; this
example runs C = A @ B on a 2-D mesh with XY routing, multi-hop unload
messages, and the full classify → label → provision → simulate pipeline.

Run:  python examples/mesh_matmul.py
"""

from repro import ArrayConfig, Simulator, constraint_labeling, cross_off
from repro.algorithms.matmul2d import (
    matmul_expected,
    matmul_program,
    matmul_results,
)
from repro.arch.routing import XYRouter
from repro.core.requirements import dynamic_queue_demand, static_queue_demand


def main() -> None:
    a = [
        [1.0, 2.0, 3.0],
        [4.0, 5.0, 6.0],
        [7.0, 8.0, 9.0],
    ]
    b = [
        [1.0, 0.0, -1.0],
        [0.5, 2.0, 0.0],
        [0.0, 1.0, 1.0],
    ]
    program, mesh = matmul_program(a, b)
    print(f"mesh: {mesh.rows} x {mesh.cols} cells "
          f"(top row / left column are feeders)")
    print(f"program: {len(program.messages)} messages, "
          f"{program.total_words} words, "
          f"{program.total_transfer_ops} transfer ops")

    crossing = cross_off(program)
    print(f"deadlock-free: {crossing.deadlock_free}")

    router = XYRouter(mesh)
    labeling = constraint_labeling(program)
    static_q = max(static_queue_demand(program, router).values())
    dynamic_q = max(dynamic_queue_demand(program, router, labeling).values())
    print(f"queue demand: static={static_q}/link, "
          f"dynamic (ordered policy)={dynamic_q}/link")

    sim = Simulator(
        program,
        topology=mesh,
        config=ArrayConfig(queues_per_link=dynamic_q),
        policy="ordered",
        labeling=labeling,
    )
    result = sim.run()
    result.assert_completed()
    print(f"run: {result.summary()}")

    got = matmul_results(result.registers, 3, 3, mesh)
    expected = matmul_expected(a, b)
    print("result C = A @ B:")
    for row in got:
        print("   ", row)
    assert got == expected, "mismatch against reference product"
    print("matches the reference product.")


if __name__ == "__main__":
    main()
