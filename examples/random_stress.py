"""Ensemble stress test: Theorem 1 against naive assignment at scale.

Generates random deadlock-free programs, provisions queues per the
assumption-(ii) minimum, and contrasts the paper's ordered policy
(never deadlocks — Theorem 1) with first-come-first-served (deadlocks on
a measurable fraction). Also reports how often extra buffering shortens
the makespan.

Run:  python examples/random_stress.py [count]
"""

import sys

from repro import ArrayConfig, constraint_labeling, simulate
from repro.analysis import format_table
from repro.arch.routing import default_router
from repro.arch.topology import ExplicitLinear
from repro.core.requirements import dynamic_queue_demand
from repro.workloads import WorkloadSpec, random_program


def main(count: int = 50) -> None:
    ordered_done = fcfs_done = buffered_faster = 0
    for seed in range(count):
        prog = random_program(
            WorkloadSpec(seed=seed, cells=6, messages=9, max_length=4, burst=3)
        )
        router = default_router(ExplicitLinear(tuple(prog.cells)))
        labeling = constraint_labeling(prog)
        queues = max(dynamic_queue_demand(prog, router, labeling).values())
        config = ArrayConfig(queues_per_link=queues)

        ordered = simulate(prog, config=config, policy="ordered", labeling=labeling)
        fcfs = simulate(prog, config=config, policy="fcfs")
        buffered = simulate(
            prog,
            config=config.with_(queue_capacity=8),
            policy="ordered",
            labeling=labeling,
        )
        ordered_done += ordered.completed
        fcfs_done += fcfs.completed
        if buffered.completed and buffered.time < ordered.time:
            buffered_faster += 1

    print(
        format_table(
            [
                {
                    "programs": count,
                    "ordered_completed": ordered_done,
                    "fcfs_completed": fcfs_done,
                    "fcfs_deadlock_rate": f"{(count - fcfs_done) / count:.0%}",
                    "buffering_speeds_up": buffered_faster,
                }
            ],
            title="Theorem 1 ensemble",
        )
    )
    assert ordered_done == count, "Theorem 1 violated?!"


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 50)
