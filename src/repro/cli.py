"""Command-line interface: classify, label and simulate program files.

The textual format is that of :mod:`repro.lang.parser`. Examples::

    python -m repro check  program.sysp            # crossing-off verdict
    python -m repro check  program.sysp --capacity 2   # with lookahead
    python -m repro label  program.sysp            # consistent labels
    python -m repro run    program.sysp --queues 2 --policy ordered
    python -m repro run    program.sysp --policy fcfs --trace
    python -m repro show   program.sysp            # paper-style listing
    python -m repro sweep  program.sysp --policies ordered,fcfs --queues 1,2
    python -m repro frontier program.sysp --queues 1,2 --capacity 0,1,2,4,8

``frontier`` answers the Section 8 sizing question directly: the minimal
queue capacity per (policy, queues) line, binary-searched in O(log n)
simulations where completion is monotone in capacity (the static
policy) and fully evaluated where it is not (FCFS).

Long sweeps can run fault-tolerantly (``--job-timeout``,
``--max-retries``: crashed workers are replaced and their jobs retried,
hung jobs killed and recorded as timeouts) and resumably
(``--checkpoint PATH`` snapshots progress atomically; ``--resume``
skips finished jobs after a crash or Ctrl-C and reports aggregates
byte-identical to an uninterrupted run).

Deadlock-dense sweeps can skip re-proving what they already know:
``--witness-store PATH`` persists deadlock certificates across runs;
jobs a stored certificate covers emit their deadlock row without
simulating (monotone static policy only — FCFS is exempt because
buffering can change its outcome), and ``repro witness {ls,show,prune}``
inspects the store.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.arch.config import ArrayConfig
from repro.core.crossing import (
    configure_crossing_backend,
    cross_off,
    uniform_lookahead,
)
from repro.core.labeling import constraint_labeling, labels_as_str
from repro.core.schedule import summarize_schedule
from repro.errors import ConfigError, ReproError
from repro.lang.parser import parse_program
from repro.lang.printer import side_by_side
from repro.sim.runtime import simulate
from repro.sweep import (
    CompletedCount,
    DeadlockRateByConfig,
    FrontierPlanner,
    MakespanHistogram,
    PerConfigMakespan,
    PlanSpec,
    QuantileReducer,
    SweepPlan,
    SweepSession,
    exhaustive_spec,
    iter_sweep_jobs,
    iter_sweep_labels,
    parse_quantiles,
    sweep_jobs,
    sweep_label,
    sweep_labels,
)
from repro.viz.crossing_view import render_annotated, render_steps
from repro.viz.timeline import render_assignments, render_outcome
from repro.witness import WitnessStore


def _load(path: str):
    return parse_program(Path(path).read_text())


def _lookahead_for(program, capacity: int):
    return uniform_lookahead(program, capacity) if capacity > 0 else None


def _apply_crossing_backend(args) -> None:
    """Install ``--crossing-backend`` as the process-wide preference.

    Set via :func:`configure_crossing_backend` rather than threaded
    per call so every crossing run the command triggers — direct
    ``cross_off``, labelings, and the analyses inside sweep workers
    (forwarded by ``WorkerContext``) — resolves the same way. An
    unknown name is rejected by argparse ``choices`` before this runs.
    """
    if getattr(args, "crossing_backend", None) is not None:
        configure_crossing_backend(args.crossing_backend)


def cmd_show(args: argparse.Namespace) -> int:
    program = _load(args.file)
    print(side_by_side(program))
    for msg in sorted(program.messages.values()):
        print(f"  {msg}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    _apply_crossing_backend(args)
    program = _load(args.file)
    lookahead = _lookahead_for(program, args.capacity)
    result = cross_off(program, lookahead=lookahead)
    print(render_steps(result))
    if result.deadlock_free:
        analysis = summarize_schedule(program, result)
        print(
            f"deadlock-free: {analysis.total_pairs} transfers in "
            f"{analysis.transfer_rounds} rounds "
            f"(max parallelism {analysis.max_parallelism})"
        )
        return 0
    print("DEADLOCKED — annotated listing ([--] marks unreachable ops):")
    print(render_annotated(program, result))
    return 1


def cmd_label(args: argparse.Namespace) -> int:
    _apply_crossing_backend(args)
    program = _load(args.file)
    lookahead = _lookahead_for(program, args.capacity)
    labeling = constraint_labeling(program, lookahead=lookahead)
    print(labels_as_str(labeling))
    for label, names in labeling.groups():
        print(f"  label {label}: {', '.join(names)}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    program = _load(args.file)
    config = ArrayConfig(
        queues_per_link=args.queues,
        queue_capacity=args.capacity,
        allow_extension=args.extension,
    )
    result = simulate(program, config=config, policy=args.policy)
    print(render_outcome(result))
    if args.trace:
        print(render_assignments(result.assignment_trace))
    return 0 if result.completed else 1


def _int_list(raw: str, flag: str) -> list[int]:
    values = []
    for token in raw.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            values.append(int(token))
        except ValueError:
            raise ConfigError(f"{flag} expects integers, got {token!r}") from None
    return values


def _quantile_reducers(args) -> tuple:
    """The extra reducers ``--quantiles`` turns on, or ``()``."""
    if not args.quantiles:
        return ()
    fractions = parse_quantiles(args.quantiles)
    return (QuantileReducer(fractions), PerConfigMakespan())


def _sweep_backend(args) -> str | None:
    return None if args.backend == "auto" else args.backend


def _fault_tolerance_kwargs(args) -> dict:
    """The :class:`SweepPlan` knobs carried by the fault-tolerance flags."""
    return dict(
        job_timeout_s=args.job_timeout,
        max_retries=args.max_retries,
        checkpoint=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
    )


def _interrupted(rows, args, store: WitnessStore | None = None) -> int:
    """Ctrl-C during a sweep: tear down cleanly, report, exit 130.

    Closing the stream generator unwinds every layer's ``finally``:
    the supervised executor terminates its workers, the shm backend
    unlinks its arena, and a checkpointed sweep writes one final
    snapshot — so an interrupted run is immediately resumable. Mined
    witnesses are durable progress too, so the store is saved as well.
    """
    rows.close()
    if store is not None:
        store.save()
    note = "interrupted — workers terminated"
    if args.checkpoint:
        note += (
            f"; progress saved to {args.checkpoint} (rerun with --resume)"
        )
    print(note, file=sys.stderr)
    return 130


def _witness_store(args) -> WitnessStore | None:
    path = getattr(args, "witness_store", None)
    return WitnessStore(path) if path else None


def _witness_report(store: WitnessStore | None, session) -> None:
    """Persist the store and print what pruning bought this run."""
    if store is None:
        return
    store.save()
    print(
        f"[witness] pruned {session.witness_pruned} known-deadlocked "
        f"job(s), mined {session.witness_mined} new certificate(s) "
        f"({len(store)} stored)"
    )


def _witness_json_fields(store: WitnessStore | None, session) -> dict:
    """Witness counters for ``--json`` payloads (empty without a store).

    Mining happens inside pool/shm/supervised workers too, so the
    counters are meaningful on every backend, not just serial.
    """
    if store is None:
        return {}
    return {
        "witness_mined": session.witness_mined,
        "witness_pruned": session.witness_pruned,
        "witness_stored": len(store),
    }


def _print_row(label: str, row) -> None:
    if row.error_kind is not None:
        print(f"{label:<28} infeasible {row.error_kind}: {row.error}")
    else:
        print(
            f"{label:<28} {row.outcome:<10} t={row.time:<8} "
            f"events={row.events}"
        )


def _cmd_sweep_stream(args, program, policies, queues, capacities) -> int:
    """Streaming sweep: O(1) retained results, reducer summaries at the end.

    Jobs are generated lazily and every result is folded into the
    reducers the moment it arrives — a 10k-run sweep holds one summary
    row at a time no matter how long it runs.
    """
    reducers = (
        CompletedCount(),
        MakespanHistogram(),
        DeadlockRateByConfig(),
    ) + _quantile_reducers(args)
    outcomes = reducers[0]
    jobs = iter_sweep_jobs(
        program,
        policies=policies,
        queues=queues,
        capacities=capacities,
        repeat=args.repeat,
    )
    labels = iter_sweep_labels(
        policies=policies, queues=queues, capacities=capacities, repeat=args.repeat
    )
    store = _witness_store(args)
    plan = SweepPlan(
        jobs=jobs,
        reducers=reducers,
        backend=_sweep_backend(args),
        workers=args.workers,
        chunk_size=32,
        witness_store=store,
        **_fault_tolerance_kwargs(args),
    )
    session = SweepSession(plan)
    rows = session.stream()
    try:
        if args.checkpoint:
            # A resumed stream skips finished jobs, so labels must be
            # looked up by row index, not zipped positionally. (The
            # checkpointed session materializes the job list anyway.)
            label_list = list(labels)
            for row in rows:
                _print_row(label_list[row.index], row)
        else:
            for label, row in zip(labels, rows):
                _print_row(label, row)
    except KeyboardInterrupt:
        return _interrupted(rows, args, store)
    _witness_report(store, session)
    print(f"{outcomes.completed}/{outcomes.total} runs completed")
    for reducer in reducers:
        print(f"[{reducer.name}] {json.dumps(reducer.summary())}")
    if args.json:
        payload = {reducer.name: reducer.summary() for reducer in reducers}
        payload.update(_witness_json_fields(store, session))
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0 if outcomes.completed == outcomes.total else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    _apply_crossing_backend(args)
    program = _load(args.file)
    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    queues = _int_list(args.queues, "--queues")
    capacities = _int_list(args.capacity, "--capacity")
    if args.stream:
        return _cmd_sweep_stream(args, program, policies, queues, capacities)
    jobs = sweep_jobs(
        program,
        policies=policies,
        queues=queues,
        capacities=capacities,
        repeat=args.repeat,
    )
    labels = sweep_labels(
        policies=policies,
        queues=queues,
        capacities=capacities,
        repeat=args.repeat,
    )
    extra_reducers = _quantile_reducers(args)
    # Under --checkpoint the visible rows of a resumed run cover only
    # the remaining jobs; a CompletedCount reducer (whose state rides
    # the checkpoint) keeps the completion tally — and the exit code —
    # covering the whole grid.
    outcomes = CompletedCount() if args.checkpoint else None
    store = _witness_store(args)
    plan = SweepPlan(
        jobs=jobs,
        labels=labels,
        reducers=((outcomes,) if outcomes else ()) + extra_reducers,
        backend=_sweep_backend(args),
        workers=args.workers,
        on_error="collect",
        witness_store=store,
        **_fault_tolerance_kwargs(args),
    )
    # Summary rows carry everything the table needs, so even the eager
    # sweep never materializes full results.
    rows = []
    session = SweepSession(plan)
    stream = session.stream()
    try:
        for row in stream:
            label = labels[row.index]
            if row.error_kind is not None:
                rows.append((label, "infeasible", None, None))
            else:
                rows.append((label, row.outcome, row.time, row.events))
            _print_row(label, row)
    except KeyboardInterrupt:
        return _interrupted(stream, args, store)
    _witness_report(store, session)
    if outcomes is not None:
        completed, total = outcomes.completed, outcomes.total
    else:
        completed = sum(
            1 for _l, outcome, _t, _e in rows if outcome == "completed"
        )
        total = len(rows)
    print(f"{completed}/{total} runs completed")
    for reducer in extra_reducers:
        print(f"[{reducer.name}] {json.dumps(reducer.summary())}")
    if args.json:
        runs = [
            {"label": label, "outcome": outcome, "time": t, "events": e}
            for label, outcome, t, e in rows
        ]
        witness_fields = _witness_json_fields(store, session)
        if extra_reducers or witness_fields:
            # --quantiles / --witness-store upgrade the payload to an
            # object so the aggregates ride along with the per-run rows.
            payload = {"runs": runs}
            payload.update(
                {reducer.name: reducer.summary() for reducer in extra_reducers}
            )
            payload.update(witness_fields)
        else:
            payload = runs
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0 if completed == total else 1


def cmd_frontier(args: argparse.Namespace) -> int:
    """Minimal-buffering frontier per (policy, queues) line (Section 8).

    Binary-searches the capacity axis where completion is monotone in
    capacity (the static policy), evaluates the whole line otherwise
    (FCFS, whose non-monotonicity is a pinned counterexample) — see
    :mod:`repro.sweep.planner`.
    """
    _apply_crossing_backend(args)
    program = _load(args.file)
    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    queues = _int_list(args.queues, "--queues")
    capacities = _int_list(args.capacity, "--capacity")
    store = _witness_store(args)
    spec = PlanSpec(
        program,
        policies=policies,
        queues=queues,
        capacities=capacities,
        backend=_sweep_backend(args),
        workers=args.workers,
        witness_store=store,
    )
    if args.exhaustive:
        spec = exhaustive_spec(spec)
    report = FrontierPlanner(spec).run()
    for row in report.rows:
        _print_row(sweep_label(row.policy, row.queues, row.capacity), row)
    for line in report.lines:
        cap = line.frontier_capacity
        print(
            f"frontier {line.policy} q={line.queues}: "
            + (f"cap={cap}" if cap is not None else "none (no capacity on "
               "the axis completes)")
            + f"  [{line.mode}, {line.jobs_executed} probes]"
        )
    if store is not None:
        store.save()
        print(
            f"[witness] seeded {report.witness_seeded_lines} line(s), "
            f"pruned {report.witness_pruned} probe(s), mined "
            f"{report.witness_mined} certificate(s) ({len(store)} stored)"
        )
    print(f"executed {report.jobs_executed}/{report.grid_jobs} grid jobs")
    if args.json:
        Path(args.json).write_text(
            json.dumps(report.as_dict(), indent=2) + "\n"
        )
        print(f"wrote {args.json}")
    complete = all(
        line.frontier_capacity is not None for line in report.lines
    )
    return 0 if complete else 1


def cmd_witness(args: argparse.Namespace) -> int:
    """Inspect or compact a deadlock-witness store (no simulation)."""
    store = WitnessStore(args.store)
    if args.witness_cmd == "ls":
        for w in store.witnesses():
            covers = (
                f"cap>={w.peak_occupancy}" if w.open_ray
                else f"cap={w.capacity}"
            )
            print(
                f"{w.witness_id}  {w.policy:<8} q={w.queues} "
                f"witnessed@{w.capacity} covers {covers:<9} "
                f"cells={','.join(w.cells)} msgs={','.join(w.messages)}"
            )
        stats = store.stats()
        print(
            f"{stats['witnesses']} witness(es) in "
            f"{stats['scopes']} scope(s)"
        )
        if stats["loads_rejected"]:
            print(
                f"warning: store file was corrupt and read as empty "
                f"({stats['loads_rejected']} rejected load(s))",
                file=sys.stderr,
            )
        return 0
    if args.witness_cmd == "show":
        witness = store.get(args.id)
        if witness is None:
            raise ConfigError(
                f"no witness matching id prefix {args.id!r} in {args.store}"
            )
        print(json.dumps(witness.as_dict(), indent=2, sort_keys=True))
        return 0
    # prune: drop certificates subsumed by a stronger stored one.
    removed = store.prune()
    store.save()
    print(f"pruned {removed} subsumed witness(es), {len(store)} kept")
    return 0


def _add_crossing_backend_flag(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--crossing-backend",
        dest="crossing_backend",
        choices=("auto", "interned", "columnar"),
        default=None,
        help="crossing engine: interned (pure Python), columnar (numpy, "
             "identical output), or auto (columnar for large programs "
             "when numpy is installed); default defers to "
             "REPRO_CROSSING_BACKEND, then auto",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Deadlock avoidance for systolic communication (Kung 1988)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    show = sub.add_parser("show", help="print the paper-style listing")
    show.add_argument("file")
    show.set_defaults(func=cmd_show)

    check = sub.add_parser("check", help="crossing-off deadlock classification")
    check.add_argument("file")
    check.add_argument(
        "--capacity", type=int, default=0,
        help="queue capacity for §8 lookahead (0 = strict §3 procedure)",
    )
    _add_crossing_backend_flag(check)
    check.set_defaults(func=cmd_check)

    label = sub.add_parser("label", help="compute a consistent labeling")
    label.add_argument("file")
    label.add_argument("--capacity", type=int, default=0)
    _add_crossing_backend_flag(label)
    label.set_defaults(func=cmd_label)

    run = sub.add_parser("run", help="simulate on a configured array")
    run.add_argument("file")
    run.add_argument("--queues", type=int, default=1, help="queues per link")
    run.add_argument("--capacity", type=int, default=0, help="words per queue")
    run.add_argument(
        "--policy", choices=("ordered", "static", "fcfs"), default="ordered"
    )
    run.add_argument(
        "--extension", action="store_true", help="enable queue extension"
    )
    run.add_argument(
        "--trace", action="store_true", help="print the assignment timeline"
    )
    run.set_defaults(func=cmd_run)

    sweep = sub.add_parser(
        "sweep",
        help="batched ensemble: policy x queue-provisioning sweep",
    )
    sweep.add_argument("file")
    sweep.add_argument(
        "--policies", default="ordered",
        help="comma-separated assignment policies (ordered,static,fcfs)",
    )
    sweep.add_argument(
        "--queues", default="1", help="comma-separated queues-per-link values"
    )
    sweep.add_argument(
        "--capacity", default="0", help="comma-separated queue capacities"
    )
    sweep.add_argument(
        "--repeat", type=int, default=1, help="repetitions per combination"
    )
    sweep.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = in-process with shared analysis cache)",
    )
    sweep.add_argument(
        "--backend", choices=("auto", "serial", "pool", "shm"), default="auto",
        help="execution backend: serial (in-process), pool (chunked "
             "multiprocessing), shm (summary rows via a shared-memory "
             "arena, full results hydrated on demand); auto picks serial "
             "for --workers 1, pool otherwise",
    )
    sweep.add_argument(
        "--stream", action="store_true",
        help="stream per-run summary rows with O(1) memory (for sweeps too "
             "large to hold) and print reducer aggregates — outcome counts, "
             "makespan histogram, deadlock rate by config; with --json, "
             "writes the aggregates instead of per-run rows",
    )
    sweep.add_argument(
        "--quantiles", metavar="P50,P95,...", default=None,
        help="also report makespan quantiles (t-digest) and per-config "
             "makespan stats, e.g. --quantiles p50,p95,p99; adds "
             "'quantiles' and 'per-config-makespan' fields to --json "
             "output",
    )
    sweep.add_argument(
        "--job-timeout", dest="job_timeout", type=float, default=None,
        metavar="SEC",
        help="per-job wall-clock limit: a job running longer has its "
             "worker killed and is retried, then recorded as a timeout "
             "row; engages fault-tolerant supervision (crashed workers "
             "replaced, their jobs requeued) on pool/shm backends",
    )
    sweep.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="extra attempts a job gets after crashing or hanging its "
             "worker before being quarantined as a WorkerCrash row "
             "(defaults to 2 once supervision engages); also engages "
             "fault-tolerant supervision",
    )
    sweep.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="snapshot progress (reducer state + finished-job bitmap) "
             "atomically to PATH every --checkpoint-every rows and on "
             "exit, including Ctrl-C — an interrupted sweep is "
             "immediately resumable",
    )
    sweep.add_argument(
        "--checkpoint-every", type=int, default=64, metavar="N",
        help="rows between periodic checkpoint snapshots (default 64)",
    )
    sweep.add_argument(
        "--resume", action="store_true",
        help="skip jobs already recorded in --checkpoint PATH; reported "
             "aggregates are byte-identical to an uninterrupted run "
             "(a corrupt or missing checkpoint restarts cleanly; one "
             "from a different sweep refuses to resume)",
    )
    sweep.add_argument(
        "--witness-store", dest="witness_store", metavar="PATH", default=None,
        help="consult/grow a deadlock-witness store at PATH: jobs a "
             "stored certificate covers emit their known deadlock row "
             "without simulating (static policy only — FCFS is never "
             "pruned because extra buffering can change its outcome), "
             "and new deadlocks mined from this run are saved back",
    )
    _add_crossing_backend_flag(sweep)
    sweep.add_argument("--json", help="write results to this JSON file")
    sweep.set_defaults(func=cmd_sweep)

    frontier = sub.add_parser(
        "frontier",
        help="minimal buffering per (policy, queues) line, searched in "
             "O(log n) jobs where monotonicity allows",
        description="Find each (policy, queues) line's minimal completing "
                    "queue capacity on the given axis. Monotone policies "
                    "(static) are binary-searched — 2 + log2(n) runs "
                    "instead of n; FCFS is evaluated exhaustively because "
                    "extra buffering can introduce a deadlock there. "
                    "Exit status 0 when every line has a frontier, 1 when "
                    "some line never completes.",
    )
    frontier.add_argument("file")
    frontier.add_argument(
        "--policies", default="static",
        help="comma-separated assignment policies (static is "
             "binary-searched; ordered and fcfs are fully evaluated)",
    )
    frontier.add_argument(
        "--queues", default="1", help="comma-separated queues-per-link values"
    )
    frontier.add_argument(
        "--capacity", default="0,1,2,4,8,16,32,64",
        help="comma-separated capacity axis to search (sorted, no "
             "duplicates)",
    )
    frontier.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for each probe round",
    )
    frontier.add_argument(
        "--backend", choices=("auto", "serial", "pool", "shm"), default="auto",
        help="execution backend for probe rounds (see 'repro sweep')",
    )
    frontier.add_argument(
        "--exhaustive", action="store_true",
        help="disable the binary search and evaluate every grid point "
             "(the differential baseline; same rows, same frontier)",
    )
    _add_crossing_backend_flag(frontier)
    frontier.add_argument(
        "--witness-store", dest="witness_store", metavar="PATH", default=None,
        help="seed bisection bounds from a deadlock-witness store at "
             "PATH (capacities a certificate dominates skip the bottom "
             "probe) and save newly mined certificates back",
    )
    frontier.add_argument(
        "--json",
        help="write the frontier report (per-line frontier, probes, "
             "jobs-executed vs grid cost) to this JSON file",
    )
    frontier.set_defaults(func=cmd_frontier)

    witness = sub.add_parser(
        "witness",
        help="inspect or compact a deadlock-witness store",
        description="Operate on the certificate file 'repro sweep "
                    "--witness-store' grows: list certificates with "
                    "their capacity bands, dump one as JSON, or drop "
                    "subsumed entries.",
    )
    witness_sub = witness.add_subparsers(dest="witness_cmd", required=True)
    witness_ls = witness_sub.add_parser(
        "ls", help="list stored certificates and their capacity bands"
    )
    witness_ls.add_argument("store", help="witness store file")
    witness_show = witness_sub.add_parser(
        "show", help="dump one certificate as JSON"
    )
    witness_show.add_argument("store", help="witness store file")
    witness_show.add_argument("id", help="witness id (unique prefix ok)")
    witness_prune = witness_sub.add_parser(
        "prune", help="drop certificates a stronger stored one subsumes"
    )
    witness_prune.add_argument("store", help="witness store file")
    witness.set_defaults(func=cmd_witness)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
