"""ASCII rendering of crossing-off traces, in the spirit of Figs. 4 and 10.

``render_steps`` lists, per step, the executable pairs crossed off —
Fig. 4's table. ``render_annotated`` prints the program with each transfer
operation tagged by the step that crossed it (and ``!`` marking skipped
positions at the moment of crossing), which is how Fig. 10 presents the
lookahead runs.
"""

from __future__ import annotations

from repro.core.crossing import CrossingResult
from repro.core.program import ArrayProgram


def render_steps(result: CrossingResult) -> str:
    """Fig. 4-style step listing."""
    lines = []
    for i, step in enumerate(result.steps, start=1):
        pairs = "   ".join(
            f"W({p.message})@{p.sender} & R({p.message})@{p.receiver}"
            for p in step
        )
        lines.append(f"Step {i:>3}: {pairs}")
    if not result.deadlock_free:
        blocked = ", ".join(sorted(result.uncrossed))
        lines.append(f"STUCK — no executable pair; remaining ops in: {blocked}")
    return "\n".join(lines) + "\n"


def render_annotated(program: ArrayProgram, result: CrossingResult, width: int = 16) -> str:
    """Program columns with each transfer tagged ``[step]`` when crossed.

    Operations never crossed are tagged ``[--]`` — in a deadlocked program
    these are exactly the operations the procedure could not reach.
    """
    crossed_at: dict[tuple[str, int], int] = {}
    for pair in result.crossings:
        crossed_at[(pair.sender, pair.sender_pos)] = pair.step
        crossed_at[(pair.receiver, pair.receiver_pos)] = pair.step
    columns: dict[str, list[str]] = {}
    for cell in program.cells:
        entries = []
        for pos, op in enumerate(program.transfers(cell)):
            step = crossed_at.get((cell, pos))
            tag = f"[{step}]" if step is not None else "[--]"
            entries.append(f"{op} {tag}")
        columns[cell] = entries
    height = max((len(c) for c in columns.values()), default=0)
    lines = ["".join(cell.ljust(width) for cell in program.cells)]
    lines.append("-" * (width * len(program.cells)))
    for i in range(height):
        lines.append(
            "".join(
                (columns[cell][i] if i < len(columns[cell]) else "").ljust(width)
                for cell in program.cells
            ).rstrip()
        )
    return "\n".join(lines) + "\n"
