"""Queue-assignment timelines — the lower halves of Figs. 7-9 as text."""

from __future__ import annotations

from repro.sim.queue_manager import AssignmentEvent
from repro.sim.result import SimulationResult


def render_assignments(trace: list[AssignmentEvent]) -> str:
    """Chronological grant/release log grouped by link."""
    if not trace:
        return "(no assignments)\n"
    by_link: dict[str, list[AssignmentEvent]] = {}
    for event in trace:
        by_link.setdefault(str(event.link), []).append(event)
    lines = []
    for link in sorted(by_link):
        lines.append(f"{link}:")
        for event in by_link[link]:
            verb = "<-" if event.kind == "grant" else "->"
            lines.append(
                f"    t={event.time:<6} queue#{event.queue_index} "
                f"{verb} {event.message} ({event.kind})"
            )
    return "\n".join(lines) + "\n"


def render_outcome(result: SimulationResult) -> str:
    """Run verdict plus blocked-agent detail — the figures' annotations."""
    lines = [result.summary()]
    if result.deadlocked:
        for item in result.blocked:
            lines.append(f"    blocked: {item}")
        if result.wait_cycle:
            lines.append("    wait-for cycle: " + " -> ".join(result.wait_cycle))
    return "\n".join(lines) + "\n"
