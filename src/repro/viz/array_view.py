"""ASCII diagrams of arrays and message flows (cf. Figs. 1, 3, 6-9)."""

from __future__ import annotations

from repro.arch.routing import Router
from repro.core.program import ArrayProgram


def render_linear(program: ArrayProgram) -> str:
    """Cells on a line with message arrows listed beneath.

    Works for any program whose cell order is the physical order (the
    default linear topology assumption).
    """
    index = {cell: i for i, cell in enumerate(program.cells)}
    header = "  <->  ".join(program.cells)
    lines = [header, ""]
    for msg in sorted(program.messages.values()):
        leftward = index[msg.receiver] < index[msg.sender]
        direction = "(leftward)" if leftward else "(rightward)"
        lines.append(
            f"  {msg.name:<8} {msg.sender} -> {msg.receiver}  "
            f"({msg.length} word{'s' if msg.length != 1 else ''}) {direction}"
        )
    return "\n".join(lines) + "\n"


def render_routes(program: ArrayProgram, router: Router) -> str:
    """Each message with the full link sequence it crosses (cf. Fig. 3)."""
    lines = []
    for msg in sorted(program.messages.values()):
        route = router.route(msg.sender, msg.receiver)
        path = " ".join(str(link) for link in route)
        lines.append(f"  {msg.name:<8} {path}")
    return "\n".join(lines) + "\n"
