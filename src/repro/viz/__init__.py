"""Text renderings of the paper's figure formats."""

from repro.viz.array_view import render_linear, render_routes
from repro.viz.crossing_view import render_annotated, render_steps
from repro.viz.timeline import render_assignments, render_outcome

__all__ = [
    "render_annotated",
    "render_assignments",
    "render_linear",
    "render_outcome",
    "render_routes",
    "render_steps",
]
