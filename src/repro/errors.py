"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type. Subclasses separate the compile-time analysis
failures (program validation, labeling) from configuration and run-time
simulation failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ProgramError(ReproError):
    """A program or message declaration is malformed.

    Examples: a write operation issued by a cell that is not the message's
    sender, mismatched write/read counts for a message, an operation naming
    an undeclared message.
    """


class TopologyError(ReproError):
    """A topology or routing request is invalid (unknown cell, no route)."""


class ConfigError(ReproError):
    """An array configuration cannot support the requested execution.

    Raised, for instance, when static queue assignment is requested but an
    interval has more competing messages than queues, or when the ordered
    dynamic policy would violate Theorem 1's assumption (ii) because a
    same-label group exceeds the number of queues on a link.
    """


class LabelingError(ReproError):
    """A message labeling is inconsistent or could not be constructed."""


class DeadlockedProgramError(ReproError):
    """An analysis that requires a deadlock-free program received one that
    the crossing-off procedure classifies as deadlocked."""


class SimulationError(ReproError):
    """The simulator reached an internal inconsistency (a bug guard, not an
    expected outcome; run-time deadlock is reported in results, not raised)."""


class ArenaSlotUnwritten(ReproError):
    """A shared-memory arena slot was read before any worker wrote it.

    Distinguishes "the worker that owned this slot died (or its write was
    torn) before publishing the row" from every other arena failure, so
    the supervised execution path can catch exactly this and requeue the
    affected job instead of aborting the sweep.
    """


class WorkerCrashError(ReproError):
    """A sweep job crashed its worker process past the retry budget.

    Raised only under ``on_error="raise"``; with ``on_error="collect"``
    the poison job is quarantined as a
    :class:`~repro.sweep.jobs.BatchError` row of kind ``"WorkerCrash"``
    and the sweep continues.
    """


class CheckpointError(ReproError):
    """A sweep checkpoint cannot be used, or could not be written.

    Raised when a checkpoint's grid fingerprint or job count does not
    match the sweep being resumed — resuming the wrong sweep would
    silently merge unrelated aggregates — and when the *final* snapshot
    of a checkpointed stream cannot be published (full disk, vanished
    directory): the sweep's rows are intact, but the checkpoint on disk
    is stale and a later ``resume`` would silently redo (or, with
    non-idempotent reducers, double-count) work, so the failure must
    not pass silently. A *corrupt* checkpoint (truncated, bit-flipped)
    is never an error on read: it reads as absent and the sweep
    restarts cleanly.
    """


class ParseError(ReproError):
    """The textual program format could not be parsed."""
