"""The simulator: assembles agents, queues and policy, runs to completion
or deadlock.

This is the run-time half of the paper: a deadlock-free program plus a
consistent labeling plus a compatible queue assignment runs to completion
(Theorem 1); drop any premise and the simulator shows you the deadlock.

Static analyses (routing, competing-message sets, lookahead capacities,
labeling) are shared across simulators through the content-keyed cache in
:mod:`repro.perf` — repeated simulations of the same program pay for them
once. With ``REPRO_ANALYSIS_DISK_CACHE`` (or
:func:`repro.perf.configure_disk_cache`) the analyses additionally
persist to a cross-process disk tier, so pool workers and restarted
sweep sessions skip re-analysis entirely. Custom router/topology
subclasses are automatically excluded from sharing unless they expose an
``analysis_fingerprint`` token (see :mod:`repro.perf.analysis_cache`);
``reuse_analysis=False`` disables sharing entirely.
"""

from __future__ import annotations

from collections import defaultdict

from repro.arch.config import ArrayConfig, CommModel
from repro.arch.links import Link
from repro.arch.queue import HardwareQueue
from repro.arch.routing import Router, default_router
from repro.arch.topology import ExplicitLinear, Topology
from repro.core.labeling import Labeling, constraint_labeling
from repro.core.crossing import route_capacities
from repro.core.program import ArrayProgram
from repro.core.requirements import competing_messages
from repro.perf.analysis_cache import GLOBAL_ANALYSIS_CACHE, AnalysisEntry
from repro.sim.agents import CellAgent, ForwarderAgent, MessageFlow, _Agent
from repro.sim.deadlock import diagnose
from repro.sim.engine import WHEEL_HORIZON, Engine, StopReason
from repro.sim.queue_manager import AssignmentPolicy, QueueManager, make_policy
from repro.sim.result import SimulationResult


def wheel_horizon_for(program: ArrayProgram, config: ArrayConfig) -> int:
    """Timing-wheel horizon covering every delay this run can schedule.

    The agents schedule four delay shapes: compute ops (``op.cycles or
    1``), writes (``op_latency + op.cycles`` plus the memory-to-memory
    staging overhead), reads (the same plus a possible queue-extension
    penalty), and forwarder hops (``hop_latency`` plus the penalty).
    Sizing the wheel to their maximum keeps long compute kernels
    (``cycles`` > 8) on the O(1) wheel instead of the overflow heap; the
    engine clamps oversized horizons, where the rare long delay just
    takes the heap. The program's max op latency comes precomputed from
    its intern table, so this is O(1) per simulator build.
    """
    penalty = config.extension_penalty if config.allow_extension else 0
    overhead = (
        2 * config.memory_access_cycles
        if config.comm_model is CommModel.MEMORY_TO_MEMORY
        else 0
    )
    max_op = program.intern.max_op_cycles
    longest = max(
        config.op_latency + max_op + penalty + overhead,
        config.hop_latency + penalty,
    )
    return max(WHEEL_HORIZON, longest)


class Simulator:
    """One run of one program on one array configuration.

    Args:
        program: the (validated) array program.
        config: hardware parameters; defaults to one unbuffered queue per
            link — the Sections 3-7 setting.
        topology: interconnection; defaults to a linear array whose order
            is the program's cell list.
        router: route computation; defaults to the topology's natural
            minimal router.
        policy: queue-assignment policy — ``"ordered"`` (the paper's
            compatible scheme), ``"static"``, ``"fcfs"`` (naive baseline),
            or a policy instance.
        labeling: labels for the ordered policy. ``None`` auto-computes
            with the Section 6 scheme (using lookahead bounds derived from
            the config when queues have buffering).
        registers: initial register file per cell (e.g. preloaded FIR
            weights).
        strict: enforce Theorem 1 assumption (ii) at setup for the
            ordered policy.
        reuse_analysis: share static analyses (routes, competing sets,
            capacities, labeling) through the process-global content-keyed
            cache. Identical results either way; repeated simulations of
            the same program skip re-analysis.

    Simulators are single-shot: build, :meth:`run`, inspect the result.
    """

    def __init__(
        self,
        program: ArrayProgram,
        config: ArrayConfig | None = None,
        topology: Topology | None = None,
        router: Router | None = None,
        policy: str | AssignmentPolicy = "ordered",
        labeling: Labeling | None = None,
        registers: dict[str, dict[str, float | None]] | None = None,
        strict: bool = True,
        reuse_analysis: bool = True,
    ) -> None:
        self.program = program
        self.config = config or ArrayConfig()
        self.topology = topology or ExplicitLinear(tuple(program.cells))
        self.router = router or default_router(self.topology)
        self.reuse_analysis = reuse_analysis
        self._analysis: AnalysisEntry | None = (
            GLOBAL_ANALYSIS_CACHE.lookup(
                program, self.topology, self.router, self.config
            )
            if reuse_analysis
            else None
        )
        if isinstance(policy, str):
            self.policy = make_policy(policy, strict=strict)
        else:
            self.policy = policy
        if labeling is None and self.policy.name == "ordered":
            labeling = self._auto_labeling()
        self.labeling = labeling

        self.engine = Engine(horizon=wheel_horizon_for(program, self.config))
        self.manager = QueueManager(self.policy, clock=lambda: self.engine.now)
        self.flows: dict[str, MessageFlow] = {}
        self.cell_agents: dict[str, CellAgent] = {}
        self.forwarders: dict[tuple[str, int], ForwarderAgent] = {}
        self.received: dict[str, list[float | None]] = defaultdict(list)
        self._unfinished = 0
        self._build(registers or {})
        if self._analysis is not None:
            # Publish freshly computed analyses to the disk tier (no-op
            # unless REPRO_ANALYSIS_DISK_CACHE / configure_disk_cache is
            # active and something new was computed).
            self._analysis.persist()

    def _auto_labeling(self) -> Labeling:
        # The constraint-based labeling always exists and matches the
        # Section 6 scheme on every example the paper works; see
        # repro.core.labeling for why the literal scheme is not used here.
        if self._analysis is not None:
            return self._analysis.labeling
        lookahead = None
        if self.config.queue_capacity > 0 or self.config.allow_extension:
            lookahead = route_capacities(
                self.program,
                self.router,
                self.config.queue_capacity,
                allow_extension=self.config.allow_extension,
            )
        return constraint_labeling(self.program, lookahead=lookahead)

    def _build(self, registers: dict[str, dict[str, float | None]]) -> None:
        analysis = self._analysis
        if analysis is not None:
            routes = analysis.routes
            competing = analysis.competing
        else:
            routes = {
                msg.name: self.router.route(msg.sender, msg.receiver)
                for msg in self.program.messages.values()
            }
            competing = competing_messages(self.program, self.router)
        for msg in self.program.messages.values():
            self.flows[msg.name] = MessageFlow(self, msg, routes[msg.name])
        groups_table = None
        if (
            analysis is not None
            and self.policy.name == "ordered"
            and self.labeling is not None
        ):
            groups_table = analysis.ordered_groups(self.labeling)
        used_links: set[Link] = set()
        for flow in self.flows.values():
            used_links.update(flow.route)
        cfg = self.config
        for link in sorted(used_links):
            queues = [
                HardwareQueue(
                    link,
                    index,
                    capacity=cfg.queue_capacity,
                    extension_allowed=cfg.allow_extension,
                    extension_penalty=cfg.extension_penalty,
                )
                for index in range(cfg.queues_on(link))
            ]
            self.manager.add_link(
                link,
                queues,
                competing.get(link, ()),
                self.labeling,
                groups_table.get(link) if groups_table is not None else None,
            )
        for cell in self.program.cells:
            agent = CellAgent(
                self,
                cell,
                self.program.cell_programs[cell].ops,
                registers.get(cell),
            )
            self.cell_agents[cell] = agent
        for name, flow in self.flows.items():
            for hop in range(flow.hops - 1):
                self.forwarders[(name, hop)] = ForwarderAgent(self, flow, hop)

    # ------------------------------------------------------------------
    # Agent callbacks
    # ------------------------------------------------------------------

    def all_agents(self) -> list[_Agent]:
        """Every agent, cells first then forwarders."""
        return list(self.cell_agents.values()) + list(self.forwarders.values())

    def agent_finished(self, agent: _Agent) -> None:
        """An agent completed all its work."""
        self._unfinished -= 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(
        self,
        max_events: int | None = 5_000_000,
        max_time: int | None = None,
    ) -> SimulationResult:
        """Execute until completion, deadlock, or a safety limit."""
        agents = self.all_agents()
        self._unfinished = len(agents)
        for agent in agents:
            if isinstance(agent, (CellAgent, ForwarderAgent)):
                agent.start()
        reason = self.engine.run(max_events=max_events, max_time=max_time)
        completed = self._unfinished == 0
        deadlocked = not completed and reason is StopReason.QUIESCENT
        timed_out = not completed and not deadlocked
        blocked: list[str] = []
        cycle: list[str] | None = None
        if deadlocked:
            blocked, cycle = diagnose(self)
        queue_stats = {}
        for state in self.manager.links.values():
            for queue in state.queues:
                queue_stats[str(queue)] = queue.stats
        return SimulationResult(
            completed=completed,
            deadlocked=deadlocked,
            timed_out=timed_out,
            time=self.engine.now,
            events=self.engine.events_processed,
            blocked=blocked,
            wait_cycle=cycle,
            registers={
                cell: dict(agent.registers)
                for cell, agent in self.cell_agents.items()
            },
            received={name: list(vals) for name, vals in self.received.items()},
            queue_stats=queue_stats,
            assignment_trace=list(self.manager.trace),
            memory_accesses={
                cell: agent.memory_accesses
                for cell, agent in self.cell_agents.items()
            },
            busy_cycles={a.name: a.busy_cycles for a in agents},
            words_transferred=sum(
                flow.words_delivered for flow in self.flows.values()
            ),
        )


def simulate(
    program: ArrayProgram,
    config: ArrayConfig | None = None,
    policy: str | AssignmentPolicy = "ordered",
    **kwargs,
) -> SimulationResult:
    """Build a :class:`Simulator` and run it — the one-call entry point."""
    return Simulator(program, config=config, policy=policy, **kwargs).run()
