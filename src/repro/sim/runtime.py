"""The simulator: assembles agents, queues and policy, runs to completion
or deadlock.

This is the run-time half of the paper: a deadlock-free program plus a
consistent labeling plus a compatible queue assignment runs to completion
(Theorem 1); drop any premise and the simulator shows you the deadlock.
"""

from __future__ import annotations

from collections import defaultdict

from repro.arch.config import ArrayConfig
from repro.arch.links import Link
from repro.arch.queue import HardwareQueue
from repro.arch.routing import Router, default_router
from repro.arch.topology import ExplicitLinear, Topology
from repro.core.labeling import Labeling, constraint_labeling
from repro.core.crossing import route_capacities
from repro.core.program import ArrayProgram
from repro.core.requirements import competing_messages
from repro.errors import ConfigError
from repro.sim.agents import CellAgent, ForwarderAgent, MessageFlow, _Agent
from repro.sim.deadlock import diagnose
from repro.sim.engine import Engine, StopReason
from repro.sim.queue_manager import AssignmentPolicy, QueueManager, make_policy
from repro.sim.result import SimulationResult
from repro.sim.words import Word


class Simulator:
    """One run of one program on one array configuration.

    Args:
        program: the (validated) array program.
        config: hardware parameters; defaults to one unbuffered queue per
            link — the Sections 3-7 setting.
        topology: interconnection; defaults to a linear array whose order
            is the program's cell list.
        router: route computation; defaults to the topology's natural
            minimal router.
        policy: queue-assignment policy — ``"ordered"`` (the paper's
            compatible scheme), ``"static"``, ``"fcfs"`` (naive baseline),
            or a policy instance.
        labeling: labels for the ordered policy. ``None`` auto-computes
            with the Section 6 scheme (using lookahead bounds derived from
            the config when queues have buffering).
        registers: initial register file per cell (e.g. preloaded FIR
            weights).
        strict: enforce Theorem 1 assumption (ii) at setup for the
            ordered policy.

    Simulators are single-shot: build, :meth:`run`, inspect the result.
    """

    def __init__(
        self,
        program: ArrayProgram,
        config: ArrayConfig | None = None,
        topology: Topology | None = None,
        router: Router | None = None,
        policy: str | AssignmentPolicy = "ordered",
        labeling: Labeling | None = None,
        registers: dict[str, dict[str, float | None]] | None = None,
        strict: bool = True,
    ) -> None:
        self.program = program
        self.config = config or ArrayConfig()
        self.topology = topology or ExplicitLinear(tuple(program.cells))
        self.router = router or default_router(self.topology)
        if isinstance(policy, str):
            self.policy = make_policy(policy, strict=strict)
        else:
            self.policy = policy
        if labeling is None and self.policy.name == "ordered":
            labeling = self._auto_labeling()
        self.labeling = labeling

        self.engine = Engine()
        self.manager = QueueManager(self.policy, clock=lambda: self.engine.now)
        self.flows: dict[str, MessageFlow] = {}
        self.cell_agents: dict[str, CellAgent] = {}
        self.forwarders: dict[tuple[str, int], ForwarderAgent] = {}
        self.received: dict[str, list[float | None]] = defaultdict(list)
        self._unfinished = 0
        self._build(registers or {})

    def _auto_labeling(self) -> Labeling:
        # The constraint-based labeling always exists and matches the
        # Section 6 scheme on every example the paper works; see
        # repro.core.labeling for why the literal scheme is not used here.
        lookahead = None
        if self.config.queue_capacity > 0 or self.config.allow_extension:
            lookahead = route_capacities(
                self.program,
                self.router,
                self.config.queue_capacity,
                allow_extension=self.config.allow_extension,
            )
        return constraint_labeling(self.program, lookahead=lookahead)

    def _build(self, registers: dict[str, dict[str, float | None]]) -> None:
        for msg in self.program.messages.values():
            route = self.router.route(msg.sender, msg.receiver)
            self.flows[msg.name] = MessageFlow(self, msg, route)
        competing = competing_messages(self.program, self.router)
        used_links: set[Link] = set()
        for flow in self.flows.values():
            used_links.update(flow.route)
        for link in sorted(used_links):
            queues = [
                HardwareQueue(
                    link,
                    index,
                    capacity=self.config.queue_capacity,
                    extension_allowed=self.config.allow_extension,
                    extension_penalty=self.config.extension_penalty,
                )
                for index in range(self.config.queues_on(link))
            ]
            self.manager.add_link(
                link, queues, competing.get(link, []), self.labeling
            )
        for cell in self.program.cells:
            agent = CellAgent(
                self,
                cell,
                self.program.cell_programs[cell].ops,
                registers.get(cell),
            )
            self.cell_agents[cell] = agent
        for name, flow in self.flows.items():
            for hop in range(flow.hops - 1):
                self.forwarders[(name, hop)] = ForwarderAgent(self, flow, hop)

    # ------------------------------------------------------------------
    # Agent callbacks
    # ------------------------------------------------------------------

    def all_agents(self) -> list[_Agent]:
        """Every agent, cells first then forwarders."""
        return list(self.cell_agents.values()) + list(self.forwarders.values())

    def agent_finished(self, agent: _Agent) -> None:
        """An agent completed all its work."""
        self._unfinished -= 1

    def record_delivery(self, word: Word) -> None:
        """A receiver consumed ``word`` — record it for result inspection."""
        self.received[word.message].append(word.value)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(
        self,
        max_events: int | None = 5_000_000,
        max_time: int | None = None,
    ) -> SimulationResult:
        """Execute until completion, deadlock, or a safety limit."""
        agents = self.all_agents()
        self._unfinished = len(agents)
        for agent in agents:
            if isinstance(agent, (CellAgent, ForwarderAgent)):
                agent.start()
        reason = self.engine.run(max_events=max_events, max_time=max_time)
        completed = self._unfinished == 0
        deadlocked = not completed and reason is StopReason.QUIESCENT
        timed_out = not completed and not deadlocked
        blocked: list[str] = []
        cycle: list[str] | None = None
        if deadlocked:
            blocked, cycle = diagnose(self)
        queue_stats = {}
        for state in self.manager.links.values():
            for queue in state.queues:
                queue_stats[str(queue)] = queue.stats
        return SimulationResult(
            completed=completed,
            deadlocked=deadlocked,
            timed_out=timed_out,
            time=self.engine.now,
            events=self.engine.events_processed,
            blocked=blocked,
            wait_cycle=cycle,
            registers={
                cell: dict(agent.registers)
                for cell, agent in self.cell_agents.items()
            },
            received={name: list(vals) for name, vals in self.received.items()},
            queue_stats=queue_stats,
            assignment_trace=list(self.manager.trace),
            memory_accesses={
                cell: agent.memory_accesses
                for cell, agent in self.cell_agents.items()
            },
            busy_cycles={a.name: a.busy_cycles for a in agents},
            words_transferred=sum(
                flow.words_delivered for flow in self.flows.values()
            ),
        )


def simulate(
    program: ArrayProgram,
    config: ArrayConfig | None = None,
    policy: str | AssignmentPolicy = "ordered",
    **kwargs,
) -> SimulationResult:
    """Build a :class:`Simulator` and run it — the one-call entry point."""
    return Simulator(program, config=config, policy=policy, **kwargs).run()
