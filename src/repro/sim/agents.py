"""Simulation agents: cell executors, per-hop forwarders, message flows.

A cell program operates directly on the cell's I/O queues (the systolic
model); transfers through intermediate cells are carried by I/O processes
that are transparent to cell programs (Section 2.3) — here, one
:class:`ForwarderAgent` per intermediate hop of each message. A
:class:`MessageFlow` tracks the queue granted on each hop of a message's
route and wakes parties waiting on grants.

Everything here is on the per-word hot path, so the classes are slotted,
waiters are reusable bound methods created once per agent, and wait
*reasons* are stored as cheap condition codes — the human-readable
description is only formatted when deadlock diagnosis actually asks for
it (see :meth:`_Agent.wait_reason`). A word transfer allocates no
closures, no lists, and no strings.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.arch.config import CommModel
from repro.arch.links import Route
from repro.arch.queue import HardwareQueue
from repro.core.message import Message
from repro.core.ops import Op, OpKind
from repro.errors import SimulationError
from repro.sim.queue_manager import Request
from repro.sim.words import Word

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.runtime import Simulator

Callback = Callable[[], None]

# Wait condition codes (the formatted description is derived on demand
# from these plus wait_queue/wait_grant — see _Agent.wait_reason).
_W_GRANT = "w-grant"
_W_FULL = "w-full"
_R_GRANT = "r-grant"
_R_EMPTY = "r-empty"
_F_UP_GRANT = "f-up-grant"
_F_UP_EMPTY = "f-up-empty"
_F_DOWN_GRANT = "f-down-grant"
_F_DOWN_FULL = "f-down-full"


class MessageFlow:
    """Run-time state of one message across its route."""

    __slots__ = (
        "sim",
        "message",
        "route",
        "last_hop",
        "queues",
        "requested",
        "_grant_waiters",
        "words_written",
        "words_delivered",
    )

    def __init__(self, sim: "Simulator", message: Message, route: Route) -> None:
        if not route:
            raise SimulationError(f"message {message.name} has an empty route")
        self.sim = sim
        self.message = message
        self.route = route
        self.last_hop = len(route) - 1
        self.queues: list[HardwareQueue | None] = [None] * len(route)
        self.requested: list[bool] = [False] * len(route)
        self._grant_waiters: list[list[Callback]] = [[] for _ in route]
        self.words_written = 0
        self.words_delivered = 0

    @property
    def hops(self) -> int:
        """Number of links (and queues) on the route."""
        return len(self.route)

    def request(self, hop: int) -> None:
        """Ask the manager for a queue on ``hop`` (idempotent)."""
        if not self.requested[hop]:
            self.requested[hop] = True
            self.sim.manager.request(Request(self, hop))

    def granted(self, hop: int, queue: HardwareQueue) -> None:
        """Manager callback: ``queue`` now carries this message on ``hop``."""
        self.queues[hop] = queue
        waiters = self._grant_waiters[hop]
        if waiters:
            self._grant_waiters[hop] = []
            for poke in waiters:
                poke()

    def when_granted(self, hop: int, poke: Callback) -> None:
        """Invoke ``poke`` once a queue is granted on ``hop``."""
        if self.queues[hop] is not None:
            poke()
        else:
            self._grant_waiters[hop].append(poke)


class _Agent:
    """Base: deduplicated scheduling plus wait bookkeeping for diagnosis.

    Two hot-path idioms are inlined at their call sites rather than kept
    as methods (one call frame per word adds up):

    * *queue release after pop* — a queue is released exactly when its
      ``words_remaining`` counter (kept by :meth:`HardwareQueue.pop`)
      reaches zero while still assigned; only then may it carry another
      message.
    * *spend-and-continue scheduling* — after an operation, agents
      schedule ``_run`` directly (not via ``poke``): while an agent is
      spending cycles it is not registered as a waiter anywhere, so no
      poke can arrive mid-delay, and ``_scheduled`` stays True for the
      window so a (hypothetical) stray poke cannot double-fire.
    """

    __slots__ = (
        "sim",
        "name",
        "done",
        "busy_cycles",
        "_scheduled",
        "waiting",
        "wait_queue",
        "wait_grant",
        "wait_space",
        "poke",
        "_run_cb",
    )

    def __init__(self, sim: "Simulator", name: str) -> None:
        self.sim = sim
        self.name = name
        self.done = False
        self.busy_cycles = 0
        self._scheduled = False
        self.waiting: str | None = None
        self.wait_queue: HardwareQueue | None = None
        self.wait_grant: tuple[MessageFlow, int] | None = None
        self.wait_space = False
        # Reusable bound-method waiters: one allocation per agent, not one
        # per wait/poke.
        self.poke: Callback = self._poke
        self._run_cb: Callback = self._run

    def _poke(self) -> None:
        """Schedule one step at the current time (coalescing duplicates)."""
        if self._scheduled or self.done:
            return
        self._scheduled = True
        engine = self.sim.engine
        if engine._fast:
            engine._fifo.append(self._run_cb)
        else:
            engine.after(0, self._run_cb)

    def _run(self) -> None:
        self._scheduled = False
        if not self.done:
            self.step()

    def step(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def wait_reason(self) -> str | None:
        """Human-readable description of the current wait, or ``None``.

        Formatted on demand from the stored wait state; by quiescence the
        queue/grant state an agent last waited on is exactly its current
        state, so this reproduces the eagerly-formatted description.
        """
        code = self.waiting
        if code is None:
            return None
        queue = self.wait_queue
        grant = self.wait_grant
        if code is _W_GRANT:
            flow, hop = grant
            return (
                f"{self.name} W({flow.message.name}): awaiting queue on "
                f"{flow.route[hop]}"
            )
        if code is _W_FULL:
            return (
                f"{self.name} W({queue.assigned}): queue {queue} full "
                f"(occupancy {queue.occupancy}/{queue.capacity})"
            )
        if code is _R_GRANT:
            flow, hop = grant
            return (
                f"{self.name} R({flow.message.name}): no queue granted on "
                f"{flow.route[hop]}"
            )
        if code is _R_EMPTY:
            return f"{self.name} R({queue.assigned}): queue {queue} empty"
        if code is _F_UP_GRANT:
            flow, hop = grant
            return (
                f"{self.name}: upstream queue not granted on {flow.route[hop]}"
            )
        if code is _F_UP_EMPTY:
            return f"{self.name}: upstream queue {queue} empty"
        if code is _F_DOWN_GRANT:
            flow, hop = grant
            return (
                f"{self.name}: header blocked, awaiting queue on "
                f"{flow.route[hop]}"
            )
        if code is _F_DOWN_FULL:
            return (
                f"{self.name}: downstream queue {queue} full "
                f"(occupancy {queue.occupancy}/{queue.capacity})"
            )
        return code  # pragma: no cover - unknown code, show it raw

    def _clear_wait(self) -> None:
        self.waiting = None
        self.wait_queue = None
        self.wait_grant = None
        self.wait_space = False

    def _wait_word(self, queue: HardwareQueue, code: str) -> None:
        self.waiting = code
        self.wait_queue = queue
        self.wait_space = False
        queue.when_word(self.poke)

    def _wait_grant(self, flow: MessageFlow, hop: int, code: str) -> None:
        self.waiting = code
        self.wait_grant = (flow, hop)
        flow.when_granted(hop, self.poke)

    def _finish(self) -> None:
        self.done = True
        self._clear_wait()
        self.sim.agent_finished(self)


class CellAgent(_Agent):
    """Executes one cell's program against its I/O queues."""

    __slots__ = (
        "cell",
        "ops",
        "pc",
        "registers",
        "memory_accesses",
        "_write_parked",
        "_write_flow",
        "_write_latency",
        "_write_complete_cb",
        "_n_ops",
        "_op_latency",
        "_m2m_overhead",
        "_plan",
    )

    def __init__(
        self,
        sim: "Simulator",
        cell: str,
        ops: tuple[Op, ...],
        registers: dict[str, float | None] | None = None,
    ) -> None:
        super().__init__(sim, f"cell:{cell}")
        self.cell = cell
        self.ops = ops
        self.pc = 0
        self.registers: dict[str, float | None] = dict(registers or {})
        self.memory_accesses = 0
        self._write_parked = False
        self._write_flow: MessageFlow | None = None
        self._write_latency = 0
        self._write_complete_cb: Callback = self._write_complete
        self._n_ops = len(ops)
        cfg = sim.config
        self._op_latency = cfg.op_latency
        # Memory-to-memory staging cost per transfer, 0 under systolic.
        self._m2m_overhead = (
            2 * cfg.memory_access_cycles
            if cfg.comm_model is CommModel.MEMORY_TO_MEMORY
            else 0
        )
        # Pre-resolved execution plan: each op paired with its flow (None
        # for computes), so the hot loop never does a by-name dict lookup.
        flows = sim.flows
        self._plan: list[tuple[Op, "MessageFlow | None"]] = [
            (op, None if op.kind is OpKind.COMPUTE else flows[op.message])
            for op in ops
        ]

    def start(self) -> None:
        """Schedule the first step at t=0."""
        if self.pc >= self._n_ops:
            self._finish()
        else:
            self.poke()

    def _run(self) -> None:
        # Specialised hot path: fold the base-class _run and step together
        # (one event = one call).
        self._scheduled = False
        if self.done or self._write_parked:
            return
        if self.pc >= self._n_ops:
            self._finish()
            return
        op, flow = self._plan[self.pc]
        kind = op.kind
        if kind is OpKind.COMPUTE:
            self._compute(op)
        elif kind is OpKind.WRITE:
            self._write(op, flow)
        else:
            self._read(op, flow)

    def step(self) -> None:
        """One program step (engine events call ``_run`` directly)."""
        self._scheduled = True
        self._run()

    def _transfer_overhead(self) -> int:
        """Extra cycles per R/W under the memory-to-memory model.

        Each transfer stages through local memory twice (OS copy plus the
        program's own access) — half of the >= 4 accesses per word that
        flow through a cell (Section 1).
        """
        overhead = self._m2m_overhead
        if overhead:
            self.memory_accesses += 2
        return overhead

    def _compute(self, op: Op) -> None:
        if self.waiting is not None:
            self._clear_wait()
        if op.func is not None and op.register is not None:
            args = [self.registers.get(r) for r in op.operands]
            if any(arg is None for arg in args):
                # Structure-only runs carry no values; unknown in -> unknown out.
                self.registers[op.register] = None
            else:
                self.registers[op.register] = op.func(*args)
        self.pc += 1
        cycles = op.cycles or 1
        self.busy_cycles += cycles
        self._scheduled = True
        engine = self.sim.engine
        if cycles:
            engine.after(cycles, self._run_cb)
        elif engine._fast:
            engine._fifo.append(self._run_cb)
        else:
            engine.after(0, self._run_cb)

    def _write(self, op: Op, flow: MessageFlow) -> None:
        queue = flow.queues[0]
        if queue is None:
            flow.request(0)
            queue = flow.queues[0]
            if queue is None:
                self._wait_grant(flow, 0, _W_GRANT)
                return
        value = op.source.resolve(self.registers) if op.source else None
        word = Word(op.message, flow.words_written, value)
        self._write_flow = flow
        overhead = self._m2m_overhead
        if overhead:
            self.memory_accesses += 2
        self._write_latency = self._op_latency + op.cycles + overhead
        if queue.try_push(word, blocked=self._write_complete_cb):
            self._write_complete()
        else:
            self._write_parked = True
            self.waiting = _W_FULL
            self.wait_queue = queue
            self.wait_space = True

    def _write_complete(self) -> None:
        """A pushed (or unparked) word was accepted — advance the program."""
        self._write_parked = False
        if self.waiting is not None:
            self._clear_wait()
        flow = self._write_flow
        self._write_flow = None
        flow.words_written += 1
        self.pc += 1
        cycles = self._write_latency
        self.busy_cycles += cycles
        self._scheduled = True
        engine = self.sim.engine
        if cycles:
            engine.after(cycles, self._run_cb)
        elif engine._fast:
            engine._fifo.append(self._run_cb)
        else:
            engine.after(0, self._run_cb)

    def _read(self, op: Op, flow: MessageFlow) -> None:
        last = flow.last_hop
        queue = flow.queues[last]
        if queue is None:
            self._wait_grant(flow, last, _R_GRANT)
            return
        if not (queue._buffer or queue._parked is not None):
            self._wait_word(queue, _R_EMPTY)
            return
        if self.waiting is not None:
            self._clear_wait()
        word, penalty = queue.pop()
        # Release once the remaining-words counter runs dry (only then
        # may the queue carry another message).
        if queue.words_remaining <= 0 and queue.assigned is not None:
            self.sim.manager.release(queue)
        flow.words_delivered += 1
        self.sim.received[word.message].append(word.value)
        if op.register is not None:
            self.registers[op.register] = word.value
        overhead = self._m2m_overhead
        if overhead:
            self.memory_accesses += 2
        self.pc += 1
        cycles = self._op_latency + op.cycles + penalty + overhead
        self.busy_cycles += cycles
        self._scheduled = True
        engine = self.sim.engine
        if cycles:
            engine.after(cycles, self._run_cb)
        elif engine._fast:
            engine._fifo.append(self._run_cb)
        else:
            engine.after(0, self._run_cb)


class ForwarderAgent(_Agent):
    """I/O process moving one message across one intermediate hop.

    Holds at most one word in flight (a register between queues), popping
    from the queue on hop ``hop`` and pushing into hop ``hop + 1``. It
    requests the next hop's queue when it first holds a word — i.e. when
    the message's header arrives at the intermediate cell, which is
    exactly when Section 5 says assignment may be requested (and possibly
    blocked).
    """

    __slots__ = (
        "flow",
        "hop",
        "moved",
        "holding",
        "_push_parked",
        "_push_complete_cb",
        "_hop_latency",
    )

    def __init__(self, sim: "Simulator", flow: MessageFlow, hop: int) -> None:
        super().__init__(sim, f"fwd:{flow.message.name}:{hop}")
        self.flow = flow
        self.hop = hop
        self.moved = 0
        self.holding: Word | None = None
        self._push_parked = False
        self._push_complete_cb: Callback = self._push_complete
        self._hop_latency = sim.config.hop_latency

    def start(self) -> None:
        """Arm the forwarder; it sleeps until words arrive."""
        self.poke()

    def _run(self) -> None:
        # Specialised hot path mirroring CellAgent._run.
        self._scheduled = False
        if self.done or self._push_parked:
            return
        if self.holding is None:
            self._try_pop()
        else:
            self._try_push()

    def step(self) -> None:
        """One forwarding step (engine events call ``_run`` directly)."""
        self._scheduled = True
        self._run()

    def _try_pop(self) -> None:
        flow = self.flow
        if self.moved >= flow.message.length:
            self._finish()
            return
        queue = flow.queues[self.hop]
        if queue is None:
            self._wait_grant(flow, self.hop, _F_UP_GRANT)
            return
        if not (queue._buffer or queue._parked is not None):
            self._wait_word(queue, _F_UP_EMPTY)
            return
        if self.waiting is not None:
            self._clear_wait()
        word, penalty = queue.pop()
        # Release once the remaining-words counter runs dry (only then
        # may the queue carry another message).
        if queue.words_remaining <= 0 and queue.assigned is not None:
            self.sim.manager.release(queue)
        self.holding = word
        cycles = self._hop_latency + penalty
        self.busy_cycles += cycles
        self._scheduled = True
        engine = self.sim.engine
        if cycles:
            engine.after(cycles, self._run_cb)
        elif engine._fast:
            engine._fifo.append(self._run_cb)
        else:
            engine.after(0, self._run_cb)

    def _try_push(self) -> None:
        nxt = self.hop + 1
        flow = self.flow
        queue = flow.queues[nxt]
        if queue is None:
            flow.request(nxt)
            queue = flow.queues[nxt]
            if queue is None:
                self._wait_grant(flow, nxt, _F_DOWN_GRANT)
                return
        if queue.try_push(self.holding, blocked=self._push_complete_cb):
            self._push_complete()
        else:
            self._push_parked = True
            self.waiting = _F_DOWN_FULL
            self.wait_queue = queue
            self.wait_space = True

    def _push_complete(self) -> None:
        """The held word was accepted downstream — go pop the next one."""
        self._push_parked = False
        if self.waiting is not None:
            self._clear_wait()
        self.holding = None
        self.moved += 1
        self.poke()
