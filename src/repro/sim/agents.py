"""Simulation agents: cell executors, per-hop forwarders, message flows.

A cell program operates directly on the cell's I/O queues (the systolic
model); transfers through intermediate cells are carried by I/O processes
that are transparent to cell programs (Section 2.3) — here, one
:class:`ForwarderAgent` per intermediate hop of each message. A
:class:`MessageFlow` tracks the queue granted on each hop of a message's
route and wakes parties waiting on grants.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.arch.config import CommModel
from repro.arch.links import Route
from repro.arch.queue import HardwareQueue
from repro.core.message import Message
from repro.core.ops import Op, OpKind
from repro.errors import SimulationError
from repro.sim.queue_manager import Request
from repro.sim.words import Word

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.runtime import Simulator

Callback = Callable[[], None]


class MessageFlow:
    """Run-time state of one message across its route."""

    def __init__(self, sim: "Simulator", message: Message, route: Route) -> None:
        if not route:
            raise SimulationError(f"message {message.name} has an empty route")
        self.sim = sim
        self.message = message
        self.route = route
        self.queues: list[HardwareQueue | None] = [None] * len(route)
        self.requested: list[bool] = [False] * len(route)
        self._grant_waiters: list[list[Callback]] = [[] for _ in route]
        self.words_written = 0
        self.words_delivered = 0

    @property
    def hops(self) -> int:
        """Number of links (and queues) on the route."""
        return len(self.route)

    def request(self, hop: int) -> None:
        """Ask the manager for a queue on ``hop`` (idempotent)."""
        if not self.requested[hop]:
            self.requested[hop] = True
            self.sim.manager.request(Request(self, hop))

    def granted(self, hop: int, queue: HardwareQueue) -> None:
        """Manager callback: ``queue`` now carries this message on ``hop``."""
        self.queues[hop] = queue
        waiters, self._grant_waiters[hop] = self._grant_waiters[hop], []
        for poke in waiters:
            poke()

    def when_granted(self, hop: int, poke: Callback) -> None:
        """Invoke ``poke`` once a queue is granted on ``hop``."""
        if self.queues[hop] is not None:
            poke()
        else:
            self._grant_waiters[hop].append(poke)

    def after_pop(self, hop: int) -> None:
        """Bookkeeping after a word leaves the queue on ``hop``.

        Releases the queue once the message's last word has passed it —
        only then may the queue be assigned to another message.
        """
        queue = self.queues[hop]
        if queue is not None and queue.complete:
            self.sim.manager.release(queue)


class _Agent:
    """Base: deduplicated scheduling plus wait bookkeeping for diagnosis."""

    def __init__(self, sim: "Simulator", name: str) -> None:
        self.sim = sim
        self.name = name
        self.done = False
        self.busy_cycles = 0
        self._scheduled = False
        self.waiting: str | None = None
        self.wait_queue: HardwareQueue | None = None
        self.wait_grant: tuple[MessageFlow, int] | None = None
        self.wait_space = False

    def poke(self) -> None:
        """Schedule one step at the current time (coalescing duplicates)."""
        if self._scheduled or self.done:
            return
        self._scheduled = True
        self.sim.engine.after(0, self._run)

    def _run(self) -> None:
        self._scheduled = False
        if not self.done:
            self.step()

    def step(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def _clear_wait(self) -> None:
        self.waiting = None
        self.wait_queue = None
        self.wait_grant = None
        self.wait_space = False

    def _wait_word(self, queue: HardwareQueue, why: str) -> None:
        self.waiting = why
        self.wait_queue = queue
        self.wait_space = False
        queue.when_word(self.poke)

    def _wait_grant(self, flow: MessageFlow, hop: int, why: str) -> None:
        self.waiting = why
        self.wait_grant = (flow, hop)
        flow.when_granted(hop, self.poke)

    def _finish(self) -> None:
        self.done = True
        self._clear_wait()
        self.sim.agent_finished(self)

    def _spend(self, cycles: int, then: Callback) -> None:
        self.busy_cycles += cycles
        self.sim.engine.after(cycles, then)


class CellAgent(_Agent):
    """Executes one cell's program against its I/O queues."""

    def __init__(
        self,
        sim: "Simulator",
        cell: str,
        ops: tuple[Op, ...],
        registers: dict[str, float | None] | None = None,
    ) -> None:
        super().__init__(sim, f"cell:{cell}")
        self.cell = cell
        self.ops = ops
        self.pc = 0
        self.registers: dict[str, float | None] = dict(registers or {})
        self.memory_accesses = 0
        self._write_parked = False

    def start(self) -> None:
        """Schedule the first step at t=0."""
        if self.pc >= len(self.ops):
            self._finish()
        else:
            self.poke()

    def step(self) -> None:
        if self._write_parked:
            return  # a parked write completes via its queue callback
        if self.pc >= len(self.ops):
            if not self.done:
                self._finish()
            return
        op = self.ops[self.pc]
        if op.kind is OpKind.COMPUTE:
            self._compute(op)
        elif op.kind is OpKind.WRITE:
            self._write(op)
        else:
            self._read(op)

    def _transfer_overhead(self) -> int:
        """Extra cycles per R/W under the memory-to-memory model.

        Each transfer stages through local memory twice (OS copy plus the
        program's own access) — half of the >= 4 accesses per word that
        flow through a cell (Section 1).
        """
        cfg = self.sim.config
        if cfg.comm_model is CommModel.MEMORY_TO_MEMORY:
            self.memory_accesses += 2
            return 2 * cfg.memory_access_cycles
        return 0

    def _compute(self, op: Op) -> None:
        self._clear_wait()
        if op.func is not None and op.register is not None:
            args = [self.registers.get(r) for r in op.operands]
            if any(arg is None for arg in args):
                # Structure-only runs carry no values; unknown in -> unknown out.
                self.registers[op.register] = None
            else:
                self.registers[op.register] = op.func(*args)
        self.pc += 1
        self._spend(max(op.cycles, 1), self.poke)

    def _write(self, op: Op) -> None:
        flow = self.sim.flows[op.message]
        queue = flow.queues[0]
        if queue is None:
            flow.request(0)
            queue = flow.queues[0]
            if queue is None:
                self._wait_grant(
                    flow, 0, f"{self.name} W({op.message}): awaiting queue on "
                    f"{flow.route[0]}"
                )
                return
        value = op.source.resolve(self.registers) if op.source else None
        word = Word(op.message, flow.words_written, value)
        latency = self.sim.config.op_latency + op.cycles + self._transfer_overhead()

        def complete() -> None:
            self._write_parked = False
            self._clear_wait()
            flow.words_written += 1
            self.pc += 1
            self._spend(latency, self.poke)

        if queue.try_push(word, blocked=complete):
            complete()
        else:
            self._write_parked = True
            self.waiting = (
                f"{self.name} W({op.message}): queue {queue} full "
                f"(occupancy {queue.occupancy}/{queue.capacity})"
            )
            self.wait_queue = queue
            self.wait_space = True

    def _read(self, op: Op) -> None:
        flow = self.sim.flows[op.message]
        last = flow.hops - 1
        queue = flow.queues[last]
        if queue is None:
            self._wait_grant(
                flow, last,
                f"{self.name} R({op.message}): no queue granted on {flow.route[last]}",
            )
            return
        if not queue.has_word:
            self._wait_word(
                queue, f"{self.name} R({op.message}): queue {queue} empty"
            )
            return
        self._clear_wait()
        word, penalty = queue.pop()
        flow.after_pop(last)
        flow.words_delivered += 1
        self.sim.record_delivery(word)
        if op.register is not None:
            self.registers[op.register] = word.value
        latency = (
            self.sim.config.op_latency
            + op.cycles
            + penalty
            + self._transfer_overhead()
        )
        self.pc += 1
        self._spend(latency, self.poke)


class ForwarderAgent(_Agent):
    """I/O process moving one message across one intermediate hop.

    Holds at most one word in flight (a register between queues), popping
    from the queue on hop ``hop`` and pushing into hop ``hop + 1``. It
    requests the next hop's queue when it first holds a word — i.e. when
    the message's header arrives at the intermediate cell, which is
    exactly when Section 5 says assignment may be requested (and possibly
    blocked).
    """

    def __init__(self, sim: "Simulator", flow: MessageFlow, hop: int) -> None:
        super().__init__(sim, f"fwd:{flow.message.name}:{hop}")
        self.flow = flow
        self.hop = hop
        self.moved = 0
        self.holding: Word | None = None
        self._push_parked = False

    def start(self) -> None:
        """Arm the forwarder; it sleeps until words arrive."""
        self.poke()

    def step(self) -> None:
        if self._push_parked:
            return
        if self.holding is None:
            self._try_pop()
        else:
            self._try_push()

    def _try_pop(self) -> None:
        if self.moved >= self.flow.message.length:
            self._finish()
            return
        queue = self.flow.queues[self.hop]
        if queue is None:
            self._wait_grant(
                self.flow, self.hop,
                f"{self.name}: upstream queue not granted on {self.flow.route[self.hop]}",
            )
            return
        if not queue.has_word:
            self._wait_word(queue, f"{self.name}: upstream queue {queue} empty")
            return
        self._clear_wait()
        word, penalty = queue.pop()
        self.flow.after_pop(self.hop)
        self.holding = word
        self._spend(self.sim.config.hop_latency + penalty, self.poke)

    def _try_push(self) -> None:
        nxt = self.hop + 1
        queue = self.flow.queues[nxt]
        if queue is None:
            self.flow.request(nxt)
            queue = self.flow.queues[nxt]
            if queue is None:
                self._wait_grant(
                    self.flow, nxt,
                    f"{self.name}: header blocked, awaiting queue on "
                    f"{self.flow.route[nxt]}",
                )
                return
        word = self.holding
        assert word is not None

        def complete() -> None:
            self._push_parked = False
            self._clear_wait()
            self.holding = None
            self.moved += 1
            self.poke()

        if queue.try_push(word, blocked=complete):
            complete()
        else:
            self._push_parked = True
            self.waiting = (
                f"{self.name}: downstream queue {queue} full "
                f"(occupancy {queue.occupancy}/{queue.capacity})"
            )
            self.wait_queue = queue
            self.wait_space = True
