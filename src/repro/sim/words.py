"""Words in flight: the unit of systolic data transfer."""

from __future__ import annotations


class Word:
    """One word of a message.

    A plain slotted record (not a dataclass): several are constructed per
    transferred word on the simulator hot path, and the hand-written
    ``__init__`` is ~3x cheaper than a frozen dataclass's. Treat instances
    as immutable.

    Attributes:
        message: owning message name.
        index: 0-based position within the message.
        value: payload (``None`` for structure-only programs).
    """

    __slots__ = ("message", "index", "value")

    def __init__(
        self, message: str, index: int, value: float | None = None
    ) -> None:
        self.message = message
        self.index = index
        self.value = value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Word):
            return NotImplemented
        return (
            self.message == other.message
            and self.index == other.index
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.message, self.index, self.value))

    def __repr__(self) -> str:
        return f"Word(message={self.message!r}, index={self.index!r}, value={self.value!r})"

    def __str__(self) -> str:
        if self.value is None:
            return f"{self.message}[{self.index}]"
        return f"{self.message}[{self.index}]={self.value}"
