"""Words in flight: the unit of systolic data transfer."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Word:
    """One word of a message.

    Attributes:
        message: owning message name.
        index: 0-based position within the message.
        value: payload (``None`` for structure-only programs).
    """

    message: str
    index: int
    value: float | None = None

    def __str__(self) -> str:
        if self.value is None:
            return f"{self.message}[{self.index}]"
        return f"{self.message}[{self.index}]={self.value}"
