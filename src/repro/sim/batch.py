"""Batched ensemble simulation — compatibility shim over :mod:`repro.sweep`.

Everything that used to live in this module (it grew to ~670 lines of
interleaved job normalization, pool plumbing, reducers and grid
iteration) now lives in the :mod:`repro.sweep` package, restructured
around a pluggable execution-backend architecture:

* jobs and normalization — :mod:`repro.sweep.jobs`;
* the provisioning grid — :mod:`repro.sweep.grid`;
* summary rows — :mod:`repro.sweep.summary`;
* streaming reducers (now with a ``merge`` contract, t-digest quantiles
  and per-config makespans) — :mod:`repro.sweep.reducers`;
* execution backends (``serial`` / ``pool`` / ``shm`` shared-memory
  arena) — :mod:`repro.sweep.backends`;
* plans, sessions and the :func:`simulate_many` /
  :func:`simulate_stream` entry points — :mod:`repro.sweep.plan`.

This module re-exports the long-standing public names so existing
imports (``from repro.sim.batch import simulate_many``) keep working
unchanged; new code should import from :mod:`repro.sweep` directly.
"""

from __future__ import annotations

from repro.sweep import (
    BatchError,
    CompletedCount,
    DeadlockRateByConfig,
    MakespanHistogram,
    PerConfigMakespan,
    QuantileReducer,
    RunSummary,
    SimJob,
    StreamReducer,
    iter_sweep_jobs,
    iter_sweep_labels,
    simulate_many,
    simulate_stream,
    summarize_result,
    sweep_jobs,
    sweep_labels,
)

__all__ = [
    "BatchError",
    "CompletedCount",
    "DeadlockRateByConfig",
    "MakespanHistogram",
    "PerConfigMakespan",
    "QuantileReducer",
    "RunSummary",
    "SimJob",
    "StreamReducer",
    "iter_sweep_jobs",
    "iter_sweep_labels",
    "simulate_many",
    "simulate_stream",
    "summarize_result",
    "sweep_jobs",
    "sweep_labels",
]
