"""Batched ensemble simulation: many programs/configs, one call.

Theorem-1 ensembles, policy ablations and queue-provisioning sweeps all
boil down to "simulate these N (program, config, policy) combinations
and collect the results". :func:`simulate_many` does that with:

* **deterministic merge order** — results come back in job order no
  matter how many workers ran them or which finished first;
* **chunked multiprocessing** — jobs are split into contiguous chunks
  and farmed to a process pool (``workers > 1``); each worker warms its
  own analysis cache, so chunking by program keeps the cache hot;
* **graceful degradation** — programs whose compute closures cannot be
  pickled (e.g. inline lambdas) fall back to in-process execution, where
  the shared analysis cache still applies.

The in-process path (``workers=1``, the default) is not a consolation
prize: repeated jobs over the same program hit the content-keyed
analysis cache (:mod:`repro.perf`), which is where ensemble time went
historically.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Sequence

from repro.arch.config import ArrayConfig
from repro.core.program import ArrayProgram
from repro.errors import ConfigError, ReproError
from repro.sim.result import SimulationResult
from repro.sim.runtime import Simulator


@dataclass(frozen=True)
class BatchError:
    """A job that raised instead of producing a result.

    Returned in place of a :class:`SimulationResult` when
    :func:`simulate_many` runs with ``on_error="collect"`` — sweeps over
    queue provisioning legitimately contain infeasible corners (e.g. a
    static assignment with too few queues) and one such corner must not
    abort the batch.
    """

    kind: str
    error: str

    @property
    def completed(self) -> bool:
        return False


@dataclass(frozen=True)
class SimJob:
    """One simulation to run: program plus run parameters."""

    program: ArrayProgram
    config: ArrayConfig | None = None
    policy: str = "ordered"
    registers: dict[str, dict[str, float | None]] | None = None
    strict: bool = True
    max_events: int | None = 5_000_000
    max_time: int | None = None

    def run(self) -> SimulationResult:
        """Execute this job in the current process."""
        sim = Simulator(
            self.program,
            config=self.config,
            policy=self.policy,
            registers=self.registers,
            strict=self.strict,
        )
        return sim.run(max_events=self.max_events, max_time=self.max_time)


def _normalize_jobs(
    programs: Sequence[ArrayProgram] | Sequence[SimJob],
    configs: ArrayConfig | Sequence[ArrayConfig | None] | None,
    policy: str,
    registers: dict[str, dict[str, float | None]] | None,
) -> list[SimJob]:
    jobs: list[SimJob] = []
    if not programs:
        return jobs
    if isinstance(programs[0], SimJob):
        if configs is not None:
            raise ConfigError("pass configs inside SimJob objects, not both")
        for job in programs:
            if not isinstance(job, SimJob):
                raise ConfigError("mix of SimJob and ArrayProgram inputs")
            jobs.append(job)
        return jobs
    if configs is None or isinstance(configs, ArrayConfig):
        config_list: list[ArrayConfig | None] = [configs] * len(programs)
    else:
        config_list = list(configs)
        if len(config_list) != len(programs):
            raise ConfigError(
                f"{len(programs)} programs but {len(config_list)} configs"
            )
    for program, config in zip(programs, config_list):
        jobs.append(
            SimJob(program, config=config, policy=policy, registers=registers)
        )
    return jobs


def _run_job(job: SimJob, collect_errors: bool) -> SimulationResult | BatchError:
    if not collect_errors:
        return job.run()
    try:
        return job.run()
    except ReproError as exc:
        return BatchError(kind=type(exc).__name__, error=str(exc))


def _run_chunk(
    chunk: list[tuple[int, SimJob]], collect_errors: bool = False
) -> list[tuple[int, SimulationResult | BatchError]]:
    """Worker entry point: run a chunk, tagging results with job indices."""
    return [(index, _run_job(job, collect_errors)) for index, job in chunk]


def _chunked(
    indexed: list[tuple[int, SimJob]], chunk_size: int
) -> list[list[tuple[int, SimJob]]]:
    return [
        indexed[start : start + chunk_size]
        for start in range(0, len(indexed), chunk_size)
    ]


def simulate_many(
    programs: Sequence[ArrayProgram] | Sequence[SimJob],
    configs: ArrayConfig | Sequence[ArrayConfig | None] | None = None,
    *,
    policy: str = "ordered",
    registers: dict[str, dict[str, float | None]] | None = None,
    workers: int = 1,
    chunk_size: int | None = None,
    on_error: str = "raise",
) -> list[SimulationResult | BatchError]:
    """Simulate every (program, config) job; results in job order.

    Args:
        programs: the programs to run — or prebuilt :class:`SimJob`
            objects for full per-job control.
        configs: ``None`` (defaults per job), one :class:`ArrayConfig`
            broadcast to every program, or one per program.
        policy: assignment policy for every job (ignored for ``SimJob``
            inputs).
        registers: initial registers for every job (ignored for
            ``SimJob`` inputs).
        workers: process count. ``1`` runs in-process (and still reuses
            the analysis cache across jobs); ``N > 1`` farms chunks to a
            ``multiprocessing`` pool.
        chunk_size: jobs per worker task; defaults to an even split that
            gives each worker ~4 chunks for load balance.
        on_error: ``"raise"`` propagates the first job error;
            ``"collect"`` replaces a failed job's result with a
            :class:`BatchError` so the rest of the batch still runs
            (infeasible sweep corners are data, not fatal).

    Returns:
        One :class:`SimulationResult` (or :class:`BatchError` under
        ``on_error="collect"``) per job, in input order — the merge is
        deterministic regardless of worker scheduling.
    """
    if on_error not in ("raise", "collect"):
        raise ConfigError(f"on_error must be 'raise' or 'collect', got {on_error!r}")
    collect_errors = on_error == "collect"
    jobs = _normalize_jobs(programs, configs, policy, registers)
    if not jobs:
        return []
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    indexed = list(enumerate(jobs))
    if workers == 1 or len(jobs) == 1:
        return [_run_job(job, collect_errors) for _index, job in indexed]
    try:
        # Probe the whole batch in one dumps (shared objects are memoized,
        # so this is cheap) — any job with an unpicklable compute closure
        # must divert the entire batch to the in-process path.
        pickle.dumps(jobs)
    except Exception:
        return [_run_job(job, collect_errors) for _index, job in indexed]
    if chunk_size is None:
        chunk_size = max(1, -(-len(jobs) // (workers * 4)))
    chunks = _chunked(indexed, chunk_size)
    import functools
    import multiprocessing

    run_chunk = functools.partial(_run_chunk, collect_errors=collect_errors)
    results: dict[int, SimulationResult | BatchError] = {}
    with multiprocessing.Pool(processes=workers) as pool:
        for chunk_result in pool.imap_unordered(run_chunk, chunks):
            for index, result in chunk_result:
                results[index] = result
    return [results[i] for i in range(len(jobs))]


def _sweep_grid(
    policies: Sequence[str],
    queues: Sequence[int],
    capacities: Sequence[int],
    repeat: int,
):
    """The one canonical (policy, queues, capacity, label) iteration.

    Both :func:`sweep_jobs` and :func:`sweep_labels` derive from this
    grid, so their positional alignment cannot drift.
    """
    for pol in policies:
        for nq in queues:
            for cap in capacities:
                for rep in range(repeat):
                    suffix = f" #{rep + 1}" if repeat > 1 else ""
                    yield pol, nq, cap, f"{pol} q={nq} cap={cap}{suffix}"


def sweep_jobs(
    program: ArrayProgram,
    policies: Sequence[str] = ("ordered",),
    queues: Sequence[int] = (1,),
    capacities: Sequence[int] = (0,),
    registers: dict[str, dict[str, float | None]] | None = None,
    repeat: int = 1,
) -> list[SimJob]:
    """The cartesian sweep (policy x queues x capacity) x repeat as jobs."""
    return [
        SimJob(
            program,
            config=ArrayConfig(queues_per_link=nq, queue_capacity=cap),
            policy=pol,
            registers=registers,
        )
        for pol, nq, cap, _label in _sweep_grid(
            policies, queues, capacities, repeat
        )
    ]


def sweep_labels(
    policies: Sequence[str] = ("ordered",),
    queues: Sequence[int] = (1,),
    capacities: Sequence[int] = (0,),
    repeat: int = 1,
) -> list[str]:
    """Human-readable labels aligned with :func:`sweep_jobs` order."""
    return [
        label
        for _pol, _nq, _cap, label in _sweep_grid(
            policies, queues, capacities, repeat
        )
    ]
