"""Batched ensemble simulation: many programs/configs, one call.

Theorem-1 ensembles, policy ablations and queue-provisioning sweeps all
boil down to "simulate these N (program, config, policy) combinations
and collect the results". :func:`simulate_many` does that with:

* **deterministic merge order** — results come back in job order no
  matter how many workers ran them or which finished first;
* **chunked multiprocessing** — jobs are split into contiguous chunks
  and farmed to a process pool (``workers > 1``); each worker warms its
  own analysis cache, so chunking by program keeps the cache hot, and
  a configured disk tier (:mod:`repro.perf.disk_cache`) is forwarded so
  workers also share analyses *across* processes and restarts;
* **graceful degradation** — programs whose compute closures cannot be
  pickled (e.g. inline lambdas) fall back to in-process execution, where
  the shared analysis cache still applies.

The in-process path (``workers=1``, the default) is not a consolation
prize: repeated jobs over the same program hit the content-keyed
analysis cache (:mod:`repro.perf`), which is where ensemble time went
historically.

For sweeps too large to hold in memory, :func:`simulate_stream` yields
one small :class:`RunSummary` row per job — full
:class:`SimulationResult` objects never accumulate, and never cross the
pool pipe — while feeding any number of streaming reducers
(:class:`CompletedCount`, :class:`MakespanHistogram`,
:class:`DeadlockRateByConfig`) that aggregate with O(1) state.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.arch.config import ArrayConfig
from repro.core.program import ArrayProgram
from repro.errors import ConfigError, ReproError
from repro.sim.result import SimulationResult
from repro.sim.runtime import Simulator


@dataclass(frozen=True)
class BatchError:
    """A job that raised instead of producing a result.

    Returned in place of a :class:`SimulationResult` when
    :func:`simulate_many` runs with ``on_error="collect"`` — sweeps over
    queue provisioning legitimately contain infeasible corners (e.g. a
    static assignment with too few queues) and one such corner must not
    abort the batch.
    """

    kind: str
    error: str

    @property
    def completed(self) -> bool:
        return False


@dataclass(frozen=True)
class SimJob:
    """One simulation to run: program plus run parameters."""

    program: ArrayProgram
    config: ArrayConfig | None = None
    policy: str = "ordered"
    registers: dict[str, dict[str, float | None]] | None = None
    strict: bool = True
    max_events: int | None = 5_000_000
    max_time: int | None = None

    def run(self) -> SimulationResult:
        """Execute this job in the current process."""
        sim = Simulator(
            self.program,
            config=self.config,
            policy=self.policy,
            registers=self.registers,
            strict=self.strict,
        )
        return sim.run(max_events=self.max_events, max_time=self.max_time)


def _normalize_jobs(
    programs: Sequence[ArrayProgram] | Sequence[SimJob],
    configs: ArrayConfig | Sequence[ArrayConfig | None] | None,
    policy: str,
    registers: dict[str, dict[str, float | None]] | None,
) -> list[SimJob]:
    jobs: list[SimJob] = []
    if not programs:
        return jobs
    if isinstance(programs[0], SimJob):
        if configs is not None:
            raise ConfigError("pass configs inside SimJob objects, not both")
        for job in programs:
            if not isinstance(job, SimJob):
                raise ConfigError("mix of SimJob and ArrayProgram inputs")
            jobs.append(job)
        return jobs
    if configs is None or isinstance(configs, ArrayConfig):
        config_list: list[ArrayConfig | None] = [configs] * len(programs)
    else:
        config_list = list(configs)
        if len(config_list) != len(programs):
            raise ConfigError(
                f"{len(programs)} programs but {len(config_list)} configs"
            )
    for program, config in zip(programs, config_list):
        jobs.append(
            SimJob(program, config=config, policy=policy, registers=registers)
        )
    return jobs


def _run_job(job: SimJob, collect_errors: bool) -> SimulationResult | BatchError:
    if not collect_errors:
        return job.run()
    try:
        return job.run()
    except ReproError as exc:
        return BatchError(kind=type(exc).__name__, error=str(exc))


def _configure_worker_disk_cache(disk_cache: str | None) -> None:
    """Point a pool worker at the parent's analysis disk tier."""
    if disk_cache is not None:
        from repro.perf.disk_cache import configure_disk_cache

        configure_disk_cache(disk_cache)


def _run_chunk(
    chunk: list[tuple[int, SimJob]],
    collect_errors: bool = False,
    disk_cache: str | None = None,
) -> list[tuple[int, SimulationResult | BatchError]]:
    """Worker entry point: run a chunk, tagging results with job indices."""
    _configure_worker_disk_cache(disk_cache)
    return [(index, _run_job(job, collect_errors)) for index, job in chunk]


def _probe_picklable(jobs: Sequence[SimJob]) -> bool:
    """Whether this batch can cross a pool pipe.

    Only compute closures inside programs can be unpicklable, so probing
    one job per *distinct program object* covers the batch without
    serializing every job twice.
    """
    seen: set[int] = set()
    probes: list[SimJob] = []
    for job in jobs:
        if id(job.program) not in seen:
            seen.add(id(job.program))
            probes.append(job)
    try:
        pickle.dumps(probes)
    except Exception:
        return False
    return True


def _chunked(
    indexed: list[tuple[int, SimJob]], chunk_size: int
) -> list[list[tuple[int, SimJob]]]:
    return [
        indexed[start : start + chunk_size]
        for start in range(0, len(indexed), chunk_size)
    ]


def simulate_many(
    programs: Sequence[ArrayProgram] | Sequence[SimJob],
    configs: ArrayConfig | Sequence[ArrayConfig | None] | None = None,
    *,
    policy: str = "ordered",
    registers: dict[str, dict[str, float | None]] | None = None,
    workers: int = 1,
    chunk_size: int | None = None,
    on_error: str = "raise",
    disk_cache: str | None = None,
) -> list[SimulationResult | BatchError]:
    """Simulate every (program, config) job; results in job order.

    Args:
        programs: the programs to run — or prebuilt :class:`SimJob`
            objects for full per-job control.
        configs: ``None`` (defaults per job), one :class:`ArrayConfig`
            broadcast to every program, or one per program.
        policy: assignment policy for every job (ignored for ``SimJob``
            inputs).
        registers: initial registers for every job (ignored for
            ``SimJob`` inputs).
        workers: process count. ``1`` runs in-process (and still reuses
            the analysis cache across jobs); ``N > 1`` farms chunks to a
            ``multiprocessing`` pool.
        chunk_size: jobs per worker task; defaults to an even split that
            gives each worker ~4 chunks for load balance.
        on_error: ``"raise"`` propagates the first job error;
            ``"collect"`` replaces a failed job's result with a
            :class:`BatchError` so the rest of the batch still runs
            (infeasible sweep corners are data, not fatal).
        disk_cache: directory of the persistent analysis tier
            (:mod:`repro.perf.disk_cache`); configured in this process
            *and* every pool worker, so analyses computed anywhere are
            reused everywhere — including across restarts.

    Returns:
        One :class:`SimulationResult` (or :class:`BatchError` under
        ``on_error="collect"``) per job, in input order — the merge is
        deterministic regardless of worker scheduling.
    """
    if on_error not in ("raise", "collect"):
        raise ConfigError(f"on_error must be 'raise' or 'collect', got {on_error!r}")
    collect_errors = on_error == "collect"
    _configure_worker_disk_cache(disk_cache)
    jobs = _normalize_jobs(programs, configs, policy, registers)
    if not jobs:
        return []
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    indexed = list(enumerate(jobs))
    if workers == 1 or len(jobs) == 1 or not _probe_picklable(jobs):
        # Unpicklable compute closures divert the batch to the
        # in-process path, where the shared analysis cache still applies.
        return [_run_job(job, collect_errors) for _index, job in indexed]
    if chunk_size is None:
        chunk_size = max(1, -(-len(jobs) // (workers * 4)))
    chunks = _chunked(indexed, chunk_size)
    import functools
    import multiprocessing

    run_chunk = functools.partial(
        _run_chunk, collect_errors=collect_errors, disk_cache=disk_cache
    )
    results: dict[int, SimulationResult | BatchError] = {}
    with multiprocessing.Pool(processes=workers) as pool:
        for chunk_result in pool.imap_unordered(run_chunk, chunks):
            for index, result in chunk_result:
                results[index] = result
    return [results[i] for i in range(len(jobs))]


# ---------------------------------------------------------------------------
# Streaming reduction API
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunSummary:
    """One job's outcome, reduced to a flat constant-size row.

    This is what crosses the pool pipe and what reducers see — never the
    full :class:`SimulationResult` with its traces and register files.
    """

    index: int
    completed: bool
    deadlocked: bool
    timed_out: bool
    time: int
    events: int
    words: int
    policy: str
    queues: int
    capacity: int
    error_kind: str | None = None
    error: str | None = None

    @property
    def outcome(self) -> str:
        """``completed`` / ``deadlock`` / ``timeout`` / ``infeasible``."""
        if self.error_kind is not None:
            return "infeasible"
        if self.completed:
            return "completed"
        if self.deadlocked:
            return "deadlock"
        return "timeout"


def summarize_result(
    index: int, job: SimJob, result: SimulationResult | BatchError
) -> RunSummary:
    """Flatten one job's result into a :class:`RunSummary` row."""
    config = job.config or ArrayConfig()
    if isinstance(result, BatchError):
        return RunSummary(
            index=index,
            completed=False,
            deadlocked=False,
            timed_out=False,
            time=0,
            events=0,
            words=0,
            policy=job.policy,
            queues=config.queues_per_link,
            capacity=config.queue_capacity,
            error_kind=result.kind,
            error=result.error,
        )
    return RunSummary(
        index=index,
        completed=result.completed,
        deadlocked=result.deadlocked,
        timed_out=result.timed_out,
        time=result.time,
        events=result.events,
        words=result.words_transferred,
        policy=job.policy,
        queues=config.queues_per_link,
        capacity=config.queue_capacity,
    )


class StreamReducer:
    """Base class for O(1)-state streaming aggregators.

    Subclasses override :meth:`update` (called once per
    :class:`RunSummary`, in job order) and :meth:`summary` (a JSON-able
    dict of the aggregate). ``name`` labels the reducer in CLI output.
    """

    name = "reducer"

    def update(self, row: RunSummary) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def summary(self) -> dict:  # pragma: no cover - abstract
        raise NotImplementedError


class CompletedCount(StreamReducer):
    """Counts per outcome: completed / deadlock / timeout / infeasible."""

    name = "outcomes"

    def __init__(self) -> None:
        self.total = 0
        self.completed = 0
        self.deadlocked = 0
        self.timed_out = 0
        self.infeasible = 0

    def update(self, row: RunSummary) -> None:
        self.total += 1
        if row.error_kind is not None:
            self.infeasible += 1
        elif row.completed:
            self.completed += 1
        elif row.deadlocked:
            self.deadlocked += 1
        else:
            self.timed_out += 1

    def summary(self) -> dict:
        return {
            "total": self.total,
            "completed": self.completed,
            "deadlock": self.deadlocked,
            "timeout": self.timed_out,
            "infeasible": self.infeasible,
        }


class MakespanHistogram(StreamReducer):
    """Histogram of completed-run makespans in fixed-width buckets."""

    name = "makespan"

    def __init__(self, bucket_width: int = 16) -> None:
        if bucket_width < 1:
            raise ConfigError(f"bucket_width must be >= 1, got {bucket_width}")
        self.bucket_width = bucket_width
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total_time = 0
        self.min_time: int | None = None
        self.max_time: int | None = None

    def update(self, row: RunSummary) -> None:
        if not row.completed:
            return
        self.count += 1
        self.total_time += row.time
        bucket = (row.time // self.bucket_width) * self.bucket_width
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        if self.min_time is None or row.time < self.min_time:
            self.min_time = row.time
        if self.max_time is None or row.time > self.max_time:
            self.max_time = row.time

    def summary(self) -> dict:
        return {
            "bucket_width": self.bucket_width,
            "count": self.count,
            "min": self.min_time,
            "max": self.max_time,
            "mean": (self.total_time / self.count) if self.count else None,
            "histogram": dict(sorted(self.buckets.items())),
        }


class DeadlockRateByConfig(StreamReducer):
    """Deadlock rate grouped by (policy, queues, capacity).

    Infeasible corners never simulated are excluded from the
    denominator — the rate answers "of the runs that executed under
    this config, how many deadlocked".
    """

    name = "deadlock-rate"

    def __init__(self) -> None:
        self.groups: dict[tuple[str, int, int], list[int]] = {}

    def update(self, row: RunSummary) -> None:
        if row.error_kind is not None:
            return
        key = (row.policy, row.queues, row.capacity)
        cell = self.groups.setdefault(key, [0, 0])
        cell[1] += 1
        if row.deadlocked:
            cell[0] += 1

    def summary(self) -> dict:
        return {
            f"{policy} q={queues} cap={capacity}": {
                "deadlocks": deadlocks,
                "runs": runs,
                "rate": deadlocks / runs,
            }
            for (policy, queues, capacity), (deadlocks, runs) in sorted(
                self.groups.items()
            )
        }


def _run_chunk_stream(
    chunk: list[tuple[int, SimJob]],
    collect_errors: bool,
    disk_cache: str | None = None,
) -> list[RunSummary]:
    """Worker entry point for streaming: summaries only, never results."""
    _configure_worker_disk_cache(disk_cache)
    return [
        summarize_result(index, job, _run_job(job, collect_errors))
        for index, job in chunk
    ]


def _iter_chunks(
    jobs: Iterable[SimJob], chunk_size: int
) -> Iterator[list[tuple[int, SimJob]]]:
    chunk: list[tuple[int, SimJob]] = []
    for index, job in enumerate(jobs):
        chunk.append((index, job))
        if len(chunk) >= chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def simulate_stream(
    jobs: Iterable[SimJob],
    *,
    reducers: Sequence[StreamReducer] = (),
    workers: int = 1,
    chunk_size: int = 32,
    on_error: str = "collect",
    disk_cache: str | None = None,
) -> Iterator[RunSummary]:
    """Stream per-job summary rows with O(1) retained state.

    Unlike :func:`simulate_many`, ``jobs`` may be a lazy generator and
    results are never accumulated: each job is reduced to a
    :class:`RunSummary` (in the worker, for ``workers > 1``, so full
    results also never cross the pool pipe), fed through every reducer,
    and yielded in job order. Peak memory is bounded by
    ``workers * chunk_size`` in-flight jobs, independent of sweep size.

    Args:
        jobs: the jobs to run, lazily consumed.
        reducers: :class:`StreamReducer` instances updated with every
            row before it is yielded; read their ``summary()`` after the
            stream is exhausted.
        workers: process count; ``1`` streams in-process. With a pool,
            chunks whose programs carry unpicklable compute closures run
            in-process transparently, preserving order.
        chunk_size: jobs per worker task.
        on_error: ``"collect"`` (default) turns failed jobs into
            ``infeasible`` rows; ``"raise"`` propagates the first error.
        disk_cache: analysis disk tier forwarded to every worker (see
            :func:`simulate_many`).

    Yields:
        One :class:`RunSummary` per job, in job order.
    """
    if on_error not in ("raise", "collect"):
        raise ConfigError(f"on_error must be 'raise' or 'collect', got {on_error!r}")
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    if chunk_size < 1:
        raise ConfigError(f"chunk_size must be >= 1, got {chunk_size}")
    collect_errors = on_error == "collect"
    _configure_worker_disk_cache(disk_cache)

    def emit(rows: list[RunSummary]) -> Iterator[RunSummary]:
        for row in rows:
            for reducer in reducers:
                reducer.update(row)
            yield row

    if workers == 1:
        for chunk in _iter_chunks(jobs, chunk_size):
            yield from emit(_run_chunk_stream(chunk, collect_errors))
        return

    import multiprocessing
    import weakref
    from collections import deque

    # Weak identity cache of already-probed programs. Weak references
    # (checked for identity) make CPython id() reuse harmless: if the
    # original program was freed, its entry no longer matches and the
    # new occupant of that address is probed like any other.
    probed_ok: dict[int, weakref.ref] = {}

    def chunk_picklable(chunk: list[tuple[int, SimJob]]) -> bool:
        probes = []
        for _index, job in chunk:
            known = probed_ok.get(id(job.program))
            if known is None or known() is not job.program:
                probes.append(job)
        if probes:
            try:
                pickle.dumps(probes)
            except Exception:
                return False
            if len(probed_ok) >= 1024:
                # Keep the cache O(live programs): drop entries whose
                # program has been freed (an endless stream of distinct
                # programs would otherwise grow it without bound).
                for key in [k for k, ref in probed_ok.items() if ref() is None]:
                    del probed_ok[key]
            for job in probes:
                try:
                    probed_ok[id(job.program)] = weakref.ref(job.program)
                except TypeError:  # pragma: no cover - unweakrefable program
                    pass
        return True

    # Windowed apply_async keeps ordering exact and memory bounded:
    # at most `max_pending` chunks are in flight, and a chunk that
    # cannot cross the pipe is simply computed here and slotted into the
    # same window position.
    max_pending = workers * 2
    with multiprocessing.Pool(processes=workers) as pool:
        window: deque = deque()

        def drain_one() -> Iterator[RunSummary]:
            pending = window.popleft()
            rows = pending.get() if hasattr(pending, "get") else pending
            yield from emit(rows)

        for chunk in _iter_chunks(jobs, chunk_size):
            if chunk_picklable(chunk):
                window.append(
                    pool.apply_async(
                        _run_chunk_stream,
                        (chunk, collect_errors),
                        {"disk_cache": disk_cache},
                    )
                )
            else:
                window.append(_run_chunk_stream(chunk, collect_errors))
            while len(window) >= max_pending:
                yield from drain_one()
        while window:
            yield from drain_one()


def _sweep_grid(
    policies: Sequence[str],
    queues: Sequence[int],
    capacities: Sequence[int],
    repeat: int,
):
    """The one canonical (policy, queues, capacity, label) iteration.

    Both :func:`sweep_jobs` and :func:`sweep_labels` derive from this
    grid, so their positional alignment cannot drift.
    """
    for pol in policies:
        for nq in queues:
            for cap in capacities:
                for rep in range(repeat):
                    suffix = f" #{rep + 1}" if repeat > 1 else ""
                    yield pol, nq, cap, f"{pol} q={nq} cap={cap}{suffix}"


def iter_sweep_jobs(
    program: ArrayProgram,
    policies: Sequence[str] = ("ordered",),
    queues: Sequence[int] = (1,),
    capacities: Sequence[int] = (0,),
    registers: dict[str, dict[str, float | None]] | None = None,
    repeat: int = 1,
) -> Iterator[SimJob]:
    """Lazily generate the (policy x queues x capacity) x repeat sweep.

    The generator form feeds :func:`simulate_stream` without ever
    holding the whole sweep in memory.
    """
    for pol, nq, cap, _label in _sweep_grid(policies, queues, capacities, repeat):
        yield SimJob(
            program,
            config=ArrayConfig(queues_per_link=nq, queue_capacity=cap),
            policy=pol,
            registers=registers,
        )


def iter_sweep_labels(
    policies: Sequence[str] = ("ordered",),
    queues: Sequence[int] = (1,),
    capacities: Sequence[int] = (0,),
    repeat: int = 1,
) -> Iterator[str]:
    """Lazy labels aligned with :func:`iter_sweep_jobs` order."""
    for _pol, _nq, _cap, label in _sweep_grid(policies, queues, capacities, repeat):
        yield label


def sweep_jobs(
    program: ArrayProgram,
    policies: Sequence[str] = ("ordered",),
    queues: Sequence[int] = (1,),
    capacities: Sequence[int] = (0,),
    registers: dict[str, dict[str, float | None]] | None = None,
    repeat: int = 1,
) -> list[SimJob]:
    """The cartesian sweep (policy x queues x capacity) x repeat as jobs."""
    return list(
        iter_sweep_jobs(
            program,
            policies=policies,
            queues=queues,
            capacities=capacities,
            registers=registers,
            repeat=repeat,
        )
    )


def sweep_labels(
    policies: Sequence[str] = ("ordered",),
    queues: Sequence[int] = (1,),
    capacities: Sequence[int] = (0,),
    repeat: int = 1,
) -> list[str]:
    """Human-readable labels aligned with :func:`sweep_jobs` order."""
    return list(
        iter_sweep_labels(
            policies=policies, queues=queues, capacities=capacities, repeat=repeat
        )
    )
