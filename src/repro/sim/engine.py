"""Discrete-event simulation kernel.

A minimal, deterministic event engine with a three-lane scheduler:

* a **fast lane** — a plain FIFO for events scheduled at the current
  time (``after(0, ...)`` pokes, the overwhelming majority of traffic in
  the systolic simulator), which bypasses the heap entirely;
* a **timing wheel** — calendar buckets for near-future events. Delays
  in the simulator are small integers (queue hand-offs and compute
  latencies, typically 1-8 cycles), so a ring indexed by ``time & mask``
  absorbs them with O(1) push/pop and no heap traffic. The horizon is
  sizable per engine: :class:`~repro.sim.runtime.Simulator` auto-sizes
  it from the program's maximum op latency plus the config's fixed
  latencies, so workloads with long compute kernels (``cycles`` > 8)
  still ride the wheel instead of overflowing to the heap;
* a **heap lane** — ``(time, sequence, callback)`` entries for
  timestamps beyond the wheel horizon only (overflow).

Determinism is preserved exactly: events at equal times fire in
scheduling order. Three invariants make the lanes mergeable without
comparing sequence numbers:

* a heap entry at time ``t`` can only have been pushed while
  ``now < t - horizon`` (nearer futures go to the wheel), so every heap
  entry due *now* precedes every wheel entry due now in scheduling
  order — drain the heap first;
* a wheel entry at ``t`` was pushed while ``t - horizon <= now < t``,
  so it precedes every FIFO entry at ``t`` (same-time scheduling goes to
  the FIFO) — drain the bucket second, the FIFO last;
* a bucket is fully drained before time advances past it, and the
  horizon is smaller than the ring, so two pending timestamps never
  share a bucket.

Within each lane same-time entries keep scheduling order: the heap by
sequence number, bucket and FIFO deques by construction.

Quiescence (all lanes empty) with unfinished agents is how run-time
deadlock manifests; the kernel itself never decides deadlock, it just
stops.
"""

from __future__ import annotations

import enum
import heapq
from collections import deque
from typing import Callable

Callback = Callable[[], None]

#: Default horizon: delays of 1..WHEEL_HORIZON cycles ride the timing
#: wheel; anything farther out overflows to the heap. The ring has (at
#: least) twice the horizon so a pending bucket can never collide with a
#: newly scheduled one.
WHEEL_HORIZON = 8

#: Adaptive horizons are clamped here: beyond this, ring memory stops
#: paying for itself and rare long delays can just take the heap.
MAX_WHEEL_HORIZON = 256


class StopReason(enum.Enum):
    """Why :meth:`Engine.run` returned."""

    QUIESCENT = "quiescent"
    MAX_EVENTS = "max-events"
    MAX_TIME = "max-time"


class Engine:
    """Three-lane event scheduler with integer timestamps.

    Args:
        fast_lane: route same-time events through the FIFO fast lane and
            near-future events through the timing wheel. ``False`` forces
            every event through the heap (the seed engine's behaviour) —
            kept for determinism cross-checks.
        horizon: delays of ``1..horizon`` ride the timing wheel; larger
            delays overflow to the heap. The ring is sized to the next
            power of two at least twice the horizon (clamped at
            :data:`MAX_WHEEL_HORIZON`), preserving the bucket-collision
            invariant for any horizon. Lane routing never changes event
            ordering, so any horizon produces byte-identical runs.
    """

    __slots__ = (
        "now",
        "events_processed",
        "_heap",
        "_fifo",
        "_wheel",
        "_wheel_count",
        "_wheel_occupied",
        "_seq",
        "_fast",
        "_horizon",
        "_slots",
        "_mask",
        "_ring_mask",
    )

    def __init__(
        self, fast_lane: bool = True, horizon: int = WHEEL_HORIZON
    ) -> None:
        if horizon < 1:
            raise ValueError(f"wheel horizon must be >= 1, got {horizon}")
        horizon = min(horizon, MAX_WHEEL_HORIZON)
        slots = 1
        while slots < 2 * horizon:
            slots <<= 1
        self.now: int = 0
        self.events_processed: int = 0
        self._heap: list[tuple[int, int, Callback]] = []
        self._fifo: deque[Callback] = deque()
        self._wheel: list[deque[Callback]] = [deque() for _ in range(slots)]
        self._wheel_count: int = 0
        self._wheel_occupied: int = 0  # bitmask of nonempty wheel slots
        self._seq: int = 0
        self._fast = fast_lane
        self._horizon = horizon
        self._slots = slots
        self._mask = slots - 1
        # Precomputed (1 << slots) - 1: with adaptive horizons the ring
        # can be hundreds of slots, and rebuilding this bigint on every
        # _next_wheel_time call is real work on the idle-advance path.
        self._ring_mask = (1 << slots) - 1

    @property
    def wheel_horizon(self) -> int:
        """Largest delay this engine's timing wheel absorbs."""
        return self._horizon

    def at(self, time: int, callback: Callback) -> None:
        """Schedule ``callback`` at absolute ``time`` (>= now)."""
        delay = time - self.now
        if delay < 0:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        if self._fast:
            if delay == 0:
                self._fifo.append(callback)
                return
            if delay <= self._horizon:
                slot = time & self._mask
                self._wheel[slot].append(callback)
                self._wheel_count += 1
                self._wheel_occupied |= 1 << slot
                return
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, callback))

    def after(self, delay: int, callback: Callback) -> None:
        """Schedule ``callback`` ``delay`` cycles from now."""
        if self._fast:
            if delay == 0:
                self._fifo.append(callback)
                return
            if 0 < delay <= self._horizon:
                slot = (self.now + delay) & self._mask
                self._wheel[slot].append(callback)
                self._wheel_count += 1
                self._wheel_occupied |= 1 << slot
                return
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, callback))

    @property
    def pending(self) -> int:
        """Number of scheduled events not yet fired."""
        return len(self._heap) + len(self._fifo) + self._wheel_count

    def _next_wheel_time(self) -> int | None:
        """Earliest nonempty wheel bucket within the horizon, if any.

        Pending wheel entries always lie in ``(now, now + horizon]``, so
        rotating the occupancy bitmask by ``now + 1`` turns "next
        nonempty slot" into "lowest set bit".
        """
        occupied = self._wheel_occupied
        if not occupied:
            return None
        slots = self._slots
        shift = (self.now + 1) & self._mask
        rotated = (
            (occupied >> shift) | (occupied << (slots - shift))
        ) & self._ring_mask
        return self.now + 1 + ((rotated & -rotated).bit_length() - 1)

    def run(
        self,
        max_events: int | None = None,
        max_time: int | None = None,
    ) -> StopReason:
        """Process events until quiescent or a limit is hit."""
        heap = self._heap
        fifo = self._fifo
        wheel = self._wheel
        pop = heapq.heappop
        popleft = fifo.popleft
        if (
            max_time is not None
            and self.now > max_time
            and (fifo or heap or self._wheel_count)
        ):
            # Only reachable when run() is re-entered with a tighter limit;
            # inside the loop `now` never advances past max_time.
            return StopReason.MAX_TIME
        events = self.events_processed
        limit = float("inf") if max_events is None else max_events
        while fifo or heap or self._wheel_count:
            # Heap entries due now precede wheel-bucket entries, which
            # precede FIFO entries, in scheduling order (see module
            # docstring); drain in that order. Processing cannot add to an
            # earlier lane at the current time: delay-0 goes to the FIFO
            # and positive delays land strictly in the future, so each
            # drain runs dry exactly once per timestamp.
            while heap and heap[0][0] == self.now:
                if events >= limit:
                    self.events_processed = events
                    return StopReason.MAX_EVENTS
                callback = pop(heap)[2]
                events += 1
                callback()
            slot = self.now & self._mask
            bucket = wheel[slot]
            if bucket:
                while bucket:
                    if events >= limit:
                        self.events_processed = events
                        return StopReason.MAX_EVENTS
                    callback = bucket.popleft()
                    self._wheel_count -= 1
                    events += 1
                    callback()
                # Fully drained (callbacks cannot refill the current
                # slot: the horizon is below the ring size).
                self._wheel_occupied &= ~(1 << slot)
            while fifo:
                if events >= limit:
                    self.events_processed = events
                    return StopReason.MAX_EVENTS
                callback = popleft()
                events += 1
                callback()
            # Advance to the next scheduled timestamp.
            time = heap[0][0] if heap else None
            wheel_time = self._next_wheel_time()
            if wheel_time is not None and (time is None or wheel_time < time):
                time = wheel_time
            if time is not None and time > self.now:
                if max_time is not None and time > max_time:
                    self.events_processed = events
                    return StopReason.MAX_TIME
                self.now = time
        self.events_processed = events
        return StopReason.QUIESCENT
