"""Discrete-event simulation kernel.

A minimal, deterministic event engine: a heap of (time, sequence,
callback) entries. Determinism comes from the monotone sequence number —
events at equal times fire in scheduling order, so runs are exactly
reproducible. Quiescence (an empty heap) with unfinished agents is how
run-time deadlock manifests; the kernel itself never decides deadlock, it
just stops.
"""

from __future__ import annotations

import enum
import heapq
from typing import Callable

Callback = Callable[[], None]


class StopReason(enum.Enum):
    """Why :meth:`Engine.run` returned."""

    QUIESCENT = "quiescent"
    MAX_EVENTS = "max-events"
    MAX_TIME = "max-time"


class Engine:
    """Event heap with integer timestamps."""

    def __init__(self) -> None:
        self.now: int = 0
        self.events_processed: int = 0
        self._heap: list[tuple[int, int, Callback]] = []
        self._seq: int = 0

    def at(self, time: int, callback: Callback) -> None:
        """Schedule ``callback`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, callback))

    def after(self, delay: int, callback: Callback) -> None:
        """Schedule ``callback`` ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.at(self.now + delay, callback)

    @property
    def pending(self) -> int:
        """Number of scheduled events not yet fired."""
        return len(self._heap)

    def run(
        self,
        max_events: int | None = None,
        max_time: int | None = None,
    ) -> StopReason:
        """Process events until quiescent or a limit is hit."""
        while self._heap:
            if max_events is not None and self.events_processed >= max_events:
                return StopReason.MAX_EVENTS
            time, _seq, callback = self._heap[0]
            if max_time is not None and time > max_time:
                return StopReason.MAX_TIME
            heapq.heappop(self._heap)
            self.now = time
            self.events_processed += 1
            callback()
        return StopReason.QUIESCENT
