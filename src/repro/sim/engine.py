"""Discrete-event simulation kernel.

A minimal, deterministic event engine with a two-lane scheduler:

* a **fast lane** — a plain FIFO for events scheduled at the current
  time (``after(0, ...)`` pokes, the overwhelming majority of traffic in
  the systolic simulator), which bypasses the heap entirely;
* a **heap lane** — ``(time, sequence, callback)`` entries for strictly
  future timestamps.

Determinism is preserved exactly: events at equal times fire in
scheduling order. The invariant making the two lanes mergeable without
comparing sequence numbers is that a heap entry at time ``t`` can only
have been pushed while ``now < t`` (same-time scheduling goes to the
FIFO), so every heap entry due *now* precedes every FIFO entry in
scheduling order; the heap orders its own same-time entries by sequence,
and the FIFO is order-preserving by construction.

Quiescence (both lanes empty) with unfinished agents is how run-time
deadlock manifests; the kernel itself never decides deadlock, it just
stops.
"""

from __future__ import annotations

import enum
import heapq
from collections import deque
from typing import Callable

Callback = Callable[[], None]


class StopReason(enum.Enum):
    """Why :meth:`Engine.run` returned."""

    QUIESCENT = "quiescent"
    MAX_EVENTS = "max-events"
    MAX_TIME = "max-time"


class Engine:
    """Two-lane event scheduler with integer timestamps.

    Args:
        fast_lane: route same-time events through the FIFO fast lane.
            ``False`` forces every event through the heap (the seed
            engine's behaviour) — kept for determinism cross-checks.
    """

    __slots__ = ("now", "events_processed", "_heap", "_fifo", "_seq", "_fast")

    def __init__(self, fast_lane: bool = True) -> None:
        self.now: int = 0
        self.events_processed: int = 0
        self._heap: list[tuple[int, int, Callback]] = []
        self._fifo: deque[Callback] = deque()
        self._seq: int = 0
        self._fast = fast_lane

    def at(self, time: int, callback: Callback) -> None:
        """Schedule ``callback`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        if time == self.now and self._fast:
            self._fifo.append(callback)
        else:
            self._seq += 1
            heapq.heappush(self._heap, (time, self._seq, callback))

    def after(self, delay: int, callback: Callback) -> None:
        """Schedule ``callback`` ``delay`` cycles from now."""
        if delay == 0 and self._fast:
            self._fifo.append(callback)
        elif delay < 0:
            raise ValueError(f"negative delay {delay}")
        else:
            self._seq += 1
            heapq.heappush(self._heap, (self.now + delay, self._seq, callback))

    @property
    def pending(self) -> int:
        """Number of scheduled events not yet fired."""
        return len(self._heap) + len(self._fifo)

    def run(
        self,
        max_events: int | None = None,
        max_time: int | None = None,
    ) -> StopReason:
        """Process events until quiescent or a limit is hit."""
        heap = self._heap
        fifo = self._fifo
        pop = heapq.heappop
        popleft = fifo.popleft
        if max_time is not None and self.now > max_time and (fifo or heap):
            # Only reachable when run() is re-entered with a tighter limit;
            # inside the loop `now` never advances past max_time.
            return StopReason.MAX_TIME
        events = self.events_processed
        limit = float("inf") if max_events is None else max_events
        while fifo or heap:
            # Heap entries due now precede every FIFO entry in scheduling
            # order (see module docstring); drain them first. FIFO
            # processing cannot create heap entries due now (same-time
            # scheduling goes to the FIFO), so each inner loop runs dry
            # exactly once per timestamp.
            while heap and heap[0][0] == self.now:
                if events >= limit:
                    self.events_processed = events
                    return StopReason.MAX_EVENTS
                callback = pop(heap)[2]
                events += 1
                callback()
            while fifo:
                if events >= limit:
                    self.events_processed = events
                    return StopReason.MAX_EVENTS
                callback = popleft()
                events += 1
                callback()
            if heap and heap[0][0] > self.now:
                time = heap[0][0]
                if max_time is not None and time > max_time:
                    self.events_processed = events
                    return StopReason.MAX_TIME
                self.now = time
        self.events_processed = events
        return StopReason.QUIESCENT
