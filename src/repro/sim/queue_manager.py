"""Run-time queue assignment: the manager and the three policies.

Section 7 of the paper describes *static* assignment (every competing
message gets its own queue before execution) and *dynamic* assignment
under two rules that make it compatible with a consistent labeling:

* **ordered assignment** — a message may be assigned a queue only after
  every competing message with a smaller label has been assigned one;
* **simultaneous assignment** — same-label messages get separate queues,
  effectively reserved as a group ("a cell can use some reservation scheme
  to reserve a queue to a message prior to the message's arrival").

The non-compatible **FCFS** policy grants free queues in arrival order; it
is the baseline that reproduces the queue-induced deadlocks of Figs. 7-9.

Per-link policy state lives directly on the :class:`LinkState` (the
``policy_data`` slot) rather than in ``Link``-keyed side tables, so the
assignment hot path performs no hashing.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from fractions import Fraction
from typing import TYPE_CHECKING, Callable, Sequence

from repro.arch.links import Link
from repro.arch.queue import HardwareQueue
from repro.errors import ConfigError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.labeling import Labeling
    from repro.sim.agents import MessageFlow

#: Per-link label groups, ascending by label, members sorted by name.
LabelGroups = Sequence[Sequence[str]]


@dataclass(frozen=True, slots=True)
class Request:
    """A message (flow) asking for a queue on one hop of its route."""

    flow: "MessageFlow"
    hop: int

    @property
    def message(self) -> str:
        return self.flow.message.name


@dataclass(frozen=True, slots=True)
class AssignmentEvent:
    """One grant or release, for traces and the Fig. 7-9 timelines."""

    time: int
    kind: str  # "grant" | "release"
    link: Link
    queue_index: int
    message: str

    def __str__(self) -> str:
        return f"t={self.time} {self.kind} {self.link}#{self.queue_index} <- {self.message}"


class LinkState:
    """Mutable per-link assignment state shared with the policy."""

    __slots__ = ("link", "queues", "free", "granted_ever", "policy_data")

    def __init__(self, link: Link, queues: list[HardwareQueue]) -> None:
        self.link = link
        self.queues = queues
        self.free: list[HardwareQueue] = list(queues)
        self.granted_ever: set[str] = set()
        self.policy_data: object = None

    def take_free(self) -> HardwareQueue:
        if not self.free:
            raise SimulationError(f"no free queue on {self.link}")
        return self.free.pop(0)


class AssignmentPolicy(ABC):
    """Strategy deciding when a requested queue is granted."""

    name = "abstract"

    @abstractmethod
    def setup_link(
        self,
        state: LinkState,
        competing: Sequence[str],
        labeling: "Labeling | None",
        groups: LabelGroups | None = None,
    ) -> None:
        """Prepare per-link data; called once per used link before t=0.

        ``groups`` optionally supplies precomputed label groups (ascending
        label, names sorted) so cached analyses skip the per-link grouping
        sort; policies that ignore labels ignore it.
        """

    @abstractmethod
    def on_request(self, manager: "QueueManager", state: LinkState, req: Request) -> None:
        """A flow requests a queue on ``state.link``."""

    @abstractmethod
    def on_release(self, manager: "QueueManager", state: LinkState) -> None:
        """A queue on ``state.link`` was just freed."""


class FCFSPolicy(AssignmentPolicy):
    """First-come-first-served: grant free queues in request order.

    Not compatible with any labeling — this is the naive baseline whose
    behaviour the lower halves of Figs. 7-9 depict.
    """

    name = "fcfs"

    def setup_link(self, state, competing, labeling, groups=None) -> None:
        state.policy_data = deque()

    def on_request(self, manager, state, req) -> None:
        state.policy_data.append(req)
        self._evaluate(manager, state)

    def on_release(self, manager, state) -> None:
        self._evaluate(manager, state)

    def _evaluate(self, manager, state) -> None:
        pending = state.policy_data
        while pending and state.free:
            manager.grant(state, pending.popleft())


class _OrderedLinkData:
    """Per-link state of the ordered policy (kept on ``LinkState``)."""

    __slots__ = ("groups", "gidx", "granted", "pending")

    def __init__(self, groups: LabelGroups) -> None:
        self.groups = groups
        self.gidx = 0
        self.granted: set[str] = set()
        self.pending: dict[str, Request] = {}


class OrderedPolicy(AssignmentPolicy):
    """The paper's compatible dynamic scheme (ordered + simultaneous).

    Per link, competing messages are grouped by label. Only members of the
    lowest not-fully-granted group may receive queues; free queues are in
    effect reserved for that group until each member has been assigned,
    which realises both rules at once. ``strict`` enforces Theorem 1's
    assumption (ii) at setup (each group must fit in the link's queues);
    with ``strict=False`` an infeasible group simply never completes and
    the run deadlocks — useful for demonstrating why the assumption is
    needed.
    """

    name = "ordered"

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict

    def setup_link(self, state, competing, labeling, groups=None) -> None:
        if groups is None:
            if labeling is None:
                raise ConfigError("OrderedPolicy requires a labeling")
            groups = label_groups(competing, labeling)
        if self.strict:
            for group in groups:
                if len(group) > len(state.queues):
                    raise ConfigError(
                        f"link {state.link}: same-label group {list(group)} needs "
                        f"{len(group)} queues, only {len(state.queues)} exist "
                        f"(Theorem 1 assumption (ii))"
                    )
        state.policy_data = _OrderedLinkData(groups)

    def on_request(self, manager, state, req) -> None:
        state.policy_data.pending[req.message] = req
        self._evaluate(manager, state)

    def on_release(self, manager, state) -> None:
        self._evaluate(manager, state)

    def _evaluate(self, manager, state) -> None:
        data: _OrderedLinkData = state.policy_data
        groups = data.groups
        granted = data.granted
        pending = data.pending
        while data.gidx < len(groups):
            group = groups[data.gidx]
            fully_granted = True
            for name in group:
                if name not in granted:
                    if name in pending and state.free:
                        manager.grant(state, pending.pop(name))
                        granted.add(name)
                    else:
                        fully_granted = False
            if fully_granted:
                data.gidx += 1
                continue
            break  # remaining free queues stay reserved for this group


class StaticPolicy(AssignmentPolicy):
    """Section 7's static scheme: a dedicated queue per competing message.

    Assignment is fixed before execution; every request is granted
    immediately from the precomputed map. Requires enough queues on every
    link (checked at setup) — and is then automatically compatible with
    any consistent labeling, so Theorem 1 applies with no run-time rules.
    """

    name = "static"

    def setup_link(self, state, competing, labeling, groups=None) -> None:
        if len(competing) > len(state.queues):
            raise ConfigError(
                f"link {state.link}: static assignment needs "
                f"{len(competing)} queues for {list(competing)}, only "
                f"{len(state.queues)} exist"
            )
        state.policy_data = {
            name: state.queues[i] for i, name in enumerate(competing)
        }

    def on_request(self, manager, state, req) -> None:
        queue = state.policy_data[req.message]
        manager.grant(state, req, queue)

    def on_release(self, manager, state) -> None:
        pass  # reservations never move


def label_groups(
    competing: Sequence[str], labeling: "Labeling"
) -> tuple[tuple[str, ...], ...]:
    """Group competing messages by label, ascending; names sorted."""
    by_label: dict[Fraction, list[str]] = {}
    for name in competing:
        by_label.setdefault(labeling.label(name), []).append(name)
    return tuple(
        tuple(sorted(names)) for _lab, names in sorted(by_label.items())
    )


class QueueManager:
    """Owns link states, dispatches requests to the policy, records a trace."""

    __slots__ = ("policy", "clock", "links", "trace")

    def __init__(
        self,
        policy: AssignmentPolicy,
        clock: Callable[[], int],
    ) -> None:
        self.policy = policy
        self.clock = clock
        self.links: dict[Link, LinkState] = {}
        self.trace: list[AssignmentEvent] = []

    def add_link(
        self,
        link: Link,
        queues: list[HardwareQueue],
        competing: Sequence[str],
        labeling: "Labeling | None",
        groups: LabelGroups | None = None,
    ) -> None:
        """Register a link and let the policy prepare it."""
        state = LinkState(link, queues)
        self.links[link] = state
        self.policy.setup_link(state, competing, labeling, groups)

    def request(self, req: Request) -> None:
        """A flow asks for a queue on one hop; the policy decides."""
        link = req.flow.route[req.hop]
        self.policy.on_request(self, self.links[link], req)

    def grant(
        self,
        state: LinkState,
        req: Request,
        queue: HardwareQueue | None = None,
    ) -> None:
        """Bind a queue to the request's message and notify the flow."""
        if queue is None:
            queue = state.take_free()
        elif queue in state.free:
            state.free.remove(queue)
        msg = req.flow.message
        queue.assign(msg.name, msg.length)
        state.granted_ever.add(msg.name)
        self.trace.append(
            AssignmentEvent(self.clock(), "grant", state.link, queue.index, msg.name)
        )
        req.flow.granted(req.hop, queue)

    def release(self, queue: HardwareQueue) -> None:
        """Return a completed queue to its link's free pool."""
        state = self.links[queue.link]
        message = queue.assigned or "?"
        queue.release()
        state.free.append(queue)
        self.trace.append(
            AssignmentEvent(self.clock(), "release", state.link, queue.index, message)
        )
        self.policy.on_release(self, state)


def make_policy(name: str, strict: bool = True) -> AssignmentPolicy:
    """Policy factory from a short name: fcfs | ordered | static."""
    if name == "fcfs":
        return FCFSPolicy()
    if name == "ordered":
        return OrderedPolicy(strict=strict)
    if name == "static":
        return StaticPolicy()
    raise ConfigError(f"unknown assignment policy {name!r}")
