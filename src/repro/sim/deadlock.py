"""Run-time deadlock diagnosis.

The engine quiescing with unfinished agents *is* the deadlock; this module
explains it. It builds a wait-for graph over agents — who is blocked on a
word, on buffer space, or on a queue grant, and which agent could unblock
them — and extracts a cycle when one exists (circular waits, as in
Figs. 7-9) or reports the blocking chain otherwise.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.agents import CellAgent, ForwarderAgent, MessageFlow, _Agent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.runtime import Simulator


def _pusher(sim: "Simulator", flow: MessageFlow, hop: int) -> _Agent | None:
    """The agent that pushes words into ``flow``'s queue on ``hop``."""
    if hop == 0:
        return sim.cell_agents.get(flow.message.sender)
    return sim.forwarders.get((flow.message.name, hop - 1))


def _consumer(sim: "Simulator", flow: MessageFlow, hop: int) -> _Agent | None:
    """The agent that pops words out of ``flow``'s queue on ``hop``."""
    if hop == flow.hops - 1:
        return sim.cell_agents.get(flow.message.receiver)
    return sim.forwarders.get((flow.message.name, hop))


def _queue_hop_map(sim: "Simulator") -> dict[str, dict[int, int]]:
    """Per-flow ``id(queue) -> hop`` lookup, built once per diagnosis.

    Replaces a linear scan of ``flow.queues`` per blocked-agent edge —
    quadratic on arrays where many flows share long routes — with one
    prebuilt map. Keyed by queue identity (the scan it replaces used
    ``is``), per flow because a physical queue can serve different
    flows over a run.
    """
    return {
        name: {id(q): hop for hop, q in enumerate(flow.queues)}
        for name, flow in sim.flows.items()
    }


def build_wait_graph(sim: "Simulator") -> dict[str, set[str]]:
    """Edges ``waiter -> could-unblock-it`` over unfinished agents."""
    graph: dict[str, set[str]] = {}
    queue_hops = _queue_hop_map(sim)
    for agent in sim.all_agents():
        if agent.done:
            continue
        edges: set[str] = set()
        queue = agent.wait_queue
        if queue is not None and queue.assigned is not None:
            flow = sim.flows[queue.assigned]
            hop = queue_hops[queue.assigned].get(id(queue))
            if hop is not None:
                other = (
                    _consumer(sim, flow, hop)
                    if agent.wait_space
                    else _pusher(sim, flow, hop)
                )
                if other is not None and not other.done:
                    edges.add(other.name)
        if agent.wait_grant is not None:
            flow, hop = agent.wait_grant
            link = flow.route[hop]
            state = sim.manager.links.get(link)
            if state is not None:
                for q in state.queues:
                    if q.assigned is None:
                        continue
                    holder_flow = sim.flows[q.assigned]
                    holder_hop = queue_hops[q.assigned].get(id(q))
                    if holder_hop is None:
                        continue
                    other = _consumer(sim, holder_flow, holder_hop)
                    if other is not None and not other.done:
                        edges.add(other.name)
            # Waiting for words that were never even requested (e.g. a
            # receiver whose sender is itself stuck): the party that would
            # push on this hop is what unblocks us.
            pusher = _pusher(sim, flow, hop)
            if pusher is not None and not pusher.done and pusher is not agent:
                edges.add(pusher.name)
        graph[agent.name] = edges
    return graph


def find_cycle(graph: dict[str, set[str]]) -> list[str] | None:
    """A cycle in the wait-for graph, or None.

    Returns the node sequence of the cycle (first node repeated at the
    end) when one exists.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    parent: dict[str, str] = {}
    for start in graph:
        if color[start] != WHITE:
            continue
        # Each frame carries an index cursor into its sorted neighbor
        # list: advancing is O(1) where the former ``nbrs.pop(0)`` was
        # O(n) per step — quadratic per node on dense wait graphs.
        # Neighbors stay sorted so the returned cycle is deterministic
        # whatever order the graph's sets were built in.
        stack: list[list] = [[start, sorted(graph[start]), 0]]
        color[start] = GRAY
        while stack:
            frame = stack[-1]
            node, nbrs, cursor = frame
            advanced = False
            while cursor < len(nbrs):
                nxt = nbrs[cursor]
                cursor += 1
                if nxt not in graph:
                    continue
                if color[nxt] == GRAY:
                    cycle = [nxt]
                    cur = node
                    while cur != nxt:
                        cycle.append(cur)
                        cur = parent[cur]
                    cycle.append(nxt)
                    cycle.reverse()
                    return cycle
                if color[nxt] == WHITE:
                    color[nxt] = GRAY
                    parent[nxt] = node
                    frame[2] = cursor
                    stack.append([nxt, sorted(graph[nxt]), 0])
                    advanced = True
                    break
            if not advanced:
                frame[2] = cursor
                color[node] = BLACK
                stack.pop()
    return None


def diagnose(sim: "Simulator") -> tuple[list[str], list[str] | None]:
    """Blocked-agent descriptions plus a wait-for cycle if present."""
    blocked = [
        agent.wait_reason() or f"{agent.name}: blocked (no detail)"
        for agent in sim.all_agents()
        if not agent.done
    ]
    cycle = find_cycle(build_wait_graph(sim))
    return blocked, cycle
