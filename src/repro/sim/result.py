"""Simulation outcomes and statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.queue import QueueStats
from repro.sim.queue_manager import AssignmentEvent


@dataclass
class SimulationResult:
    """What happened when a program ran on a configured array.

    ``completed`` and ``deadlocked`` are mutually exclusive unless the run
    hit an event/time limit (then both are False and ``timed_out`` is
    True). A queue-induced deadlock shows up as ``deadlocked=True`` with
    the blocked agents' descriptions and, when one exists, a wait-for
    cycle.
    """

    completed: bool
    deadlocked: bool
    timed_out: bool
    time: int
    events: int
    blocked: list[str] = field(default_factory=list)
    wait_cycle: list[str] | None = None
    registers: dict[str, dict[str, float | None]] = field(default_factory=dict)
    received: dict[str, list[float | None]] = field(default_factory=dict)
    queue_stats: dict[str, QueueStats] = field(default_factory=dict)
    assignment_trace: list[AssignmentEvent] = field(default_factory=list)
    memory_accesses: dict[str, int] = field(default_factory=dict)
    busy_cycles: dict[str, int] = field(default_factory=dict)
    words_transferred: int = 0

    @property
    def total_memory_accesses(self) -> int:
        """Local-memory accesses across all cells (0 under systolic comm.)."""
        return sum(self.memory_accesses.values())

    @property
    def makespan(self) -> int:
        """Completion (or stall) time in cycles."""
        return self.time

    def utilization(self, cell: str) -> float:
        """Fraction of the makespan ``cell`` spent busy."""
        if self.time == 0:
            return 0.0
        return self.busy_cycles.get(cell, 0) / self.time

    def assert_completed(self) -> "SimulationResult":
        """Raise ``AssertionError`` with diagnostics unless the run finished."""
        if not self.completed:
            detail = "; ".join(self.blocked) or "no blocked-agent details"
            state = "deadlocked" if self.deadlocked else "timed out"
            raise AssertionError(f"simulation {state} at t={self.time}: {detail}")
        return self

    def summary(self) -> str:
        """One-line human summary."""
        if self.completed:
            return (
                f"completed t={self.time} events={self.events} "
                f"words={self.words_transferred} mem={self.total_memory_accesses}"
            )
        state = "DEADLOCK" if self.deadlocked else "TIMEOUT"
        return f"{state} t={self.time} blocked={len(self.blocked)}"
