"""Systolic vs memory-to-memory comparison (Fig. 1, Section 1).

Under memory-to-memory communication a word flowing through a cell costs
at least four local-memory accesses (stage in, program read, program
write, stage out); systolic communication costs none. This module runs
the same program under both models and reports the contrast the paper
motivates with.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import ArrayConfig, CommModel
from repro.core.program import ArrayProgram
from repro.sim.result import SimulationResult
from repro.sim.runtime import Simulator


@dataclass(frozen=True)
class ModelComparison:
    """Side-by-side outcome of the two communication models."""

    systolic: SimulationResult
    memory: SimulationResult
    memory_access_cycles: int

    @property
    def speedup(self) -> float:
        """Makespan ratio memory-to-memory / systolic (> 1 favours systolic)."""
        if self.systolic.time == 0:
            return float("inf")
        return self.memory.time / self.systolic.time

    @property
    def systolic_accesses(self) -> int:
        """Total local-memory accesses under the systolic model (zero)."""
        return self.systolic.total_memory_accesses

    @property
    def memory_accesses(self) -> int:
        """Total local-memory accesses under the memory-to-memory model."""
        return self.memory.total_memory_accesses

    def accesses_per_word(self, result: SimulationResult) -> float:
        """Average local-memory accesses per delivered word."""
        words = result.words_transferred
        if words == 0:
            return 0.0
        return result.total_memory_accesses / words

    def row(self) -> dict[str, float]:
        """A flat record for tabular reporting."""
        return {
            "mem_cost": self.memory_access_cycles,
            "systolic_cycles": self.systolic.time,
            "memory_cycles": self.memory.time,
            "speedup": round(self.speedup, 3),
            "systolic_accesses": self.systolic_accesses,
            "memory_accesses": self.memory_accesses,
            "mem_accesses_per_word": round(self.accesses_per_word(self.memory), 3),
        }


def compare_models(
    program: ArrayProgram,
    base_config: ArrayConfig | None = None,
    memory_access_cycles: int = 1,
    policy: str = "ordered",
    registers: dict[str, dict[str, float | None]] | None = None,
) -> ModelComparison:
    """Run ``program`` under both communication models.

    The same topology, queue provisioning and assignment policy are used;
    only the per-transfer cost model changes, isolating exactly the
    memory-staging overhead the paper's Section 1 discusses.
    """
    base = base_config or ArrayConfig()
    systolic_cfg = base.with_(
        comm_model=CommModel.SYSTOLIC, memory_access_cycles=memory_access_cycles
    )
    memory_cfg = base.with_(
        comm_model=CommModel.MEMORY_TO_MEMORY,
        memory_access_cycles=memory_access_cycles,
    )
    systolic = Simulator(
        program, config=systolic_cfg, policy=policy, registers=registers
    ).run()
    memory = Simulator(
        program, config=memory_cfg, policy=policy, registers=registers
    ).run()
    return ModelComparison(
        systolic=systolic, memory=memory, memory_access_cycles=memory_access_cycles
    )
