"""Discrete-event simulation of programmable systolic arrays.

Ensemble execution (batched and streaming sweeps) lives in the
:mod:`repro.sweep` package; the names below are re-exported through the
:mod:`repro.sim.batch` compatibility shim.
"""

from repro.sim.batch import (
    BatchError,
    CompletedCount,
    DeadlockRateByConfig,
    MakespanHistogram,
    PerConfigMakespan,
    QuantileReducer,
    RunSummary,
    SimJob,
    StreamReducer,
    iter_sweep_jobs,
    iter_sweep_labels,
    simulate_many,
    simulate_stream,
    sweep_jobs,
    sweep_labels,
)
from repro.sim.engine import Engine, StopReason
from repro.sim.memory_model import ModelComparison, compare_models
from repro.sim.queue_manager import (
    AssignmentEvent,
    AssignmentPolicy,
    FCFSPolicy,
    OrderedPolicy,
    QueueManager,
    StaticPolicy,
    make_policy,
)
from repro.sim.result import SimulationResult
from repro.sim.runtime import Simulator, simulate
from repro.sim.words import Word

__all__ = [
    "AssignmentEvent",
    "BatchError",
    "CompletedCount",
    "DeadlockRateByConfig",
    "MakespanHistogram",
    "PerConfigMakespan",
    "QuantileReducer",
    "RunSummary",
    "SimJob",
    "StreamReducer",
    "iter_sweep_jobs",
    "iter_sweep_labels",
    "simulate_many",
    "simulate_stream",
    "sweep_jobs",
    "sweep_labels",
    "AssignmentPolicy",
    "Engine",
    "FCFSPolicy",
    "ModelComparison",
    "OrderedPolicy",
    "QueueManager",
    "SimulationResult",
    "Simulator",
    "StaticPolicy",
    "StopReason",
    "Word",
    "compare_models",
    "make_policy",
    "simulate",
]
