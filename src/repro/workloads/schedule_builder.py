"""Section 3.3 as a tool: derive cell programs from a transfer schedule.

The paper's strategy for writing deadlock-free programs is to "write the
cell programs as if only one word in one message would be transferred in
a given step". Given such a global schedule — a sequence of message
names, one entry per word transfer — this module emits the per-cell
programs that realise it. Programs produced this way are deadlock-free
by construction: executing the crossing-off procedure in schedule order
always finds the next pair at the cell fronts.

This is both a user-facing compiler aid (describe *when* words move,
get safe programs) and the mechanism behind the random generator.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.core.message import Message
from repro.core.ops import Op, R, W
from repro.core.program import ArrayProgram
from repro.errors import ProgramError


def program_from_schedule(
    cells: Sequence[str],
    messages: Iterable[Message],
    schedule: Sequence[str],
    name: str = "scheduled",
) -> ArrayProgram:
    """Build the array program realising a one-word-per-step schedule.

    Args:
        cells: the array's cells, in physical order.
        messages: declared messages; each must appear in ``schedule``
            exactly ``length`` times.
        schedule: message names, one per word transfer, in the order the
            transfers should become executable.
        name: program name.

    Raises:
        ProgramError: if the schedule's word counts disagree with the
            declared lengths or name an undeclared message.
    """
    declared = {msg.name: msg for msg in messages}
    counts = Counter(schedule)
    unknown = set(counts) - set(declared)
    if unknown:
        raise ProgramError(f"schedule names undeclared messages: {sorted(unknown)}")
    for msg in declared.values():
        if counts.get(msg.name, 0) != msg.length:
            raise ProgramError(
                f"message {msg.name!r}: schedule has {counts.get(msg.name, 0)} "
                f"transfers, declaration says {msg.length}"
            )
    ops: dict[str, list[Op]] = {cell: [] for cell in cells}
    for entry in schedule:
        msg = declared[entry]
        ops[msg.sender].append(W(entry))
        ops[msg.receiver].append(R(entry))
    return ArrayProgram(cells, declared.values(), ops, name=name)


def round_robin_schedule(messages: Iterable[Message]) -> list[str]:
    """A fair schedule: cycle through messages, one word each, until done.

    A convenient default that interleaves every stream — note that the
    interleaving makes co-resident messages *related* (Section 6), so the
    resulting programs ask for simultaneous queues on shared links.
    """
    remaining = {msg.name: msg.length for msg in messages}
    order = sorted(remaining)
    schedule: list[str] = []
    while any(remaining.values()):
        for name in order:
            if remaining[name] > 0:
                schedule.append(name)
                remaining[name] -= 1
    return schedule


def sequential_schedule(messages: Iterable[Message]) -> list[str]:
    """Transfer each message completely before the next (by name order).

    The opposite extreme: no interleaving, so no related groups — single
    queues per link suffice under the ordered policy — at the price of no
    overlap between streams.
    """
    schedule: list[str] = []
    for msg in sorted(messages, key=lambda m: m.name):
        schedule.extend([msg.name] * msg.length)
    return schedule
