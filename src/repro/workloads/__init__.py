"""Synthetic workloads: random deadlock-free programs and mutations."""

from repro.workloads.random_programs import (
    WorkloadSpec,
    ensemble_programs,
    hoist_writes,
    inject_read_cycle,
    large_spec_family,
    random_program,
    spec_family,
)
from repro.workloads.schedule_builder import (
    program_from_schedule,
    round_robin_schedule,
    sequential_schedule,
)

__all__ = [
    "WorkloadSpec",
    "ensemble_programs",
    "hoist_writes",
    "inject_read_cycle",
    "large_spec_family",
    "program_from_schedule",
    "random_program",
    "round_robin_schedule",
    "sequential_schedule",
    "spec_family",
]
