"""Random program generation for property tests and ensemble benches.

Deadlock-free programs are generated *by construction*: we sample a global
word-transfer schedule and append each word's ``W`` to the sender and
``R`` to the receiver as the schedule is drawn. Executing the crossing-off
procedure in schedule order then always finds the next pair at the cell
fronts, so the program is deadlock-free by induction (and the procedure's
confluence makes any other crossing order equivalent).

Two mutations produce the other classes the paper discusses:

* :func:`hoist_writes` moves writes earlier past other writes — the
  program may stop being deadlock-free under the strict procedure but
  remains deadlock-free under lookahead with sufficient buffering
  (Section 8's class);
* :func:`inject_read_cycle` splices the Fig. 5 / P3 circular-wait pattern
  into a program, making it deadlocked beyond repair (rule R1 territory).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.message import Message
from repro.core.ops import Op, OpKind, R, W
from repro.core.program import ArrayProgram
from repro.errors import ProgramError


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of the random program family.

    Attributes:
        cells: number of cells in the linear array.
        messages: number of messages to declare.
        max_length: maximum words per message.
        max_span: maximum |sender - receiver| distance (1 = neighbours
            only; larger spans exercise multi-hop forwarding).
        burst: maximum consecutive words of one message scheduled together
            (bursts create interleavings, hence related messages).
        seed: RNG seed (generation is fully deterministic given the spec).
    """

    cells: int = 6
    messages: int = 8
    max_length: int = 5
    max_span: int = 3
    burst: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.cells < 2:
            raise ValueError("need at least two cells")
        if self.messages < 1:
            raise ValueError("need at least one message")
        if self.max_length < 1 or self.burst < 1 or self.max_span < 1:
            raise ValueError("max_length, burst and max_span must be >= 1")


def _cell_names(n: int) -> tuple[str, ...]:
    return tuple(f"C{i + 1}" for i in range(n))


def random_program(spec: WorkloadSpec) -> ArrayProgram:
    """A random deadlock-free program over a linear array."""
    rng = random.Random(spec.seed)
    cells = _cell_names(spec.cells)
    messages: list[Message] = []
    for idx in range(spec.messages):
        src = rng.randrange(spec.cells)
        span = rng.randint(1, spec.max_span)
        if rng.random() < 0.5:
            dst = max(0, src - span)
        else:
            dst = min(spec.cells - 1, src + span)
        if dst == src:
            dst = src + 1 if src + 1 < spec.cells else src - 1
        length = rng.randint(1, spec.max_length)
        messages.append(Message(f"M{idx}", cells[src], cells[dst], length))

    ops: dict[str, list[Op]] = {cell: [] for cell in cells}
    remaining = {msg.name: msg.length for msg in messages}
    by_name = {msg.name: msg for msg in messages}
    live = [msg.name for msg in messages]
    while live:
        name = rng.choice(live)
        msg = by_name[name]
        burst = min(rng.randint(1, spec.burst), remaining[name])
        for _ in range(burst):
            ops[msg.sender].append(W(name))
            ops[msg.receiver].append(R(name))
        remaining[name] -= burst
        if remaining[name] == 0:
            live.remove(name)

    return ArrayProgram(
        cells, messages, ops, name=f"random-{spec.seed}"
    )


def hoist_writes(
    program: ArrayProgram, swaps: int, seed: int = 0
) -> ArrayProgram:
    """Move random writes one slot earlier past an adjacent write.

    Each swap exchanges two adjacent *write* operations (to different
    messages) in some cell. The result may require lookahead to classify
    as deadlock-free; the number of applied swaps bounds the extra
    buffering needed (each swap displaces one write past one other).
    Returns a new program; the input is untouched.
    """
    rng = random.Random(seed)
    new_ops = {
        cell: list(program.cell_programs[cell].ops) for cell in program.cells
    }
    applied = 0
    attempts = 0
    while applied < swaps and attempts < swaps * 20:
        attempts += 1
        cell = rng.choice(program.cells)
        seq = new_ops[cell]
        if len(seq) < 2:
            continue
        i = rng.randrange(len(seq) - 1)
        a, b = seq[i], seq[i + 1]
        if (
            a.kind is OpKind.WRITE
            and b.kind is OpKind.WRITE
            and a.message != b.message
        ):
            seq[i], seq[i + 1] = b, a
            applied += 1
    return ArrayProgram(
        program.cells,
        program.messages.values(),
        new_ops,
        name=f"{program.name}-hoisted",
    )


def inject_read_cycle(program: ArrayProgram, seed: int = 0) -> ArrayProgram:
    """Append a P3-style circular wait between two adjacent cells.

    Two fresh one-word messages are added, each cell reading the other's
    message before writing its own — the dependency no buffering or
    lookahead can break (Section 8.1, rule R1). The result is always a
    deadlocked program.
    """
    rng = random.Random(seed)
    idx = rng.randrange(len(program.cells) - 1)
    c1, c2 = program.cells[idx], program.cells[idx + 1]
    fwd = Message("DLK_F", c1, c2, 1)
    bwd = Message("DLK_B", c2, c1, 1)
    if "DLK_F" in program.messages:
        raise ProgramError("program already carries an injected cycle")
    new_ops = {
        cell: list(program.cell_programs[cell].ops) for cell in program.cells
    }
    new_ops[c1] += [R("DLK_B"), W("DLK_F")]
    new_ops[c2] += [R("DLK_F"), W("DLK_B")]
    return ArrayProgram(
        program.cells,
        list(program.messages.values()) + [fwd, bwd],
        new_ops,
        name=f"{program.name}-deadlocked",
    )


def spec_family(
    count: int,
    cells: int = 6,
    messages: int = 8,
    max_length: int = 5,
    max_span: int = 3,
    burst: int = 3,
    base_seed: int = 0,
) -> list[WorkloadSpec]:
    """``count`` specs differing only in seed — an ensemble definition."""
    return [
        WorkloadSpec(
            cells=cells,
            messages=messages,
            max_length=max_length,
            max_span=max_span,
            burst=burst,
            seed=base_seed + i,
        )
        for i in range(count)
    ]


def large_spec_family(
    sizes: tuple[int, ...] = (1000, 4000, 10000),
    messages_per_cell: float = 3.0,
    max_length: int = 4,
    max_span: int = 3,
    burst: int = 2,
    base_seed: int = 7,
) -> list[WorkloadSpec]:
    """The 1k-10k-cell analysis workload family, one spec per size.

    These are the programs the interned crossing engine targets: wide
    linear arrays with a few messages per cell, where per-step work must
    stay O(incident messages) for the analysis to finish in seconds.
    Used by ``benchmarks/bench_crossing_large.py`` and reproducible from
    the spec alone.
    """
    return [
        WorkloadSpec(
            cells=cells,
            messages=max(1, int(cells * messages_per_cell)),
            max_length=max_length,
            max_span=max_span,
            burst=burst,
            seed=base_seed + index,
        )
        for index, cells in enumerate(sizes)
    ]


def ensemble_programs(
    count: int,
    cells: int = 6,
    messages: int = 8,
    max_length: int = 5,
    max_span: int = 3,
    burst: int = 3,
    base_seed: int = 0,
) -> list[ArrayProgram]:
    """``count`` random deadlock-free programs, one per seed.

    The materialised form of :func:`spec_family` — the input shape the
    batched runner (:func:`repro.sim.batch.simulate_many`) consumes
    directly for Theorem-1 ensembles.
    """
    return [
        random_program(spec)
        for spec in spec_family(
            count,
            cells=cells,
            messages=messages,
            max_length=max_length,
            max_span=max_span,
            burst=burst,
            base_seed=base_seed,
        )
    ]
