"""Array topologies.

The paper presents everything on 1-dimensional arrays but notes the results
apply to any dimensionality and interconnection (Section 2.1). We provide
linear arrays (the Warp shape), rings, 2-D meshes, and 2-D tori. A topology
knows its cells and adjacency; routing lives in :mod:`repro.arch.routing`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable

from repro.arch.links import Link
from repro.errors import TopologyError


class Topology(ABC):
    """Abstract interconnection topology over named cells."""

    @property
    @abstractmethod
    def cells(self) -> tuple[str, ...]:
        """All cell names, in a canonical order."""

    @abstractmethod
    def neighbors(self, cell: str) -> tuple[str, ...]:
        """Cells adjacent to ``cell``."""

    def links(self) -> list[Link]:
        """All directed links (both directions of every interval)."""
        out: list[Link] = []
        for cell in self.cells:
            for nbr in self.neighbors(cell):
                out.append(Link(cell, nbr))
        return out

    def intervals(self) -> list[frozenset[str]]:
        """All undirected intervals between adjacent cells."""
        seen: set[frozenset[str]] = set()
        ordered: list[frozenset[str]] = []
        for link in self.links():
            if link.interval not in seen:
                seen.add(link.interval)
                ordered.append(link.interval)
        return ordered

    def require_cell(self, cell: str) -> None:
        """Raise :class:`TopologyError` unless ``cell`` exists."""
        if cell not in self._cell_set():
            raise TopologyError(f"unknown cell {cell!r}")

    def _cell_set(self) -> frozenset[str]:
        cached = getattr(self, "_cells_cache", None)
        if cached is None:
            cached = frozenset(self.cells)
            self._cells_cache = cached
        return cached

    def adjacent(self, a: str, b: str) -> bool:
        """True if ``a`` and ``b`` share an interval."""
        return b in self.neighbors(a)


class LinearArray(Topology):
    """A 1-D array of cells, optionally fronted by a host.

    With ``with_host=True`` the first cell is named ``host_name`` and the
    rest ``C1..Cn`` — matching the paper's figures, where the host is
    treated as a cell attached at the left end.
    """

    def __init__(
        self,
        n_cells: int,
        with_host: bool = False,
        host_name: str = "HOST",
        prefix: str = "C",
    ) -> None:
        if n_cells < 1:
            raise TopologyError("linear array needs at least one cell")
        names = [f"{prefix}{i + 1}" for i in range(n_cells)]
        if with_host:
            names = [host_name] + names
        self._cells = tuple(names)
        self._index = {name: i for i, name in enumerate(self._cells)}

    @property
    def cells(self) -> tuple[str, ...]:
        return self._cells

    def index_of(self, cell: str) -> int:
        """Position of ``cell`` along the array (0-based)."""
        try:
            return self._index[cell]
        except KeyError:
            raise TopologyError(f"unknown cell {cell!r}") from None

    def neighbors(self, cell: str) -> tuple[str, ...]:
        i = self.index_of(cell)
        out = []
        if i > 0:
            out.append(self._cells[i - 1])
        if i < len(self._cells) - 1:
            out.append(self._cells[i + 1])
        return tuple(out)


class RingArray(Topology):
    """A 1-D ring: like a linear array but the ends are adjacent."""

    def __init__(self, n_cells: int, prefix: str = "C") -> None:
        if n_cells < 3:
            raise TopologyError("ring needs at least three cells")
        self._cells = tuple(f"{prefix}{i + 1}" for i in range(n_cells))
        self._index = {name: i for i, name in enumerate(self._cells)}

    @property
    def cells(self) -> tuple[str, ...]:
        return self._cells

    def index_of(self, cell: str) -> int:
        """Position of ``cell`` around the ring (0-based)."""
        try:
            return self._index[cell]
        except KeyError:
            raise TopologyError(f"unknown cell {cell!r}") from None

    def neighbors(self, cell: str) -> tuple[str, ...]:
        i = self.index_of(cell)
        n = len(self._cells)
        return (self._cells[(i - 1) % n], self._cells[(i + 1) % n])


class Mesh2D(Topology):
    """A 2-D mesh of ``rows x cols`` cells named ``P{r}_{c}``."""

    def __init__(self, rows: int, cols: int, prefix: str = "P") -> None:
        if rows < 1 or cols < 1:
            raise TopologyError("mesh dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self._prefix = prefix
        self._cells = tuple(
            f"{prefix}{r}_{c}" for r in range(rows) for c in range(cols)
        )
        self._coords = {
            f"{prefix}{r}_{c}": (r, c) for r in range(rows) for c in range(cols)
        }

    @property
    def cells(self) -> tuple[str, ...]:
        return self._cells

    def coord_of(self, cell: str) -> tuple[int, int]:
        """The (row, col) coordinate of ``cell``."""
        try:
            return self._coords[cell]
        except KeyError:
            raise TopologyError(f"unknown cell {cell!r}") from None

    def cell_at(self, r: int, c: int) -> str:
        """Name of the cell at (row, col)."""
        if not (0 <= r < self.rows and 0 <= c < self.cols):
            raise TopologyError(f"coordinate ({r}, {c}) outside mesh")
        return f"{self._prefix}{r}_{c}"

    def neighbors(self, cell: str) -> tuple[str, ...]:
        r, c = self.coord_of(cell)
        out = []
        if r > 0:
            out.append(self.cell_at(r - 1, c))
        if r < self.rows - 1:
            out.append(self.cell_at(r + 1, c))
        if c > 0:
            out.append(self.cell_at(r, c - 1))
        if c < self.cols - 1:
            out.append(self.cell_at(r, c + 1))
        return tuple(out)


class Torus2D(Mesh2D):
    """A 2-D torus: a mesh with wraparound links in both dimensions."""

    def __init__(self, rows: int, cols: int, prefix: str = "P") -> None:
        if rows < 3 or cols < 3:
            raise TopologyError("torus dimensions must be at least 3")
        super().__init__(rows, cols, prefix)

    def neighbors(self, cell: str) -> tuple[str, ...]:
        r, c = self.coord_of(cell)
        return (
            self.cell_at((r - 1) % self.rows, c),
            self.cell_at((r + 1) % self.rows, c),
            self.cell_at(r, (c - 1) % self.cols),
            self.cell_at(r, (c + 1) % self.cols),
        )


def topology_for_cells(cells: Iterable[str]) -> Topology:
    """Build a linear topology whose cells are exactly ``cells`` in order.

    Convenience for programs written against an explicit cell list.
    """
    return ExplicitLinear(tuple(cells))


class ExplicitLinear(Topology):
    """A linear array over caller-supplied cell names, in the given order."""

    def __init__(self, cells: tuple[str, ...]) -> None:
        if len(cells) < 1:
            raise TopologyError("need at least one cell")
        if len(set(cells)) != len(cells):
            raise TopologyError("duplicate cell names")
        self._cells = cells
        self._index = {name: i for i, name in enumerate(cells)}

    @property
    def cells(self) -> tuple[str, ...]:
        return self._cells

    def index_of(self, cell: str) -> int:
        """Position of ``cell`` along the array (0-based)."""
        try:
            return self._index[cell]
        except KeyError:
            raise TopologyError(f"unknown cell {cell!r}") from None

    def neighbors(self, cell: str) -> tuple[str, ...]:
        i = self.index_of(cell)
        out = []
        if i > 0:
            out.append(self._cells[i - 1])
        if i < len(self._cells) - 1:
            out.append(self._cells[i + 1])
        return tuple(out)
