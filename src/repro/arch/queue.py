"""Hardware queue model.

A queue is a bounded FIFO on a directed link, assigned to at most one
message at a time (Section 2.3). Capacity semantics follow the paper:

* ``capacity == 0`` — the "latch without buffering" of Sections 3-7: a
  write completes only when a read takes the word (synchronous handoff);
* ``capacity == k`` — the buffered queues of Section 8: up to ``k`` words
  are stored; a writer facing a full queue parks until space appears;
* *queue extension* (the iWarp mechanism, Section 8.1/R2): when enabled,
  a full queue spills into the receiving cell's local memory — capacity
  becomes logically unbounded at the price of ``extension_penalty`` extra
  cycles per spilled word.

The queue is engine-agnostic: blocked parties park callbacks, and state
changes invoke them. The simulator wraps callbacks so they re-schedule the
blocked agent.

The class sits on the simulator's per-word hot path, so it is slotted and
its bookkeeping is all O(1) counter arithmetic: completion is tracked by
``words_remaining`` counting down to zero rather than recomparing totals,
and stats accumulate into plain slotted integers.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections import deque
from typing import Any, Callable

from repro.arch.links import Link
from repro.errors import SimulationError

Word = Any
Callback = Callable[[], None]


@dataclass(slots=True)
class QueueStats:
    """Counters accumulated by one hardware queue over a run."""

    words_pushed: int = 0
    words_popped: int = 0
    assignments: int = 0
    peak_occupancy: int = 0
    extension_invocations: int = 0
    extension_peak_words: int = 0
    spilled_words: int = 0


class HardwareQueue:
    """One physical queue on a directed link."""

    __slots__ = (
        "link",
        "index",
        "capacity",
        "extension_allowed",
        "extension_penalty",
        "assigned",
        "expected_words",
        "words_passed",
        "words_remaining",
        "_buffer",
        "_parked",
        "_word_waiters",
        "_space_waiters",
        "extended",
        "stats",
    )

    def __init__(
        self,
        link: Link,
        index: int,
        capacity: int,
        extension_allowed: bool = False,
        extension_penalty: int = 4,
    ) -> None:
        if capacity < 0:
            raise SimulationError("queue capacity must be >= 0")
        self.link = link
        self.index = index
        self.capacity = capacity
        self.extension_allowed = extension_allowed
        self.extension_penalty = extension_penalty
        self.assigned: str | None = None
        self.expected_words: int = 0
        self.words_passed: int = 0
        self.words_remaining: int = 0
        self._buffer: deque[Word] = deque()
        self._parked: tuple[Word, Callback] | None = None
        self._word_waiters: list[Callback] = []
        self._space_waiters: list[Callback] = []
        self.extended = False
        self.stats = QueueStats()

    # ------------------------------------------------------------------
    # Assignment lifecycle
    # ------------------------------------------------------------------

    def assign(self, message: str, expected_words: int) -> None:
        """Dedicate this queue to ``message`` for ``expected_words`` words."""
        if self.assigned is not None:
            raise SimulationError(
                f"queue {self} already assigned to {self.assigned!r}"
            )
        if self._buffer or self._parked:
            raise SimulationError(f"queue {self} assigned while non-empty")
        self.assigned = message
        self.expected_words = expected_words
        self.words_passed = 0
        self.words_remaining = expected_words
        self.extended = False
        self.stats.assignments += 1

    @property
    def complete(self) -> bool:
        """True once the assigned message's last word has passed through."""
        return self.assigned is not None and self.words_remaining <= 0

    def release(self) -> None:
        """Free the queue for reassignment (direction may be reset too)."""
        if not self.complete:
            raise SimulationError(
                f"queue {self} released before message {self.assigned!r} passed"
            )
        self.assigned = None
        self.expected_words = 0
        self.words_passed = 0
        self.words_remaining = 0
        self.extended = False

    # ------------------------------------------------------------------
    # Data movement
    # ------------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        """Words currently stored (excluding a parked, un-accepted word)."""
        return len(self._buffer)

    def try_push(self, word: Word, blocked: Callback) -> bool:
        """Attempt to enqueue ``word``.

        Returns True if the word was accepted immediately. Otherwise the
        word and ``blocked`` are parked; ``blocked`` fires when a pop makes
        room (or takes the word directly for capacity-0 queues).
        """
        if self.assigned is None:
            raise SimulationError(f"push on unassigned queue {self}")
        if self._parked is not None:
            raise SimulationError(f"queue {self} already has a parked writer")
        buffer = self._buffer
        if len(buffer) < self.capacity:
            buffer.append(word)
            stats = self.stats
            stats.words_pushed += 1
            occupancy = len(buffer)
            if occupancy > stats.peak_occupancy:
                stats.peak_occupancy = occupancy
            waiters = self._word_waiters
            if waiters:
                self._notify(waiters)
            return True
        if self.extension_allowed:
            if not self.extended:
                self.extended = True
                self.stats.extension_invocations += 1
            self.stats.spilled_words += 1
            overflow = len(buffer) + 1 - self.capacity
            if overflow > self.stats.extension_peak_words:
                self.stats.extension_peak_words = overflow
            self._accept(word)
            return True
        self._parked = (word, blocked)
        # A parked word is pop-visible (capacity-0 handoff), so waiting
        # readers must be woken to take it.
        waiters = self._word_waiters
        if waiters:
            self._notify(waiters)
        return False

    def _accept(self, word: Word) -> None:
        self._buffer.append(word)
        stats = self.stats
        stats.words_pushed += 1
        occupancy = len(self._buffer)
        if occupancy > stats.peak_occupancy:
            stats.peak_occupancy = occupancy
        waiters = self._word_waiters
        if waiters:
            self._notify(waiters)

    def peek(self) -> Word | None:
        """The word at the front, or None. Parked words are visible so that
        capacity-0 queues offer the writer's word to a waiting reader."""
        if self._buffer:
            return self._buffer[0]
        if self._parked is not None:
            return self._parked[0]
        return None

    @property
    def has_word(self) -> bool:
        """True if a pop would succeed right now."""
        return bool(self._buffer) or self._parked is not None

    def pop(self) -> tuple[Word, int]:
        """Remove and return the front word plus its extra access latency.

        The extra latency is nonzero only for words that were spilled via
        queue extension. Popping unparks a blocked writer if any.
        """
        buffer = self._buffer
        if buffer:
            word = buffer.popleft()
        elif self._parked is not None:
            word, resume = self._parked
            self._parked = None
            self.stats.words_pushed += 1
            self._finish_pop()
            resume()
            return word, 0
        else:
            raise SimulationError(f"pop on empty queue {self}")
        penalty = 0
        if self.extended and len(buffer) >= self.capacity:
            penalty = self.extension_penalty
        if self._parked is not None:
            parked_word, resume = self._parked
            self._parked = None
            self._accept(parked_word)
            resume()
        else:
            waiters = self._space_waiters
            if waiters:
                self._notify(waiters)
        # Inlined _finish_pop (same statement order — callback ordering is
        # part of the determinism contract).
        stats = self.stats
        stats.words_popped += 1
        self.words_passed += 1
        self.words_remaining -= 1
        if self.extended and len(buffer) <= self.capacity:
            self.extended = False
        waiters = self._word_waiters
        if waiters:
            self._notify(waiters)
        return word, penalty

    def _finish_pop(self) -> None:
        self.stats.words_popped += 1
        self.words_passed += 1
        self.words_remaining -= 1
        if self.extended and len(self._buffer) <= self.capacity:
            self.extended = False
        waiters = self._word_waiters
        if waiters:
            self._notify(waiters)

    # ------------------------------------------------------------------
    # Waiting
    # ------------------------------------------------------------------

    def when_word(self, poke: Callback) -> None:
        """Invoke ``poke`` next time a word becomes available."""
        self._word_waiters.append(poke)

    def when_space(self, poke: Callback) -> None:
        """Invoke ``poke`` next time buffer space appears."""
        self._space_waiters.append(poke)

    @staticmethod
    def _notify(waiters: list[Callback]) -> None:
        if not waiters:
            return
        pending = waiters.copy()
        waiters.clear()
        for poke in pending:
            poke()

    def __str__(self) -> str:
        return f"{self.link}#{self.index}"

    def __repr__(self) -> str:
        who = self.assigned or "-"
        return f"<Queue {self} cap={self.capacity} assigned={who} occ={self.occupancy}>"
