"""Directed links between adjacent cells.

The paper speaks of the *interval* between two adjacent cells, crossed by
messages in one direction or the other (Section 2.3). Queues live on a
directed link; messages crossing the same interval in the same direction
are *competing* and may have to share that link's queues.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Link:
    """A directed connection from cell ``src`` to adjacent cell ``dst``.

    Links key every per-link table in the simulator, so the field hash is
    precomputed once at construction (same value the generated dataclass
    hash would produce) instead of being recomputed on every dict lookup.
    """

    src: str
    dst: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.src, self.dst)))

    def __hash__(self) -> int:
        return self._hash

    @property
    def interval(self) -> frozenset[str]:
        """The undirected interval this link belongs to."""
        return frozenset((self.src, self.dst))

    @property
    def reverse(self) -> "Link":
        """The link in the opposite direction of the same interval."""
        return Link(self.dst, self.src)

    def __str__(self) -> str:
        return f"{self.src}->{self.dst}"


Route = tuple[Link, ...]


def route_cells(route: Route) -> list[str]:
    """The cell sequence visited by a route, including both endpoints."""
    if not route:
        return []
    cells = [route[0].src]
    for link in route:
        if link.src != cells[-1]:
            raise ValueError(f"route is not contiguous at {link}")
        cells.append(link.dst)
    return cells
