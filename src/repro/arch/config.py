"""Array configuration: queue provisioning, latencies, communication model.

The number of queues between adjacent cells is fixed by the hardware while
the number of competing messages is program-dependent (Section 2.3) — this
object captures the hardware side. It also selects the communication model
(systolic vs memory-to-memory, Fig. 1) and its cost parameters so the
efficiency claim of Section 1 can be measured.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.arch.links import Link


class CommModel(enum.Enum):
    """The two communication models contrasted in Fig. 1."""

    SYSTOLIC = "systolic"
    MEMORY_TO_MEMORY = "memory-to-memory"


@dataclass(frozen=True)
class ArrayConfig:
    """Hardware parameters of a programmable systolic array.

    Attributes:
        queues_per_link: queues available on every directed link, unless
            overridden per-link via ``link_queue_overrides``.
        queue_capacity: words each queue buffers. 0 models the unbuffered
            latches of Sections 3-7; Section 8 uses >= 1.
        hop_latency: cycles for a word to advance one hop between queues.
        op_latency: cycles a cell spends issuing one R/W operation.
        allow_extension: enable the iWarp-style queue extension (spill to
            local memory) when a queue fills (Section 8.1).
        extension_penalty: extra cycles per spilled-word access.
        comm_model: systolic (direct queue access) or memory-to-memory.
        memory_access_cycles: cost of one local-memory access; under the
            memory-to-memory model every word transfer performs two such
            accesses at the sender and two at the receiver (Section 1).
        link_queue_overrides: per-link queue-count exceptions.
    """

    queues_per_link: int = 1
    queue_capacity: int = 0
    hop_latency: int = 1
    op_latency: int = 1
    allow_extension: bool = False
    extension_penalty: int = 4
    comm_model: CommModel = CommModel.SYSTOLIC
    memory_access_cycles: int = 1
    link_queue_overrides: Mapping[Link, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.queues_per_link < 1:
            raise ValueError("queues_per_link must be >= 1")
        if self.queue_capacity < 0:
            raise ValueError("queue_capacity must be >= 0")
        if self.hop_latency < 1:
            raise ValueError("hop_latency must be >= 1")
        if self.op_latency < 1:
            raise ValueError("op_latency must be >= 1")
        if self.memory_access_cycles < 0:
            raise ValueError("memory_access_cycles must be >= 0")

    def queues_on(self, link: Link) -> int:
        """Number of physical queues provisioned on ``link``."""
        return self.link_queue_overrides.get(link, self.queues_per_link)

    def with_(self, **changes) -> "ArrayConfig":
        """A copy of this config with the given fields replaced."""
        from dataclasses import replace

        return replace(self, **changes)

    @property
    def memory_accesses_per_word(self) -> int:
        """Local-memory accesses per transferred word under this model.

        Memory-to-memory needs at least four (input staging in + program
        read + program write + output staging out, Section 1); systolic
        communication needs none.
        """
        if self.comm_model is CommModel.MEMORY_TO_MEMORY:
            return 4
        return 0


#: Configuration used throughout Sections 3-7 of the paper: a single
#: unbuffered queue on every link.
UNBUFFERED_SINGLE_QUEUE = ArrayConfig(queues_per_link=1, queue_capacity=0)
