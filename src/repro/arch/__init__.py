"""Array architecture substrate: topologies, routing, links, queues."""

from repro.arch.config import UNBUFFERED_SINGLE_QUEUE, ArrayConfig, CommModel
from repro.arch.links import Link, Route, route_cells
from repro.arch.queue import HardwareQueue, QueueStats
from repro.arch.routing import (
    LinearRouter,
    RingRouter,
    Router,
    XYRouter,
    default_router,
)
from repro.arch.topology import (
    ExplicitLinear,
    LinearArray,
    Mesh2D,
    RingArray,
    Topology,
    Torus2D,
    topology_for_cells,
)

__all__ = [
    "ArrayConfig",
    "CommModel",
    "ExplicitLinear",
    "HardwareQueue",
    "Link",
    "LinearArray",
    "LinearRouter",
    "Mesh2D",
    "QueueStats",
    "RingArray",
    "RingRouter",
    "Route",
    "Router",
    "Topology",
    "Torus2D",
    "UNBUFFERED_SINGLE_QUEUE",
    "XYRouter",
    "default_router",
    "route_cells",
    "topology_for_cells",
]
