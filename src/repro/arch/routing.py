"""Routing: mapping a message's endpoints to the links it crosses.

For a 1-D array a minimum-length route is fully determined by sender and
receiver (Section 2.3); for 2-D arrays the crossed intervals also depend on
the routing scheme, so routers are explicit objects. All provided routers
are deterministic and minimal, which keeps the interval analysis of the
paper well-defined.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.arch.links import Link, Route
from repro.arch.topology import (
    ExplicitLinear,
    LinearArray,
    Mesh2D,
    RingArray,
    Topology,
    Torus2D,
)
from repro.errors import TopologyError


class Router(ABC):
    """Computes the directed link sequence a message traverses."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology

    @abstractmethod
    def route(self, src: str, dst: str) -> Route:
        """The route from ``src`` to ``dst`` (empty iff ``src == dst``)."""

    def _links_along(self, cells: list[str]) -> Route:
        return tuple(Link(a, b) for a, b in zip(cells, cells[1:]))


class LinearRouter(Router):
    """The unique minimal route along a linear array."""

    def __init__(self, topology: Topology) -> None:
        if not isinstance(topology, (LinearArray, ExplicitLinear)):
            raise TopologyError("LinearRouter requires a linear topology")
        super().__init__(topology)
        self._linear = topology

    def route(self, src: str, dst: str) -> Route:
        i, j = self._linear.index_of(src), self._linear.index_of(dst)
        cells = list(self.topology.cells)
        if i <= j:
            path = cells[i : j + 1]
        else:
            path = list(reversed(cells[j : i + 1]))
        return self._links_along(path)


class RingRouter(Router):
    """Shortest-way routing around a ring; ties go clockwise.

    Deterministic tie-breaking keeps interval crossings well-defined, as
    the paper requires of any routing scheme.
    """

    def __init__(self, topology: RingArray) -> None:
        if not isinstance(topology, RingArray):
            raise TopologyError("RingRouter requires a RingArray")
        super().__init__(topology)
        self._ring = topology

    def route(self, src: str, dst: str) -> Route:
        cells = self.topology.cells
        n = len(cells)
        i, j = self._ring.index_of(src), self._ring.index_of(dst)
        forward = (j - i) % n
        backward = (i - j) % n
        path = [src]
        if forward <= backward:
            for step in range(1, forward + 1):
                path.append(cells[(i + step) % n])
        else:
            for step in range(1, backward + 1):
                path.append(cells[(i - step) % n])
        return self._links_along(path)


class XYRouter(Router):
    """Dimension-order (X then Y) routing on a 2-D mesh or torus.

    Moves along the column dimension first, then the row dimension. On a
    torus, each dimension independently takes its shorter way (ties go in
    the increasing direction).
    """

    def __init__(self, topology: Mesh2D) -> None:
        if not isinstance(topology, Mesh2D):
            raise TopologyError("XYRouter requires a Mesh2D or Torus2D")
        super().__init__(topology)
        self._mesh = topology

    def route(self, src: str, dst: str) -> Route:
        mesh = self._mesh
        r0, c0 = mesh.coord_of(src)
        r1, c1 = mesh.coord_of(dst)
        path = [src]
        for c in self._axis_path(c0, c1, mesh.cols, wrap=isinstance(mesh, Torus2D)):
            path.append(mesh.cell_at(r0, c))
        for r in self._axis_path(r0, r1, mesh.rows, wrap=isinstance(mesh, Torus2D)):
            path.append(mesh.cell_at(r, c1))
        return self._links_along(path)

    @staticmethod
    def _axis_path(a: int, b: int, size: int, wrap: bool) -> list[int]:
        if a == b:
            return []
        if not wrap:
            step = 1 if b > a else -1
            return list(range(a + step, b + step, step))
        forward = (b - a) % size
        backward = (a - b) % size
        out = []
        if forward <= backward:
            for s in range(1, forward + 1):
                out.append((a + s) % size)
        else:
            for s in range(1, backward + 1):
                out.append((a - s) % size)
        return out


def default_router(topology: Topology) -> Router:
    """The natural minimal router for each provided topology type."""
    if isinstance(topology, RingArray):
        return RingRouter(topology)
    if isinstance(topology, Mesh2D):
        return XYRouter(topology)
    if isinstance(topology, (LinearArray, ExplicitLinear)):
        return LinearRouter(topology)
    raise TopologyError(f"no default router for {type(topology).__name__}")
