"""repro — a reproduction of H.T. Kung, "Deadlock Avoidance for Systolic
Communication" (Journal of Complexity 4, 1988).

The package implements the paper's full pipeline:

1. declare messages and per-cell ``W``/``R`` programs
   (:mod:`repro.core.program`);
2. classify the program with the crossing-off procedure, optionally with
   buffered-queue lookahead (:mod:`repro.core.crossing`);
3. produce a consistent message labeling (:mod:`repro.core.labeling`);
4. execute on a simulated programmable systolic array under a compatible
   queue-assignment policy (:mod:`repro.sim`), with Theorem 1's guarantee
   checked end to end (:mod:`repro.core.theorem`).

Quickstart::

    from repro import fig2_fir, fig2_registers, simulate, cross_off

    program = fig2_fir()
    assert cross_off(program).deadlock_free
    result = simulate(program, registers=fig2_registers())
    result.assert_completed()

Performance
-----------

The simulator hot path is a zero-allocation event engine: same-time
events ride a FIFO fast lane, near-future delays (1-8 cycles, the
simulator's whole repertoire) ride a 16-slot timing wheel, and the heap
only sees far-future overflow; agents/queues/words are slotted and
waiters are reusable bound methods. The compile-time half is an
incremental crossing-off engine (:mod:`repro.core.crossing`): position
indexes, prefix write-counts for the Section 8.1 R2 checks and a
dirty-message worklist classify ensemble-scale programs ~5x faster than
the literal op-by-op procedure. The knobs that matter at scale:

* **Analysis caching** — ``Simulator(..., reuse_analysis=True)`` (the
  default) shares routing, competing-message sets, lookahead capacities
  and the constraint labeling through a process-global content-keyed
  cache (:mod:`repro.perf`). Repeated simulations of the same program
  (sweeps, policy ablations, Theorem-1 ensembles) skip static analysis
  entirely. Use ``repro.perf.clear_analysis_cache()`` to reset, and
  ``reuse_analysis=False`` for stateful custom routers.
* **Persistent disk tier** — export
  ``REPRO_ANALYSIS_DISK_CACHE=/path/to/dir`` (or call
  :func:`repro.perf.configure_disk_cache`) and analyses persist across
  processes and sessions under the same content fingerprints, with
  atomic writes and corruption-tolerant loads: pool workers and
  restarted sweeps skip re-analysis entirely.
* **Pluggable sweep execution** — ensemble sweeps run through the
  :mod:`repro.sweep` package: a :class:`repro.sweep.SweepPlan` (jobs +
  grid labels + reducers + backend choice) executed by a
  :class:`repro.sweep.SweepSession` over the ``serial``, ``pool``
  (chunked multiprocessing) or ``shm`` backend — the latter writes
  fixed-width :class:`repro.sweep.RunSummary` rows into a
  ``multiprocessing.shared_memory`` arena and hydrates full results
  only on demand, eliminating the per-result pickle round-trip that
  makes million-run full-result sweeps pipe-bound.
  :func:`repro.sweep.simulate_many` (deterministic merge order) and
  :func:`repro.sweep.simulate_stream` (one O(1) summary row per job,
  lazily) remain the stable entry points; ``repro sweep`` exposes the
  whole subsystem on the command line (``--backend``, ``--stream``).
* **Streaming reducers with a merge contract** — completed counts,
  makespan histograms, deadlock rate by config, per-config makespan
  stats and t-digest makespan quantiles
  (:class:`repro.sweep.QuantileReducer`; ``repro sweep --quantiles
  p50,p95,p99``) fold rows in job order with O(1) state, and every
  reducer ``merge()``s with a same-typed partner so sharded sweeps
  combine their aggregates exactly.
"""

from repro.arch import (
    ArrayConfig,
    CommModel,
    LinearArray,
    Link,
    Mesh2D,
    RingArray,
    Torus2D,
    default_router,
)
from repro.core import (
    COMPUTE,
    ArrayProgram,
    CrossingResult,
    Labeling,
    LookaheadConfig,
    Message,
    Op,
    OpKind,
    R,
    W,
    check_consistency,
    competing_messages,
    constraint_labeling,
    cross_off,
    is_consistent,
    is_deadlock_free,
    label_messages,
    related_groups,
    trivial_labeling,
    uniform_lookahead,
    verify_theorem1,
)
from repro.algorithms.figures import (
    all_figures,
    fig2_expected_outputs,
    fig2_fir,
    fig2_registers,
    fig5_p1,
    fig5_p2,
    fig5_p3,
    fig6_cycle,
    fig7_program,
    fig8_program,
    fig9_program,
)
from repro.perf import analysis_cache_stats, clear_analysis_cache
from repro.sim import (
    FCFSPolicy,
    OrderedPolicy,
    SimJob,
    SimulationResult,
    Simulator,
    StaticPolicy,
    compare_models,
    simulate,
    simulate_many,
)
from repro.sweep import SweepPlan, SweepSession

__version__ = "1.0.0"

__all__ = [
    "ArrayConfig",
    "ArrayProgram",
    "COMPUTE",
    "CommModel",
    "CrossingResult",
    "FCFSPolicy",
    "Labeling",
    "LinearArray",
    "Link",
    "LookaheadConfig",
    "Mesh2D",
    "Message",
    "Op",
    "OpKind",
    "OrderedPolicy",
    "R",
    "RingArray",
    "SimJob",
    "SimulationResult",
    "Simulator",
    "StaticPolicy",
    "SweepPlan",
    "SweepSession",
    "Torus2D",
    "W",
    "all_figures",
    "analysis_cache_stats",
    "check_consistency",
    "clear_analysis_cache",
    "compare_models",
    "competing_messages",
    "constraint_labeling",
    "cross_off",
    "default_router",
    "fig2_expected_outputs",
    "fig2_fir",
    "fig2_registers",
    "fig5_p1",
    "fig5_p2",
    "fig5_p3",
    "fig6_cycle",
    "fig7_program",
    "fig8_program",
    "fig9_program",
    "is_consistent",
    "is_deadlock_free",
    "label_messages",
    "related_groups",
    "simulate",
    "simulate_many",
    "trivial_labeling",
    "uniform_lookahead",
    "verify_theorem1",
]
