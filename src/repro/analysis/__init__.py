"""Reporting and statistics helpers."""

from repro.analysis.report import format_table
from repro.analysis.stats import ContentionStats, LabelStats, contention_row

__all__ = ["ContentionStats", "LabelStats", "contention_row", "format_table"]
