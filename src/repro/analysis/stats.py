"""Aggregate statistics over programs, labelings and simulation runs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.routing import Router
from repro.core.labeling import Labeling
from repro.core.program import ArrayProgram
from repro.core.related import related_groups
from repro.core.requirements import (
    competing_messages,
    dynamic_queue_demand,
    static_queue_demand,
)


@dataclass(frozen=True)
class LabelStats:
    """Shape of a labeling: class count and sizes."""

    classes: int
    largest_class: int
    singleton_classes: int

    @classmethod
    def of(cls, labeling: Labeling) -> "LabelStats":
        groups = labeling.groups()
        sizes = [len(names) for _lab, names in groups]
        return cls(
            classes=len(groups),
            largest_class=max(sizes, default=0),
            singleton_classes=sum(1 for s in sizes if s == 1),
        )


@dataclass(frozen=True)
class ContentionStats:
    """Queue pressure a program puts on an array."""

    links_used: int
    max_competing: int
    static_queue_max: int
    dynamic_queue_max: int
    related_classes: int

    @classmethod
    def of(
        cls, program: ArrayProgram, router: Router, labeling: Labeling
    ) -> "ContentionStats":
        competing = competing_messages(program, router)
        static = static_queue_demand(program, router)
        dynamic = dynamic_queue_demand(program, router, labeling)
        return cls(
            links_used=len(competing),
            max_competing=max((len(v) for v in competing.values()), default=0),
            static_queue_max=max(static.values(), default=0),
            dynamic_queue_max=max(dynamic.values(), default=0),
            related_classes=len(related_groups(program)),
        )


def contention_row(
    program: ArrayProgram, router: Router, labeling: Labeling
) -> dict[str, object]:
    """A flat record combining program and contention shape for tables."""
    stats = ContentionStats.of(program, router, labeling)
    label_stats = LabelStats.of(labeling)
    return {
        "program": program.name,
        "cells": len(program.cells),
        "messages": len(program.messages),
        "words": program.total_words,
        "links": stats.links_used,
        "max_competing": stats.max_competing,
        "static_q": stats.static_queue_max,
        "dynamic_q": stats.dynamic_queue_max,
        "label_classes": label_stats.classes,
        "largest_class": label_stats.largest_class,
    }
