"""Plain-text tables for benches and experiment reports."""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dict-rows as an aligned monospace table.

    Column order defaults to first-row key order; missing values show as
    empty cells.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)\n"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    cells = [[_fmt(row.get(col, "")) for col in cols] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells)) for i, col in enumerate(cols)
    ]
    out = []
    if title:
        out.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(cols))
    out.append(header)
    out.append("  ".join("-" * w for w in widths))
    for row in cells:
        out.append("  ".join(row[i].ljust(widths[i]) for i in range(len(cols))))
    return "\n".join(out) + "\n"


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
