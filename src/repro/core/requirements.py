"""Queue-requirement analysis (Sections 2.3, 7, 8).

Messages crossing the same interval in the same direction *compete* for
that link's queues. This module computes, per directed link:

* the competing message set;
* the **static** queue demand — one queue per competing message, the
  precondition of the static assignment scheme of Section 7;
* the **dynamic** queue demand — the size of the largest same-label group,
  which is what Theorem 1's assumption (ii) requires of the ordered +
  simultaneous dynamic scheme ("between two adjacent cells the number of
  queues cannot be less than the number of competing messages having the
  same label");
* the **queue-extension demand** of Section 8.1/R2 — for each message, how
  many skipped writes exceed the physical buffering along its route, which
  is exactly when iWarp's extension mechanism must be invoked.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.config import ArrayConfig
from repro.arch.links import Link, Route
from repro.arch.routing import Router
from repro.core.crossing import LookaheadConfig, cross_off
from repro.core.labeling import Labeling
from repro.core.program import ArrayProgram
from repro.errors import ConfigError


def message_routes(program: ArrayProgram, router: Router) -> dict[str, Route]:
    """The link sequence each message traverses."""
    return {
        msg.name: router.route(msg.sender, msg.receiver)
        for msg in program.messages.values()
    }


def competing_messages(
    program: ArrayProgram, router: Router
) -> dict[Link, list[str]]:
    """Messages crossing each directed link, sorted by name.

    Messages sharing a link in the same direction are the paper's
    *competing messages* (Section 2.3).
    """
    table: dict[Link, list[str]] = {}
    for name, route in message_routes(program, router).items():
        for link in route:
            table.setdefault(link, []).append(name)
    return {link: sorted(names) for link, names in table.items()}


def static_queue_demand(program: ArrayProgram, router: Router) -> dict[Link, int]:
    """Queues per link needed so no two messages ever share a queue."""
    return {
        link: len(names)
        for link, names in competing_messages(program, router).items()
    }


def dynamic_queue_demand(
    program: ArrayProgram, router: Router, labeling: Labeling
) -> dict[Link, int]:
    """Largest same-label competing group per link (assumption (ii))."""
    demand: dict[Link, int] = {}
    for link, names in competing_messages(program, router).items():
        by_label: dict[object, int] = {}
        for name in names:
            lab = labeling.label(name)
            by_label[lab] = by_label.get(lab, 0) + 1
        demand[link] = max(by_label.values(), default=0)
    return demand


@dataclass(frozen=True)
class QueueShortfall:
    """A link whose provisioned queues cannot meet a demand."""

    link: Link
    demand: int
    available: int
    messages: tuple[str, ...]

    def __str__(self) -> str:
        return (
            f"link {self.link}: needs {self.demand} queue(s) for "
            f"{list(self.messages)}, has {self.available}"
        )


def check_static_feasible(
    program: ArrayProgram, router: Router, config: ArrayConfig
) -> list[QueueShortfall]:
    """Links where static assignment is impossible (not enough queues)."""
    shortfalls = []
    competing = competing_messages(program, router)
    for link, demand in static_queue_demand(program, router).items():
        available = config.queues_on(link)
        if demand > available:
            shortfalls.append(
                QueueShortfall(link, demand, available, tuple(competing[link]))
            )
    return shortfalls


def check_assumption_ii(
    program: ArrayProgram,
    router: Router,
    labeling: Labeling,
    config: ArrayConfig,
) -> list[QueueShortfall]:
    """Links violating Theorem 1's assumption (ii) for the dynamic scheme.

    The simultaneous-assignment rule needs every same-label competing
    group to fit in the link's queues at once.
    """
    shortfalls = []
    competing = competing_messages(program, router)
    for link, demand in dynamic_queue_demand(program, router, labeling).items():
        available = config.queues_on(link)
        if demand > available:
            group = _largest_same_label_group(competing[link], labeling)
            shortfalls.append(QueueShortfall(link, demand, available, group))
    return shortfalls


def _largest_same_label_group(
    names: list[str], labeling: Labeling
) -> tuple[str, ...]:
    by_label: dict[object, list[str]] = {}
    for name in names:
        by_label.setdefault(labeling.label(name), []).append(name)
    best = max(by_label.values(), key=len)
    return tuple(sorted(best))


def require_assumption_ii(
    program: ArrayProgram,
    router: Router,
    labeling: Labeling,
    config: ArrayConfig,
) -> None:
    """Raise :class:`ConfigError` if assumption (ii) is violated."""
    shortfalls = check_assumption_ii(program, router, labeling, config)
    if shortfalls:
        raise ConfigError(
            "queue provisioning violates Theorem 1 assumption (ii): "
            + "; ".join(str(s) for s in shortfalls)
        )


@dataclass(frozen=True)
class ExtensionDemand:
    """Queue-extension need of one message (Section 8.1, rule R2)."""

    message: str
    skipped_writes: int
    physical_capacity: int
    needs_extension: bool

    @property
    def excess_words(self) -> int:
        """Words that must spill into local memory."""
        return max(0, self.skipped_writes - self.physical_capacity)


def extension_demand(
    program: ArrayProgram, router: Router, config: ArrayConfig
) -> dict[str, ExtensionDemand]:
    """Per-message queue-extension requirements.

    Runs the lookahead crossing-off with unbounded R2 to measure how many
    writes per message a maximally buffered execution skips, then compares
    against the physical buffering along each message's route. The
    extension mechanism "needs to be invoked only if the number of skipped
    write operations to the message is larger than the total size of the
    queues that the message will cross".
    """
    unbounded = LookaheadConfig(default_capacity=math.inf)
    result = cross_off(program, lookahead=unbounded, mode="sequential")
    routes = message_routes(program, router)
    out: dict[str, ExtensionDemand] = {}
    for name in program.messages:
        skipped = result.max_skipped.get(name, 0)
        physical = len(routes[name]) * config.queue_capacity
        out[name] = ExtensionDemand(
            message=name,
            skipped_writes=skipped,
            physical_capacity=physical,
            needs_extension=skipped > physical,
        )
    return out
