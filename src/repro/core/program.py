"""Array programs: one operation sequence per cell, plus declared messages.

This is the paper's program abstraction (Section 2.2): an array program is
a set of cell programs, each a sequence of ``W``/``R`` statements on
messages declared ahead of execution. The host counts as a cell. All
write/read operations are known at compile time (data-independent control),
which is what makes the compile-time analyses possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.core.message import Message
from repro.core.ops import Op, OpKind, transfer_ops
from repro.errors import ProgramError


@dataclass(frozen=True)
class CellProgram:
    """The statement sequence of one cell."""

    cell: str
    ops: tuple[Op, ...]

    def __post_init__(self) -> None:
        if not self.cell:
            raise ProgramError("cell name must be non-empty")

    def _transfer_tuple(self) -> tuple[Op, ...]:
        """The cached R/W projection (computed once; the dataclass is
        frozen and ``ops`` is a tuple, so it cannot go stale)."""
        cached = self.__dict__.get("_transfers_cache")
        if cached is None:
            cached = tuple(transfer_ops(self.ops))
            object.__setattr__(self, "_transfers_cache", cached)
        return cached

    @property
    def transfers(self) -> list[Op]:
        """R/W operations only — the analyses' view of this program.

        Callers get a fresh list they are free to mutate.
        """
        return list(self._transfer_tuple())

    @property
    def transfer_count(self) -> int:
        """Number of R/W operations, without materializing a list."""
        return len(self._transfer_tuple())

    def message_access_order(self) -> list[str]:
        """Message names in the order this cell touches them (R/W only)."""
        return [op.message for op in self.transfers]

    def count(self, kind: OpKind, message: str) -> int:
        """Number of operations of ``kind`` on ``message`` in this program."""
        return sum(
            1 for op in self.ops if op.kind is kind and op.message == message
        )

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[Op]:
        return iter(self.ops)


class ArrayProgram:
    """A validated program for a whole array.

    Construction validates the paper's structural rules:

    * every R/W operation names a declared message;
    * ``W(X)`` appears only in the program of ``X``'s sender and ``R(X)``
      only in the program of ``X``'s receiver;
    * the number of ``W(X)`` operations equals ``X``'s declared length,
      and likewise for ``R(X)``.

    Cells with no statements are permitted (pass-through cells whose I/O
    processes still forward words).
    """

    def __init__(
        self,
        cells: Sequence[str],
        messages: Iterable[Message],
        programs: Mapping[str, Sequence[Op]],
        name: str = "program",
    ) -> None:
        self.name = name
        self.cells: tuple[str, ...] = tuple(cells)
        if len(set(self.cells)) != len(self.cells):
            raise ProgramError(f"duplicate cell names in {self.cells}")
        self.messages: dict[str, Message] = {}
        for msg in messages:
            if msg.name in self.messages:
                raise ProgramError(f"duplicate message declaration {msg.name!r}")
            self.messages[msg.name] = msg
        cell_set = set(self.cells)
        for msg in self.messages.values():
            if msg.sender not in cell_set:
                raise ProgramError(
                    f"message {msg.name!r}: sender {msg.sender!r} is not a cell"
                )
            if msg.receiver not in cell_set:
                raise ProgramError(
                    f"message {msg.name!r}: receiver {msg.receiver!r} is not a cell"
                )
        self.cell_programs: dict[str, CellProgram] = {}
        for cell in self.cells:
            ops = tuple(programs.get(cell, ()))
            self.cell_programs[cell] = CellProgram(cell, ops)
        unknown = set(programs) - cell_set
        if unknown:
            raise ProgramError(f"programs given for unknown cells: {sorted(unknown)}")
        self._validate()
        self._intern: InternTable | None = None

    def _validate(self) -> None:
        for cell, prog in self.cell_programs.items():
            for op in prog.transfers:
                msg = self.messages.get(op.message)
                if msg is None:
                    raise ProgramError(
                        f"cell {cell!r}: operation {op} names undeclared message"
                    )
                if op.kind is OpKind.WRITE and cell != msg.sender:
                    raise ProgramError(
                        f"cell {cell!r} writes {msg.name!r} but its sender is "
                        f"{msg.sender!r}"
                    )
                if op.kind is OpKind.READ and cell != msg.receiver:
                    raise ProgramError(
                        f"cell {cell!r} reads {msg.name!r} but its receiver is "
                        f"{msg.receiver!r}"
                    )
        for msg in self.messages.values():
            writes = self.cell_programs[msg.sender].count(OpKind.WRITE, msg.name)
            reads = self.cell_programs[msg.receiver].count(OpKind.READ, msg.name)
            if writes != msg.length:
                raise ProgramError(
                    f"message {msg.name!r}: declared length {msg.length} but "
                    f"sender {msg.sender!r} writes {writes} words"
                )
            if reads != msg.length:
                raise ProgramError(
                    f"message {msg.name!r}: declared length {msg.length} but "
                    f"receiver {msg.receiver!r} reads {reads} words"
                )

    # ------------------------------------------------------------------
    # Views used by the analyses
    # ------------------------------------------------------------------

    def transfers(self, cell: str) -> list[Op]:
        """The R/W sequence of ``cell``."""
        return self.cell_programs[cell].transfers

    @property
    def intern(self) -> "InternTable":
        """This program's dense-int intern table (built once, lazily).

        Programs are immutable after construction, so the table can never
        go stale.
        """
        table = self._intern
        if table is None:
            table = InternTable(self)
            self._intern = table
        return table

    @property
    def total_transfer_ops(self) -> int:
        """Total number of R/W operations across all cells."""
        return sum(p.transfer_count for p in self.cell_programs.values())

    @property
    def total_words(self) -> int:
        """Total number of words moved by the program (sum of lengths)."""
        return sum(m.length for m in self.messages.values())

    def message(self, name: str) -> Message:
        """Look up a declared message by name."""
        try:
            return self.messages[name]
        except KeyError:
            raise ProgramError(f"no message named {name!r}") from None

    def messages_touching(self, cell: str) -> list[Message]:
        """Messages whose sender or receiver is ``cell``."""
        return [
            m
            for m in self.messages.values()
            if m.sender == cell or m.receiver == cell
        ]

    def __repr__(self) -> str:
        return (
            f"ArrayProgram({self.name!r}, cells={len(self.cells)}, "
            f"messages={len(self.messages)}, ops={self.total_transfer_ops})"
        )


class InternTable:
    """Dense integer ids for one program's cells and messages.

    Built once per :class:`ArrayProgram` (lazily, through
    :attr:`ArrayProgram.intern`) and shared by every analysis over it.
    The id assignment is *content-defined* and deterministic — never an
    artifact of construction order:

    * **cell ids** follow the program's cell tuple order (itself part of
      the program's content);
    * **message ids** follow sorted message-name order, so comparing two
      ids orders exactly like comparing the names. Every "lowest message
      name first" tie-break in the crossing engine and labeling scheme
      therefore survives interning unchanged.

    Alongside the name<->id maps the table carries the flat views the
    hot analyses index by id: per-message endpoints/lengths, each cell's
    R/W sequence encoded as ``(is_write, message_id)`` pairs, per-cell
    transfer counts, and the maximum op latency (used to size the
    simulator's timing wheel).
    """

    __slots__ = (
        "cell_names",
        "cell_ids",
        "message_names",
        "message_ids",
        "senders",
        "receivers",
        "lengths",
        "encoded_transfers",
        "transfer_counts",
        "max_op_cycles",
        "_signed",
        "_columnar",
    )

    def __init__(self, program: "ArrayProgram") -> None:
        self.cell_names: tuple[str, ...] = program.cells
        self.cell_ids: dict[str, int] = {
            cell: cid for cid, cell in enumerate(program.cells)
        }
        names = sorted(program.messages)
        self.message_names: tuple[str, ...] = tuple(names)
        self.message_ids: dict[str, int] = {
            name: mid for mid, name in enumerate(names)
        }
        cell_ids = self.cell_ids
        self.senders: tuple[int, ...] = tuple(
            cell_ids[program.messages[name].sender] for name in names
        )
        self.receivers: tuple[int, ...] = tuple(
            cell_ids[program.messages[name].receiver] for name in names
        )
        self.lengths: tuple[int, ...] = tuple(
            program.messages[name].length for name in names
        )
        message_ids = self.message_ids
        encoded: list[tuple[tuple[bool, int], ...]] = []
        counts: list[int] = []
        max_cycles = 0
        for cell in program.cells:
            cell_program = program.cell_programs[cell]
            seq = tuple(
                (op.kind is OpKind.WRITE, message_ids[op.message])
                for op in cell_program._transfer_tuple()
            )
            encoded.append(seq)
            counts.append(len(seq))
            for op in cell_program.ops:
                if op.cycles > max_cycles:
                    max_cycles = op.cycles
        self.encoded_transfers: tuple[tuple[tuple[bool, int], ...], ...] = tuple(
            encoded
        )
        self.transfer_counts: tuple[int, ...] = tuple(counts)
        self.max_op_cycles: int = max_cycles
        # Derived encodings, built lazily and shared by every analysis
        # over the program (see signed_transfers / columnar).
        self._signed: tuple[list[int], ...] | None = None
        self._columnar = None

    @property
    def cell_count(self) -> int:
        return len(self.cell_names)

    @property
    def message_count(self) -> int:
        return len(self.message_names)

    @property
    def signed_transfers(self) -> tuple[list[int], ...]:
        """Per-cell sign-coded transfer sequences (built once, lazily).

        Writes encode as ``mid``, reads as ``~mid`` — one comparison
        (``x < 0``) replaces tuple unpacking in the crossing engine's
        nomination scans. The inner lists are read-only by contract
        (lists, not tuples: list indexing is what the hot scans do).
        """
        signed = self._signed
        if signed is None:
            signed = tuple(
                [mid if is_write else ~mid for is_write, mid in seq]
                for seq in self.encoded_transfers
            )
            self._signed = signed
        return signed

    def columnar(self):
        """The numpy columnar view of this table (built once, lazily).

        Returns a :class:`repro.core.crossing_np.ColumnarTables` — flat
        position arrays, cumulative write-count tables and capacity
        gather indexes shared zero-copy by every columnar crossing run
        over this program. Raises :class:`~repro.errors.ConfigError`
        when numpy is unavailable; callers gate on
        :func:`repro.core.crossing_np.numpy_available`.
        """
        tables = self._columnar
        if tables is None:
            from repro.core.crossing_np import ColumnarTables

            tables = ColumnarTables(self)
            self._columnar = tables
        return tables


@dataclass(frozen=True)
class OpRef:
    """A reference to one transfer operation: (cell, index into transfers)."""

    cell: str
    index: int

    def __str__(self) -> str:
        return f"{self.cell}#{self.index}"


@dataclass
class ProgramStats:
    """Summary statistics of an array program."""

    cells: int
    messages: int
    words: int
    transfer_ops: int
    max_ops_per_cell: int
    multi_hop_messages: int = 0

    @classmethod
    def of(cls, program: ArrayProgram) -> "ProgramStats":
        max_ops = max(
            (p.transfer_count for p in program.cell_programs.values()), default=0
        )
        return cls(
            cells=len(program.cells),
            messages=len(program.messages),
            words=program.total_words,
            transfer_ops=program.total_transfer_ops,
            max_ops_per_cell=max_ops,
        )
