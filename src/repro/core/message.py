"""Message declarations.

A message is a sequence of words travelling from one cell (the *sender*)
to another (the *receiver*); all messages are declared before execution
(Section 2.1). The declared length is the number of words, which must
match the number of ``W`` operations in the sender's program and of ``R``
operations in the receiver's program.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProgramError


@dataclass(frozen=True, order=True)
class Message:
    """A declared message.

    Attributes:
        name: unique identifier (the paper uses upper-case names).
        sender: cell at which the message originates.
        receiver: cell at which the message terminates.
        length: number of words in the message (must be positive).
    """

    name: str
    sender: str
    receiver: str
    length: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ProgramError("message name must be non-empty")
        if self.length <= 0:
            raise ProgramError(
                f"message {self.name!r}: length must be positive, got {self.length}"
            )
        if self.sender == self.receiver:
            raise ProgramError(
                f"message {self.name!r}: sender and receiver must differ "
                f"(both {self.sender!r})"
            )

    @property
    def endpoints(self) -> tuple[str, str]:
        """The (sender, receiver) pair."""
        return (self.sender, self.receiver)

    def __str__(self) -> str:
        return f"{self.name}[{self.length}] {self.sender}->{self.receiver}"
