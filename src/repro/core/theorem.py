"""Theorem 1 as an executable harness.

    THEOREM 1. Suppose that (i) the given program is deadlock-free;
    (ii) there is a consistent labeling for which a compatible queue
    assignment is possible; (iii) during execution the assignment of
    queues to competing messages is compatible with their labels.
    Then the program runs to completion — queue-induced deadlocks do
    not occur.

:func:`verify_theorem1` checks each premise explicitly, then runs the
simulator under the ordered (compatible) policy and reports the verdict.
It is used by the property-based test suite to validate the theorem over
random program ensembles, and by benches to contrast against FCFS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import ArrayConfig
from repro.arch.routing import Router, default_router
from repro.arch.topology import ExplicitLinear, Topology
from repro.core.crossing import LookaheadConfig, cross_off, route_capacities
from repro.core.consistency import check_consistency
from repro.core.labeling import Labeling, constraint_labeling, label_messages
from repro.core.program import ArrayProgram
from repro.core.requirements import check_assumption_ii
from repro.errors import DeadlockedProgramError
from repro.sim.result import SimulationResult
from repro.sim.runtime import Simulator


@dataclass
class TheoremReport:
    """Outcome of checking Theorem 1's premises and conclusion."""

    deadlock_free: bool
    labeling: Labeling | None
    consistent: bool
    assumption_ii_ok: bool
    premise_failures: list[str]
    result: SimulationResult | None

    @property
    def premises_hold(self) -> bool:
        """True when (i) and (ii) are established."""
        return self.deadlock_free and self.consistent and self.assumption_ii_ok

    @property
    def conclusion_holds(self) -> bool:
        """True when the simulated run completed without deadlock."""
        return self.result is not None and self.result.completed

    @property
    def verified(self) -> bool:
        """Premises hold and the run completed — the theorem's statement."""
        return self.premises_hold and self.conclusion_holds


def verify_theorem1(
    program: ArrayProgram,
    config: ArrayConfig | None = None,
    topology: Topology | None = None,
    router: Router | None = None,
    registers: dict[str, dict[str, float | None]] | None = None,
    max_events: int | None = 5_000_000,
    scheme: str = "constraint",
) -> TheoremReport:
    """Check Theorem 1 end to end on one program/configuration.

    Premise (i) uses the crossing-off procedure (with lookahead bounds
    derived from the configuration when queues have buffering). Premise
    (ii) produces a labeling — ``scheme="constraint"`` (default, always
    succeeds) or ``scheme="paper"`` (the literal Section 6 procedure) —
    then runs the consistency checker and the assumption-(ii) queue-count
    check. Premise (iii) is supplied by construction: the simulator runs
    the ordered + simultaneous policy. If any premise fails, the
    simulation is skipped and the failure reported.
    """
    cfg = config or ArrayConfig()
    topo = topology or ExplicitLinear(tuple(program.cells))
    rtr = router or default_router(topo)
    failures: list[str] = []

    lookahead: LookaheadConfig | None = None
    if cfg.queue_capacity > 0 or cfg.allow_extension:
        lookahead = route_capacities(
            program, rtr, cfg.queue_capacity, allow_extension=cfg.allow_extension
        )
    crossing = cross_off(program, lookahead=lookahead)
    if not crossing.deadlock_free:
        failures.append(
            f"premise (i) fails: program not deadlock-free "
            f"(uncrossed ops in {sorted(crossing.uncrossed)})"
        )
        return TheoremReport(False, None, False, False, failures, None)

    try:
        if scheme == "paper":
            labeling = label_messages(program, lookahead=lookahead)
        else:
            labeling = constraint_labeling(program, lookahead=lookahead)
    except DeadlockedProgramError as exc:  # pragma: no cover - guarded above
        failures.append(f"labeling failed: {exc}")
        return TheoremReport(True, None, False, False, failures, None)
    violations = check_consistency(program, labeling)
    consistent = not violations
    if violations:
        failures.append(f"premise (ii) fails: inconsistent labeling {violations[0]}")

    shortfalls = check_assumption_ii(program, rtr, labeling, cfg)
    assumption_ok = not shortfalls
    if shortfalls:
        failures.append(
            "premise (ii) fails: queue shortfall "
            + "; ".join(str(s) for s in shortfalls)
        )

    result: SimulationResult | None = None
    if consistent and assumption_ok:
        sim = Simulator(
            program,
            config=cfg,
            topology=topo,
            router=rtr,
            policy="ordered",
            labeling=labeling,
            registers=registers,
        )
        result = sim.run(max_events=max_events)
        if not result.completed:
            failures.append(
                f"CONCLUSION VIOLATED: run {'deadlocked' if result.deadlocked else 'timed out'}"
                f" at t={result.time}"
            )
    return TheoremReport(
        deadlock_free=True,
        labeling=labeling,
        consistent=consistent,
        assumption_ii_ok=assumption_ok,
        premise_failures=failures,
        result=result,
    )
