"""The crossing-off procedure (Sections 3 and 8.1).

The procedure repeatedly finds *executable pairs* — a ``W(X)`` and ``R(X)``
that are both at the front of their cell programs — and crosses them off.
A program is deadlock-free iff every operation gets crossed off.

Section 8.1 relaxes the front requirement with *lookahead*: in locating a
pair's write or read operation we may skip into the middle of a cell
program, subject to

* **R1** — only write operations may be skipped (a skipped read could hide
  a value dependency, which no amount of buffering can fix);
* **R2** — the number of skipped (still-uncrossed) write operations to any
  message must not exceed the total size of the queues that message will
  cross, because each skipped write is a word that must sit in a buffer.

Two stepping modes are provided. ``parallel`` crosses every pair executable
at the start of a step simultaneously — this reproduces Fig. 4, whose steps
3, 5 and 9 each cross two pairs. ``sequential`` crosses one pair per step
and is the mode the labeling scheme of Section 6 drives.

Implementation
--------------

The procedure is an *incremental* engine rather than a per-step simulation
of the text, and it works entirely on **dense interned ids** rather than
name strings. Four ingredients make it fast on 1k-10k-cell programs:

* **interning** — cells and messages are mapped to dense ints by the
  program's :class:`~repro.core.program.InternTable` (cell ids in program
  order, message ids in *sorted-name* order, so id comparisons order
  exactly like name comparisons). Every per-(cell, kind, message)
  dict-of-dicts of the previous engine is flattened into plain lists
  indexed by those ids:

  - per *message* id (each message has exactly one sender and one
    receiver cell): sorted write/read positions (``_wpos``/``_rpos``)
    and monotone crossed-prefix counters (``_wcrossed``/``_rcrossed``);
  - per *cell* id: the crossed bitmap, the front pointer, the cell's
    read positions plus a crossed-reads counter (reads cross in per-cell
    program order thanks to R1), the ids of messages written in the cell
    (the R2 scan list), and the incident-message list driving dirty
    marking.

  Names appear only at the API boundary: :class:`PairCrossing`,
  ``uncrossed``, ``max_skipped`` and every public query translate ids
  back through the intern table. Nothing outside this module sees an id.
* **position indexes** — locating "the next uncrossed ``W(X)`` in this
  cell" is an O(1) probe, because operations of one (cell, kind, message)
  key are always crossed in program order (``executable_pair`` only ever
  locates the *first* uncrossed match), so a monotone crossed counter
  identifies the next candidate.
* **prefix write-counts** — an R2 check needs the number of uncrossed
  writes per message between a cell's front and the candidate position.
  With crossed operations forming a prefix of each message's write index,
  that count is ``bisect(positions, pos) - crossed``; the skipped region
  is never rescanned.
* **a dirty-message worklist** — a message's executable pair depends only
  on the state of its two endpoint cells, so its cached candidate is
  invalidated only when one of those cells changes. The general
  observer/pick loop is driven by this worklist; the sequential fast
  loop below replaces it with a readiness-scan drain (next section).

Sequential readiness drain
--------------------------

The sequential fast loop (which also hosts observer callbacks, so the
Section 6 labeling drive rides it) never re-derives candidates from a
dirty set. It keeps per-message-end readiness registers exactly like
the parallel stepper's — a locatable end's position and skipped-write
snapshot, refreshed by nomination scans — plus a min-heap of ids whose
two ends are both ready. Two properties make the heap exact without
lazy deletion:

* a locatable end stays locatable until its own operation crosses
  (crossings only shrink skip regions and advance the
  first-uncrossed-read bound), so a heap entry is never stale when
  popped — the popped minimum id *is* the lowest executable name;
* after crossing at position ``p`` of a cell, the rescan resumes from
  the next uncrossed position after ``p`` with the crossed end's
  skipped-write snapshot as its running counts — the window prefix
  below ``p`` is untouched by the crossing, so the snapshot *is* the
  scan state there, and no position is ever scanned twice from the
  front.

Cell positions already visited are hopped over by per-cell
successor-skip jump lists with path compression (invariant: a position
is uncrossed iff it maps to itself, which is also how ``uncrossed`` is
reconstructed); amortized, a whole run does O(total ops · α) scan work.

Columnar backend
----------------

:mod:`repro.core.crossing_np` provides a numpy *columnar* backend with
bit-identical output: the intern table's encoded sequences are exported
once per program as flat position/count arrays (sign-coded ops,
per-message sorted write/read positions, per-cell read positions and
sorted write-mid lists, and a cumulative write-count table that answers
every R2 prefix query with one gather and one subtract), the parallel
mode steps as whole-array boolean masks with batch crossing, the
sequential mode drains the same readiness structure from a vectorized
seed, and ``PairCrossing``/``uncrossed``/``max_skipped`` materialize
lazily at the result boundary. Selection: the ``backend`` argument of
:func:`cross_off` / ``CrossingState(engine=...)`` >
:func:`configure_crossing_backend` > the ``REPRO_CROSSING_BACKEND``
environment variable (``interned``, ``columnar`` or ``auto``; default
``auto``). ``auto`` picks columnar when numpy imports and the program
has at least ``COLUMNAR_AUTO_MIN_OPS`` transfer ops (conversion must
amortize); without numpy it silently falls back to the interned engine,
while an *explicit* ``columnar`` raises
:class:`~repro.errors.ConfigError`. Observer/pick callbacks always pin
the interned engine (they need the live incremental state). The
bit-identity contract is enforced by the same differential harness that
gates the interned fast loops: identical ``steps``/``crossings``/
``uncrossed``/``max_skipped`` on every corpus, both modes, every
lookahead budget — analysis caches therefore never key on the backend.

Bucketed parallel step flush
----------------------------

Maximal-parallel stepping (cross every pair executable at step start) is
driven by a *bucketed* executable structure instead of the dirty
worklist, so a step costs O(pairs crossed + cells dirtied) rather than
re-deriving and re-sorting candidates from the whole dirty set:

* per message end there is a **readiness bit** (``_ready_w`` for the
  sender end, ``_ready_r`` for the receiver end): the end's next
  uncrossed operation is locatable *right now* under R1/R2;
* a message whose two bits are both set is executable; on that
  transition its id enters the **newly-executable bucket** exactly once
  (an ``in_bucket`` flag suppresses duplicates);
* at step start the bucket *is* the executable set — everything
  executable before was crossed by the previous step — so sorting it
  costs O(newly executable · log), never O(all executable), and the
  drain yields the batch in ascending id == ascending name order, the
  same order :meth:`CrossingState.executable_pairs` documents;
* each batch member's entry (positions + skipped-write tuples) was
  recorded by the latest nomination scan of its endpoint cells; neither
  cell changed since (changed cells are always rescanned), so the
  stored entry equals a recomputation against the step-start state;
* after the batch is crossed, only the **changed cells** are rescanned:
  one pass over each cell's lookahead window ``[front, first uncrossed
  read]`` re-nominates every locatable end in that cell (cumulative
  uncrossed-write counts give the R2 cutoff), refreshing readiness bits
  and feeding the bucket for the next step.

The invariants that make the bits safe to carry across steps: an end's
readiness depends only on its own cell's state; crossings only shrink
skip regions and advance the first-uncrossed-read bound, so a ready end
stays ready until its own operation is crossed (the apply clears both
bits of the crossed message, and the post-step rescans of its two cells
re-nominate whatever is locatable next). The general
observer/pick loop keeps the dirty worklist; its step-start snapshots
merge a sorted previous snapshot with a min-heap of newly executable
ids in O(previous + changed) instead of re-sorting.

The original scan-based implementation is preserved as a reference oracle
in ``tests/reference_crossing.py``; property tests assert bit-identical
``steps``/``crossings``/``max_skipped`` in both modes.
"""

from __future__ import annotations

import math
import os
from bisect import bisect_left
from heapq import heappop, heappush
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, NamedTuple, Protocol

from repro.core.ops import Op
from repro.core.program import ArrayProgram
from repro.errors import ConfigError

#: Below this many transfer ops, ``auto`` keeps the interned engine —
#: the columnar conversion would not amortize on a one-shot analysis.
COLUMNAR_AUTO_MIN_OPS = 4096

_BACKEND_NAMES = ("auto", "interned", "columnar")

_configured_backend: str | None = None


def configure_crossing_backend(backend: str | None) -> str | None:
    """Set the process-wide crossing-backend preference.

    ``backend`` is ``"auto"``, ``"interned"``, ``"columnar"`` or ``None``
    (clear the preference). Per-call ``backend=`` arguments still win;
    the ``REPRO_CROSSING_BACKEND`` environment variable is consulted only
    when neither is set. Returns the previous preference so callers can
    restore it.
    """
    global _configured_backend
    if backend is not None and backend not in _BACKEND_NAMES:
        raise ConfigError(
            f"unknown crossing backend {backend!r}; "
            f"choose one of {', '.join(_BACKEND_NAMES)}"
        )
    previous = _configured_backend
    _configured_backend = backend
    return previous


def configured_crossing_backend() -> str | None:
    """The process-wide preference set by :func:`configure_crossing_backend`."""
    return _configured_backend


def resolve_backend(program: ArrayProgram, backend: str | None = None) -> str:
    """Resolve the crossing backend for one run over ``program``.

    Resolution order: explicit ``backend`` argument, then
    :func:`configure_crossing_backend`, then ``REPRO_CROSSING_BACKEND``,
    then ``"auto"``. ``auto`` returns ``"columnar"`` when numpy imports
    and the program has at least :data:`COLUMNAR_AUTO_MIN_OPS` transfer
    ops, else ``"interned"`` (silent fallback — the zero-dependency
    install never errors). An explicit ``"columnar"`` without numpy
    raises :class:`~repro.errors.ConfigError`.
    """
    name = backend if backend is not None else _configured_backend
    if name is None:
        name = os.environ.get("REPRO_CROSSING_BACKEND") or "auto"
    if name not in _BACKEND_NAMES:
        raise ConfigError(
            f"unknown crossing backend {name!r}; "
            f"choose one of {', '.join(_BACKEND_NAMES)}"
        )
    if name == "interned":
        return "interned"
    from repro.core import crossing_np

    if name == "columnar":
        if not crossing_np.numpy_available():
            raise ConfigError(
                "crossing backend 'columnar' requires numpy (install the "
                "repro[fast] extra); use 'interned' or 'auto' for the "
                "pure-Python engine"
            )
        return "columnar"
    if (
        crossing_np.numpy_available()
        and program.total_transfer_ops >= COLUMNAR_AUTO_MIN_OPS
    ):
        return "columnar"
    return "interned"


@dataclass(frozen=True)
class LookaheadConfig:
    """Lookahead parameters for the crossing-off procedure.

    ``route_capacity`` bounds skipped writes per message (rule R2): it maps
    each message name to the total buffering along its route. Messages not
    present get ``default_capacity``. Use ``math.inf`` for the
    queue-extension regime where spilling makes buffering unbounded.
    """

    route_capacity: dict[str, float] = field(default_factory=dict)
    default_capacity: float = 0.0

    def capacity(self, message: str) -> float:
        """R2 bound for ``message``."""
        return self.route_capacity.get(message, self.default_capacity)


class PairCrossing(NamedTuple):
    """One crossed-off executable pair.

    A named tuple rather than a dataclass: the parallel fast loop
    materializes one per crossing, and tuple construction is the cheaper
    of the two by ~3x at 10k-cell batch sizes.
    """

    step: int
    message: str
    sender: str
    sender_pos: int
    receiver: str
    receiver_pos: int
    skipped_sender: tuple[tuple[str, int], ...] = ()
    skipped_receiver: tuple[tuple[str, int], ...] = ()

    @property
    def skipped_messages(self) -> set[str]:
        """Messages over whose writes this pair's location skipped."""
        return {m for m, _count in self.skipped_sender} | {
            m for m, _count in self.skipped_receiver
        }

    def __str__(self) -> str:
        return (
            f"step {self.step}: {self.message} "
            f"[W@{self.sender}:{self.sender_pos}, R@{self.receiver}:{self.receiver_pos}]"
        )


@dataclass
class CrossingResult:
    """Outcome of running the crossing-off procedure."""

    deadlock_free: bool
    steps: list[list[PairCrossing]]
    crossings: list[PairCrossing]
    uncrossed: dict[str, list[Op]]
    max_skipped: dict[str, int]
    lookahead_used: bool

    @property
    def step_count(self) -> int:
        """Number of steps the procedure took."""
        return len(self.steps)

    @property
    def pairs_crossed(self) -> int:
        """Total executable pairs crossed off."""
        return len(self.crossings)

    def pairs_in_step(self, step: int) -> list[PairCrossing]:
        """Pairs crossed in 1-based ``step``."""
        return self.steps[step - 1]


class _LastCrossedView(Mapping):
    """Read-only name-keyed view of the per-cell last-crossed message."""

    __slots__ = ("_state",)

    def __init__(self, state: "CrossingState") -> None:
        self._state = state

    def __getitem__(self, cell: str) -> str | None:
        state = self._state
        mid = state._last_crossed[state.intern.cell_ids[cell]]
        return None if mid < 0 else state.intern.message_names[mid]

    def __iter__(self) -> Iterator[str]:
        return iter(self._state.intern.cell_names)

    def __len__(self) -> int:
        return len(self._state.intern.cell_names)


class CrossingState:
    """Mutable state of the procedure over one program.

    Exposes the queries the Section 6 labeling scheme needs while it drives
    a sequential crossing-off run. Pairs passed to :meth:`cross` must come
    from :meth:`executable_pair`/:meth:`executable_pairs` of this state —
    the incremental indexes rely on operations being crossed first-uncrossed
    first, and :meth:`cross` rejects anything else.

    Internally everything is indexed by the program's interned cell and
    message ids (see the module docstring for the layout); the public
    queries and results speak names.
    """

    __slots__ = (
        "program",
        "lookahead",
        "engine",
        "intern",
        "total_remaining",
        "_senders",
        "_receivers",
        "_enc",
        "_crossed",
        "_fronts",
        "_remaining",
        "_last_crossed",
        "_max_skipped",
        "_wpos",
        "_wcrossed",
        "_rpos",
        "_rcrossed",
        "_cell_reads",
        "_cell_reads_crossed",
        "_cell_write_mids",
        "_cap",
        "_executable",
        "_exec_order",
        "_exec_added",
        "_dirty",
        "_incident",
    )

    def __init__(
        self,
        program: ArrayProgram,
        lookahead: LookaheadConfig | None = None,
        engine: str | None = None,
    ) -> None:
        self.program = program
        self.lookahead = lookahead
        # The resolved kernel preference for drivers over this state
        # (cross_off consults the same resolution). The incremental
        # query API below is always the interned implementation; the
        # columnar kernels live in repro.core.crossing_np and are
        # dispatched at the cross_off boundary.
        self.engine = resolve_backend(program, engine)
        intern = program.intern
        self.intern = intern
        ncells = len(intern.cell_names)
        nmsgs = len(intern.message_names)
        self._senders = intern.senders
        self._receivers = intern.receivers
        enc = intern.encoded_transfers
        self._enc = enc
        self._crossed: list[bytearray] = [bytearray(len(seq)) for seq in enc]
        self._fronts: list[int] = [0] * ncells
        self._remaining: list[int] = [2 * length for length in intern.lengths]
        self.total_remaining = sum(self._remaining)
        self._last_crossed: list[int] = [-1] * ncells
        self._max_skipped: list[int] = [0] * nmsgs
        # --- incremental indexes (see _ensure_indexes; the bucketed
        # parallel loop derives everything from `enc` and the crossed
        # bitmaps, so the position indexes are built on first use by the
        # worklist paths) ---
        self._wcrossed: list[int] = [0] * nmsgs
        self._rcrossed: list[int] = [0] * nmsgs
        self._cell_reads_crossed: list[int] = [0] * ncells
        self._wpos: list[list[int]] | None = None
        self._rpos: list[list[int]] | None = None
        self._cell_reads: list[list[int]] | None = None
        self._cell_write_mids: list[list[int]] | None = None
        # R2 bounds resolved to a per-id list once; None without lookahead.
        self._cap: list[float] | None = (
            None
            if lookahead is None
            else [lookahead.capacity(name) for name in intern.message_names]
        )
        # Candidate worklist: each message's executable pair is cached in
        # `_executable` as a lightweight (sender_pos, receiver_pos,
        # skipped_sender, skipped_receiver) id-tuple (absence = no pair)
        # and recomputed only for ids in `_dirty` — a message is dirtied
        # exactly when one of its endpoint cells changes.
        self._executable: dict[int, tuple] = {}
        self._dirty: set[int] = set(range(nmsgs))
        # Step-start snapshot state for executable_pairs(): the previous
        # snapshot (id-sorted, lazily pruned) plus a min-heap of ids that
        # (re)entered `_executable` since — merging the two is
        # O(previous + changed), never a re-sort of the whole set.
        self._exec_order: list[int] = []
        self._exec_added: list[int] = []
        # Incident lists (dirty marking for the worklist paths) are built
        # on first use — the bucketed parallel loop never needs them —
        # and pruned as messages finish, so dirty marking only ever walks
        # live messages.
        self._incident: list[list[int]] | None = None

    def _ensure_indexes(self) -> None:
        """Build the per-message position indexes on first use.

        The per-(message, kind) sorted position lists, each cell's read
        positions and its R2 scan list are what :meth:`_locate_end` and
        the worklist machinery probe; they are derived purely from the
        immutable encoded transfer sequences, so building them at any
        point of a run is safe (the monotone crossed counters live
        separately and are maintained from construction).
        """
        if self._wpos is not None:
            return
        nmsgs = len(self.intern.message_names)
        wpos: list[list[int]] = [[] for _ in range(nmsgs)]
        rpos: list[list[int]] = [[] for _ in range(nmsgs)]
        cell_reads: list[list[int]] = []
        cell_write_mids: list[list[int]] = []
        for seq in self._enc:
            reads_here: list[int] = []
            wmids: list[int] = []
            for pos, (is_write, mid) in enumerate(seq):
                if is_write:
                    positions = wpos[mid]
                    if not positions:
                        wmids.append(mid)
                    positions.append(pos)
                else:
                    rpos[mid].append(pos)
                    reads_here.append(pos)
            cell_reads.append(reads_here)
            cell_write_mids.append(wmids)
        self._wpos = wpos
        self._rpos = rpos
        self._cell_reads = cell_reads
        self._cell_write_mids = cell_write_mids

    def _ensure_incident(self) -> list[list[int]]:
        """Build the per-cell incident-message lists on first use."""
        incident = self._incident
        if incident is None:
            incident = [[] for _ in range(len(self.intern.cell_names))]
            for mid in range(len(self.intern.message_names)):
                if self._remaining[mid] > 0:
                    incident[self._senders[mid]].append(mid)
                    incident[self._receivers[mid]].append(mid)
            self._incident = incident
        return incident

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        """True when every R/W operation has been crossed off."""
        return self.total_remaining == 0

    @property
    def fronts(self) -> dict[str, int]:
        """Front pointer of every cell, by name (boundary view)."""
        return dict(zip(self.intern.cell_names, self._fronts))

    @property
    def remaining_per_message(self) -> dict[str, int]:
        """Uncrossed R+W operation count per message, by name."""
        return dict(zip(self.intern.message_names, self._remaining))

    @property
    def max_skipped(self) -> dict[str, int]:
        """Peak skipped-write count per message, by name."""
        return dict(zip(self.intern.message_names, self._max_skipped))

    @property
    def last_crossed_message(self) -> Mapping[str, str | None]:
        """Per-cell name of the most recently crossed message (O(1) view)."""
        return _LastCrossedView(self)

    def uncrossed_ops(self, cell: str) -> list[Op]:
        """Remaining (uncrossed) operations of ``cell``, in program order."""
        crossed = self._crossed[self.intern.cell_ids[cell]]
        return [
            op
            for op, done in zip(self.program.transfers(cell), crossed)
            if not done
        ]

    def future_messages(self, cell: str, exclude: str | None = None) -> set[str]:
        """Messages ``cell`` will still access, optionally excluding one.

        Computed on demand from the cell's crossed bitmap — cell programs
        are short, and dropping the per-op remaining-count bookkeeping
        this query used to rely on keeps the apply paths lean.
        """
        cid = self.intern.cell_ids[cell]
        names = self.intern.message_names
        crossed = self._crossed[cid]
        out = {
            names[mid]
            for pos, (_is_write, mid) in enumerate(self._enc[cid])
            if not crossed[pos]
        }
        out.discard(exclude or "")
        return out

    def _locate_end(
        self, cid: int, positions: list[int], key_crossed: int
    ) -> tuple[int, tuple[tuple[int, int], ...]] | None:
        """Find the next uncrossed op of one pair end in cell ``cid``.

        ``positions``/``key_crossed`` are the message's write index (sender
        end) or read index (receiver end). Without lookahead only the
        front operation qualifies. With lookahead the candidate may sit
        deeper, subject to no uncrossed read before it (R1) and
        per-message skipped-write budgets (R2), both answered from the
        indexes without scanning the skipped region. Returns ``(pos,
        skipped)`` with ``skipped`` as an id-sorted tuple (which is also
        name-sorted: message ids follow sorted-name order).
        """
        if key_crossed >= len(positions):
            return None
        pos = positions[key_crossed]
        if pos == self._fronts[cid]:
            # Everything before the front is crossed: nothing was skipped.
            return (pos, ())
        cap = self._cap
        if cap is None:
            return None
        # R1: an uncrossed read before `pos` blocks the skip.
        reads = self._cell_reads[cid]
        reads_crossed = self._cell_reads_crossed[cid]
        if reads_crossed < len(reads) and reads[reads_crossed] < pos:
            return None
        # R2: uncrossed writes per message in [front, pos) from the prefix
        # counts — crossed writes form a prefix of each message's index.
        skipped: list[tuple[int, int]] = []
        wpos = self._wpos
        wcrossed = self._wcrossed
        for mid in self._cell_write_mids[cid]:
            count = bisect_left(wpos[mid], pos) - wcrossed[mid]
            if count > 0:
                if count > cap[mid]:
                    return None  # R2: buffering along the route exhausted
                skipped.append((mid, count))
        skipped.sort()
        return (pos, tuple(skipped))

    def _compute_entry(self, mid: int) -> tuple | None:
        """Locate both ends of message ``mid``'s executable pair, if any."""
        if self._remaining[mid] == 0:
            return None
        write = self._locate_end(
            self._senders[mid], self._wpos[mid], self._wcrossed[mid]
        )
        if write is None:
            return None
        read = self._locate_end(
            self._receivers[mid], self._rpos[mid], self._rcrossed[mid]
        )
        if read is None:
            return None
        return (write[0], read[0], write[1], read[1])

    def _flush_dirty(self) -> None:
        """Re-locate every dirtied message, updating the executable set.

        Ids that (re)enter the executable set are also pushed into
        ``_exec_added`` — the "newly executable" bucket the next
        :meth:`executable_pairs` snapshot merges with the previous one.
        """
        dirty = self._dirty
        if not dirty:
            return
        self._ensure_indexes()
        executable = self._executable
        compute = self._compute_entry
        added = self._exec_added
        for mid in dirty:
            entry = compute(mid)
            if entry is None:
                executable.pop(mid, None)
            else:
                if mid not in executable:
                    heappush(added, mid)
                executable[mid] = entry
        dirty.clear()

    def _as_pair(self, mid: int, entry: tuple, step: int = 0) -> PairCrossing:
        intern = self.intern
        names = intern.message_names
        cells = intern.cell_names
        sender_pos, receiver_pos, skipped_sender, skipped_receiver = entry
        if skipped_sender:
            skipped_sender = tuple((names[m], c) for m, c in skipped_sender)
        if skipped_receiver:
            skipped_receiver = tuple(
                (names[m], c) for m, c in skipped_receiver
            )
        return PairCrossing(
            step,
            names[mid],
            cells[self._senders[mid]],
            sender_pos,
            cells[self._receivers[mid]],
            receiver_pos,
            skipped_sender,
            skipped_receiver,
        )

    def executable_pair(self, message: str) -> PairCrossing | None:
        """The executable pair for ``message``, if one exists right now."""
        mid = self.intern.message_ids[message]
        if mid in self._dirty:
            self._dirty.discard(mid)
            self._ensure_indexes()
            entry = self._compute_entry(mid)
            if entry is None:
                self._executable.pop(mid, None)
            else:
                if mid not in self._executable:
                    heappush(self._exec_added, mid)
                self._executable[mid] = entry
        cached = self._executable.get(mid)
        if cached is None:
            return None
        return self._as_pair(mid, cached)

    def executable_pairs(self) -> list[PairCrossing]:
        """All currently executable pairs, ordered by message name.

        The id order (== name order, by intern construction) comes from
        merging the previous snapshot with the newly-executable bucket —
        O(previous + changed) per call — rather than sorting the whole
        executable set; stale ids and duplicates drop out during the
        merge, and the merged list becomes the next snapshot.
        """
        self._flush_dirty()
        executable = self._executable
        order = self._exec_order
        added = self._exec_added
        merged: list[int] = []
        i = 0
        size = len(order)
        prev = -1
        while added or i < size:
            if added and (i >= size or added[0] <= order[i]):
                mid = heappop(added)
            else:
                mid = order[i]
                i += 1
            if mid != prev and mid in executable:
                merged.append(mid)
                prev = mid
        self._exec_order = merged
        return [self._as_pair(mid, executable[mid]) for mid in merged]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def _apply_cross(
        self, mid: int, sender_pos: int, receiver_pos: int,
        skipped_sender: tuple, skipped_receiver: tuple,
    ) -> None:
        """Mutation core shared by :meth:`cross` and the fast loop.

        ``skipped_*`` tuples carry interned ids, not names.
        """
        dirty = self._dirty
        fronts = self._fronts
        senders = self._senders
        receivers = self._receivers
        sender = senders[mid]
        receiver = receivers[mid]
        for cid, pos, is_write in (
            (sender, sender_pos, True),
            (receiver, receiver_pos, False),
        ):
            if is_write:
                self._wcrossed[mid] += 1
            else:
                self._rcrossed[mid] += 1
                self._cell_reads_crossed[cid] += 1
            crossed_list = self._crossed[cid]
            crossed_list[pos] = True
            self._last_crossed[cid] = mid
            # The front moves iff the crossed op *was* the front.
            if pos == fronts[cid]:
                size = len(crossed_list)
                front = pos + 1
                while front < size and crossed_list[front]:
                    front += 1
                fronts[cid] = front
                # The front moved: every incident message's eligibility
                # (front fast path, skip region) may have changed.
                dirty.update(self._incident[cid])
            else:
                # Front unchanged: a message's candidate in this cell is
                # affected only if the crossed position lies *before* its
                # first uncrossed op here — R1/R2 look solely at the
                # region up to the candidate, and the first-uncrossed
                # pointers of other messages did not move. Each incident
                # message keys exactly one index in this cell: its write
                # index if this cell is its sender, its read index if its
                # receiver (sender == receiver is impossible).
                wpos = self._wpos
                wcrossed = self._wcrossed
                rpos = self._rpos
                rcrossed = self._rcrossed
                for m in self._incident[cid]:
                    if m in dirty:
                        continue
                    if senders[m] == cid:
                        positions = wpos[m]
                        k = wcrossed[m]
                    else:
                        positions = rpos[m]
                        k = rcrossed[m]
                    if k < len(positions) and pos < positions[k]:
                        dirty.add(m)
        # The crossed message's own candidate always changes (and must be
        # dropped once its remaining count reaches zero) — the positional
        # probes above miss it when its final operation in a cell crossed.
        dirty.add(mid)
        remaining = self._remaining
        remaining[mid] -= 2
        if remaining[mid] == 0:
            # Finished: stop dirty marking from ever touching it again.
            self._incident[sender].remove(mid)
            self._incident[receiver].remove(mid)
        self.total_remaining -= 2
        if skipped_sender or skipped_receiver:
            max_skipped = self._max_skipped
            for m, count in skipped_sender + skipped_receiver:
                if count > max_skipped[m]:
                    max_skipped[m] = count

    def cross(self, pair: PairCrossing, step: int) -> PairCrossing:
        """Cross off ``pair``'s two operations, returning it stamped with
        the step number."""
        self._ensure_indexes()
        intern = self.intern
        message_ids = intern.message_ids
        mid = message_ids.get(pair.message)
        valid = (
            mid is not None
            and pair.sender == intern.cell_names[self._senders[mid]]
            and pair.receiver == intern.cell_names[self._receivers[mid]]
        )
        if valid:
            for positions, key_crossed, pos in (
                (self._wpos[mid], self._wcrossed[mid], pair.sender_pos),
                (self._rpos[mid], self._rcrossed[mid], pair.receiver_pos),
            ):
                if key_crossed >= len(positions) or positions[key_crossed] != pos:
                    valid = False
                    break
        if not valid:
            raise ValueError(
                f"pair {pair} does not cross the first uncrossed "
                f"operation on {pair.message!r} of its endpoint cells; "
                f"only pairs returned by executable_pair(s) can be crossed"
            )
        self._ensure_incident()
        self._apply_cross(
            mid,
            pair.sender_pos,
            pair.receiver_pos,
            tuple((message_ids[name], c) for name, c in pair.skipped_sender),
            tuple((message_ids[name], c) for name, c in pair.skipped_receiver),
        )
        return PairCrossing(
            step=step,
            message=pair.message,
            sender=pair.sender,
            sender_pos=pair.sender_pos,
            receiver=pair.receiver,
            receiver_pos=pair.receiver_pos,
            skipped_sender=pair.skipped_sender,
            skipped_receiver=pair.skipped_receiver,
        )


class PairObserver(Protocol):
    """Hook invoked just before each pair is crossed off (labeling uses it)."""

    def __call__(self, state: CrossingState, pair: PairCrossing) -> None: ...


def _run_parallel_fast(
    state: CrossingState,
    steps: list[list[PairCrossing]],
    crossings: list[PairCrossing],
) -> None:
    """Bucketed maximal-parallel stepping (the analysis fast path).

    Implements the structure described under "Bucketed parallel step
    flush" in the module docstring with everything in locals — this
    function and the scan closure below are the hottest loops of the
    whole compile-time analysis at 10k cells. Output is bit-identical
    to driving :meth:`CrossingState.executable_pairs` +
    :meth:`CrossingState.cross` step by step:

    * the bucket holds exactly the messages that became executable since
      the previous step (deduplicated by ``in_bucket``); sorting it
      (O(new log new), never the whole executable set) yields the
      step batch in ascending id == ascending name order;
    * each batch member's candidate entry (positions + skipped-write
      tuples, id-sorted == name-sorted) was recorded by the last
      nomination scan of its endpoint cells — both unchanged since, so
      the stored entry equals what a step-start recomputation would
      locate;
    * crossing only shrinks skip regions and advances
      first-uncrossed-read bounds, so a located end stays located until
      its own operation crosses — readiness bits survive across steps
      and only the cells a batch touched are rescanned.
    """
    intern = state.intern
    names = intern.message_names
    cells = intern.cell_names
    nmsgs = len(names)
    enc_all = state._enc
    crossed_all = state._crossed
    fronts = state._fronts
    cap = state._cap
    senders = state._senders
    receivers = state._receivers
    remaining = state._remaining
    max_skipped = state._max_skipped
    ready_w = bytearray(nmsgs)
    ready_r = bytearray(nmsgs)
    in_bucket = bytearray(nmsgs)
    bucket: list[int] = []
    bucket_push = bucket.append
    w_cand_pos = [0] * nmsgs
    w_cand_skip: list[tuple] = [()] * nmsgs
    r_cand_pos = [0] * nmsgs
    r_cand_skip: list[tuple] = [()] * nmsgs
    changed_flag = bytearray(len(cells))
    pair_new = PairCrossing

    def scan(cids) -> None:
        """Re-nominate every locatable pair end in each cell of ``cids``.

        Per cell, one pass over the lookahead window ``[front, first
        uncrossed read]``: the first uncrossed operation of each (kind,
        message) key met before the R2 cutoff is that end's candidate.
        Cumulative uncrossed-write counts give each candidate's skipped
        tuple and the cutoff — once skipping one more write of some
        message would exceed its capacity, nothing deeper can be
        located; the first uncrossed read nominates its receiver end
        and ends the window (R1). (Batched over cells so the per-step
        rescan pays one call, not one per changed cell.)
        """
        for cid in cids:
            enc = enc_all[cid]
            size = len(enc)
            crossed = crossed_all[cid]
            # Advance the front lazily over ops the batch crossed — the
            # apply loop leaves front movement to the rescan.
            pos = fronts[cid]
            while pos < size and crossed[pos]:
                pos += 1
            fronts[cid] = pos
            counts: dict[int, int] | None = None
            while pos < size:
                if not crossed[pos]:
                    is_write, mid = enc[pos]
                    if not is_write:
                        # The cell's first uncrossed read: necessarily
                        # this message's next read, hence its
                        # receiver-end candidate — and the end of the
                        # window (R1).
                        ready_r[mid] = 1
                        r_cand_pos[mid] = pos
                        if not counts:
                            r_cand_skip[mid] = ()
                        elif len(counts) == 1:
                            r_cand_skip[mid] = tuple(counts.items())
                        else:
                            r_cand_skip[mid] = tuple(sorted(counts.items()))
                        if ready_w[mid] and not in_bucket[mid]:
                            in_bucket[mid] = 1
                            bucket_push(mid)
                        break
                    if counts is None or mid not in counts:
                        # This message's next write, locatable in budget.
                        ready_w[mid] = 1
                        w_cand_pos[mid] = pos
                        if not counts:
                            w_cand_skip[mid] = ()
                        elif len(counts) == 1:
                            w_cand_skip[mid] = tuple(counts.items())
                        else:
                            w_cand_skip[mid] = tuple(sorted(counts.items()))
                        if ready_r[mid] and not in_bucket[mid]:
                            in_bucket[mid] = 1
                            bucket_push(mid)
                    if cap is None:
                        break  # no lookahead: the front op is the window
                    if counts is None:
                        counts = {}
                    skipped = counts.get(mid, 0) + 1
                    counts[mid] = skipped
                    if skipped > cap[mid]:
                        break  # R2: deeper candidates would overfill mid
                pos += 1

    scan(range(len(cells)))
    total_remaining = state.total_remaining
    while bucket:
        # Step-start snapshot: the bucket *is* the executable set (what
        # was executable before is crossed; what is executable now was
        # pushed by the rescans), already deduplicated.
        bucket.sort()
        step_no = len(steps) + 1
        this_step: list[PairCrossing] = []
        stamp = this_step.append
        changed: list[int] = []
        changed_push = changed.append
        for mid in bucket:
            in_bucket[mid] = 0
            sender = senders[mid]
            receiver = receivers[mid]
            sender_pos = w_cand_pos[mid]
            receiver_pos = r_cand_pos[mid]
            skip_s = w_cand_skip[mid]
            skip_r = r_cand_skip[mid]
            # --- apply: crossed bits + readiness only; front movement
            # and the worklist-path counters are left to the rescans
            # (this runner owns its state — the result reads nothing
            # but the crossed bitmaps, remaining counts, max_skipped).
            ready_w[mid] = 0
            ready_r[mid] = 0
            remaining[mid] -= 2
            total_remaining -= 2
            crossed_all[sender][sender_pos] = 1
            crossed_all[receiver][receiver_pos] = 1
            if not changed_flag[sender]:
                changed_flag[sender] = 1
                changed_push(sender)
            if not changed_flag[receiver]:
                changed_flag[receiver] = 1
                changed_push(receiver)
            # --- materialize (ids -> names only here) -----------------
            if skip_s:
                for m, count in skip_s:
                    if count > max_skipped[m]:
                        max_skipped[m] = count
                skip_s = tuple([(names[m], c) for m, c in skip_s])
            if skip_r:
                for m, count in skip_r:
                    if count > max_skipped[m]:
                        max_skipped[m] = count
                skip_r = tuple([(names[m], c) for m, c in skip_r])
            stamp(
                pair_new(
                    step_no,
                    names[mid],
                    cells[sender],
                    sender_pos,
                    cells[receiver],
                    receiver_pos,
                    skip_s,
                    skip_r,
                )
            )
        crossings.extend(this_step)
        steps.append(this_step)
        bucket.clear()
        for cid in changed:
            changed_flag[cid] = 0
        scan(changed)
    state.total_remaining = total_remaining


def _run_sequential_fast(
    state: CrossingState,
    steps: list[list[PairCrossing]],
    crossings: list[PairCrossing],
    observer: PairObserver | None,
) -> None:
    """Readiness-scan sequential drain (see the module docstring).

    One pair per step, always the lowest executable message name: the
    heap of both-ends-ready ids is exact (a located end stays located
    until its own op crosses), so the popped minimum needs no
    re-validation. After each crossing the two endpoint cells are
    rescanned *from the crossed position*, restarting from the crossed
    end's skipped-write snapshot; successor-skip jump lists (position
    uncrossed iff it maps to itself) keep scans on uncrossed ops only.

    Observer callbacks run here too (the labeling drive): each gets the
    unstamped pair before mutation, exactly like the general loop, and
    may read the documented state views (``future_messages``,
    ``last_crossed_message``, ``fronts``, ``uncrossed_ops``,
    ``max_skipped``, ``remaining_per_message``) — all maintained per
    crossing. The worklist caches (``executable_pair(s)``) are *not*
    refreshed on this path; observers needing those run through the
    general ``pick`` loop.
    """
    intern = state.intern
    names = intern.message_names
    cells = intern.cell_names
    nmsgs = len(names)
    enc = intern.signed_transfers
    nxt = [list(range(len(seq) + 1)) for seq in enc]
    senders = state._senders
    receivers = state._receivers
    cap = state._cap
    crossed_all = state._crossed
    fronts = state._fronts
    last_crossed = state._last_crossed
    wcrossed = state._wcrossed
    rcrossed = state._rcrossed
    cell_reads_crossed = state._cell_reads_crossed
    remaining = state._remaining
    max_skipped = state._max_skipped
    ready_w = bytearray(nmsgs)
    ready_r = bytearray(nmsgs)
    in_heap = bytearray(nmsgs)
    w_pos = [0] * nmsgs
    r_pos = [0] * nmsgs
    w_skip: list[tuple] = [()] * nmsgs
    r_skip: list[tuple] = [()] * nmsgs
    heap: list[int] = []
    pair_new = PairCrossing

    def scan(cid: int, start: int, counts: dict[int, int] | None) -> None:
        """Nominate every locatable end at/after ``start`` in ``cid``.

        ``counts`` carries the skipped-write tally of the window below
        ``start`` (``None`` = fresh window from the front). Stops at the
        first uncrossed read (R1, nominating its receiver end) or at the
        first write that exhausts an R2 budget; on the way, the first
        uncrossed write of each message met is nominated with the
        current tally as its id-sorted skip snapshot.
        """
        seq = enc[cid]
        size = len(seq)
        nx = nxt[cid]
        j = start
        if j >= size:
            return
        pos = nx[j]
        if pos != j:
            while nx[pos] != pos:
                pos = nx[pos]
            while nx[j] != pos:
                nx[j], j = pos, nx[j]
        while pos < size:
            mid = seq[pos]
            if mid < 0:
                mid = ~mid
                ready_r[mid] = 1
                r_pos[mid] = pos
                if not counts:
                    r_skip[mid] = ()
                elif len(counts) == 1:
                    r_skip[mid] = tuple(counts.items())
                else:
                    r_skip[mid] = tuple(sorted(counts.items()))
                if ready_w[mid] and not in_heap[mid]:
                    in_heap[mid] = 1
                    heappush(heap, mid)
                return
            if counts is None:
                ready_w[mid] = 1
                w_pos[mid] = pos
                w_skip[mid] = ()
                if ready_r[mid] and not in_heap[mid]:
                    in_heap[mid] = 1
                    heappush(heap, mid)
                if cap is None:
                    return  # no lookahead: the front op is the window
                counts = {mid: 1}
                if cap[mid] < 1:
                    return
            else:
                k = counts.get(mid)
                if k is None:
                    ready_w[mid] = 1
                    w_pos[mid] = pos
                    if len(counts) == 1:
                        w_skip[mid] = tuple(counts.items())
                    else:
                        w_skip[mid] = tuple(sorted(counts.items()))
                    if ready_r[mid] and not in_heap[mid]:
                        in_heap[mid] = 1
                        heappush(heap, mid)
                    counts[mid] = 1
                    if cap[mid] < 1:
                        return
                else:
                    k += 1
                    counts[mid] = k
                    if k > cap[mid]:
                        return  # R2: deeper candidates would overfill mid
            j = pos + 1
            pos = nx[j]
            if pos != j:
                while nx[pos] != pos:
                    pos = nx[pos]
                while nx[j] != pos:
                    nx[j], j = pos, nx[j]

    for cid in range(len(cells)):
        scan(cid, 0, None)
    total_remaining = state.total_remaining
    while heap:
        mid = heappop(heap)
        in_heap[mid] = 0
        ready_w[mid] = 0
        ready_r[mid] = 0
        sp = w_pos[mid]
        rp = r_pos[mid]
        ss = w_skip[mid]
        sr = r_skip[mid]
        s = senders[mid]
        r = receivers[mid]
        step_no = len(steps) + 1
        # --- materialize (ids -> names only here) ---------------------
        skip_s = tuple((names[m], c) for m, c in ss) if ss else ()
        skip_r = tuple((names[m], c) for m, c in sr) if sr else ()
        stamped = pair_new(
            step_no, names[mid], cells[s], sp, cells[r], rp, skip_s, skip_r
        )
        if observer is not None:
            # The general loop hands observers the unstamped pair (the
            # step number is assigned by the crossing), before mutation.
            observer(state, stamped._replace(step=0))
        # --- apply ----------------------------------------------------
        wcrossed[mid] += 1
        rcrossed[mid] += 1
        cell_reads_crossed[r] += 1
        remaining[mid] -= 2
        total_remaining -= 2
        last_crossed[s] = mid
        last_crossed[r] = mid
        crossed_all[s][sp] = 1
        crossed_all[r][rp] = 1
        nxt[s][sp] = sp + 1
        nxt[r][rp] = rp + 1
        for cid, pos in ((s, sp), (r, rp)):
            if fronts[cid] == pos:
                nx = nxt[cid]
                j = pos + 1
                front = nx[j]
                if front != j:
                    while nx[front] != front:
                        front = nx[front]
                    while nx[j] != front:
                        nx[j], j = front, nx[j]
                fronts[cid] = front
        if ss or sr:
            for m, c in ss:
                if c > max_skipped[m]:
                    max_skipped[m] = c
            for m, c in sr:
                if c > max_skipped[m]:
                    max_skipped[m] = c
        steps.append([stamped])
        crossings.append(stamped)
        # --- rescan from the crossed positions ------------------------
        scan(s, sp + 1, dict(ss) if ss else None)
        scan(r, rp + 1, dict(sr) if sr else None)
    state.total_remaining = total_remaining


def cross_off(
    program: ArrayProgram,
    lookahead: LookaheadConfig | None = None,
    mode: str = "parallel",
    observer: PairObserver | None = None,
    pick: Callable[[list[PairCrossing]], PairCrossing] | None = None,
    backend: str | None = None,
) -> CrossingResult:
    """Run the crossing-off procedure on ``program``.

    Args:
        program: the program under analysis.
        lookahead: enable Section 8.1 lookahead with the given R2 bounds;
            ``None`` reproduces the strict Section 3 procedure.
        mode: ``"parallel"`` crosses all pairs executable at step start
            (Fig. 4's stepping); ``"sequential"`` crosses one pair per step.
        observer: called with the live state before each pair is crossed —
            the Section 6 labeling scheme plugs in here.
        pick: sequential-mode tie-breaker among executable pairs; defaults
            to lowest message name (which reproduces the paper's choice of
            A as the first pair in the Fig. 7 walkthrough).
        backend: kernel selection — ``"interned"``, ``"columnar"`` or
            ``"auto"`` (see "Columnar backend" in the module docstring);
            ``None`` defers to :func:`configure_crossing_backend` /
            ``REPRO_CROSSING_BACKEND``. Output never depends on the
            backend; observer/pick callbacks pin the interned engine.

    Returns:
        A :class:`CrossingResult`; ``deadlock_free`` is True iff every
        operation was crossed off.
    """
    if mode not in ("parallel", "sequential"):
        raise ValueError(f"unknown mode {mode!r}")
    if observer is None and pick is None:
        if resolve_backend(program, backend) == "columnar":
            from repro.core import crossing_np

            return crossing_np.columnar_cross_off(program, lookahead, mode)
    elif backend is not None and backend not in _BACKEND_NAMES:
        raise ConfigError(
            f"unknown crossing backend {backend!r}; "
            f"choose one of {', '.join(_BACKEND_NAMES)}"
        )
    state = CrossingState(program, lookahead, engine="interned")
    steps: list[list[PairCrossing]] = []
    crossings: list[PairCrossing] = []
    if pick is None and mode == "sequential":
        _run_sequential_fast(state, steps, crossings, observer)
    elif pick is None and observer is None:
        _run_parallel_fast(state, steps, crossings)
    else:
        while not state.done:
            pairs = state.executable_pairs()
            if not pairs:
                break
            step_no = len(steps) + 1
            if mode == "sequential":
                chosen_pair = pick(pairs) if pick is not None else pairs[0]
                pairs = [chosen_pair]
            this_step = []
            for pair in pairs:
                if observer is not None:
                    observer(state, pair)
                stamped = state.cross(pair, step_no)
                this_step.append(stamped)
                crossings.append(stamped)
            steps.append(this_step)
    uncrossed: dict[str, list[Op]] = {}
    for cell in program.cells:
        remaining_ops = state.uncrossed_ops(cell)
        if remaining_ops:
            uncrossed[cell] = remaining_ops
    return CrossingResult(
        deadlock_free=state.done,
        steps=steps,
        crossings=crossings,
        uncrossed=uncrossed,
        max_skipped=state.max_skipped,
        lookahead_used=lookahead is not None,
    )


def is_deadlock_free(
    program: ArrayProgram, lookahead: LookaheadConfig | None = None
) -> bool:
    """Classify ``program`` per Section 3.2 (or 8.1 with lookahead)."""
    return cross_off(program, lookahead=lookahead).deadlock_free


def uniform_lookahead(program: ArrayProgram, capacity: float) -> LookaheadConfig:
    """A lookahead config giving every message the same R2 bound.

    Convenience for single-hop examples like Fig. 10 where each message
    crosses one queue of the given capacity.
    """
    return LookaheadConfig(
        route_capacity={name: capacity for name in program.messages},
        default_capacity=capacity,
    )


def route_capacities(
    program: ArrayProgram,
    router,
    queue_capacity: int,
    allow_extension: bool = False,
) -> LookaheadConfig:
    """R2 bounds derived from actual routes: hops x per-queue capacity.

    With queue extension enabled the bound is infinite — the spill
    mechanism implements arbitrarily long logical queues (Section 8.1).
    """
    caps: dict[str, float] = {}
    for msg in program.messages.values():
        hops = len(router.route(msg.sender, msg.receiver))
        caps[msg.name] = math.inf if allow_extension else float(hops * queue_capacity)
    return LookaheadConfig(route_capacity=caps)
