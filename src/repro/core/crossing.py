"""The crossing-off procedure (Sections 3 and 8.1).

The procedure repeatedly finds *executable pairs* — a ``W(X)`` and ``R(X)``
that are both at the front of their cell programs — and crosses them off.
A program is deadlock-free iff every operation gets crossed off.

Section 8.1 relaxes the front requirement with *lookahead*: in locating a
pair's write or read operation we may skip into the middle of a cell
program, subject to

* **R1** — only write operations may be skipped (a skipped read could hide
  a value dependency, which no amount of buffering can fix);
* **R2** — the number of skipped (still-uncrossed) write operations to any
  message must not exceed the total size of the queues that message will
  cross, because each skipped write is a word that must sit in a buffer.

Two stepping modes are provided. ``parallel`` crosses every pair executable
at the start of a step simultaneously — this reproduces Fig. 4, whose steps
3, 5 and 9 each cross two pairs. ``sequential`` crosses one pair per step
and is the mode the labeling scheme of Section 6 drives.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.core.ops import Op, OpKind
from repro.core.program import ArrayProgram


@dataclass(frozen=True)
class LookaheadConfig:
    """Lookahead parameters for the crossing-off procedure.

    ``route_capacity`` bounds skipped writes per message (rule R2): it maps
    each message name to the total buffering along its route. Messages not
    present get ``default_capacity``. Use ``math.inf`` for the
    queue-extension regime where spilling makes buffering unbounded.
    """

    route_capacity: dict[str, float] = field(default_factory=dict)
    default_capacity: float = 0.0

    def capacity(self, message: str) -> float:
        """R2 bound for ``message``."""
        return self.route_capacity.get(message, self.default_capacity)


@dataclass(frozen=True)
class PairCrossing:
    """One crossed-off executable pair."""

    step: int
    message: str
    sender: str
    sender_pos: int
    receiver: str
    receiver_pos: int
    skipped_sender: tuple[tuple[str, int], ...] = ()
    skipped_receiver: tuple[tuple[str, int], ...] = ()

    @property
    def skipped_messages(self) -> set[str]:
        """Messages over whose writes this pair's location skipped."""
        return {m for m, _count in self.skipped_sender} | {
            m for m, _count in self.skipped_receiver
        }

    def __str__(self) -> str:
        return (
            f"step {self.step}: {self.message} "
            f"[W@{self.sender}:{self.sender_pos}, R@{self.receiver}:{self.receiver_pos}]"
        )


@dataclass
class CrossingResult:
    """Outcome of running the crossing-off procedure."""

    deadlock_free: bool
    steps: list[list[PairCrossing]]
    crossings: list[PairCrossing]
    uncrossed: dict[str, list[Op]]
    max_skipped: dict[str, int]
    lookahead_used: bool

    @property
    def step_count(self) -> int:
        """Number of steps the procedure took."""
        return len(self.steps)

    @property
    def pairs_crossed(self) -> int:
        """Total executable pairs crossed off."""
        return len(self.crossings)

    def pairs_in_step(self, step: int) -> list[PairCrossing]:
        """Pairs crossed in 1-based ``step``."""
        return self.steps[step - 1]


class _Located:
    """A candidate operation found by scanning (possibly with lookahead)."""

    __slots__ = ("pos", "skipped")

    def __init__(self, pos: int, skipped: dict[str, int]) -> None:
        self.pos = pos
        self.skipped = skipped


class CrossingState:
    """Mutable state of the procedure over one program.

    Exposes the queries the Section 6 labeling scheme needs while it drives
    a sequential crossing-off run.
    """

    def __init__(
        self,
        program: ArrayProgram,
        lookahead: LookaheadConfig | None = None,
    ) -> None:
        self.program = program
        self.lookahead = lookahead
        self.seqs: dict[str, list[Op]] = {
            cell: program.transfers(cell) for cell in program.cells
        }
        self.crossed: dict[str, list[bool]] = {
            cell: [False] * len(seq) for cell, seq in self.seqs.items()
        }
        self.fronts: dict[str, int] = {cell: 0 for cell in program.cells}
        self.remaining_per_message: dict[str, int] = {
            name: 2 * msg.length for name, msg in program.messages.items()
        }
        self.last_crossed_message: dict[str, str | None] = {
            cell: None for cell in program.cells
        }
        self.max_skipped: dict[str, int] = {name: 0 for name in program.messages}
        self.total_remaining = sum(self.remaining_per_message.values())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        """True when every R/W operation has been crossed off."""
        return self.total_remaining == 0

    def uncrossed_ops(self, cell: str) -> list[Op]:
        """Remaining (uncrossed) operations of ``cell``, in program order."""
        seq, crossed = self.seqs[cell], self.crossed[cell]
        return [op for op, done in zip(seq, crossed) if not done]

    def future_messages(self, cell: str, exclude: str | None = None) -> set[str]:
        """Messages ``cell`` will still access, optionally excluding one."""
        out = {op.message for op in self.uncrossed_ops(cell)}
        out.discard(exclude or "")
        return out

    def _advance_front(self, cell: str) -> None:
        seq, crossed = self.seqs[cell], self.crossed[cell]
        front = self.fronts[cell]
        while front < len(seq) and crossed[front]:
            front += 1
        self.fronts[cell] = front

    def _locate(self, cell: str, kind: OpKind, message: str) -> _Located | None:
        """Find the next uncrossed ``kind`` op on ``message`` in ``cell``.

        Without lookahead only the front operation qualifies. With
        lookahead we scan forward, skipping uncrossed writes subject to R2
        and stopping at the first uncrossed read (R1).
        """
        seq, crossed = self.seqs[cell], self.crossed[cell]
        skipped: dict[str, int] = {}
        for pos in range(self.fronts[cell], len(seq)):
            if crossed[pos]:
                continue
            op = seq[pos]
            if op.kind is kind and op.message == message:
                return _Located(pos, skipped)
            if self.lookahead is None:
                return None
            if op.kind is OpKind.READ:
                return None  # R1: reads cannot be skipped
            count = skipped.get(op.message, 0) + 1
            if count > self.lookahead.capacity(op.message):
                return None  # R2: buffering along the route exhausted
            skipped[op.message] = count
        return None

    def executable_pair(self, message: str) -> PairCrossing | None:
        """The executable pair for ``message``, if one exists right now."""
        if self.remaining_per_message[message] == 0:
            return None
        msg = self.program.messages[message]
        write = self._locate(msg.sender, OpKind.WRITE, message)
        if write is None:
            return None
        read = self._locate(msg.receiver, OpKind.READ, message)
        if read is None:
            return None
        return PairCrossing(
            step=0,
            message=message,
            sender=msg.sender,
            sender_pos=write.pos,
            receiver=msg.receiver,
            receiver_pos=read.pos,
            skipped_sender=tuple(sorted(write.skipped.items())),
            skipped_receiver=tuple(sorted(read.skipped.items())),
        )

    def executable_pairs(self) -> list[PairCrossing]:
        """All currently executable pairs, ordered by message name."""
        pairs = []
        for name in sorted(self.program.messages):
            pair = self.executable_pair(name)
            if pair is not None:
                pairs.append(pair)
        return pairs

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def cross(self, pair: PairCrossing, step: int) -> PairCrossing:
        """Cross off ``pair``'s two operations, returning it stamped with
        the step number."""
        self.crossed[pair.sender][pair.sender_pos] = True
        self.crossed[pair.receiver][pair.receiver_pos] = True
        self._advance_front(pair.sender)
        self._advance_front(pair.receiver)
        self.remaining_per_message[pair.message] -= 2
        self.total_remaining -= 2
        self.last_crossed_message[pair.sender] = pair.message
        self.last_crossed_message[pair.receiver] = pair.message
        for msg_name, count in pair.skipped_sender + pair.skipped_receiver:
            self.max_skipped[msg_name] = max(self.max_skipped[msg_name], count)
        return PairCrossing(
            step=step,
            message=pair.message,
            sender=pair.sender,
            sender_pos=pair.sender_pos,
            receiver=pair.receiver,
            receiver_pos=pair.receiver_pos,
            skipped_sender=pair.skipped_sender,
            skipped_receiver=pair.skipped_receiver,
        )


class PairObserver(Protocol):
    """Hook invoked just before each pair is crossed off (labeling uses it)."""

    def __call__(self, state: CrossingState, pair: PairCrossing) -> None: ...


def cross_off(
    program: ArrayProgram,
    lookahead: LookaheadConfig | None = None,
    mode: str = "parallel",
    observer: PairObserver | None = None,
    pick: Callable[[list[PairCrossing]], PairCrossing] | None = None,
) -> CrossingResult:
    """Run the crossing-off procedure on ``program``.

    Args:
        program: the program under analysis.
        lookahead: enable Section 8.1 lookahead with the given R2 bounds;
            ``None`` reproduces the strict Section 3 procedure.
        mode: ``"parallel"`` crosses all pairs executable at step start
            (Fig. 4's stepping); ``"sequential"`` crosses one pair per step.
        observer: called with the live state before each pair is crossed —
            the Section 6 labeling scheme plugs in here.
        pick: sequential-mode tie-breaker among executable pairs; defaults
            to lowest message name (which reproduces the paper's choice of
            A as the first pair in the Fig. 7 walkthrough).

    Returns:
        A :class:`CrossingResult`; ``deadlock_free`` is True iff every
        operation was crossed off.
    """
    if mode not in ("parallel", "sequential"):
        raise ValueError(f"unknown mode {mode!r}")
    state = CrossingState(program, lookahead)
    steps: list[list[PairCrossing]] = []
    crossings: list[PairCrossing] = []
    while not state.done:
        pairs = state.executable_pairs()
        if not pairs:
            break
        step_no = len(steps) + 1
        if mode == "sequential":
            chosen = pick(pairs) if pick is not None else pairs[0]
            pairs = [chosen]
        this_step: list[PairCrossing] = []
        for pair in pairs:
            if observer is not None:
                observer(state, pair)
            stamped = state.cross(pair, step_no)
            this_step.append(stamped)
            crossings.append(stamped)
        steps.append(this_step)
    return CrossingResult(
        deadlock_free=state.done,
        steps=steps,
        crossings=crossings,
        uncrossed={
            cell: state.uncrossed_ops(cell)
            for cell in program.cells
            if state.uncrossed_ops(cell)
        },
        max_skipped=dict(state.max_skipped),
        lookahead_used=lookahead is not None,
    )


def is_deadlock_free(
    program: ArrayProgram, lookahead: LookaheadConfig | None = None
) -> bool:
    """Classify ``program`` per Section 3.2 (or 8.1 with lookahead)."""
    return cross_off(program, lookahead=lookahead).deadlock_free


def uniform_lookahead(program: ArrayProgram, capacity: float) -> LookaheadConfig:
    """A lookahead config giving every message the same R2 bound.

    Convenience for single-hop examples like Fig. 10 where each message
    crosses one queue of the given capacity.
    """
    return LookaheadConfig(
        route_capacity={name: capacity for name in program.messages},
        default_capacity=capacity,
    )


def route_capacities(
    program: ArrayProgram,
    router,
    queue_capacity: int,
    allow_extension: bool = False,
) -> LookaheadConfig:
    """R2 bounds derived from actual routes: hops x per-queue capacity.

    With queue extension enabled the bound is infinite — the spill
    mechanism implements arbitrarily long logical queues (Section 8.1).
    """
    caps: dict[str, float] = {}
    for msg in program.messages.values():
        hops = len(router.route(msg.sender, msg.receiver))
        caps[msg.name] = math.inf if allow_extension else float(hops * queue_capacity)
    return LookaheadConfig(route_capacity=caps)
