"""The crossing-off procedure (Sections 3 and 8.1).

The procedure repeatedly finds *executable pairs* — a ``W(X)`` and ``R(X)``
that are both at the front of their cell programs — and crosses them off.
A program is deadlock-free iff every operation gets crossed off.

Section 8.1 relaxes the front requirement with *lookahead*: in locating a
pair's write or read operation we may skip into the middle of a cell
program, subject to

* **R1** — only write operations may be skipped (a skipped read could hide
  a value dependency, which no amount of buffering can fix);
* **R2** — the number of skipped (still-uncrossed) write operations to any
  message must not exceed the total size of the queues that message will
  cross, because each skipped write is a word that must sit in a buffer.

Two stepping modes are provided. ``parallel`` crosses every pair executable
at the start of a step simultaneously — this reproduces Fig. 4, whose steps
3, 5 and 9 each cross two pairs. ``sequential`` crosses one pair per step
and is the mode the labeling scheme of Section 6 drives.

Implementation
--------------

The procedure is an *incremental* engine rather than a per-step simulation
of the text. Three ingredients make it fast on ensemble-scale analysis:

* **position indexes** — per (cell, kind, message) sorted operation
  positions, built once. Locating "the next uncrossed ``W(X)`` in this
  cell" is an O(1) index probe, because operations of one (cell, kind,
  message) key are always crossed in program order (``executable_pair``
  only ever locates the *first* uncrossed match), so a monotone crossed
  counter identifies the next candidate. Rule R1 likewise makes reads
  cross in per-cell program order, so "first uncrossed read" is another
  monotone counter.
* **prefix write-counts** — an R2 check needs the number of uncrossed
  writes per message between a cell's front and the candidate position.
  With crossed operations forming a prefix of each (cell, message) write
  index, that count is ``bisect(positions, pos) - crossed``; the skipped
  region is never rescanned.
* **a dirty-message worklist** — a message's executable pair depends only
  on the state of its two endpoint cells, so its cached candidate is
  invalidated only when one of those cells changes (its front moves or
  any of its operations is crossed). ``executable_pairs`` re-locates only
  invalidated messages instead of re-scanning the whole program every
  step.

The original scan-based implementation is preserved as a reference oracle
in ``tests/reference_crossing.py``; property tests assert bit-identical
``steps``/``crossings``/``max_skipped`` in both modes.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from heapq import heappop, heappush
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.core.ops import Op, OpKind
from repro.core.program import ArrayProgram


@dataclass(frozen=True)
class LookaheadConfig:
    """Lookahead parameters for the crossing-off procedure.

    ``route_capacity`` bounds skipped writes per message (rule R2): it maps
    each message name to the total buffering along its route. Messages not
    present get ``default_capacity``. Use ``math.inf`` for the
    queue-extension regime where spilling makes buffering unbounded.
    """

    route_capacity: dict[str, float] = field(default_factory=dict)
    default_capacity: float = 0.0

    def capacity(self, message: str) -> float:
        """R2 bound for ``message``."""
        return self.route_capacity.get(message, self.default_capacity)


@dataclass(frozen=True)
class PairCrossing:
    """One crossed-off executable pair."""

    step: int
    message: str
    sender: str
    sender_pos: int
    receiver: str
    receiver_pos: int
    skipped_sender: tuple[tuple[str, int], ...] = ()
    skipped_receiver: tuple[tuple[str, int], ...] = ()

    @property
    def skipped_messages(self) -> set[str]:
        """Messages over whose writes this pair's location skipped."""
        return {m for m, _count in self.skipped_sender} | {
            m for m, _count in self.skipped_receiver
        }

    def __str__(self) -> str:
        return (
            f"step {self.step}: {self.message} "
            f"[W@{self.sender}:{self.sender_pos}, R@{self.receiver}:{self.receiver_pos}]"
        )


@dataclass
class CrossingResult:
    """Outcome of running the crossing-off procedure."""

    deadlock_free: bool
    steps: list[list[PairCrossing]]
    crossings: list[PairCrossing]
    uncrossed: dict[str, list[Op]]
    max_skipped: dict[str, int]
    lookahead_used: bool

    @property
    def step_count(self) -> int:
        """Number of steps the procedure took."""
        return len(self.steps)

    @property
    def pairs_crossed(self) -> int:
        """Total executable pairs crossed off."""
        return len(self.crossings)

    def pairs_in_step(self, step: int) -> list[PairCrossing]:
        """Pairs crossed in 1-based ``step``."""
        return self.steps[step - 1]


class CrossingState:
    """Mutable state of the procedure over one program.

    Exposes the queries the Section 6 labeling scheme needs while it drives
    a sequential crossing-off run. Pairs passed to :meth:`cross` must come
    from :meth:`executable_pair`/:meth:`executable_pairs` of this state —
    the incremental indexes rely on operations being crossed first-uncrossed
    first, and :meth:`cross` rejects anything else.
    """

    __slots__ = (
        "program",
        "lookahead",
        "seqs",
        "crossed",
        "fronts",
        "remaining_per_message",
        "last_crossed_message",
        "max_skipped",
        "total_remaining",
        "_write_pos",
        "_write_crossed",
        "_read_pos",
        "_read_crossed",
        "_cell_reads",
        "_cell_reads_crossed",
        "_msg_remaining_in_cell",
        "_executable",
        "_dirty",
        "_endpoints",
        "_msg_ctx",
        "_incident",
    )

    def __init__(
        self,
        program: ArrayProgram,
        lookahead: LookaheadConfig | None = None,
    ) -> None:
        self.program = program
        self.lookahead = lookahead
        self.seqs: dict[str, list[Op]] = {
            cell: program.transfers(cell) for cell in program.cells
        }
        self.crossed: dict[str, list[bool]] = {
            cell: [False] * len(seq) for cell, seq in self.seqs.items()
        }
        self.fronts: dict[str, int] = {cell: 0 for cell in program.cells}
        self.remaining_per_message: dict[str, int] = {
            name: 2 * msg.length for name, msg in program.messages.items()
        }
        self.last_crossed_message: dict[str, str | None] = {
            cell: None for cell in program.cells
        }
        self.max_skipped: dict[str, int] = {name: 0 for name in program.messages}
        self.total_remaining = sum(self.remaining_per_message.values())
        # --- incremental indexes (built once, updated in cross()) -------
        # Per cell: sorted write/read positions per message, the
        # crossed-prefix length per (cell, kind, message) — operations of
        # one key are always crossed in program order — the cell's read
        # positions with a crossed-reads counter (reads cross in per-cell
        # order thanks to R1), and the per-message uncrossed-op counts
        # backing future_messages().
        self._write_pos: dict[str, dict[str, list[int]]] = {}
        self._write_crossed: dict[str, dict[str, int]] = {}
        self._read_pos: dict[str, dict[str, list[int]]] = {}
        self._read_crossed: dict[str, dict[str, int]] = {}
        self._cell_reads: dict[str, list[int]] = {}
        self._cell_reads_crossed: dict[str, int] = {}
        self._msg_remaining_in_cell: dict[str, dict[str, int]] = {}
        for cell, seq in self.seqs.items():
            writes: dict[str, list[int]] = {}
            reads: dict[str, list[int]] = {}
            all_reads: list[int] = []
            remaining: dict[str, int] = {}
            for pos, op in enumerate(seq):
                if op.kind is OpKind.WRITE:
                    writes.setdefault(op.message, []).append(pos)
                else:
                    reads.setdefault(op.message, []).append(pos)
                    all_reads.append(pos)
                remaining[op.message] = remaining.get(op.message, 0) + 1
            self._write_pos[cell] = writes
            self._write_crossed[cell] = dict.fromkeys(writes, 0)
            self._read_pos[cell] = reads
            self._read_crossed[cell] = dict.fromkeys(reads, 0)
            self._cell_reads[cell] = all_reads
            self._cell_reads_crossed[cell] = 0
            self._msg_remaining_in_cell[cell] = remaining
        # Candidate worklist: each message's executable pair is cached in
        # `_executable` as a lightweight (sender_pos, receiver_pos,
        # skipped_sender, skipped_receiver) tuple (absence = no pair) and
        # recomputed only for messages in `_dirty` — a message is dirtied
        # exactly when one of its endpoint cells changes. PairCrossing
        # objects are materialized only at the public API boundary.
        self._executable: dict[str, tuple] = {}
        self._dirty: set[str] = set(program.messages)
        self._endpoints: dict[str, tuple[str, str]] = {
            name: (msg.sender, msg.receiver)
            for name, msg in program.messages.items()
        }
        # Per-message locate context: both endpoint cells plus their
        # relevant index/counter dicts, resolved once.
        self._msg_ctx: dict[str, tuple] = {
            name: (
                sender,
                receiver,
                self._write_pos[sender],
                self._write_crossed[sender],
                self._read_pos[receiver],
                self._read_crossed[receiver],
            )
            for name, (sender, receiver) in self._endpoints.items()
        }
        # Incident lists are pruned as messages finish, so dirty marking
        # only ever walks live messages.
        self._incident: dict[str, list[str]] = {
            cell: [] for cell in program.cells
        }
        for name, msg in program.messages.items():
            self._incident[msg.sender].append(name)
            if msg.receiver != msg.sender:
                self._incident[msg.receiver].append(name)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        """True when every R/W operation has been crossed off."""
        return self.total_remaining == 0

    def uncrossed_ops(self, cell: str) -> list[Op]:
        """Remaining (uncrossed) operations of ``cell``, in program order."""
        seq, crossed = self.seqs[cell], self.crossed[cell]
        return [op for op, done in zip(seq, crossed) if not done]

    def future_messages(self, cell: str, exclude: str | None = None) -> set[str]:
        """Messages ``cell`` will still access, optionally excluding one."""
        out = {
            name
            for name, count in self._msg_remaining_in_cell[cell].items()
            if count
        }
        out.discard(exclude or "")
        return out

    def _locate_end(
        self,
        cell: str,
        message: str,
        positions_map: dict[str, list[int]],
        crossed_map: dict[str, int],
    ) -> tuple[int, tuple[tuple[str, int], ...]] | None:
        """Find the next uncrossed op of ``message`` in one pair end.

        ``positions_map``/``crossed_map`` are the cell's write (sender
        end) or read (receiver end) indexes. Without lookahead only the
        front operation qualifies. With lookahead the candidate may sit
        deeper, subject to no uncrossed read before it (R1) and
        per-message skipped-write budgets (R2), both answered from the
        indexes without scanning the skipped region. Returns ``(pos,
        skipped)`` with ``skipped`` already in sorted-tuple form.
        """
        positions = positions_map.get(message)
        if positions is None:
            return None
        key_crossed = crossed_map[message]
        if key_crossed >= len(positions):
            return None
        pos = positions[key_crossed]
        if pos == self.fronts[cell]:
            # Everything before the front is crossed: nothing was skipped.
            return (pos, ())
        lookahead = self.lookahead
        if lookahead is None:
            return None
        # R1: an uncrossed read before `pos` blocks the skip.
        reads = self._cell_reads[cell]
        reads_crossed = self._cell_reads_crossed[cell]
        if reads_crossed < len(reads) and reads[reads_crossed] < pos:
            return None
        # R2: uncrossed writes per message in [front, pos) from the prefix
        # counts — crossed writes form a prefix of each message's index.
        skipped: list[tuple[str, int]] = []
        capacity = lookahead.capacity
        crossed_counts = self._write_crossed[cell]
        for name, write_positions in self._write_pos[cell].items():
            count = bisect_left(write_positions, pos) - crossed_counts[name]
            if count > 0:
                if count > capacity(name):
                    return None  # R2: buffering along the route exhausted
                skipped.append((name, count))
        skipped.sort()
        return (pos, tuple(skipped))

    def _compute_entry(self, message: str) -> tuple | None:
        """Locate both ends of ``message``'s executable pair, if any."""
        if self.remaining_per_message[message] == 0:
            return None
        sender, receiver, wpos, wcrossed, rpos, rcrossed = self._msg_ctx[message]
        write = self._locate_end(sender, message, wpos, wcrossed)
        if write is None:
            return None
        read = self._locate_end(receiver, message, rpos, rcrossed)
        if read is None:
            return None
        return (write[0], read[0], write[1], read[1])

    def _flush_dirty(self) -> None:
        """Re-locate every dirtied message, updating the executable set."""
        dirty = self._dirty
        if not dirty:
            return
        executable = self._executable
        compute = self._compute_entry
        for name in dirty:
            entry = compute(name)
            if entry is None:
                executable.pop(name, None)
            else:
                executable[name] = entry
        dirty.clear()

    def _as_pair(self, message: str, entry: tuple, step: int = 0) -> PairCrossing:
        sender, receiver = self._endpoints[message]
        sender_pos, receiver_pos, skipped_sender, skipped_receiver = entry
        return PairCrossing(
            step=step,
            message=message,
            sender=sender,
            sender_pos=sender_pos,
            receiver=receiver,
            receiver_pos=receiver_pos,
            skipped_sender=skipped_sender,
            skipped_receiver=skipped_receiver,
        )

    def executable_pair(self, message: str) -> PairCrossing | None:
        """The executable pair for ``message``, if one exists right now."""
        if message in self._dirty:
            self._dirty.discard(message)
            entry = self._compute_entry(message)
            if entry is None:
                self._executable.pop(message, None)
            else:
                self._executable[message] = entry
        cached = self._executable.get(message)
        if cached is None:
            return None
        return self._as_pair(message, cached)

    def executable_pairs(self) -> list[PairCrossing]:
        """All currently executable pairs, ordered by message name."""
        self._flush_dirty()
        executable = self._executable
        return [
            self._as_pair(name, executable[name]) for name in sorted(executable)
        ]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def _apply_cross(
        self, message: str, sender_pos: int, receiver_pos: int,
        skipped_sender: tuple, skipped_receiver: tuple,
    ) -> None:
        """Mutation core shared by :meth:`cross` and the fast loop."""
        dirty = self._dirty
        remaining = self.remaining_per_message
        fronts = self.fronts
        sender, receiver = self._endpoints[message]
        for cell, pos, is_write in (
            (sender, sender_pos, True),
            (receiver, receiver_pos, False),
        ):
            if is_write:
                self._write_crossed[cell][message] += 1
            else:
                self._read_crossed[cell][message] += 1
                self._cell_reads_crossed[cell] += 1
            crossed_list = self.crossed[cell]
            crossed_list[pos] = True
            self._msg_remaining_in_cell[cell][message] -= 1
            self.last_crossed_message[cell] = message
            # The front moves iff the crossed op *was* the front.
            if pos == fronts[cell]:
                size = len(crossed_list)
                front = pos + 1
                while front < size and crossed_list[front]:
                    front += 1
                fronts[cell] = front
                # The front moved: every incident message's eligibility
                # (front fast path, skip region) may have changed.
                for name in self._incident[cell]:
                    dirty.add(name)
            else:
                # Front unchanged: a message's candidate in this cell is
                # affected only if the crossed position lies *before* its
                # first uncrossed op here — R1/R2 look solely at the
                # region up to the candidate, and the first-uncrossed
                # pointers of other messages did not move.
                write_pos = self._write_pos[cell]
                write_crossed = self._write_crossed[cell]
                read_pos = self._read_pos[cell]
                read_crossed = self._read_crossed[cell]
                for name in self._incident[cell]:
                    if name in dirty:
                        continue
                    positions = write_pos.get(name)
                    if positions is not None:
                        k = write_crossed[name]
                        if k < len(positions) and pos < positions[k]:
                            dirty.add(name)
                            continue
                    positions = read_pos.get(name)
                    if positions is not None:
                        k = read_crossed[name]
                        if k < len(positions) and pos < positions[k]:
                            dirty.add(name)
        # The crossed message's own candidate always changes (and must be
        # dropped once its remaining count reaches zero) — the positional
        # probes above miss it when its final operation in a cell crossed.
        dirty.add(message)
        remaining[message] -= 2
        if remaining[message] == 0:
            # Finished: stop dirty marking from ever touching it again.
            self._incident[sender].remove(message)
            if receiver != sender:
                self._incident[receiver].remove(message)
        self.total_remaining -= 2
        if skipped_sender or skipped_receiver:
            max_skipped = self.max_skipped
            for msg_name, count in skipped_sender + skipped_receiver:
                if count > max_skipped[msg_name]:
                    max_skipped[msg_name] = count

    def cross(self, pair: PairCrossing, step: int) -> PairCrossing:
        """Cross off ``pair``'s two operations, returning it stamped with
        the step number."""
        message = pair.message
        for cell, pos, positions_map, crossed_map in (
            (pair.sender, pair.sender_pos, self._write_pos, self._write_crossed),
            (pair.receiver, pair.receiver_pos, self._read_pos, self._read_crossed),
        ):
            positions = positions_map[cell].get(message, ())
            key_crossed = crossed_map[cell].get(message, 0)
            if key_crossed >= len(positions) or positions[key_crossed] != pos:
                raise ValueError(
                    f"pair {pair} does not cross the first uncrossed "
                    f"operation on {message!r} of {cell!r}; only pairs "
                    f"returned by executable_pair(s) can be crossed"
                )
        self._apply_cross(
            message,
            pair.sender_pos,
            pair.receiver_pos,
            pair.skipped_sender,
            pair.skipped_receiver,
        )
        return PairCrossing(
            step=step,
            message=pair.message,
            sender=pair.sender,
            sender_pos=pair.sender_pos,
            receiver=pair.receiver,
            receiver_pos=pair.receiver_pos,
            skipped_sender=pair.skipped_sender,
            skipped_receiver=pair.skipped_receiver,
        )


class PairObserver(Protocol):
    """Hook invoked just before each pair is crossed off (labeling uses it)."""

    def __call__(self, state: CrossingState, pair: PairCrossing) -> None: ...


def cross_off(
    program: ArrayProgram,
    lookahead: LookaheadConfig | None = None,
    mode: str = "parallel",
    observer: PairObserver | None = None,
    pick: Callable[[list[PairCrossing]], PairCrossing] | None = None,
) -> CrossingResult:
    """Run the crossing-off procedure on ``program``.

    Args:
        program: the program under analysis.
        lookahead: enable Section 8.1 lookahead with the given R2 bounds;
            ``None`` reproduces the strict Section 3 procedure.
        mode: ``"parallel"`` crosses all pairs executable at step start
            (Fig. 4's stepping); ``"sequential"`` crosses one pair per step.
        observer: called with the live state before each pair is crossed —
            the Section 6 labeling scheme plugs in here.
        pick: sequential-mode tie-breaker among executable pairs; defaults
            to lowest message name (which reproduces the paper's choice of
            A as the first pair in the Fig. 7 walkthrough).

    Returns:
        A :class:`CrossingResult`; ``deadlock_free`` is True iff every
        operation was crossed off.
    """
    if mode not in ("parallel", "sequential"):
        raise ValueError(f"unknown mode {mode!r}")
    state = CrossingState(program, lookahead)
    steps: list[list[PairCrossing]] = []
    crossings: list[PairCrossing] = []
    if observer is None and pick is None:
        # Fast loop for the analysis path: work on the cached entry
        # tuples directly, materializing exactly one (already-stamped)
        # PairCrossing per crossing. Output is identical to the general
        # loop below — the sequential choice is the lowest message name
        # and parallel steps cross the step-start set in name order.
        executable = state._executable
        dirty = state._dirty
        apply_cross = state._apply_cross
        as_pair = state._as_pair
        compute = state._compute_entry
        # Sequential mode keeps a lazy-deletion heap of *clean* executable
        # names: every name is pushed when it (re)gains a fresh entry, and
        # stale tops (dirtied or no longer executable) are popped on peek.
        # Every clean executable name therefore has a live heap entry.
        heap: list[str] = []
        while state.total_remaining > 0:
            if mode == "sequential":
                # Only the lowest-name executable pair is crossed this
                # step. Dirty names are evaluated in ascending order just
                # far enough to beat the clean minimum; the rest stay
                # deferred in the worklist for later steps.
                while heap and (heap[0] in dirty or heap[0] not in executable):
                    heappop(heap)
                clean_min = heap[0] if heap else None
                best = clean_min
                for name in sorted(dirty):
                    if clean_min is not None and name > clean_min:
                        break
                    dirty.discard(name)
                    entry = compute(name)
                    if entry is None:
                        executable.pop(name, None)
                    else:
                        executable[name] = entry
                        heappush(heap, name)
                        best = name
                        break  # ascending: first hit is the dirty minimum
                if best is None:
                    break
                chosen = [best]
            else:
                state._flush_dirty()
                if not executable:
                    break
                chosen = sorted(executable)
            step_no = len(steps) + 1
            this_step = []
            # Entries are fixed at step start: _apply_cross only dirties
            # messages, it never mutates the executable set.
            for name in chosen:
                entry = executable[name]
                stamped = as_pair(name, entry, step_no)
                apply_cross(name, entry[0], entry[1], entry[2], entry[3])
                this_step.append(stamped)
                crossings.append(stamped)
            steps.append(this_step)
    else:
        while not state.done:
            pairs = state.executable_pairs()
            if not pairs:
                break
            step_no = len(steps) + 1
            if mode == "sequential":
                chosen_pair = pick(pairs) if pick is not None else pairs[0]
                pairs = [chosen_pair]
            this_step = []
            for pair in pairs:
                if observer is not None:
                    observer(state, pair)
                stamped = state.cross(pair, step_no)
                this_step.append(stamped)
                crossings.append(stamped)
            steps.append(this_step)
    uncrossed: dict[str, list[Op]] = {}
    for cell in program.cells:
        remaining_ops = state.uncrossed_ops(cell)
        if remaining_ops:
            uncrossed[cell] = remaining_ops
    return CrossingResult(
        deadlock_free=state.done,
        steps=steps,
        crossings=crossings,
        uncrossed=uncrossed,
        max_skipped=dict(state.max_skipped),
        lookahead_used=lookahead is not None,
    )


def is_deadlock_free(
    program: ArrayProgram, lookahead: LookaheadConfig | None = None
) -> bool:
    """Classify ``program`` per Section 3.2 (or 8.1 with lookahead)."""
    return cross_off(program, lookahead=lookahead).deadlock_free


def uniform_lookahead(program: ArrayProgram, capacity: float) -> LookaheadConfig:
    """A lookahead config giving every message the same R2 bound.

    Convenience for single-hop examples like Fig. 10 where each message
    crosses one queue of the given capacity.
    """
    return LookaheadConfig(
        route_capacity={name: capacity for name in program.messages},
        default_capacity=capacity,
    )


def route_capacities(
    program: ArrayProgram,
    router,
    queue_capacity: int,
    allow_extension: bool = False,
) -> LookaheadConfig:
    """R2 bounds derived from actual routes: hops x per-queue capacity.

    With queue extension enabled the bound is infinite — the spill
    mechanism implements arbitrarily long logical queues (Section 8.1).
    """
    caps: dict[str, float] = {}
    for msg in program.messages.values():
        hops = len(router.route(msg.sender, msg.receiver))
        caps[msg.name] = math.inf if allow_extension else float(hops * queue_capacity)
    return LookaheadConfig(route_capacity=caps)
