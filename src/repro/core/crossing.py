"""The crossing-off procedure (Sections 3 and 8.1).

The procedure repeatedly finds *executable pairs* — a ``W(X)`` and ``R(X)``
that are both at the front of their cell programs — and crosses them off.
A program is deadlock-free iff every operation gets crossed off.

Section 8.1 relaxes the front requirement with *lookahead*: in locating a
pair's write or read operation we may skip into the middle of a cell
program, subject to

* **R1** — only write operations may be skipped (a skipped read could hide
  a value dependency, which no amount of buffering can fix);
* **R2** — the number of skipped (still-uncrossed) write operations to any
  message must not exceed the total size of the queues that message will
  cross, because each skipped write is a word that must sit in a buffer.

Two stepping modes are provided. ``parallel`` crosses every pair executable
at the start of a step simultaneously — this reproduces Fig. 4, whose steps
3, 5 and 9 each cross two pairs. ``sequential`` crosses one pair per step
and is the mode the labeling scheme of Section 6 drives.

Implementation
--------------

The procedure is an *incremental* engine rather than a per-step simulation
of the text, and it works entirely on **dense interned ids** rather than
name strings. Four ingredients make it fast on 1k-10k-cell programs:

* **interning** — cells and messages are mapped to dense ints by the
  program's :class:`~repro.core.program.InternTable` (cell ids in program
  order, message ids in *sorted-name* order, so id comparisons order
  exactly like name comparisons). Every per-(cell, kind, message)
  dict-of-dicts of the previous engine is flattened into plain lists
  indexed by those ids:

  - per *message* id (each message has exactly one sender and one
    receiver cell): sorted write/read positions (``_wpos``/``_rpos``)
    and monotone crossed-prefix counters (``_wcrossed``/``_rcrossed``);
  - per *cell* id: the crossed bitmap, the front pointer, the cell's
    read positions plus a crossed-reads counter (reads cross in per-cell
    program order thanks to R1), the ids of messages written in the cell
    (the R2 scan list), and the incident-message list driving dirty
    marking.

  Names appear only at the API boundary: :class:`PairCrossing`,
  ``uncrossed``, ``max_skipped`` and every public query translate ids
  back through the intern table. Nothing outside this module sees an id.
* **position indexes** — locating "the next uncrossed ``W(X)`` in this
  cell" is an O(1) probe, because operations of one (cell, kind, message)
  key are always crossed in program order (``executable_pair`` only ever
  locates the *first* uncrossed match), so a monotone crossed counter
  identifies the next candidate.
* **prefix write-counts** — an R2 check needs the number of uncrossed
  writes per message between a cell's front and the candidate position.
  With crossed operations forming a prefix of each message's write index,
  that count is ``bisect(positions, pos) - crossed``; the skipped region
  is never rescanned.
* **a dirty-message worklist** — a message's executable pair depends only
  on the state of its two endpoint cells, so its cached candidate is
  invalidated only when one of those cells changes. The sequential fast
  loop additionally keeps the dirty ids in a lazy-deletion min-heap:
  finding "the smallest dirty message that beats the clean minimum" is
  O(log n) per step instead of re-sorting the (growing) dirty set every
  step — the difference between linear and quadratic total work on
  10k-cell programs.

The original scan-based implementation is preserved as a reference oracle
in ``tests/reference_crossing.py``; property tests assert bit-identical
``steps``/``crossings``/``max_skipped`` in both modes.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from heapq import heappop, heappush
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Protocol

from repro.core.ops import Op
from repro.core.program import ArrayProgram


@dataclass(frozen=True)
class LookaheadConfig:
    """Lookahead parameters for the crossing-off procedure.

    ``route_capacity`` bounds skipped writes per message (rule R2): it maps
    each message name to the total buffering along its route. Messages not
    present get ``default_capacity``. Use ``math.inf`` for the
    queue-extension regime where spilling makes buffering unbounded.
    """

    route_capacity: dict[str, float] = field(default_factory=dict)
    default_capacity: float = 0.0

    def capacity(self, message: str) -> float:
        """R2 bound for ``message``."""
        return self.route_capacity.get(message, self.default_capacity)


@dataclass(frozen=True)
class PairCrossing:
    """One crossed-off executable pair."""

    step: int
    message: str
    sender: str
    sender_pos: int
    receiver: str
    receiver_pos: int
    skipped_sender: tuple[tuple[str, int], ...] = ()
    skipped_receiver: tuple[tuple[str, int], ...] = ()

    @property
    def skipped_messages(self) -> set[str]:
        """Messages over whose writes this pair's location skipped."""
        return {m for m, _count in self.skipped_sender} | {
            m for m, _count in self.skipped_receiver
        }

    def __str__(self) -> str:
        return (
            f"step {self.step}: {self.message} "
            f"[W@{self.sender}:{self.sender_pos}, R@{self.receiver}:{self.receiver_pos}]"
        )


@dataclass
class CrossingResult:
    """Outcome of running the crossing-off procedure."""

    deadlock_free: bool
    steps: list[list[PairCrossing]]
    crossings: list[PairCrossing]
    uncrossed: dict[str, list[Op]]
    max_skipped: dict[str, int]
    lookahead_used: bool

    @property
    def step_count(self) -> int:
        """Number of steps the procedure took."""
        return len(self.steps)

    @property
    def pairs_crossed(self) -> int:
        """Total executable pairs crossed off."""
        return len(self.crossings)

    def pairs_in_step(self, step: int) -> list[PairCrossing]:
        """Pairs crossed in 1-based ``step``."""
        return self.steps[step - 1]


class _LastCrossedView(Mapping):
    """Read-only name-keyed view of the per-cell last-crossed message."""

    __slots__ = ("_state",)

    def __init__(self, state: "CrossingState") -> None:
        self._state = state

    def __getitem__(self, cell: str) -> str | None:
        state = self._state
        mid = state._last_crossed[state.intern.cell_ids[cell]]
        return None if mid < 0 else state.intern.message_names[mid]

    def __iter__(self) -> Iterator[str]:
        return iter(self._state.intern.cell_names)

    def __len__(self) -> int:
        return len(self._state.intern.cell_names)


class CrossingState:
    """Mutable state of the procedure over one program.

    Exposes the queries the Section 6 labeling scheme needs while it drives
    a sequential crossing-off run. Pairs passed to :meth:`cross` must come
    from :meth:`executable_pair`/:meth:`executable_pairs` of this state —
    the incremental indexes rely on operations being crossed first-uncrossed
    first, and :meth:`cross` rejects anything else.

    Internally everything is indexed by the program's interned cell and
    message ids (see the module docstring for the layout); the public
    queries and results speak names.
    """

    __slots__ = (
        "program",
        "lookahead",
        "intern",
        "total_remaining",
        "_senders",
        "_receivers",
        "_enc",
        "_crossed",
        "_fronts",
        "_remaining",
        "_last_crossed",
        "_max_skipped",
        "_wpos",
        "_wcrossed",
        "_rpos",
        "_rcrossed",
        "_cell_reads",
        "_cell_reads_crossed",
        "_cell_write_mids",
        "_msg_remaining_in_cell",
        "_cap",
        "_executable",
        "_dirty",
        "_dirty_heap",
        "_incident",
    )

    def __init__(
        self,
        program: ArrayProgram,
        lookahead: LookaheadConfig | None = None,
    ) -> None:
        self.program = program
        self.lookahead = lookahead
        intern = program.intern
        self.intern = intern
        ncells = len(intern.cell_names)
        nmsgs = len(intern.message_names)
        self._senders = intern.senders
        self._receivers = intern.receivers
        enc = intern.encoded_transfers
        self._enc = enc
        self._crossed: list[list[bool]] = [[False] * len(seq) for seq in enc]
        self._fronts: list[int] = [0] * ncells
        self._remaining: list[int] = [2 * length for length in intern.lengths]
        self.total_remaining = sum(self._remaining)
        self._last_crossed: list[int] = [-1] * ncells
        self._max_skipped: list[int] = [0] * nmsgs
        # --- incremental indexes (built once, updated in _apply_cross) --
        wpos: list[list[int]] = [[] for _ in range(nmsgs)]
        rpos: list[list[int]] = [[] for _ in range(nmsgs)]
        self._wcrossed: list[int] = [0] * nmsgs
        self._rcrossed: list[int] = [0] * nmsgs
        cell_reads: list[list[int]] = []
        cell_write_mids: list[list[int]] = []
        msg_remaining: list[dict[int, int]] = []
        for seq in enc:
            reads_here: list[int] = []
            wmids: list[int] = []
            remaining_here: dict[int, int] = {}
            for pos, (is_write, mid) in enumerate(seq):
                if is_write:
                    positions = wpos[mid]
                    if not positions:
                        wmids.append(mid)
                    positions.append(pos)
                else:
                    rpos[mid].append(pos)
                    reads_here.append(pos)
                remaining_here[mid] = remaining_here.get(mid, 0) + 1
            cell_reads.append(reads_here)
            cell_write_mids.append(wmids)
            msg_remaining.append(remaining_here)
        self._wpos = wpos
        self._rpos = rpos
        self._cell_reads = cell_reads
        self._cell_reads_crossed: list[int] = [0] * ncells
        self._cell_write_mids = cell_write_mids
        self._msg_remaining_in_cell = msg_remaining
        # R2 bounds resolved to a per-id list once; None without lookahead.
        self._cap: list[float] | None = (
            None
            if lookahead is None
            else [lookahead.capacity(name) for name in intern.message_names]
        )
        # Candidate worklist: each message's executable pair is cached in
        # `_executable` as a lightweight (sender_pos, receiver_pos,
        # skipped_sender, skipped_receiver) id-tuple (absence = no pair)
        # and recomputed only for ids in `_dirty` — a message is dirtied
        # exactly when one of its endpoint cells changes. `_dirty_heap` is
        # a lazy-deletion min-heap over the dirty ids, maintained only
        # while the sequential fast loop is active (it is the only
        # consumer that needs ordered access to the dirty set).
        self._executable: dict[int, tuple] = {}
        self._dirty: set[int] = set(range(nmsgs))
        self._dirty_heap: list[int] | None = None
        # Incident lists are pruned as messages finish, so dirty marking
        # only ever walks live messages.
        incident: list[list[int]] = [[] for _ in range(ncells)]
        for mid in range(nmsgs):
            incident[self._senders[mid]].append(mid)
            incident[self._receivers[mid]].append(mid)
        self._incident = incident

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        """True when every R/W operation has been crossed off."""
        return self.total_remaining == 0

    @property
    def fronts(self) -> dict[str, int]:
        """Front pointer of every cell, by name (boundary view)."""
        return dict(zip(self.intern.cell_names, self._fronts))

    @property
    def remaining_per_message(self) -> dict[str, int]:
        """Uncrossed R+W operation count per message, by name."""
        return dict(zip(self.intern.message_names, self._remaining))

    @property
    def max_skipped(self) -> dict[str, int]:
        """Peak skipped-write count per message, by name."""
        return dict(zip(self.intern.message_names, self._max_skipped))

    @property
    def last_crossed_message(self) -> Mapping[str, str | None]:
        """Per-cell name of the most recently crossed message (O(1) view)."""
        return _LastCrossedView(self)

    def uncrossed_ops(self, cell: str) -> list[Op]:
        """Remaining (uncrossed) operations of ``cell``, in program order."""
        crossed = self._crossed[self.intern.cell_ids[cell]]
        return [
            op
            for op, done in zip(self.program.transfers(cell), crossed)
            if not done
        ]

    def future_messages(self, cell: str, exclude: str | None = None) -> set[str]:
        """Messages ``cell`` will still access, optionally excluding one."""
        names = self.intern.message_names
        out = {
            names[mid]
            for mid, count in self._msg_remaining_in_cell[
                self.intern.cell_ids[cell]
            ].items()
            if count
        }
        out.discard(exclude or "")
        return out

    def _locate_end(
        self, cid: int, positions: list[int], key_crossed: int
    ) -> tuple[int, tuple[tuple[int, int], ...]] | None:
        """Find the next uncrossed op of one pair end in cell ``cid``.

        ``positions``/``key_crossed`` are the message's write index (sender
        end) or read index (receiver end). Without lookahead only the
        front operation qualifies. With lookahead the candidate may sit
        deeper, subject to no uncrossed read before it (R1) and
        per-message skipped-write budgets (R2), both answered from the
        indexes without scanning the skipped region. Returns ``(pos,
        skipped)`` with ``skipped`` as an id-sorted tuple (which is also
        name-sorted: message ids follow sorted-name order).
        """
        if key_crossed >= len(positions):
            return None
        pos = positions[key_crossed]
        if pos == self._fronts[cid]:
            # Everything before the front is crossed: nothing was skipped.
            return (pos, ())
        cap = self._cap
        if cap is None:
            return None
        # R1: an uncrossed read before `pos` blocks the skip.
        reads = self._cell_reads[cid]
        reads_crossed = self._cell_reads_crossed[cid]
        if reads_crossed < len(reads) and reads[reads_crossed] < pos:
            return None
        # R2: uncrossed writes per message in [front, pos) from the prefix
        # counts — crossed writes form a prefix of each message's index.
        skipped: list[tuple[int, int]] = []
        wpos = self._wpos
        wcrossed = self._wcrossed
        for mid in self._cell_write_mids[cid]:
            count = bisect_left(wpos[mid], pos) - wcrossed[mid]
            if count > 0:
                if count > cap[mid]:
                    return None  # R2: buffering along the route exhausted
                skipped.append((mid, count))
        skipped.sort()
        return (pos, tuple(skipped))

    def _compute_entry(self, mid: int) -> tuple | None:
        """Locate both ends of message ``mid``'s executable pair, if any."""
        if self._remaining[mid] == 0:
            return None
        write = self._locate_end(
            self._senders[mid], self._wpos[mid], self._wcrossed[mid]
        )
        if write is None:
            return None
        read = self._locate_end(
            self._receivers[mid], self._rpos[mid], self._rcrossed[mid]
        )
        if read is None:
            return None
        return (write[0], read[0], write[1], read[1])

    def _flush_dirty(self) -> None:
        """Re-locate every dirtied message, updating the executable set."""
        dirty = self._dirty
        if not dirty:
            return
        executable = self._executable
        compute = self._compute_entry
        for mid in dirty:
            entry = compute(mid)
            if entry is None:
                executable.pop(mid, None)
            else:
                executable[mid] = entry
        dirty.clear()

    def _as_pair(self, mid: int, entry: tuple, step: int = 0) -> PairCrossing:
        intern = self.intern
        names = intern.message_names
        cells = intern.cell_names
        sender_pos, receiver_pos, skipped_sender, skipped_receiver = entry
        return PairCrossing(
            step=step,
            message=names[mid],
            sender=cells[self._senders[mid]],
            sender_pos=sender_pos,
            receiver=cells[self._receivers[mid]],
            receiver_pos=receiver_pos,
            skipped_sender=tuple((names[m], c) for m, c in skipped_sender),
            skipped_receiver=tuple((names[m], c) for m, c in skipped_receiver),
        )

    def executable_pair(self, message: str) -> PairCrossing | None:
        """The executable pair for ``message``, if one exists right now."""
        mid = self.intern.message_ids[message]
        if mid in self._dirty:
            self._dirty.discard(mid)
            entry = self._compute_entry(mid)
            if entry is None:
                self._executable.pop(mid, None)
            else:
                self._executable[mid] = entry
        cached = self._executable.get(mid)
        if cached is None:
            return None
        return self._as_pair(mid, cached)

    def executable_pairs(self) -> list[PairCrossing]:
        """All currently executable pairs, ordered by message name."""
        self._flush_dirty()
        executable = self._executable
        return [
            self._as_pair(mid, executable[mid]) for mid in sorted(executable)
        ]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def _apply_cross(
        self, mid: int, sender_pos: int, receiver_pos: int,
        skipped_sender: tuple, skipped_receiver: tuple,
    ) -> None:
        """Mutation core shared by :meth:`cross` and the fast loop.

        ``skipped_*`` tuples carry interned ids, not names.
        """
        dirty = self._dirty
        dirty_heap = self._dirty_heap
        fronts = self._fronts
        senders = self._senders
        receivers = self._receivers
        sender = senders[mid]
        receiver = receivers[mid]
        for cid, pos, is_write in (
            (sender, sender_pos, True),
            (receiver, receiver_pos, False),
        ):
            if is_write:
                self._wcrossed[mid] += 1
            else:
                self._rcrossed[mid] += 1
                self._cell_reads_crossed[cid] += 1
            crossed_list = self._crossed[cid]
            crossed_list[pos] = True
            self._msg_remaining_in_cell[cid][mid] -= 1
            self._last_crossed[cid] = mid
            # The front moves iff the crossed op *was* the front.
            if pos == fronts[cid]:
                size = len(crossed_list)
                front = pos + 1
                while front < size and crossed_list[front]:
                    front += 1
                fronts[cid] = front
                # The front moved: every incident message's eligibility
                # (front fast path, skip region) may have changed.
                for m in self._incident[cid]:
                    if m not in dirty:
                        dirty.add(m)
                        if dirty_heap is not None:
                            heappush(dirty_heap, m)
            else:
                # Front unchanged: a message's candidate in this cell is
                # affected only if the crossed position lies *before* its
                # first uncrossed op here — R1/R2 look solely at the
                # region up to the candidate, and the first-uncrossed
                # pointers of other messages did not move. Each incident
                # message keys exactly one index in this cell: its write
                # index if this cell is its sender, its read index if its
                # receiver (sender == receiver is impossible).
                wpos = self._wpos
                wcrossed = self._wcrossed
                rpos = self._rpos
                rcrossed = self._rcrossed
                for m in self._incident[cid]:
                    if m in dirty:
                        continue
                    if senders[m] == cid:
                        positions = wpos[m]
                        k = wcrossed[m]
                    else:
                        positions = rpos[m]
                        k = rcrossed[m]
                    if k < len(positions) and pos < positions[k]:
                        dirty.add(m)
                        if dirty_heap is not None:
                            heappush(dirty_heap, m)
        # The crossed message's own candidate always changes (and must be
        # dropped once its remaining count reaches zero) — the positional
        # probes above miss it when its final operation in a cell crossed.
        if mid not in dirty:
            dirty.add(mid)
            if dirty_heap is not None:
                heappush(dirty_heap, mid)
        remaining = self._remaining
        remaining[mid] -= 2
        if remaining[mid] == 0:
            # Finished: stop dirty marking from ever touching it again.
            self._incident[sender].remove(mid)
            self._incident[receiver].remove(mid)
        self.total_remaining -= 2
        if skipped_sender or skipped_receiver:
            max_skipped = self._max_skipped
            for m, count in skipped_sender + skipped_receiver:
                if count > max_skipped[m]:
                    max_skipped[m] = count

    def cross(self, pair: PairCrossing, step: int) -> PairCrossing:
        """Cross off ``pair``'s two operations, returning it stamped with
        the step number."""
        intern = self.intern
        message_ids = intern.message_ids
        mid = message_ids.get(pair.message)
        valid = (
            mid is not None
            and pair.sender == intern.cell_names[self._senders[mid]]
            and pair.receiver == intern.cell_names[self._receivers[mid]]
        )
        if valid:
            for positions, key_crossed, pos in (
                (self._wpos[mid], self._wcrossed[mid], pair.sender_pos),
                (self._rpos[mid], self._rcrossed[mid], pair.receiver_pos),
            ):
                if key_crossed >= len(positions) or positions[key_crossed] != pos:
                    valid = False
                    break
        if not valid:
            raise ValueError(
                f"pair {pair} does not cross the first uncrossed "
                f"operation on {pair.message!r} of its endpoint cells; "
                f"only pairs returned by executable_pair(s) can be crossed"
            )
        self._apply_cross(
            mid,
            pair.sender_pos,
            pair.receiver_pos,
            tuple((message_ids[name], c) for name, c in pair.skipped_sender),
            tuple((message_ids[name], c) for name, c in pair.skipped_receiver),
        )
        return PairCrossing(
            step=step,
            message=pair.message,
            sender=pair.sender,
            sender_pos=pair.sender_pos,
            receiver=pair.receiver,
            receiver_pos=pair.receiver_pos,
            skipped_sender=pair.skipped_sender,
            skipped_receiver=pair.skipped_receiver,
        )


class PairObserver(Protocol):
    """Hook invoked just before each pair is crossed off (labeling uses it)."""

    def __call__(self, state: CrossingState, pair: PairCrossing) -> None: ...


def cross_off(
    program: ArrayProgram,
    lookahead: LookaheadConfig | None = None,
    mode: str = "parallel",
    observer: PairObserver | None = None,
    pick: Callable[[list[PairCrossing]], PairCrossing] | None = None,
) -> CrossingResult:
    """Run the crossing-off procedure on ``program``.

    Args:
        program: the program under analysis.
        lookahead: enable Section 8.1 lookahead with the given R2 bounds;
            ``None`` reproduces the strict Section 3 procedure.
        mode: ``"parallel"`` crosses all pairs executable at step start
            (Fig. 4's stepping); ``"sequential"`` crosses one pair per step.
        observer: called with the live state before each pair is crossed —
            the Section 6 labeling scheme plugs in here.
        pick: sequential-mode tie-breaker among executable pairs; defaults
            to lowest message name (which reproduces the paper's choice of
            A as the first pair in the Fig. 7 walkthrough).

    Returns:
        A :class:`CrossingResult`; ``deadlock_free`` is True iff every
        operation was crossed off.
    """
    if mode not in ("parallel", "sequential"):
        raise ValueError(f"unknown mode {mode!r}")
    state = CrossingState(program, lookahead)
    steps: list[list[PairCrossing]] = []
    crossings: list[PairCrossing] = []
    if observer is None and pick is None:
        # Fast loop for the analysis path: work on the cached id-entry
        # tuples directly, materializing exactly one (already-stamped)
        # PairCrossing per crossing. Output is identical to the general
        # loop below — the sequential choice is the lowest message name
        # (== lowest id) and parallel steps cross the step-start set in
        # name (== id) order.
        executable = state._executable
        dirty = state._dirty
        apply_cross = state._apply_cross
        as_pair = state._as_pair
        compute = state._compute_entry
        if mode == "sequential":
            # Two lazy-deletion heaps drive the "lowest executable name"
            # choice in O(log n) per step: `exec_heap` holds the *clean*
            # executable ids (every id is pushed when it (re)gains a
            # fresh entry; stale tops — dirtied or no longer executable —
            # are popped on peek), and `state._dirty_heap` mirrors the
            # dirty set (ids whose set membership is gone are stale).
            # Dirty ids are evaluated in ascending order just far enough
            # to beat the clean minimum; the rest stay deferred.
            exec_heap: list[int] = []
            dirty_heap = sorted(dirty)  # a sorted list is a valid heap
            state._dirty_heap = dirty_heap
            while state.total_remaining > 0:
                while exec_heap and (
                    exec_heap[0] in dirty or exec_heap[0] not in executable
                ):
                    heappop(exec_heap)
                clean_min = exec_heap[0] if exec_heap else None
                best = clean_min
                while dirty_heap:
                    mid = dirty_heap[0]
                    if mid not in dirty:
                        heappop(dirty_heap)  # stale: already re-evaluated
                        continue
                    if clean_min is not None and mid > clean_min:
                        break
                    heappop(dirty_heap)
                    dirty.discard(mid)
                    entry = compute(mid)
                    if entry is None:
                        executable.pop(mid, None)
                    else:
                        executable[mid] = entry
                        heappush(exec_heap, mid)
                        best = mid
                        break  # ascending: first hit is the dirty minimum
                if best is None:
                    break
                step_no = len(steps) + 1
                entry = executable[best]
                stamped = as_pair(best, entry, step_no)
                apply_cross(best, entry[0], entry[1], entry[2], entry[3])
                steps.append([stamped])
                crossings.append(stamped)
        else:
            while state.total_remaining > 0:
                state._flush_dirty()
                if not executable:
                    break
                step_no = len(steps) + 1
                this_step = []
                # Entries are fixed at step start: _apply_cross only
                # dirties messages, it never mutates the executable set.
                for mid in sorted(executable):
                    entry = executable[mid]
                    stamped = as_pair(mid, entry, step_no)
                    apply_cross(mid, entry[0], entry[1], entry[2], entry[3])
                    this_step.append(stamped)
                    crossings.append(stamped)
                steps.append(this_step)
    else:
        while not state.done:
            pairs = state.executable_pairs()
            if not pairs:
                break
            step_no = len(steps) + 1
            if mode == "sequential":
                chosen_pair = pick(pairs) if pick is not None else pairs[0]
                pairs = [chosen_pair]
            this_step = []
            for pair in pairs:
                if observer is not None:
                    observer(state, pair)
                stamped = state.cross(pair, step_no)
                this_step.append(stamped)
                crossings.append(stamped)
            steps.append(this_step)
    uncrossed: dict[str, list[Op]] = {}
    for cell in program.cells:
        remaining_ops = state.uncrossed_ops(cell)
        if remaining_ops:
            uncrossed[cell] = remaining_ops
    return CrossingResult(
        deadlock_free=state.done,
        steps=steps,
        crossings=crossings,
        uncrossed=uncrossed,
        max_skipped=state.max_skipped,
        lookahead_used=lookahead is not None,
    )


def is_deadlock_free(
    program: ArrayProgram, lookahead: LookaheadConfig | None = None
) -> bool:
    """Classify ``program`` per Section 3.2 (or 8.1 with lookahead)."""
    return cross_off(program, lookahead=lookahead).deadlock_free


def uniform_lookahead(program: ArrayProgram, capacity: float) -> LookaheadConfig:
    """A lookahead config giving every message the same R2 bound.

    Convenience for single-hop examples like Fig. 10 where each message
    crosses one queue of the given capacity.
    """
    return LookaheadConfig(
        route_capacity={name: capacity for name in program.messages},
        default_capacity=capacity,
    )


def route_capacities(
    program: ArrayProgram,
    router,
    queue_capacity: int,
    allow_extension: bool = False,
) -> LookaheadConfig:
    """R2 bounds derived from actual routes: hops x per-queue capacity.

    With queue extension enabled the bound is infinite — the spill
    mechanism implements arbitrarily long logical queues (Section 8.1).
    """
    caps: dict[str, float] = {}
    for msg in program.messages.values():
        hops = len(router.route(msg.sender, msg.receiver))
        caps[msg.name] = math.inf if allow_extension else float(hops * queue_capacity)
    return LookaheadConfig(route_capacity=caps)
