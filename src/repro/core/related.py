"""The *related messages* relation of Section 6.

Two messages A and B are related if, in some cell program, an access to A
appears between two reads of B or between two writes of B — i.e. the cell
interleaves its accesses. The relation is closed symmetrically and
transitively; related messages must receive equal labels so the compatible
queue assignment gives them separate queues simultaneously (Figs. 8-9).
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.ops import OpKind
from repro.core.program import ArrayProgram


class UnionFind:
    """Disjoint-set forest over hashable items, with path compression."""

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}

    def add(self, item: str) -> None:
        """Register ``item`` as its own singleton class if new."""
        self._parent.setdefault(item, item)

    def find(self, item: str) -> str:
        """Representative of ``item``'s class."""
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: str, b: str) -> None:
        """Merge the classes of ``a`` and ``b``."""
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[max(ra, rb)] = min(ra, rb)

    def groups(self) -> list[frozenset[str]]:
        """All equivalence classes, each as a frozen set."""
        by_root: dict[str, set[str]] = defaultdict(set)
        for item in self._parent:
            by_root[self.find(item)].add(item)
        return [frozenset(members) for members in by_root.values()]


def interleaved_pairs(program: ArrayProgram) -> set[tuple[str, str]]:
    """Directly-related pairs, before transitive closure.

    A pair ``(A, B)`` is produced when some cell accesses A strictly
    between its first and last read of B, or strictly between its first
    and last write of B.
    """
    pairs: set[tuple[str, str]] = set()
    for cell in program.cells:
        seq = program.transfers(cell)
        positions: dict[tuple[str, OpKind], list[int]] = defaultdict(list)
        for i, op in enumerate(seq):
            positions[(op.message, op.kind)].append(i)
        for (msg_b, _kind), pos in positions.items():
            if len(pos) < 2:
                continue
            first, last = pos[0], pos[-1]
            for i in range(first + 1, last):
                msg_a = seq[i].message
                if msg_a != msg_b:
                    pairs.add((min(msg_a, msg_b), max(msg_a, msg_b)))
    return pairs


def related_groups(program: ArrayProgram) -> list[frozenset[str]]:
    """Equivalence classes of the related relation over all messages.

    Every declared message appears in exactly one class (singleton if it
    is unrelated to everything).
    """
    uf = UnionFind()
    for name in program.messages:
        uf.add(name)
    for a, b in interleaved_pairs(program):
        uf.union(a, b)
    return sorted(uf.groups(), key=lambda grp: sorted(grp))


def related_map(program: ArrayProgram) -> dict[str, frozenset[str]]:
    """Map each message name to its related class."""
    out: dict[str, frozenset[str]] = {}
    for group in related_groups(program):
        for name in group:
            out[name] = group
    return out


def are_related(program: ArrayProgram, a: str, b: str) -> bool:
    """True if messages ``a`` and ``b`` fall in the same related class."""
    return b in related_map(program)[a]
