"""Core machinery: programs, crossing-off, labeling, assignment analysis."""

from repro.core.consistency import (
    ConsistencyViolation,
    check_consistency,
    is_consistent,
)
from repro.core.crossing import (
    CrossingResult,
    CrossingState,
    LookaheadConfig,
    PairCrossing,
    cross_off,
    is_deadlock_free,
    route_capacities,
    uniform_lookahead,
)
from repro.core.labeling import (
    Labeling,
    constraint_labeling,
    label_messages,
    labels_as_str,
    trivial_labeling,
)
from repro.core.message import Message
from repro.core.ops import COMPUTE, Op, OpKind, R, ValueSource, W, transfer_ops
from repro.core.program import (
    ArrayProgram,
    CellProgram,
    InternTable,
    ProgramStats,
)
from repro.core.related import (
    are_related,
    interleaved_pairs,
    related_groups,
    related_map,
)
from repro.core.requirements import (
    ExtensionDemand,
    QueueShortfall,
    check_assumption_ii,
    check_static_feasible,
    competing_messages,
    dynamic_queue_demand,
    extension_demand,
    message_routes,
    require_assumption_ii,
    static_queue_demand,
)
from repro.core.schedule import (
    ScheduleAnalysis,
    analyze_schedule,
    schedule_row,
    summarize_schedule,
)
from repro.core.theorem import TheoremReport, verify_theorem1

__all__ = [
    "ArrayProgram",
    "CellProgram",
    "COMPUTE",
    "ConsistencyViolation",
    "CrossingResult",
    "CrossingState",
    "ExtensionDemand",
    "InternTable",
    "Labeling",
    "LookaheadConfig",
    "Message",
    "Op",
    "OpKind",
    "PairCrossing",
    "ProgramStats",
    "QueueShortfall",
    "R",
    "ScheduleAnalysis",
    "TheoremReport",
    "ValueSource",
    "W",
    "analyze_schedule",
    "are_related",
    "check_assumption_ii",
    "check_consistency",
    "check_static_feasible",
    "competing_messages",
    "constraint_labeling",
    "cross_off",
    "dynamic_queue_demand",
    "extension_demand",
    "interleaved_pairs",
    "is_consistent",
    "is_deadlock_free",
    "label_messages",
    "labels_as_str",
    "message_routes",
    "related_groups",
    "related_map",
    "require_assumption_ii",
    "route_capacities",
    "schedule_row",
    "summarize_schedule",
    "static_queue_demand",
    "transfer_ops",
    "trivial_labeling",
    "uniform_lookahead",
    "verify_theorem1",
]
