"""Schedule analysis: what the crossing-off trace says about run time.

The maximal-parallel crossing-off run is an *idealized schedule*: each
step is a set of word transfers that could complete simultaneously
(Section 3.3 observes that programs written one-word-per-step still allow
simultaneous transfers — Fig. 4's double steps). Its length is therefore
a structural lower bound on any execution in "transfer rounds", and the
per-cell operation counts bound the makespan in cycles. Comparing these
bounds against the simulator quantifies how much real queue contention,
rendezvous hand-offs and hop latency cost on top of the program's
inherent structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import ArrayConfig
from repro.core.crossing import CrossingResult, LookaheadConfig, cross_off
from repro.core.program import ArrayProgram
from repro.errors import DeadlockedProgramError


@dataclass(frozen=True)
class ScheduleAnalysis:
    """Structural schedule bounds extracted from the crossing-off trace."""

    transfer_rounds: int
    total_pairs: int
    max_parallelism: int
    mean_parallelism: float
    busiest_cell: str
    busiest_cell_ops: int

    @property
    def cycle_lower_bound(self) -> int:
        """No run can finish before its busiest cell issues all its ops."""
        return self.busiest_cell_ops

    def efficiency_against(self, makespan: int, op_latency: int = 1) -> float:
        """Busiest-cell bound / observed makespan (1.0 = perfectly tight)."""
        if makespan == 0:
            return 1.0
        return (self.busiest_cell_ops * op_latency) / makespan


def analyze_schedule(
    program: ArrayProgram, lookahead: LookaheadConfig | None = None
) -> ScheduleAnalysis:
    """Run the maximal-parallel crossing-off and summarize its schedule.

    Raises:
        DeadlockedProgramError: the schedule of a deadlocked program is
            undefined.
    """
    result = cross_off(program, lookahead=lookahead, mode="parallel")
    if not result.deadlock_free:
        raise DeadlockedProgramError(
            f"program {program.name!r} is deadlocked; no schedule exists"
        )
    return summarize_schedule(program, result)


def summarize_schedule(
    program: ArrayProgram, result: CrossingResult
) -> ScheduleAnalysis:
    """Schedule statistics from an existing (complete) crossing result."""
    sizes = [len(step) for step in result.steps]
    busiest_cell = ""
    busiest_ops = 0
    # The intern table's per-cell transfer counts avoid materializing any
    # op list just to measure it — this runs once per job in ensemble
    # sweeps. First strictly-greater cell wins, in program cell order.
    intern = program.intern
    for cid, ops in enumerate(intern.transfer_counts):
        if ops > busiest_ops:
            busiest_cell, busiest_ops = intern.cell_names[cid], ops
    return ScheduleAnalysis(
        transfer_rounds=len(sizes),
        total_pairs=result.pairs_crossed,
        max_parallelism=max(sizes, default=0),
        mean_parallelism=(
            result.pairs_crossed / len(sizes) if sizes else 0.0
        ),
        busiest_cell=busiest_cell,
        busiest_cell_ops=busiest_ops,
    )


def schedule_row(
    program: ArrayProgram,
    makespan: int,
    config: ArrayConfig | None = None,
    lookahead: LookaheadConfig | None = None,
) -> dict[str, object]:
    """A flat record comparing structural bounds with a measured run."""
    cfg = config or ArrayConfig()
    analysis = analyze_schedule(program, lookahead=lookahead)
    return {
        "program": program.name,
        "rounds": analysis.transfer_rounds,
        "pairs": analysis.total_pairs,
        "max_par": analysis.max_parallelism,
        "mean_par": round(analysis.mean_parallelism, 2),
        "cycle_lb": analysis.cycle_lower_bound * cfg.op_latency,
        "makespan": makespan,
        "efficiency": round(
            analysis.efficiency_against(makespan, cfg.op_latency), 3
        ),
    }
