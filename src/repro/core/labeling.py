"""The consistent message labeling scheme of Section 6 (and 8.2).

Messages get positive labels such that every cell program accesses
messages in nondecreasing label order; the run-time queue assignment then
serves competing messages in label order. The scheme drives a sequential
crossing-off run and labels each message the first time one of its pairs
is crossed:

* **1a** — if neither endpoint will access an already-labeled message in
  the remainder of its program, the new message gets a label larger than
  every label in use;
* **1b** — otherwise it gets a label strictly between the last-accessed
  label and the smallest labeled future access ("the number may have to be
  a real number between two consecutive integers" — we use exact
  :class:`fractions.Fraction` midpoints);
* **1c** — its whole related class receives the same label;
* **1d** — with lookahead, messages whose writes were skipped in locating
  the pair also receive the same label (Section 8.2), so the compatible
  assignment gives them separate queues.

The result is verified against the Section 5 consistency definition before
being returned; a violation raises :class:`LabelingError` (the paper proves
this cannot happen for deadlock-free programs — the check is a guard).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Iterable

from repro.core.crossing import (
    CrossingState,
    LookaheadConfig,
    PairCrossing,
    cross_off,
)
from repro.core.program import ArrayProgram
from repro.core.related import related_map
from repro.errors import DeadlockedProgramError, LabelingError


@dataclass(frozen=True)
class Labeling:
    """An assignment of labels to every message of a program.

    ``groups()`` and ``normalized()`` are derived views computed once and
    cached on the instance (via ``object.__setattr__`` — the dataclass is
    frozen but labelings are immutable after construction, so the cache
    can never go stale). Callers receive fresh shallow copies, so the
    cached values cannot be corrupted from outside.
    """

    labels: dict[str, Fraction]

    def label(self, message: str) -> Fraction:
        """Label of ``message``."""
        try:
            return self.labels[message]
        except KeyError:
            raise LabelingError(f"no label for message {message!r}") from None

    def groups(self) -> list[tuple[Fraction, tuple[str, ...]]]:
        """Label classes, ascending by label, members sorted by name."""
        cached = self.__dict__.get("_groups_cache")
        if cached is None:
            by_label: dict[Fraction, list[str]] = {}
            for name, lab in self.labels.items():
                by_label.setdefault(lab, []).append(name)
            cached = tuple(
                (lab, tuple(sorted(names)))
                for lab, names in sorted(by_label.items())
            )
            object.__setattr__(self, "_groups_cache", cached)
        return list(cached)

    def normalized(self) -> dict[str, int]:
        """Dense integer ranks (1-based) preserving order and equality.

        Fig. 7's walkthrough labels (A, C, B) = (1, 2, 3); normalization
        recovers exactly such small integers from fraction labels.
        """
        cached = self.__dict__.get("_normalized_cache")
        if cached is None:
            ranks = {lab: i + 1 for i, (lab, _names) in enumerate(self.groups())}
            cached = {name: ranks[lab] for name, lab in self.labels.items()}
            object.__setattr__(self, "_normalized_cache", cached)
        return dict(cached)

    def same_label(self, a: str, b: str) -> bool:
        """True if ``a`` and ``b`` share a label."""
        return self.label(a) == self.label(b)

    def __len__(self) -> int:
        return len(self.labels)


def trivial_labeling(program: ArrayProgram) -> Labeling:
    """Give every message the same label.

    The paper notes this is always consistent but makes the compatible
    assignment maximally stringent: every competing message on a link then
    needs its own queue simultaneously.
    """
    return Labeling({name: Fraction(1) for name in program.messages})


def label_messages(
    program: ArrayProgram,
    lookahead: LookaheadConfig | None = None,
    pick: Callable[[list[PairCrossing]], PairCrossing] | None = None,
) -> Labeling:
    """Run the Section 6 labeling scheme on a deadlock-free program.

    Args:
        program: the program to label.
        lookahead: lookahead parameters, if the Section 8 relaxation is in
            effect; skipped-write messages then share labels (step 1d).
        pick: tie-break among multiple executable pairs. The paper leaves
            the choice open ("how to pick an optimal one ... is an issue");
            the default (lowest message name) matches its Fig. 7 example.

    Raises:
        DeadlockedProgramError: if the crossing-off procedure cannot
            complete — labeling is defined only for deadlock-free programs.
        LabelingError: if the produced labeling fails the consistency
            check (a guard; the scheme guarantees this cannot occur).
    """
    related = related_map(program)
    labels: dict[str, Fraction] = {}

    def assign(message: str, value: Fraction) -> None:
        labels[message] = value

    def observer(state: CrossingState, pair: PairCrossing) -> None:
        name = pair.message
        if name not in labels:
            value = _choose_label(state, pair, labels)
            assign(name, value)
            for member in related[name]:  # step 1c
                if member not in labels:
                    assign(member, value)
        # Step 1d: skipped-write messages share the pair's label.
        for skipped in sorted(pair.skipped_messages):
            if skipped not in labels:
                assign(skipped, labels[name])

    result = cross_off(
        program, lookahead=lookahead, mode="sequential", observer=observer, pick=pick
    )
    if not result.deadlock_free:
        raise DeadlockedProgramError(
            f"program {program.name!r} is not deadlock-free; labeling is "
            f"undefined (remaining ops in cells {sorted(result.uncrossed)})"
        )
    missing = set(program.messages) - set(labels)
    if missing:
        raise LabelingError(f"messages never labeled: {sorted(missing)}")
    labeling = Labeling(labels)
    from repro.core.consistency import check_consistency

    violations = check_consistency(program, labeling)
    if violations:
        raise LabelingError(
            f"scheme produced an inconsistent labeling: {violations[0]}"
        )
    return labeling


def _choose_label(
    state: CrossingState, pair: PairCrossing, labels: dict[str, Fraction]
) -> Fraction:
    """Steps 1a/1b: pick the label value for ``pair.message``."""
    future = state.future_messages(pair.sender, exclude=pair.message) | (
        state.future_messages(pair.receiver, exclude=pair.message)
    )
    labeled_future = sorted(labels[m] for m in future if m in labels)
    lower = Fraction(0)
    for cell in (pair.sender, pair.receiver):
        last = state.last_crossed_message[cell]
        if last is not None and last in labels:
            lower = max(lower, labels[last])
    if not labeled_future:
        # Step 1a: larger than all labels currently in use.
        in_use = max(labels.values(), default=Fraction(0))
        return max(in_use, lower) + 1
    # Step 1b: strictly between lower and the smallest labeled future label.
    upper = labeled_future[0]
    if not lower < upper:
        raise LabelingError(
            f"cannot place label for {pair.message!r}: needs a value in "
            f"({lower}, {upper})"
        )
    return (lower + upper) / 2


def labels_as_str(labeling: Labeling) -> str:
    """Compact single-line rendering, e.g. ``A=1 B=3 C=2``."""
    norm = labeling.normalized()
    return " ".join(f"{name}={norm[name]}" for name in sorted(norm))


# ---------------------------------------------------------------------------
# Constraint-based labeling (robust alternative to the Section 6 scheme)
# ---------------------------------------------------------------------------
#
# The literal Section 6 procedure is sensitive to which executable pair it
# picks when several exist: step 1a can hand a message a large label before
# a *later-discovered* chain of future constraints caps it below an
# already-used value, and the procedure gets stuck even though a consistent
# labeling exists (see tests/test_labeling.py for a concrete program). The
# paper leaves the pick unspecified ("how to pick an optimal one ... is an
# issue"). `constraint_labeling` sidesteps the order dependence entirely:
#
#   consistency  <=>  for every cell, for every pair of consecutively
#                     accessed messages a then b:  label(a) <= label(b).
#
# Those pairwise constraints form a digraph over messages. Any cycle forces
# equality (this subsumes the paper's related-messages rule: B..A..B yields
# B<=A<=B), so condensing strongly connected components and numbering them
# in topological order yields the *finest* consistent labeling — and it
# always exists, for every valid program. Lookahead's step-1d equalities
# (skipped-write messages share the pair's label) are added as two-way
# edges. On every worked example in the paper this reproduces the exact
# labels the text derives (A=1, C=2, B=3 for Fig. 7; A=B for Figs. 8-9).


def constraint_labeling(
    program: ArrayProgram,
    lookahead: LookaheadConfig | None = None,
) -> Labeling:
    """The finest consistent labeling, by constraint condensation.

    The constraint graph is built and condensed over the program's
    interned message ids (see :class:`~repro.core.program.InternTable`);
    since ids follow sorted-name order, every smallest-name tie-break
    below is a plain integer comparison, and names reappear only in the
    returned :class:`Labeling`.

    Args:
        program: the program to label (need not be deadlock-free — unlike
            the Section 6 scheme, the constraints exist statically —
            except when ``lookahead`` is given, which requires running the
            crossing-off procedure to discover skipped writes).
        lookahead: if the Section 8 relaxation is in effect, messages
            skipped while locating pairs are forced label-equal (step 1d).

    Raises:
        DeadlockedProgramError: only when ``lookahead`` is given and the
            program is not deadlock-free even with it.
    """
    intern = program.intern
    count = len(intern.message_names)
    edges: set[tuple[int, int]] = set()
    for seq in intern.encoded_transfers:
        prev = -1
        for _is_write, mid in seq:
            if prev >= 0 and prev != mid:
                edges.add((prev, mid))
            prev = mid
    if lookahead is not None:
        result = cross_off(program, lookahead=lookahead, mode="sequential")
        if not result.deadlock_free:
            raise DeadlockedProgramError(
                f"program {program.name!r} is not deadlock-free under the "
                f"given lookahead; labeling is undefined"
            )
        message_ids = intern.message_ids
        for pair in result.crossings:
            # Iterate the skipped tuples directly — building the
            # skipped_messages set per pair is measurable on
            # ensemble-scale analysis, and duplicates are free in a set
            # of edges anyway.
            pair_mid = message_ids[pair.message]
            for skipped, _count in pair.skipped_sender:
                skipped_mid = message_ids[skipped]
                edges.add((pair_mid, skipped_mid))
                edges.add((skipped_mid, pair_mid))
            for skipped, _count in pair.skipped_receiver:
                skipped_mid = message_ids[skipped]
                edges.add((pair_mid, skipped_mid))
                edges.add((skipped_mid, pair_mid))
    component_of, members = _condense(count, edges)
    order = _topological(component_of, members, edges)
    names = intern.message_names
    labels: dict[str, Fraction] = {}
    for rank, component in enumerate(order, start=1):
        value = Fraction(rank)
        for mid in members[component]:
            labels[names[mid]] = value
    return Labeling(labels)


def _condense(
    count: int, edges: set[tuple[int, int]]
) -> tuple[list[int], list[list[int]]]:
    """Strongly connected components over nodes ``0..count-1`` (Tarjan).

    Returns ``(component_of, members)``: the component index of each node
    and each component's member list.
    """
    adjacency: list[list[int]] = [[] for _ in range(count)]
    for a, b in sorted(edges):
        adjacency[a].append(b)
    index: list[int] = [-1] * count
    low: list[int] = [0] * count
    on_stack: list[bool] = [False] * count
    stack: list[int] = []
    component_of: list[int] = [-1] * count
    members: list[list[int]] = []
    counter = [0]

    def strongconnect(root: int) -> None:
        work = [(root, iter(adjacency[root]))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, nbrs = work[-1]
            advanced = False
            for nxt in nbrs:
                if index[nxt] < 0:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack[nxt] = True
                    work.append((nxt, iter(adjacency[nxt])))
                    advanced = True
                    break
                if on_stack[nxt]:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                comp = len(members)
                comp_members: list[int] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    comp_members.append(member)
                    component_of[member] = comp
                    if member == node:
                        break
                members.append(comp_members)

    for node in range(count):
        if index[node] < 0:
            strongconnect(node)
    return component_of, members


def _topological(
    component_of: list[int],
    members: list[list[int]],
    edges: set[tuple[int, int]],
) -> list[int]:
    """Kahn's algorithm over the condensation, smallest-id-first ties.

    Message ids follow sorted-name order, so popping the component with
    the smallest member id is exactly the "lexicographically smallest
    message" tie-break that reproduces the paper's Fig. 7 walkthrough
    labels.
    """
    import heapq

    comp_count = len(members)
    comp_min = [min(member_ids) for member_ids in members]
    indegree = [0] * comp_count
    out: list[set[int]] = [set() for _ in range(comp_count)]
    for a, b in edges:
        ca, cb = component_of[a], component_of[b]
        if ca != cb and cb not in out[ca]:
            out[ca].add(cb)
            indegree[cb] += 1
    heap = [
        (comp_min[comp], comp)
        for comp in range(comp_count)
        if indegree[comp] == 0
    ]
    heapq.heapify(heap)
    order: list[int] = []
    while heap:
        _key, comp = heapq.heappop(heap)
        order.append(comp)
        for succ in out[comp]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                heapq.heappush(heap, (comp_min[succ], succ))
    return order
