"""Operation model for cell programs.

The paper abstracts a cell program to its sequence of write ``W(X)`` and
read ``R(X)`` operations on declared messages (Section 2.2). The deadlock
machinery uses only that syntactic information. For end-to-end validation
(e.g. checking the FIR filter of Fig. 2 numerically) the model also carries
optional *value* information: a read may store the received word into a
named cell register, a write may source its word from a register or a
constant, and ``Compute`` operations transform registers. Compute
operations are invisible to every compile-time analysis, exactly as the
paper drops the arithmetic statements from its listings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Sequence


class OpKind(enum.Enum):
    """Kind of a cell-program operation."""

    READ = "R"
    WRITE = "W"
    COMPUTE = "C"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class ValueSource:
    """Where a write operation takes its word from.

    Exactly one of ``register`` or ``constant`` is set. A write with no
    source sends ``None`` words, which is fine for programs that exercise
    only the communication structure.
    """

    register: str | None = None
    constant: float | None = None

    def __post_init__(self) -> None:
        if self.register is not None and self.constant is not None:
            raise ValueError("ValueSource takes a register or a constant, not both")

    def resolve(self, registers: dict[str, float | None]) -> float | None:
        """Produce the word value given the cell's current registers."""
        if self.register is not None:
            return registers.get(self.register)
        return self.constant


@dataclass(frozen=True)
class Op:
    """One statement of a cell program.

    Attributes:
        kind: read, write, or compute.
        message: message name for R/W operations (``""`` for compute).
        register: for a read, the destination register (optional); for a
            compute, the target register.
        source: for a write, where the word value comes from.
        func: for a compute, a callable applied to the operand registers.
        operands: for a compute, the register names passed to ``func``.
        cycles: extra simulated cycles this operation takes beyond the
            baseline queue access (models the arithmetic in Fig. 2).
    """

    kind: OpKind
    message: str = ""
    register: str | None = None
    source: ValueSource | None = None
    func: Callable[..., float] | None = field(default=None, compare=False)
    operands: tuple[str, ...] = ()
    cycles: int = 0

    def __post_init__(self) -> None:
        if self.kind in (OpKind.READ, OpKind.WRITE) and not self.message:
            raise ValueError(f"{self.kind.value} operation requires a message name")
        if self.kind is OpKind.COMPUTE and self.message:
            raise ValueError("compute operations do not name a message")

    @property
    def is_transfer(self) -> bool:
        """True for R/W operations — the ones the paper's analyses see."""
        return self.kind in (OpKind.READ, OpKind.WRITE)

    def __str__(self) -> str:
        if self.kind is OpKind.COMPUTE:
            target = self.register or "_"
            return f"C({target})"
        return f"{self.kind.value}({self.message})"


def R(message: str, into: str | None = None, cycles: int = 0) -> Op:
    """Read one word from ``message``, optionally into register ``into``."""
    return Op(OpKind.READ, message, register=into, cycles=cycles)


def W(
    message: str,
    from_register: str | None = None,
    constant: float | None = None,
    cycles: int = 0,
) -> Op:
    """Write one word to ``message``.

    The word value comes from ``from_register`` if given, else from
    ``constant``, else it is ``None`` (structure-only programs).
    """
    source: ValueSource | None = None
    if from_register is not None or constant is not None:
        source = ValueSource(register=from_register, constant=constant)
    return Op(OpKind.WRITE, message, source=source, cycles=cycles)


def COMPUTE(
    target: str,
    func: Callable[..., float],
    operands: Sequence[str],
    cycles: int = 1,
) -> Op:
    """Apply ``func`` to the named operand registers, storing into ``target``.

    Compute operations never block and are ignored by all compile-time
    analyses (crossing-off, labeling, consistency); they only consume
    simulated time.
    """
    return Op(
        OpKind.COMPUTE,
        register=target,
        func=func,
        operands=tuple(operands),
        cycles=cycles,
    )


def transfer_ops(ops: Sequence[Op]) -> list[Op]:
    """Project a statement sequence onto its R/W operations.

    This is the view every analysis in the paper operates on.
    """
    return [op for op in ops if op.is_transfer]
