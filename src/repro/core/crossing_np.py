"""Columnar (numpy) backend for the crossing-off procedure.

This module is the optional fast kernel behind
:func:`repro.core.crossing.cross_off`: bit-identical output to the
interned engine, produced from flat numpy arrays instead of per-object
Python structures. It is selected by the backend dispatch in
:mod:`repro.core.crossing` (``backend="columnar"``, or ``"auto"`` on
large programs); nothing here is public API beyond what that dispatch
calls.

Layout
------

:class:`ColumnarTables` converts a program's
:class:`~repro.core.program.InternTable` once (cached on the table, so
every analysis over the same program shares the arrays zero-copy):

* per-cell **sign-coded op sequences** (write -> ``mid``, read ->
  ``~mid``: one ``x < 0`` test replaces tuple unpacking) — shared with
  the interned engine via ``InternTable.signed_transfers``;
* per-message **sorted write/read position arrays** (``wpos_flat`` /
  ``rpos_flat`` with offset vectors) — the columnar form of the interned
  engine's ``_wpos``/``_rpos`` list-of-lists;
* per-cell **read-position arrays** (the R1 bound: the first uncrossed
  read ends every lookahead window) and **sorted write-mid lists** (the
  R2 scan set);
* a **cumulative write-count table** (``cum_flat``): for every cell
  ``c``, position ``p`` and cell-write-mid slot ``i``, the number of
  writes of that message at positions ``< p``. Because crossed writes
  always form a prefix of a message's write index, the *dynamic* R2
  count is one gather and one subtract — ``cum[c, p, i] -
  crossed[mid]`` — with no window scan and no per-position bisect.

Kernels
-------

* **sequential** — the readiness-scan drain: a min-heap of executable
  message ids, two readiness bitmaps, and nomination scans that resume
  from the crossed position with *no carried window state* — each
  visited write recomputes its R2 count as one gather from the
  cumulative table minus the crossed counter, crossing positions are
  the static ``k``-th position-array entries, and skip snapshots are
  a pure function of the log, rebuilt vectorized only when a result
  field that needs them is read (provably equal to the frozen
  nomination-time state).
  Successor-skip jump lists (with path compression) make every scan
  visit only uncrossed operations. The seed pass (initial nominations
  of all cells) is fully vectorized; the drain itself is inherently
  serial (each crossing is chosen by exact min-id order and
  immediately affects its two cells), so its per-pair work is O(1)
  dict-free, allocation-light Python over packed int logs.
* **parallel** — fully vectorized stepping: per step, every live
  message's two candidate ends are checked as boolean masks (R1 from
  per-cell first-uncrossed-read gathers, R2 from the cumulative table
  minus the crossed counters, segment-reduced per candidate), and the
  whole step batch is crossed with array writes. No front pointers and
  no crossed bitmaps are maintained at all — the per-message crossed
  counter *is* the state.

Both kernels defer materialization: the hot loops log packed ints and
arrays, and ``PairCrossing`` tuples / ``uncrossed`` / ``max_skipped``
are constructed only when a :class:`CrossingResult` field is first
accessed (:class:`_LazyColumnarResult`).

A note on ``lookahead=None``: the strict Section 3 procedure is exactly
the Section 8.1 procedure with every R2 budget at zero (no skipped
write is allowed, and R1 already forbids skipped reads), so the kernels
run the capacity-vector path with zeros instead of carrying a separate
no-lookahead branch. The equivalence suite pins this against both the
interned engine and the reference oracle.
"""

from __future__ import annotations

import gc

from heapq import heappop, heappush
from itertools import chain
from typing import TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.core.crossing import LookaheadConfig
    from repro.core.program import ArrayProgram

# Safe despite the mutual reference: crossing.py only imports this
# module lazily, inside the dispatch functions.
from repro.core.crossing import CrossingResult, PairCrossing

_np = None
_np_checked = False

#: Sentinel position larger than any real op position.
_BIG = 1 << 60


def numpy_available() -> bool:
    """True when numpy can be imported (checked once, lazily)."""
    global _np, _np_checked
    if not _np_checked:
        try:
            import numpy
        except ImportError:
            numpy = None
        _np = numpy
        _np_checked = True
    return _np is not None


def _require_numpy():
    if not numpy_available():
        raise ConfigError(
            "the columnar crossing backend requires numpy "
            "(install the repro[fast] extra); use backend='interned' "
            "or 'auto' for the pure-Python engine"
        )
    return _np


class ColumnarTables:
    """Flat numpy views of one program's intern table (built once).

    Everything here is immutable after construction and shared by every
    columnar crossing run over the program; per-run state (crossed
    counters, jump lists, logs) lives in the kernels.
    """

    __slots__ = (
        "intern",
        "signed",
        "ncells",
        "nmsgs",
        "total_ops",
        "pack_shift",
        "clen",
        "lengths",
        "senders",
        "receivers",
        "wpos_flat",
        "wpos_off",
        "rpos_flat",
        "rpos_off",
        "creads_flat",
        "creads_off",
        "creads_cnt",
        "cw_flat",
        "cw_off",
        "cw_cnt",
        "cum_flat",
        "cum_base",
        "first_read",
        "op_off",
        "statw",
        "slot_col",
        "_drain_lists",
    )

    def __init__(self, intern) -> None:
        np = _require_numpy()
        self.intern = intern
        self.signed = intern.signed_transfers
        ncells = len(intern.cell_names)
        nmsgs = len(intern.message_names)
        self.ncells = ncells
        self.nmsgs = nmsgs
        clen = np.array(intern.transfer_counts, dtype=np.int64)
        self.clen = clen
        total = int(clen.sum())
        self.total_ops = total
        maxlen = int(clen.max()) if ncells else 0
        self.pack_shift = max(maxlen, 1).bit_length()
        self.lengths = np.array(intern.lengths, dtype=np.int64)
        self.senders = np.array(intern.senders, dtype=np.int64)
        self.receivers = np.array(intern.receivers, dtype=np.int64)
        ops = np.fromiter(
            chain.from_iterable(self.signed), dtype=np.int64, count=total
        )
        cell_of = np.repeat(np.arange(ncells, dtype=np.int64), clen)
        op_base = np.zeros(ncells + 1, dtype=np.int64)
        np.cumsum(clen, out=op_base[1:])
        self.op_off = op_base
        pos_local = np.arange(total, dtype=np.int64) - np.repeat(
            op_base[:-1], clen
        )
        is_w = ops >= 0
        mids_all = np.where(is_w, ops, ~ops)
        # --- per-message sorted position arrays -----------------------
        w_cells = cell_of[is_w]
        w_mids = mids_all[is_w]
        w_posl = pos_local[is_w]
        order = np.argsort(w_mids, kind="stable")
        self.wpos_flat = w_posl[order]
        woff = np.zeros(nmsgs + 1, dtype=np.int64)
        np.cumsum(np.bincount(w_mids, minlength=nmsgs), out=woff[1:])
        self.wpos_off = woff
        r_mask = ~is_w
        r_cells = cell_of[r_mask]
        r_mids = mids_all[r_mask]
        r_posl = pos_local[r_mask]
        order = np.argsort(r_mids, kind="stable")
        self.rpos_flat = r_posl[order]
        roff = np.zeros(nmsgs + 1, dtype=np.int64)
        np.cumsum(np.bincount(r_mids, minlength=nmsgs), out=roff[1:])
        self.rpos_off = roff
        # --- per-cell read positions (R1) -----------------------------
        # Reads are already cell-major, position-ascending in flat order.
        self.creads_flat = r_posl
        creads_cnt = np.bincount(r_cells, minlength=ncells)
        self.creads_cnt = creads_cnt
        creads_off = np.zeros(ncells + 1, dtype=np.int64)
        np.cumsum(creads_cnt, out=creads_off[1:])
        self.creads_off = creads_off
        first_read = np.full(ncells, _BIG, dtype=np.int64)
        has = creads_cnt > 0
        if r_posl.size:
            first_read[has] = r_posl[creads_off[:-1][has]]
        self.first_read = first_read
        # --- per-cell sorted write-mid lists (R2 scan sets) -----------
        keys = w_cells * max(nmsgs, 1) + w_mids
        ukeys = np.unique(keys)
        cw_cells = ukeys // max(nmsgs, 1)
        self.cw_flat = ukeys % max(nmsgs, 1)
        cw_cnt = np.bincount(cw_cells, minlength=ncells)
        self.cw_cnt = cw_cnt
        cw_off = np.zeros(ncells + 1, dtype=np.int64)
        np.cumsum(cw_cnt, out=cw_off[1:])
        self.cw_off = cw_off
        # --- cumulative write-count table (R2 prefix counts) ----------
        # Column-major ragged layout: for cell c, slot i, position p the
        # entry lives at cum_base[c] + i*(clen[c]+1) + p and holds the
        # number of writes of message cw_flat[cw_off[c]+i] in cell c at
        # positions < p. One pad row per column keeps the builder's
        # scatter (at q+1) in range for writes at the last position.
        col_len = clen + 1
        block = cw_cnt * col_len
        cum_base = np.zeros(ncells + 1, dtype=np.int64)
        np.cumsum(block, out=cum_base[1:])
        self.cum_base = cum_base
        total_cum = int(cum_base[-1])
        delta = np.zeros(total_cum, dtype=np.int64)
        colpos = np.zeros(total, dtype=np.int64)
        if w_mids.size:
            slot = np.searchsorted(ukeys, keys) - cw_off[w_cells]
            colpos[is_w] = (
                cum_base[w_cells] + slot * col_len[w_cells] + w_posl
            )
            delta[colpos[is_w] + 1] = 1
        g = np.cumsum(delta)
        ncols = int(cw_cnt.sum())
        col_cells = np.repeat(np.arange(ncells, dtype=np.int64), cw_cnt)
        col_starts = cum_base[col_cells] + (
            np.arange(ncols, dtype=np.int64) - np.repeat(cw_off[:-1], cw_cnt)
        ) * col_len[col_cells]
        self.cum_flat = (
            g - np.repeat(g[col_starts], col_len[col_cells])
            if ncols
            else g
        ).astype(np.int32)
        self.slot_col = col_starts
        # Per-op static prefix counts: for every write op, the number
        # of earlier writes of its own message in its cell (reads never
        # consult their slot). The sequential drain turns a write visit
        # into the dynamic R2 count with one flat load and a subtract:
        # ``statw[op] - crossed[mid]``.
        self.statw = self.cum_flat[colpos]
        self._drain_lists = None

    def drain_lists(self):
        """Plain-list mirrors of the static tables the sequential drain
        indexes per visit (built once per program; a numpy scalar gather
        costs several times a list load in the hot loop)."""
        dl = self._drain_lists
        if dl is None:
            dl = (
                self.statw.tolist(),
                self.op_off.tolist(),
                self.wpos_flat.tolist(),
                self.wpos_off.tolist(),
                self.rpos_flat.tolist(),
                self.rpos_off.tolist(),
            )
            self._drain_lists = dl
        return dl

    def caps_vector(self, lookahead: "LookaheadConfig | None"):
        """Per-message R2 budgets as a float vector (zeros = strict §3)."""
        np = _np
        if lookahead is None:
            return np.zeros(self.nmsgs, dtype=np.float64)
        return np.array(
            [lookahead.capacity(name) for name in self.intern.message_names],
            dtype=np.float64,
        )

    def _r2_segments(self, cells_arr, p_arr, crossed):
        """R2 counts for one candidate set, as ragged segments.

        For each candidate row (a cell and a position in it), one
        segment over the cell's write-mids: ``counts = static prefix
        count at p - crossed writes``. Returns ``(rows, mids, counts)``
        concatenated over all candidates.
        """
        np = _np
        nw = self.cw_cnt[cells_arr]
        total = int(nw.sum())
        if total == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty, empty
        rows = np.repeat(np.arange(cells_arr.size, dtype=np.int64), nw)
        starts = np.cumsum(nw) - nw
        within = np.arange(total, dtype=np.int64) - np.repeat(starts, nw)
        mids = self.cw_flat[np.repeat(self.cw_off[:-1][cells_arr], nw) + within]
        static = self.cum_flat[
            np.repeat(self.cum_base[:-1][cells_arr], nw)
            + within * np.repeat(self.clen[cells_arr] + 1, nw)
            + np.repeat(p_arr, nw)
        ]
        return rows, mids, static.astype(np.int64) - crossed[mids]


# ---------------------------------------------------------------------------
# Sequential kernel
# ---------------------------------------------------------------------------


def _seed_side(t, caps, zeros, ok, endpoints, p):
    """Clear R2 violators from one side's R1 survivors (in place)."""
    np = _np
    cand = np.flatnonzero(ok)
    if cand.size == 0:
        return
    rows, mids, cnt = t._r2_segments(endpoints[cand], p[cand], zeros)
    viol = cnt > caps[mids]
    if viol.any():
        good = np.bincount(rows[viol], minlength=cand.size) == 0
        ok[cand[~good]] = False


def _sequential_seed(t, caps):
    """Vectorized initial nominations: every message's two first ends.

    Equivalent to one nomination scan per cell (each message's first
    write is locatable iff no uncrossed read precedes it and the static
    prefix counts fit the budgets; its first read iff it *is* the
    cell's first read and the counts fit). Returns the drain's starting
    state — the heap of executable ids plus the two readiness bitmaps;
    positions and skip snapshots are never registered at all (see
    :func:`_sequential_drain`).
    """
    np = _np
    nmsgs = t.nmsgs
    if nmsgs == 0 or t.wpos_flat.size == 0:
        return [], bytearray(nmsgs), bytearray(nmsgs)
    zeros = np.zeros(nmsgs, dtype=np.int64)
    pw = t.wpos_flat[t.wpos_off[:-1]]
    pr = t.rpos_flat[t.rpos_off[:-1]]
    ok_w = pw < t.first_read[t.senders]
    ok_r = pr == t.first_read[t.receivers]
    _seed_side(t, caps, zeros, ok_w, t.senders, pw)
    _seed_side(t, caps, zeros, ok_r, t.receivers, pr)
    # flatnonzero is ascending, which is already a valid min-heap.
    heap = np.flatnonzero(ok_w & ok_r).tolist()
    return heap, bytearray(ok_w.tobytes()), bytearray(ok_r.tobytes())


def _sequential_drain(t, capf, seed):
    """The readiness-scan drain (one pair per step, lowest id first).

    The hot loop keeps *no* per-window state at all. It rests on two
    facts about the procedure:

    * a message's crossed words are always its earliest ones, so the
      dynamic R2 count of message ``m`` before position ``p`` equals
      ``cum[column(m), p] - crossed[m]`` — one gather from the static
      cumulative table minus the per-message crossed counter. The
      engine's running ``counts`` dict (and the restart snapshots that
      re-seed it) disappear: each visited write recomputes its count
      in O(1), and nomination is simply ``count == 0`` (this write is
      the message's first uncrossed one).
    * for the same reason a crossing's positions are the static
      ``k``-th entries of the message's write/read position arrays, so
      the per-end position registers disappear too. Readiness is two
      bitmaps, and a message is in the heap exactly when both bits are
      set (push decisions are made *before* a nomination sets its own
      bit; located ends stay located until their own op crosses, so
      heap entries are always valid at pop).

    Skip snapshots are not tracked at all: they are a pure function of
    the log (the crossed counter of ``m`` at crossing ``i`` is the
    number of ``m``-crossings in ``log[:i]``), so
    :func:`_rebuild_skiplog` reconstructs them vectorized — and only
    when a result field that needs them is actually read.

    The log is one packed int per crossing (``(mid << 2*shift) |
    (sender_pos << shift) | recv_pos``); nothing is materialized here.
    The two rescan bodies are written out inline (twice): the scan runs
    twice per crossing and call overhead is a measurable share of the
    drain at the 10k scale. ``capf`` holds integer budget floors
    (``count > cap`` iff ``count > floor(cap)`` for integer counts).
    """
    enc = t.signed
    heap, ready_w, ready_r = seed
    nxt = [list(range(len(seq) + 1)) for seq in enc]
    sizes = [len(seq) for seq in enc]
    senders = t.intern.senders
    receivers = t.intern.receivers
    shift = t.pack_shift
    shift2 = 2 * shift
    log: list[int] = []
    log_append = log.append
    statw, opoff, wposf, woff, rposf, roff = t.drain_lists()
    kcnt = [0] * t.nmsgs

    while heap:
        top = heappop(heap)
        ready_w[top] = 0
        ready_r[top] = 0
        kk = kcnt[top]
        kcnt[top] = kk + 1
        sp = wposf[woff[top] + kk]
        rp = rposf[roff[top] + kk]
        log_append((top << shift2) | (sp << shift) | rp)
        s = senders[top]
        nxt[s][sp] = sp + 1
        r = receivers[top]
        nxt[r][rp] = rp + 1

        # --- sender rescan ---
        size = sizes[s]
        j = sp + 1
        if j < size:
            seq = enc[s]
            nx = nxt[s]
            pos = nx[j]
            if pos != j:
                while nx[pos] != pos:
                    pos = nx[pos]
                while nx[j] != pos:
                    nx[j], j = pos, nx[j]
            fo = opoff[s]
            while pos < size:
                mid = seq[pos]
                if mid < 0:
                    mid = ~mid
                    if ready_w[mid] and not ready_r[mid]:
                        heappush(heap, mid)
                    ready_r[mid] = 1
                    break
                c0 = statw[fo + pos] - kcnt[mid]
                if c0 <= 0:
                    if ready_r[mid] and not ready_w[mid]:
                        heappush(heap, mid)
                    ready_w[mid] = 1
                    if capf[mid] < 1:
                        break
                elif c0 >= capf[mid]:
                    break
                j = pos + 1
                pos = nx[j]
                if pos != j:
                    while nx[pos] != pos:
                        pos = nx[pos]
                    while nx[j] != pos:
                        nx[j], j = pos, nx[j]

        # --- receiver rescan (same body) ---
        size = sizes[r]
        j = rp + 1
        if j < size:
            seq = enc[r]
            nx = nxt[r]
            pos = nx[j]
            if pos != j:
                while nx[pos] != pos:
                    pos = nx[pos]
                while nx[j] != pos:
                    nx[j], j = pos, nx[j]
            fo = opoff[r]
            while pos < size:
                mid = seq[pos]
                if mid < 0:
                    mid = ~mid
                    if ready_w[mid] and not ready_r[mid]:
                        heappush(heap, mid)
                    ready_r[mid] = 1
                    break
                c0 = statw[fo + pos] - kcnt[mid]
                if c0 <= 0:
                    if ready_r[mid] and not ready_w[mid]:
                        heappush(heap, mid)
                    ready_w[mid] = 1
                    if capf[mid] < 1:
                        break
                elif c0 >= capf[mid]:
                    break
                j = pos + 1
                pos = nx[j]
                if pos != j:
                    while nx[pos] != pos:
                        pos = nx[pos]
                    while nx[j] != pos:
                        nx[j], j = pos, nx[j]
    return log, nxt


def _rebuild_skiplog(t, log):
    """Vectorized reconstruction of the sequential skip snapshots.

    The drain records nothing but the packed log; the snapshot a
    crossing was nominated under is recoverable because (a) the crossed
    counter of message ``m`` at crossing ``i`` is the number of
    ``m``-crossings in ``log[:i]``, and (b) pop-time counts equal the
    frozen nomination-time snapshot — a cell's counts change only with
    crossings in that cell, and every such crossing rescans the cell,
    re-nominating (and thereby refreshing) every still-located end.

    For every crossing and both of its cells, one segment over the
    cell's write-mids gathers ``static prefix - crossed before i``
    (the per-(m, i) crossed counts come from one composite-key
    searchsorted over the log). Returns the engine-shaped skiplog:
    ``{crossing_index: (sender_skips, receiver_skips)}``, id-ascending
    pairs, nonempty entries only.
    """
    np = _np
    n = len(log)
    if n == 0 or not t.cw_flat.size:
        return {}
    shift = t.pack_shift
    arr = np.array(log, dtype=np.int64)
    mids = arr >> (2 * shift)
    mask = (1 << shift) - 1
    poss = np.concatenate([(arr >> shift) & mask, arr & mask])
    cells = np.concatenate([t.senders[mids], t.receivers[mids]])
    idx = np.arange(n, dtype=np.int64)
    cross_i = np.concatenate([idx, idx])
    nw = t.cw_cnt[cells]
    total = int(nw.sum())
    if total == 0:
        return {}
    starts = np.cumsum(nw) - nw
    within = np.arange(total, dtype=np.int64) - np.repeat(starts, nw)
    ix = np.repeat(t.cw_off[:-1][cells], nw) + within
    m = t.cw_flat[ix]
    static = t.cum_flat[t.slot_col[ix] + np.repeat(poss, nw)].astype(
        np.int64
    )
    # crossed count of m before crossing i: rank of i among m's own
    # crossings, via composite keys (occurrences are log-ordered, so
    # a stable sort by mid keeps them ascending per message).
    order = np.argsort(mids, kind="stable")
    occ_keys = mids[order] * (n + 1) + order
    occ_off = np.zeros(t.nmsgs + 1, dtype=np.int64)
    np.cumsum(np.bincount(mids, minlength=t.nmsgs), out=occ_off[1:])
    kbef = (
        np.searchsorted(occ_keys, m * (n + 1) + np.repeat(cross_i, nw))
        - occ_off[m]
    )
    cnt = static - kbef
    keep = cnt > 0
    seg_row = np.repeat(
        np.arange(2 * n, dtype=np.int64), nw
    )[keep]
    side_s: dict[int, list] = {}
    side_r: dict[int, list] = {}
    for row, mm, cc in zip(
        seg_row.tolist(), m[keep].tolist(), cnt[keep].tolist()
    ):
        if row < n:
            side_s.setdefault(row, []).append((mm, cc))
        else:
            side_r.setdefault(row - n, []).append((mm, cc))
    return {
        i: (tuple(side_s.get(i, ())), tuple(side_r.get(i, ())))
        for i in side_s.keys() | side_r.keys()
    }


# ---------------------------------------------------------------------------
# Parallel kernel
# ---------------------------------------------------------------------------


def _parallel_drain(t, caps):
    """Vectorized maximal-parallel stepping.

    Per step, the candidate masks are recomputed from scratch over every
    live message — with crossed writes forming per-message prefixes,
    both rules are pure gathers (R1: the candidate position against its
    cell's first uncrossed read; R2: cumulative prefix counts minus the
    crossed counters, segment-reduced per candidate) — and the whole
    step batch is applied with two fancy-indexed increments. State is
    just ``k`` (crossed pairs per message) and ``cell_rc`` (crossed
    reads per cell).
    """
    np = _np
    nmsgs = t.nmsgs
    L = t.lengths
    S = t.senders
    R = t.receivers
    k = np.zeros(nmsgs, dtype=np.int64)
    cell_rc = np.zeros(t.ncells, dtype=np.int64)
    creads_flat = t.creads_flat
    creads_cnt = t.creads_cnt
    creads_off = t.creads_off
    chunks: list[tuple] = []

    def first_uncrossed_read(cells):
        j = cell_rc[cells]
        cnt = creads_cnt[cells]
        has = j < cnt
        if not creads_flat.size:
            return np.full(cells.size, _BIG, dtype=np.int64)
        # Clip masked-out gathers (cells with no uncrossed reads) into
        # range; their values are discarded by the mask.
        idx = np.minimum(
            creads_off[:-1][cells] + np.minimum(j, np.maximum(cnt - 1, 0)),
            creads_flat.size - 1,
        )
        return np.where(has, creads_flat[idx], _BIG)

    while True:
        alive = np.flatnonzero(k < L)
        if not alive.size:
            break
        ka = k[alive]
        pw = t.wpos_flat[t.wpos_off[:-1][alive] + ka]
        pr = t.rpos_flat[t.rpos_off[:-1][alive] + ka]
        m1 = (pw < first_uncrossed_read(S[alive])) & (
            pr == first_uncrossed_read(R[alive])
        )
        sub = alive[m1]
        if not sub.size:
            break
        psw = pw[m1]
        psr = pr[m1]
        rows_w, mids_w, cnt_w = t._r2_segments(S[sub], psw, k)
        rows_r, mids_r, cnt_r = t._r2_segments(R[sub], psr, k)
        bad = np.zeros(sub.size, dtype=bool)
        viol = cnt_w > caps[mids_w]
        if viol.any():
            bad |= np.bincount(rows_w[viol], minlength=sub.size) > 0
        viol = cnt_r > caps[mids_r]
        if viol.any():
            bad |= np.bincount(rows_r[viol], minlength=sub.size) > 0
        keep = ~bad
        ex = sub[keep]
        if not ex.size:
            break
        rowmap = np.cumsum(keep) - 1
        sel = keep[rows_w] & (cnt_w > 0)
        wsk = (rowmap[rows_w[sel]], mids_w[sel], cnt_w[sel])
        sel = keep[rows_r] & (cnt_r > 0)
        rsk = (rowmap[rows_r[sel]], mids_r[sel], cnt_r[sel])
        chunks.append((ex, psw[keep], psr[keep], wsk, rsk))
        k[ex] += 1
        # Read ends are unique per cell within a step (each is its
        # cell's single first uncrossed read), so a plain fancy-indexed
        # increment is exact.
        cell_rc[R[ex]] += 1
    return chunks, k


# ---------------------------------------------------------------------------
# Deferred materialization
# ---------------------------------------------------------------------------


class _LazyColumnarResult(CrossingResult):
    """A :class:`CrossingResult` whose list/dict fields build on demand.

    The kernels log packed ints and arrays; ``steps``, ``crossings``,
    ``uncrossed`` and ``max_skipped`` are materialized (and cached) the
    first time they are read, so analyses that only need the verdict —
    ``deadlock_free``, ``pairs_crossed`` — never pay the 10k-scale
    tuple-construction floor. Field-for-field identical to an eagerly
    built result (the properties shadow the dataclass fields; this
    ``__init__`` deliberately does not call the dataclass one).
    """

    __slots__ = (
        "deadlock_free",
        "lookahead_used",
        "_program",
        "_tables",
        "_payload",
        "_mode",
        "_steps",
        "_crossings",
        "_uncrossed",
        "_max_skipped",
        "_skiplog",
        "_count",
    )

    def __init__(
        self, program, tables, mode, deadlock_free, lookahead_used, payload
    ) -> None:
        self.deadlock_free = deadlock_free
        self.lookahead_used = lookahead_used
        self._program = program
        self._tables = tables
        self._mode = mode
        self._payload = payload
        self._steps = None
        self._crossings = None
        self._uncrossed = None
        self._max_skipped = None
        self._skiplog = None
        if mode == "sequential":
            self._count = len(payload[0])
        else:
            self._count = sum(len(chunk[0]) for chunk in payload[0])

    # -- result protocol ------------------------------------------------

    @property
    def step_count(self) -> int:
        if self._mode == "sequential":
            return self._count
        return len(self._payload[0])

    @property
    def pairs_crossed(self) -> int:
        return self._count

    def pairs_in_step(self, step: int):
        return self.steps[step - 1]

    @property
    def steps(self):
        if self._steps is None:
            self._materialize()
        return self._steps

    @property
    def crossings(self):
        if self._crossings is None:
            self._materialize()
        return self._crossings

    @property
    def max_skipped(self):
        if self._max_skipped is None:
            t = self._tables
            vec = [0] * t.nmsgs
            if self._mode == "sequential":
                for ss, sr in self._skips().values():
                    for m, c in ss:
                        if c > vec[m]:
                            vec[m] = c
                    for m, c in sr:
                        if c > vec[m]:
                            vec[m] = c
            else:
                for _ex, _pw, _pr, wsk, rsk in self._payload[0]:
                    for _rows, mids, counts in (wsk, rsk):
                        for m, c in zip(mids.tolist(), counts.tolist()):
                            if c > vec[m]:
                                vec[m] = c
            self._max_skipped = dict(zip(t.intern.message_names, vec))
        return self._max_skipped

    @property
    def uncrossed(self):
        if self._uncrossed is None:
            self._uncrossed = self._build_uncrossed()
        return self._uncrossed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CrossingResult(deadlock_free={self.deadlock_free}, "
            f"steps=<{self.step_count}>, crossings=<{self._count}>, "
            f"lookahead_used={self.lookahead_used}, backend='columnar')"
        )

    # -- builders --------------------------------------------------------

    def _skips(self):
        """The sequential skiplog, rebuilt (and cached) on first use."""
        sk = self._skiplog
        if sk is None:
            sk = _rebuild_skiplog(self._tables, self._payload[0])
            self._skiplog = sk
        return sk

    def _materialize(self) -> None:
        t = self._tables
        intern = t.intern
        names = intern.message_names
        cells = intern.cell_names
        senders = intern.senders
        receivers = intern.receivers
        crossings: list = []
        add = crossings.append
        if self._mode == "sequential":
            log = self._payload[0]
            skiplog = self._skips()
            shift = t.pack_shift
            mask = (1 << shift) - 1
            for i, packed in enumerate(log):
                mid = packed >> (2 * shift)
                ss, sr = skiplog.get(i, ((), ()))
                # The drain rebuilds snapshots from the per-cell
                # write-mid lists, which are id-ascending; id order ==
                # name order (interning is sorted), so the engine's
                # name-sorted skip tuples fall out of a plain map.
                if ss:
                    ss = tuple((names[m], c) for m, c in ss)
                if sr:
                    sr = tuple((names[m], c) for m, c in sr)
                add(
                    PairCrossing(
                        i + 1,
                        names[mid],
                        cells[senders[mid]],
                        (packed >> shift) & mask,
                        cells[receivers[mid]],
                        packed & mask,
                        ss,
                        sr,
                    )
                )
            self._steps = [[pair] for pair in crossings]
        else:
            steps: list[list] = []
            for step_no, (ex, pw, pr, wsk, rsk) in enumerate(
                self._payload[0], start=1
            ):
                this_step: list = []
                stamp = this_step.append
                skips_s = _group_skips(names, *wsk, ex.size)
                skips_r = _group_skips(names, *rsk, ex.size)
                for row, (mid, sp, rp) in enumerate(
                    zip(ex.tolist(), pw.tolist(), pr.tolist())
                ):
                    pair = PairCrossing(
                        step_no,
                        names[mid],
                        cells[senders[mid]],
                        sp,
                        cells[receivers[mid]],
                        rp,
                        skips_s[row],
                        skips_r[row],
                    )
                    stamp(pair)
                    add(pair)
                steps.append(this_step)
            self._steps = steps
        self._crossings = crossings

    def _build_uncrossed(self):
        program = self._program
        if self.deadlock_free:
            return {}
        t = self._tables
        intern = t.intern
        per_cell: dict[int, list[int]] = {}
        if self._mode == "sequential":
            nxt = self._payload[1]
            for cid, seq in enumerate(t.signed):
                nx = nxt[cid]
                left = [p for p in range(len(seq)) if nx[p] == p]
                if left:
                    per_cell[cid] = left
        else:
            np = _np
            k = self._payload[1]
            for mid in np.flatnonzero(k < t.lengths).tolist():
                done = int(k[mid])
                lo, hi = int(t.wpos_off[mid]), int(t.wpos_off[mid + 1])
                per_cell.setdefault(intern.senders[mid], []).extend(
                    t.wpos_flat[lo + done : hi].tolist()
                )
                lo, hi = int(t.rpos_off[mid]), int(t.rpos_off[mid + 1])
                per_cell.setdefault(intern.receivers[mid], []).extend(
                    t.rpos_flat[lo + done : hi].tolist()
                )
        out: dict[str, list] = {}
        for cell in program.cells:
            cid = intern.cell_ids[cell]
            positions = per_cell.get(cid)
            if positions:
                transfers = program.transfers(cell)
                out[cell] = [transfers[p] for p in sorted(positions)]
        return out


def _group_skips(names, rows, mids, counts, nrows):
    """Per-row name-keyed skip tuples from one step's skip arrays."""
    out = [()] * nrows
    if rows.size:
        for r, m, c in zip(rows.tolist(), mids.tolist(), counts.tolist()):
            out[r] = out[r] + ((names[m], c),)
    return out


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def columnar_cross_off(
    program: "ArrayProgram",
    lookahead: "LookaheadConfig | None" = None,
    mode: str = "parallel",
):
    """Run the columnar kernels; bit-identical to the interned engine."""
    _require_numpy()
    tables = program.intern.columnar()
    caps = tables.caps_vector(lookahead)
    # The kernels' allocations (heap entries, packed log ints, lazy
    # skip tuples) are enough young objects at 10k cells to trigger
    # dozens of gen-0 collections. Nothing the kernels build is
    # cyclic, so deferring collection to the end is safe.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        if mode == "sequential":
            # Integer budget floors: for integer counts and caps >= 0,
            # ``count > cap`` iff ``count > floor(cap)`` (inf stays a
            # never-breaking sentinel).
            capf = [int(v) if v < _BIG else _BIG for v in caps.tolist()]
            seed = _sequential_seed(tables, caps)
            payload = _sequential_drain(tables, capf, seed)
            deadlock_free = 2 * len(payload[0]) == tables.total_ops
        else:
            chunks, k = _parallel_drain(tables, caps)
            payload = (chunks, k)
            deadlock_free = (
                bool((k == tables.lengths).all())
                if tables.nmsgs
                else (tables.total_ops == 0)
            )
    finally:
        if gc_was_enabled:
            gc.enable()
    return _LazyColumnarResult(
        program,
        tables,
        mode,
        deadlock_free,
        lookahead is not None,
        payload,
    )
