"""Consistency checking for message labelings (Section 5, step 1).

A labeling is *consistent* when every cell program writes to or reads from
messages with nondecreasing labels. This module provides the checker used
both as a public API and as the internal guard behind the labeling scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.core.labeling import Labeling
from repro.core.program import ArrayProgram


@dataclass(frozen=True)
class ConsistencyViolation:
    """A point where a cell's label sequence decreases."""

    cell: str
    position: int
    previous_message: str
    previous_label: Fraction
    message: str
    label: Fraction

    def __str__(self) -> str:
        return (
            f"cell {self.cell!r} accesses {self.message!r} (label {self.label}) "
            f"at transfer #{self.position} after {self.previous_message!r} "
            f"(label {self.previous_label})"
        )


def check_consistency(
    program: ArrayProgram, labeling: Labeling
) -> list[ConsistencyViolation]:
    """All label-order violations, empty iff the labeling is consistent."""
    violations: list[ConsistencyViolation] = []
    for cell in program.cells:
        prev_msg: str | None = None
        prev_label: Fraction | None = None
        for pos, op in enumerate(program.transfers(cell)):
            label = labeling.label(op.message)
            if prev_label is not None and label < prev_label:
                violations.append(
                    ConsistencyViolation(
                        cell=cell,
                        position=pos,
                        previous_message=prev_msg or "",
                        previous_label=prev_label,
                        message=op.message,
                        label=label,
                    )
                )
            prev_msg, prev_label = op.message, label
    return violations


def is_consistent(program: ArrayProgram, labeling: Labeling) -> bool:
    """True iff every cell accesses messages in nondecreasing label order."""
    return not check_consistency(program, labeling)
