"""Program DSL: fluent builder, text parser, pretty printer."""

from repro.lang.builder import CellBuilder, ProgramBuilder
from repro.lang.parser import parse_program
from repro.lang.printer import format_op, print_program, side_by_side

__all__ = [
    "CellBuilder",
    "ProgramBuilder",
    "format_op",
    "parse_program",
    "print_program",
    "side_by_side",
]
