"""Textual program format, mirroring the paper's listings.

Format (one section per cell, ``#`` comments allowed)::

    program fig6
    cells C1 C2 C3 C4

    cell C1:
        W(A)
        R(D)

    cell C2:
        R(A)
        W(B)
    ...

Message declarations are inferred exactly as the builder does (sender =
writing cell, receiver = reading cell, length = operation count). An
optional explicit block pins them down for cross-checking::

    message A C1 -> C2 length 1

Reads/writes may name registers — ``R(A) -> x`` stores into register x,
``W(A) <- x`` sources from it, ``W(A) <- 3.5`` writes a constant.
"""

from __future__ import annotations

import re

from repro.core.message import Message
from repro.core.ops import Op, R, W
from repro.core.program import ArrayProgram
from repro.errors import ParseError
from repro.lang.builder import ProgramBuilder

_PROGRAM_RE = re.compile(r"^program\s+(\S+)$")
_CELLS_RE = re.compile(r"^cells\s+(.+)$")
_CELL_RE = re.compile(r"^cell\s+(\S+):$")
_MESSAGE_RE = re.compile(
    r"^message\s+(\S+)\s+(\S+)\s*->\s*(\S+)\s+length\s+(\d+)$"
)
_READ_RE = re.compile(r"^R\((\w+)\)(?:\s*->\s*(\w+))?$")
_WRITE_RE = re.compile(r"^W\((\w+)\)(?:\s*<-\s*(\S+))?$")
_DELAY_RE = re.compile(r"^delay\s+(\d+)$")


def parse_program(text: str) -> ArrayProgram:
    """Parse the textual format into a validated :class:`ArrayProgram`."""
    name = "program"
    cells: list[str] = []
    declared: list[Message] = []
    builder: ProgramBuilder | None = None
    current: str | None = None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue

        if match := _PROGRAM_RE.match(line):
            name = match.group(1)
            continue
        if match := _CELLS_RE.match(line):
            if builder is not None:
                raise ParseError(f"line {lineno}: duplicate cells declaration")
            cells = match.group(1).split()
            builder = ProgramBuilder(name, cells)
            continue
        if match := _MESSAGE_RE.match(line):
            declared.append(
                Message(
                    match.group(1),
                    match.group(2),
                    match.group(3),
                    int(match.group(4)),
                )
            )
            continue
        if match := _CELL_RE.match(line):
            current = match.group(1)
            if builder is None:
                raise ParseError(f"line {lineno}: cell section before cells line")
            builder.cell(current)  # validates the name
            continue

        if builder is None or current is None:
            raise ParseError(f"line {lineno}: statement outside a cell section")
        cell = builder.cell(current)
        if match := _READ_RE.match(line):
            cell.recv(match.group(1), into=match.group(2))
        elif match := _WRITE_RE.match(line):
            source = match.group(2)
            if source is None:
                cell.send(match.group(1))
            else:
                try:
                    cell.send(match.group(1), constant=float(source))
                except ValueError:
                    cell.send(match.group(1), from_register=source)
        elif match := _DELAY_RE.match(line):
            cell.delay(int(match.group(1)))
        else:
            raise ParseError(f"line {lineno}: cannot parse {line!r}")

    if builder is None:
        raise ParseError("no cells declaration found")
    program = builder.build()
    _check_declared(program, declared)
    return program


def _check_declared(program: ArrayProgram, declared: list[Message]) -> None:
    for msg in declared:
        actual = program.messages.get(msg.name)
        if actual is None:
            raise ParseError(f"declared message {msg.name!r} never used")
        if actual != msg:
            raise ParseError(
                f"message {msg.name!r}: declaration {msg} does not match use {actual}"
            )
