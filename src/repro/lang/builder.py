"""Fluent builder for array programs.

Writing ``ArrayProgram`` literals is verbose: messages must be declared
with explicit lengths that match the operation counts. The builder infers
declarations from use — ``send``/``recv`` calls accumulate per-cell ops,
and :meth:`ProgramBuilder.build` derives each message's endpoints and
length, then validates the result through the normal constructor.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Sequence

from repro.core.message import Message
from repro.core.ops import COMPUTE, Op, OpKind, R, W
from repro.core.program import ArrayProgram
from repro.errors import ProgramError


class CellBuilder:
    """Accumulates one cell's statements; returned by ``builder.cell()``."""

    def __init__(self, owner: "ProgramBuilder", cell: str) -> None:
        self._owner = owner
        self.cell = cell
        self.ops: list[Op] = []

    def send(
        self,
        message: str,
        from_register: str | None = None,
        constant: float | None = None,
        times: int = 1,
    ) -> "CellBuilder":
        """Append ``times`` write operations to ``message``."""
        for _ in range(times):
            self.ops.append(W(message, from_register=from_register, constant=constant))
        self._owner.note_writer(message, self.cell)
        return self

    def recv(
        self, message: str, into: str | None = None, times: int = 1
    ) -> "CellBuilder":
        """Append ``times`` read operations from ``message``."""
        for _ in range(times):
            self.ops.append(R(message, into=into))
        self._owner.note_reader(message, self.cell)
        return self

    def compute(
        self,
        target: str,
        func: Callable[..., float],
        operands: Sequence[str] = (),
        cycles: int = 1,
    ) -> "CellBuilder":
        """Append a compute statement (invisible to the analyses)."""
        self.ops.append(COMPUTE(target, func, operands, cycles=cycles))
        return self

    def delay(self, cycles: int) -> "CellBuilder":
        """Append a pure time delay (compute with no effect)."""
        self.ops.append(COMPUTE("_", lambda: 0.0, [], cycles=cycles))
        return self


class ProgramBuilder:
    """Builds a validated :class:`ArrayProgram` from fluent cell scripts.

    Example::

        b = ProgramBuilder("demo", cells=["C1", "C2"])
        b.cell("C1").send("A", times=2)
        b.cell("C2").recv("A", times=2)
        program = b.build()
    """

    def __init__(self, name: str, cells: Sequence[str]) -> None:
        self.name = name
        self.cells = list(cells)
        self._builders: dict[str, CellBuilder] = {}
        self._writers: dict[str, str] = {}
        self._readers: dict[str, str] = {}

    def cell(self, name: str) -> CellBuilder:
        """The (shared) builder for ``name``; created on first use."""
        if name not in self.cells:
            raise ProgramError(f"unknown cell {name!r}")
        if name not in self._builders:
            self._builders[name] = CellBuilder(self, name)
        return self._builders[name]

    def note_writer(self, message: str, cell: str) -> None:
        """Record (and cross-check) the sender of ``message``."""
        prior = self._writers.setdefault(message, cell)
        if prior != cell:
            raise ProgramError(
                f"message {message!r} written by both {prior!r} and {cell!r}"
            )

    def note_reader(self, message: str, cell: str) -> None:
        """Record (and cross-check) the receiver of ``message``."""
        prior = self._readers.setdefault(message, cell)
        if prior != cell:
            raise ProgramError(
                f"message {message!r} read by both {prior!r} and {cell!r}"
            )

    def build(self) -> ArrayProgram:
        """Derive message declarations and validate the whole program."""
        counts: dict[str, dict[OpKind, int]] = defaultdict(
            lambda: {OpKind.WRITE: 0, OpKind.READ: 0}
        )
        for builder in self._builders.values():
            for op in builder.ops:
                if op.is_transfer:
                    counts[op.message][op.kind] += 1
        messages = []
        for name, c in sorted(counts.items()):
            writes, reads = c[OpKind.WRITE], c[OpKind.READ]
            if name not in self._writers:
                raise ProgramError(f"message {name!r} is read but never written")
            if name not in self._readers:
                raise ProgramError(f"message {name!r} is written but never read")
            if writes != reads:
                raise ProgramError(
                    f"message {name!r}: {writes} writes vs {reads} reads"
                )
            messages.append(
                Message(name, self._writers[name], self._readers[name], writes)
            )
        programs = {
            cell: tuple(builder.ops) for cell, builder in self._builders.items()
        }
        return ArrayProgram(self.cells, messages, programs, name=self.name)
