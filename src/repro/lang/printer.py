"""Pretty-printing programs back to the textual format, and paper-style
side-by-side listings (the layout of Fig. 2)."""

from __future__ import annotations

from repro.core.ops import Op, OpKind
from repro.core.program import ArrayProgram


def format_op(op: Op) -> str:
    """One statement in the textual format."""
    if op.kind is OpKind.READ:
        if op.register:
            return f"R({op.message}) -> {op.register}"
        return f"R({op.message})"
    if op.kind is OpKind.WRITE:
        if op.source is not None and op.source.register is not None:
            return f"W({op.message}) <- {op.source.register}"
        if op.source is not None and op.source.constant is not None:
            return f"W({op.message}) <- {op.source.constant}"
        return f"W({op.message})"
    return f"delay {max(op.cycles, 1)}"


def print_program(program: ArrayProgram) -> str:
    """Serialize to the format :func:`repro.lang.parser.parse_program` reads.

    Compute statements survive only as delays — their functions are Python
    callables with no textual form, which is fine for the round-trip
    property the analyses need (transfer sequences are preserved exactly).
    """
    lines = [f"program {program.name}", "cells " + " ".join(program.cells), ""]
    for msg in sorted(program.messages.values()):
        lines.append(
            f"message {msg.name} {msg.sender} -> {msg.receiver} length {msg.length}"
        )
    for cell in program.cells:
        ops = program.cell_programs[cell].ops
        if not ops:
            continue
        lines.append("")
        lines.append(f"cell {cell}:")
        for op in ops:
            lines.append(f"    {format_op(op)}")
    return "\n".join(lines) + "\n"


def side_by_side(program: ArrayProgram, width: int = 14) -> str:
    """The paper's listing layout: one column per cell (cf. Fig. 2)."""
    columns = {
        cell: [str(op) for op in program.cell_programs[cell].ops]
        for cell in program.cells
    }
    height = max((len(col) for col in columns.values()), default=0)
    header = "".join(cell.ljust(width) for cell in program.cells)
    rows = [header, "-" * (width * len(program.cells))]
    for i in range(height):
        row = "".join(
            (columns[cell][i] if i < len(columns[cell]) else "").ljust(width)
            for cell in program.cells
        )
        rows.append(row.rstrip())
    return "\n".join(rows) + "\n"
