"""Sweep jobs: the unit of work every execution backend runs.

A :class:`SimJob` is one simulation to execute — program, config,
policy, registers, limits. :func:`normalize_jobs` turns the
``simulate_many`` input shapes (programs + broadcast config, per-program
configs, or prebuilt jobs) into a flat job list; :func:`run_job` executes
one job, optionally trapping :class:`~repro.errors.ReproError` into a
:class:`BatchError` so infeasible sweep corners stay data instead of
aborting the batch. Chunking lives here too because every multiprocess
backend needs it (per-chunk picklability probing is the pool backend's
own concern).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.arch.config import ArrayConfig
from repro.errors import ConfigError, ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (see below)
    from repro.core.program import ArrayProgram
    from repro.sim.result import SimulationResult
    from repro.sweep.summary import RunSummary


#: ``BatchError.kind`` of a job quarantined after crashing its worker
#: process past the supervised executor's retry budget.
WORKER_CRASH_KIND = "WorkerCrash"


@dataclass(frozen=True)
class BatchError:
    """A job that raised instead of producing a result.

    Returned in place of a :class:`~repro.sim.result.SimulationResult`
    when a sweep runs with ``on_error="collect"`` — sweeps over queue
    provisioning legitimately contain infeasible corners (e.g. a static
    assignment with too few queues) and one such corner must not abort
    the batch. The supervised executor also quarantines poison jobs
    (those that crash their worker past the retry budget) as rows of
    kind :data:`WORKER_CRASH_KIND` instead of aborting the sweep.
    """

    kind: str
    error: str

    @property
    def completed(self) -> bool:
        return False


@dataclass(frozen=True)
class SimJob:
    """One simulation to run: program plus run parameters."""

    program: "ArrayProgram"
    config: ArrayConfig | None = None
    policy: str = "ordered"
    registers: dict[str, dict[str, float | None]] | None = None
    strict: bool = True
    max_events: int | None = 5_000_000
    max_time: int | None = None

    def run(self) -> "SimulationResult":
        """Execute this job in the current process."""
        # Imported lazily: repro.sim imports this package at module
        # scope (through the repro.sim.batch compatibility shim), so a
        # top-level import here would be circular.
        from repro.sim.runtime import Simulator

        sim = Simulator(
            self.program,
            config=self.config,
            policy=self.policy,
            registers=self.registers,
            strict=self.strict,
        )
        return sim.run(max_events=self.max_events, max_time=self.max_time)


def normalize_jobs(
    programs: "Sequence[ArrayProgram] | Sequence[SimJob]",
    configs: ArrayConfig | Sequence[ArrayConfig | None] | None,
    policy: str,
    registers: dict[str, dict[str, float | None]] | None,
) -> list[SimJob]:
    """Flatten the ``simulate_many`` input shapes into a job list."""
    jobs: list[SimJob] = []
    if not programs:
        return jobs
    if isinstance(programs[0], SimJob):
        if configs is not None:
            raise ConfigError("pass configs inside SimJob objects, not both")
        for job in programs:
            if not isinstance(job, SimJob):
                raise ConfigError("mix of SimJob and ArrayProgram inputs")
            jobs.append(job)
        return jobs
    if configs is None or isinstance(configs, ArrayConfig):
        config_list: list[ArrayConfig | None] = [configs] * len(programs)
    else:
        config_list = list(configs)
        if len(config_list) != len(programs):
            raise ConfigError(
                f"{len(programs)} programs but {len(config_list)} configs"
            )
    for program, config in zip(programs, config_list):
        jobs.append(
            SimJob(program, config=config, policy=policy, registers=registers)
        )
    return jobs


def run_job(
    job: SimJob, collect_errors: bool
) -> "SimulationResult | BatchError":
    """Execute ``job``; with ``collect_errors`` trap failures as data."""
    if not collect_errors:
        return job.run()
    try:
        return job.run()
    except ReproError as exc:
        return BatchError(kind=type(exc).__name__, error=str(exc))


def witness_row(index: int, job: SimJob, witness) -> "RunSummary":
    """The deadlock row a covered job would produce, without running it.

    Field-for-field the row :func:`~repro.sweep.summary.summarize_result`
    builds from a simulated deadlock: ``completed``/``timed_out`` False,
    ``deadlocked`` True, ``time``/``events``/``words`` from the
    witnessed trace (identical inside the certificate's capacity band —
    see :meth:`~repro.witness.certificate.DeadlockWitness.
    covers_capacity`), config fields from *this* job's config, and the
    error fields left at their defaults exactly as a simulated deadlock
    leaves them. Byte-equality of pruned vs simulated rows is pinned by
    differential tests across every backend.
    """
    # Imported lazily: summary.py imports this module at module scope.
    from repro.sweep.summary import RunSummary

    config = job.config or ArrayConfig()
    return RunSummary(
        index=index,
        completed=False,
        deadlocked=True,
        timed_out=False,
        time=witness.time,
        events=witness.events,
        words=witness.words,
        policy=job.policy,
        queues=config.queues_per_link,
        capacity=config.queue_capacity,
    )


def mine_witness_payload(job: SimJob, result) -> dict | None:
    """Mine one finished job into a compact certificate dict, or ``None``.

    The worker-side half of the witness-mining hook: multiprocess
    workers hold the full :class:`~repro.sim.result.SimulationResult`
    in-process anyway, so they normalize deadlocks into
    :class:`~repro.witness.certificate.DeadlockWitness` payloads locally
    and ship only the compact dict over the pipe/future channel. Every
    soundness refusal lives in :func:`~repro.witness.certificate.
    mine_witness` (non-deadlocks, non-monotone policies, overridden or
    extensible queue configs return ``None``), so a worker can never
    mine a certificate the parent would have refused.
    """
    if not getattr(result, "deadlocked", False):
        return None
    # Imported lazily: repro.witness imports this module at module scope.
    from repro.witness import mine_witness

    witness = mine_witness(job, result)
    if witness is None:
        return None
    return witness.as_dict()


def job_fingerprint(job: SimJob) -> str:
    """A content fingerprint of one job: program + every run parameter.

    Two jobs with equal fingerprints produce byte-identical rows
    (simulations are deterministic), which is what lets a sweep
    checkpoint (:mod:`repro.sweep.checkpoint`) assert it is resuming
    *this* grid and not a lookalike.
    """
    from repro.perf.analysis_cache import program_fingerprint

    config = job.config or ArrayConfig()
    if job.registers is None:
        registers = ""
    else:
        registers = repr(
            sorted(
                (cell, sorted(values.items()))
                for cell, values in job.registers.items()
            )
        )
    return "|".join(
        (
            program_fingerprint(job.program),
            job.policy,
            repr(config),
            registers,
            repr(job.strict),
            repr(job.max_events),
            repr(job.max_time),
        )
    )


def default_chunk_size(n_jobs: int, workers: int) -> int:
    """An even split that gives each worker ~4 chunks for load balance."""
    return max(1, -(-n_jobs // (workers * 4)))


def iter_chunks(
    jobs: Iterable[SimJob], chunk_size: int, start: int = 0
) -> Iterator[list[tuple[int, SimJob]]]:
    """Lazily split ``jobs`` into ``chunk_size``-sized indexed chunks."""
    chunk: list[tuple[int, SimJob]] = []
    for index, job in enumerate(jobs, start):
        chunk.append((index, job))
        if len(chunk) >= chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk
